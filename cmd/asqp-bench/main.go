// Command asqp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	asqp-bench -run fig2            # one experiment at full sizing
//	asqp-bench -run all -fast      # every experiment at smoke sizing
//	asqp-bench -list               # list experiment ids
//
// Experiment ids map to the paper's artifacts; see DESIGN.md for the
// per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asqprl/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	fast := flag.Bool("fast", false, "use smoke-test sizing instead of full sizing")
	scale := flag.Float64("scale", 0, "override dataset scale factor")
	seeds := flag.Int("seeds", 0, "override repetition count")
	seed := flag.Int64("seed", 0, "override base random seed")
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Description)
		}
		if *run == "" {
			fmt.Println("\nRun with: asqp-bench -run <id> [-fast]")
		}
		return
	}

	params := experiments.Full()
	if *fast {
		params = experiments.Fast()
	}
	if *scale > 0 {
		params.Scale = *scale
	}
	if *seeds > 0 {
		params.Seeds = *seeds
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.Registry()
	} else {
		r, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		fmt.Printf("# %s — %s\n", r.ID, r.Description)
		start := time.Now()
		tables, err := r.Run(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println()
			t.Render(os.Stdout)
		}
		fmt.Printf("\n(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
