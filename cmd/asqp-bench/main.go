// Command asqp-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	asqp-bench -run fig2            # one experiment at full sizing
//	asqp-bench -run all -fast      # every experiment at smoke sizing
//	asqp-bench -list               # list experiment ids
//
// Experiment ids map to the paper's artifacts; see DESIGN.md for the
// per-experiment index.
//
// Observability: -debug-addr serves /metrics, /spans and /debug/pprof while
// experiments run, and -timing-json writes a machine-readable artifact with
// per-experiment wall-clock, the metrics registry snapshot (per-phase
// latency histograms, RL learning curves), and the recorded span trees —
// the perf trajectory future optimization PRs diff against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"asqprl/internal/experiments"
	"asqprl/internal/obs"
)

// timingArtifact is the JSON document written by -timing-json.
type timingArtifact struct {
	GeneratedAt time.Time          `json:"generated_at"`
	Fast        bool               `json:"fast"`
	Params      experiments.Params `json:"params"`
	Experiments []experimentTiming `json:"experiments"`
	Metrics     obs.Snapshot       `json:"metrics"`
	Spans       []obs.SpanSnapshot `json:"spans"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	run := flag.String("run", "", "experiment id to run (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	fast := flag.Bool("fast", false, "use smoke-test sizing instead of full sizing")
	scale := flag.Float64("scale", 0, "override dataset scale factor")
	seeds := flag.Int("seeds", 0, "override repetition count")
	seed := flag.Int64("seed", 0, "override base random seed")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans and /debug/pprof on this address while experiments run")
	timingJSON := flag.String("timing-json", "", "write a per-phase timing artifact (durations, metrics snapshot, span trees) to this file")
	parallelism := flag.Int("parallelism", 0, "worker count for scoring and query execution (0 = one per CPU, <0 = serial); recorded in -timing-json, results are identical for every setting")
	logLevel := flag.String("log", "", "emit structured logs to stderr at this level (debug, info, warn, error)")
	expTimeout := flag.Duration("train-timeout", 0, "watchdog: abort with a diagnostic if any single experiment exceeds this wall-clock bound (0 = none)")
	flag.Parse()

	if *logLevel != "" {
		obs.EnableLogging(os.Stderr, obs.ParseLevel(*logLevel))
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("debug server on http://%s (/metrics, /spans, /debug/pprof)\n", addr)
	}
	if *timingJSON != "" {
		// The artifact needs metrics and spans even without a debug server.
		obs.SetEnabled(true)
	}

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, r := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", r.ID, r.Description)
		}
		if *run == "" {
			fmt.Println("\nRun with: asqp-bench -run <id> [-fast]")
		}
		return
	}

	params := experiments.Full()
	if *fast {
		params = experiments.Fast()
	}
	if *scale > 0 {
		params.Scale = *scale
	}
	if *seeds > 0 {
		params.Seeds = *seeds
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	params.Parallelism = *parallelism

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.Registry()
	} else {
		r, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	var timings []experimentTiming
	for _, r := range runners {
		fmt.Printf("# %s — %s\n", r.ID, r.Description)
		start := time.Now()
		// The experiment runners take no context, so the timeout is a
		// watchdog: a run that exceeds it fails loudly with the experiment
		// named, instead of hanging a CI job until its global kill.
		var watchdog *time.Timer
		if *expTimeout > 0 {
			id := r.ID
			watchdog = time.AfterFunc(*expTimeout, func() {
				fmt.Fprintf(os.Stderr, "asqp-bench: experiment %s exceeded -train-timeout %s\n", id, *expTimeout)
				os.Exit(2)
			})
		}
		tables, err := r.Run(params)
		if watchdog != nil {
			watchdog.Stop()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println()
			t.Render(os.Stdout)
		}
		elapsed := time.Since(start)
		timings = append(timings, experimentTiming{ID: r.ID, Seconds: elapsed.Seconds()})
		fmt.Printf("\n(%s completed in %s)\n\n", r.ID, elapsed.Round(time.Millisecond))
	}

	if *timingJSON != "" {
		if err := writeTimingArtifact(*timingJSON, *fast, params, timings); err != nil {
			fmt.Fprintln(os.Stderr, "asqp-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("timing artifact written to %s\n", *timingJSON)
	}
}

// writeTimingArtifact dumps experiment durations plus the observability
// state (metrics snapshot, span trees) as indented JSON.
func writeTimingArtifact(path string, fast bool, params experiments.Params, timings []experimentTiming) error {
	art := timingArtifact{
		GeneratedAt: time.Now().UTC(),
		Fast:        fast,
		Params:      params,
		Experiments: timings,
		Metrics:     obs.Default().Snapshot(),
		Spans:       obs.RecentSpans(),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
