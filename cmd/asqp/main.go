// Command asqp is the end-to-end ASQP-RL tool: it loads a database (CSV
// files or a built-in synthetic dataset), trains an approximation set from a
// workload file (or a generated workload), and then answers queries against
// it — falling back to the full database when the answerability estimator
// says the approximation set cannot serve a query.
//
// Usage:
//
//	# Train on the synthetic IMDB dataset with a generated workload and
//	# answer two queries:
//	asqp -dataset imdb -scale 0.1 -k 500 \
//	     -query "SELECT * FROM title WHERE genre = 'drama' AND rating > 7" \
//	     -query "SELECT name FROM name WHERE birth_year > 1990"
//
//	# Load CSVs from a directory and a workload file (one query per line):
//	asqp -data ./data -workload queries.sql -k 1000 -query "..."
//
//	# Observability: serve metrics, span trees and pprof while training and
//	# emit structured logs (see the Observability section of README.md):
//	asqp -dataset imdb -debug-addr localhost:6060 -log info -query "..."
//
//	# Robustness: bound training time and per-query cost; queries that trip
//	# a guard return a typed error or a result marked "degraded":
//	asqp -dataset imdb -train-timeout 2m -query-timeout 500ms -max-rows 10000 \
//	     -query "SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/obs"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	dataset := flag.String("dataset", "", "built-in dataset: imdb, mas or flights")
	scale := flag.Float64("scale", 0.1, "synthetic dataset scale")
	dataDir := flag.String("data", "", "directory of CSV tables (alternative to -dataset)")
	workloadFile := flag.String("workload", "", "file with one SQL query per line (omit to generate)")
	k := flag.Int("k", 1000, "memory budget: tuples in the approximation set")
	frame := flag.Int("f", 50, "frame size F")
	episodes := flag.Int("episodes", 0, "RL training episodes (0 = default)")
	light := flag.Bool("light", false, "use the ASQP-Light configuration")
	seed := flag.Int64("seed", 1, "random seed")
	saveFile := flag.String("save", "", "save the trained system to this file")
	loadFile := flag.String("load", "", "load a previously saved system instead of training")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans and /debug/pprof on this address (e.g. localhost:6060); also enables metric and span recording")
	logLevel := flag.String("log", "", "emit structured logs to stderr at this level (debug, info, warn, error)")
	trainTimeout := flag.Duration("train-timeout", 0, "wall-clock bound on training; on expiry the partially trained system is still used (0 = none)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline; an expired query returns a deadline error (0 = none)")
	maxRows := flag.Int("max-rows", 0, "per-query result-row budget; on a trip the partial rows are returned marked degraded (0 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "worker count for query execution, scoring and RL updates (0 = one per CPU, <0 = serial); results are identical for every setting")
	traceDir := flag.String("trace-dir", "", "export tail-sampled query traces as rotated JSONL files in this directory (also enables tracing)")
	traceSlow := flag.Duration("trace-slow", 500*time.Millisecond, "latency above which a trace counts as slow and is always kept")
	var queries queryList
	flag.Var(&queries, "query", "query to answer after training (repeatable)")
	flag.Parse()

	if *logLevel != "" {
		obs.EnableLogging(os.Stderr, obs.ParseLevel(*logLevel))
	}
	if *debugAddr != "" {
		addr, err := obs.Serve(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on http://%s (/metrics, /spans, /tracez, /debug/pprof)\n", addr)
	}
	var exporter *obs.JSONLExporter
	if *traceDir != "" {
		var err error
		exporter, err = obs.NewJSONLExporter(*traceDir, 0, 0)
		if err != nil {
			fatal(err)
		}
		// Batch CLI traces are few and all interesting: keep everything.
		obs.ConfigureTracing(obs.TracingConfig{SampleRate: 1, SlowThreshold: *traceSlow, Exporter: exporter})
		defer func() {
			obs.DisableTracing()
			if err := exporter.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "asqp: trace export:", err)
			}
		}()
	}

	db, err := loadDB(*dataset, *dataDir, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("database: %d tables, %d tuples\n", len(db.TableNames()), db.TotalRows())

	var sys *core.System
	if *loadFile != "" {
		sys, err = core.LoadFile(db, *loadFile)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded system from %s: approximation set of %d tuples\n",
			*loadFile, sys.Set().Size())
	} else {
		w, err := loadWorkload(*workloadFile, db, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload: %d queries\n", len(w))

		cfg := core.DefaultConfig()
		if *light {
			cfg = core.LightConfig()
		}
		cfg.K = *k
		cfg.F = *frame
		cfg.Seed = *seed
		if *episodes > 0 {
			cfg.Episodes = *episodes
		}
		// Training results are worker-count-invariant (episode seeds are
		// pre-derived and gradient blocks merge in index order), so the flag
		// only changes wall-clock time — but the batch size defaults to the
		// worker count, so pin it first or the override would change the
		// training trajectory.
		cfg.Parallelism = *parallelism
		if cfg.RL.EpisodesPerIteration <= 0 {
			cfg.RL.EpisodesPerIteration = cfg.RL.Workers
		}
		switch {
		case *parallelism > 0:
			cfg.RL.Workers = *parallelism
		case *parallelism == 0:
			cfg.RL.Workers = runtime.NumCPU()
		default:
			cfg.RL.Workers = 1
		}

		ctx := context.Background()
		if *trainTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *trainTimeout)
			defer cancel()
		}
		start := time.Now()
		sys, err = core.TrainContext(ctx, db, w, cfg)
		if err != nil {
			fatal(err)
		}
		stats := sys.Stats()
		fmt.Printf("trained in %s (preprocess %s, RL %s): approximation set of %d tuples, %d representatives, %d actions\n",
			time.Since(start).Round(time.Millisecond),
			stats.PreprocessTime.Round(time.Millisecond),
			stats.TrainTime.Round(time.Millisecond),
			stats.SetSize, stats.Representatives, stats.Candidates)
		if stats.RL.Canceled {
			fmt.Println("note: training stopped at the -train-timeout; the set was built from the partially trained agent")
		}
		if stats.RL.Recoveries > 0 {
			fmt.Printf("note: the divergence watchdog rolled training back %d time(s)\n", stats.RL.Recoveries)
		}

		if trainScore, err := sys.ScoreOn(w); err == nil {
			fmt.Printf("training-workload score: %.3f\n", trainScore)
		}
	}

	if *saveFile != "" {
		// Atomic: a crash mid-save leaves any previous snapshot intact.
		if err := sys.SaveFile(*saveFile); err != nil {
			fatal(err)
		}
		fmt.Printf("saved system to %s\n", *saveFile)
	}

	qopts := core.QueryOptions{Timeout: *queryTimeout, MaxRows: *maxRows}
	for _, q := range queries {
		fmt.Printf("\n> %s\n", q)
		start := time.Now()
		res, err := sys.QueryContext(context.Background(), q, qopts)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		source := "approximation set"
		if !res.FromApproximation {
			source = "full database (estimator fallback)"
		}
		if res.Degraded {
			source += fmt.Sprintf(" [degraded: %s]", res.DegradedReason)
		}
		fmt.Printf("  %d rows in %s from %s (predicted score %.2f, confidence %.2f)\n",
			res.Table.NumRows(), time.Since(start).Round(time.Microsecond), source,
			res.PredictedScore, res.Confidence)
		limit := 5
		if res.Table.NumRows() < limit {
			limit = res.Table.NumRows()
		}
		for i := 0; i < limit; i++ {
			cells := make([]string, len(res.Table.Rows[i]))
			for j, v := range res.Table.Rows[i] {
				cells[j] = v.String()
			}
			fmt.Printf("  | %s\n", strings.Join(cells, " | "))
		}
		if res.Table.NumRows() > limit {
			fmt.Printf("  ... (%d more rows)\n", res.Table.NumRows()-limit)
		}
		if res.DriftTriggered {
			fmt.Println("  [interest drift detected — consider fine-tuning]")
		}
	}

	if *debugAddr != "" {
		fmt.Println("\ndebug server still running; press Ctrl-C to exit")
		select {}
	}
}

func loadDB(dataset, dataDir string, scale float64, seed int64) (*table.Database, error) {
	switch {
	case dataDir != "":
		entries, err := filepath.Glob(filepath.Join(dataDir, "*.csv"))
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("no CSV files in %s", dataDir)
		}
		db := table.NewDatabase()
		for _, path := range entries {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			t, err := table.ReadCSV(name, bufio.NewReader(f))
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			db.Add(t)
		}
		return db, nil
	case dataset == "imdb" || dataset == "":
		return datagen.IMDB(scale, seed), nil
	case dataset == "mas":
		return datagen.MAS(scale, seed), nil
	case dataset == "flights":
		return datagen.Flights(scale, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func loadWorkload(path string, db *table.Database, seed int64) (workload.Workload, error) {
	if path == "" {
		// No workload given: generate one from database statistics
		// (Section 4.5 of the paper).
		return core.GenerateWorkload(db, core.GenOptions{N: 30, Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sqls []string
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		sqls = append(sqls, line)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return workload.New(sqls...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asqp:", err)
	os.Exit(1)
}
