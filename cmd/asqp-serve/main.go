// Command asqp-serve runs the hardened ASQP-RL query service: an HTTP/JSON
// front door over a trained system, with admission control, load shedding, a
// circuit breaker around the full-database fallback, and graceful drain on
// SIGTERM/SIGINT.
//
// The server starts listening immediately — /healthz answers at once, while
// /readyz stays 503 until the system (loaded from a -load snapshot or trained
// from scratch) is attached. Queries then flow through:
//
//	POST /query   {"sql": "...", "timeout_ms": 500, "max_rows": 1000}
//	GET  /query?q=SELECT...&timeout_ms=500
//	GET  /stats, /healthz, /readyz, /qualityz, /retrainz
//
// Usage:
//
//	# Train on the synthetic IMDB dataset and serve:
//	asqp-serve -dataset imdb -scale 0.1 -k 500 -addr localhost:8080
//
//	# Serve a previously trained snapshot with tight limits:
//	asqp-serve -dataset imdb -load sys.bin -max-inflight 16 -queue 32 \
//	    -query-timeout 300ms -drain-timeout 5s -debug-addr localhost:6060
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/obs"
	"asqprl/internal/retrain"
	"asqprl/internal/server"
	"asqprl/internal/slo"
	"asqprl/internal/table"
	"asqprl/internal/wal"
	"asqprl/internal/workload"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "serve address")
	dataset := flag.String("dataset", "imdb", "built-in dataset: imdb, mas or flights")
	scale := flag.Float64("scale", 0.1, "synthetic dataset scale")
	dataDir := flag.String("data", "", "directory of CSV tables (alternative to -dataset)")
	workloadFile := flag.String("workload", "", "file with one SQL query per line (omit to generate)")
	k := flag.Int("k", 1000, "memory budget: tuples in the approximation set")
	frame := flag.Int("f", 50, "frame size F")
	light := flag.Bool("light", false, "use the ASQP-Light configuration")
	seed := flag.Int64("seed", 1, "random seed")
	loadFile := flag.String("load", "", "load a trained system snapshot instead of training")
	saveFile := flag.String("save", "", "save the trained system to this file (atomic rename)")
	maxInFlight := flag.Int("max-inflight", 0, "queries executing concurrently (0 = 2x CPUs)")
	queue := flag.Int("queue", 0, "admitted requests that may wait for a slot (0 = max-inflight)")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "default per-query deadline")
	maxRows := flag.Int("max-rows", 0, "per-query result-row cap (0 = 100000)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries")
	breakerTrips := flag.Int("breaker-trips", 5, "consecutive full-DB guard trips that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 500*time.Millisecond, "initial breaker open duration (doubles per failed probe)")
	parallelism := flag.Int("parallelism", 0, "per-query execution workers (0 = one per CPU, <0 = serial)")
	rowEngine := flag.Bool("row-engine", false, "serve queries with the legacy row-at-a-time engine instead of the columnar one (results are identical; escape hatch / A-B measurement)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /spans, /tracez and /debug/pprof on this address")
	logLevel := flag.String("log", "info", "structured log level on stderr (debug, info, warn, error, off)")
	traceDir := flag.String("trace-dir", "", "export tail-sampled traces as rotated JSONL files in this directory")
	traceSample := flag.Float64("trace-sample", 0.01, "fraction of healthy traces kept by the tail sampler (errors, degraded and slow traces are always kept)")
	traceSlow := flag.Duration("trace-slow", 500*time.Millisecond, "latency above which a trace counts as slow and is always kept")
	auditSample := flag.Float64("audit-sample", 0, "fraction of approx-served/degraded answers shadow-audited against the full database (0 = off)")
	auditWorkers := flag.Int("audit-workers", 1, "low-priority audit worker pool size")
	qualitySLOOld := flag.Float64("quality-slo-p95", 0, "deprecated alias for -slo-quality-p95")
	sloQuality := flag.Float64("slo-quality-p95", 0, "quality SLO: p95 relative-error target for shadow-audited answers; burn-rate alerting on the 0.95 objective (0 = off)")
	sloLatency := flag.Duration("slo-latency-p99", 0, "latency SLO: p99 request-latency target; burn-rate alerting on the 0.99 objective (0 = off)")
	sloAvail := flag.Float64("slo-availability", 0, "availability SLO objective in (0,1), e.g. 0.999: fraction of requests answered without degradation/error/shedding (0 = off)")
	sloWindows := flag.String("slo-windows", "", "burn-rate windows fast-short,fast-long,slow-short,slow-long (default 1m,5m,30m,6h)")
	diagDir := flag.String("diag-dir", "", "flight-recorder directory: capture a diagnostic bundle on SLO fast-burn or /debugz?capture=1 (empty = off)")
	diagMinInterval := flag.Duration("diag-min-interval", time.Minute, "rate limit between unforced flight-recorder captures")
	driftObserve := flag.Bool("drift-observe", true, "feed served queries into the interest-drift detector")
	driftConfidence := flag.Float64("drift-confidence", 0, "deviation confidence (1 - similarity) above which a served query counts as drifted (0 = config default)")
	driftCount := flag.Int("drift-count", 0, "drifted queries that trigger fine-tuning/retraining (0 = config default)")
	retrainOn := flag.Bool("retrain", false, "enable drift-triggered background retraining with validated hot-swap and rollback")
	retrainInterval := flag.Duration("retrain-interval", 2*time.Second, "how often the retrain controller polls the drift detector")
	retrainTimeout := flag.Duration("retrain-timeout", 5*time.Minute, "hard deadline for one retrain attempt (clone + fine-tune + validate)")
	retrainMargin := flag.Float64("retrain-validate-margin", 0.05, "how much worse the candidate may score than the incumbent and still swap in")
	retrainRollback := flag.Duration("retrain-rollback-window", 30*time.Second, "how long the old system is retained after a swap for automatic rollback")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: durably record served/drift/retrain events and replay them on startup (empty = durability off)")
	walSegBytes := flag.Int64("wal-segment-bytes", 4<<20, "WAL segment rotation threshold in bytes")
	walNoGroup := flag.Bool("wal-no-group-commit", false, "fsync every durable WAL append individually instead of sharing group commits")
	flag.Parse()

	if *logLevel != "" && *logLevel != "off" {
		obs.EnableLogging(os.Stderr, obs.ParseLevel(*logLevel))
	}
	obs.SetEnabled(true)

	// -quality-slo-p95 is the pre-SLO-engine spelling; it keeps working but
	// -slo-quality-p95 wins when both are set.
	if *qualitySLOOld > 0 {
		fmt.Fprintln(os.Stderr, "asqp-serve: -quality-slo-p95 is deprecated; use -slo-quality-p95")
		if *sloQuality == 0 {
			*sloQuality = *qualitySLOOld
		}
	}
	windows, err := parseSLOWindows(*sloWindows)
	if err != nil {
		fatal(err)
	}

	// Process vitals (goroutines, heap, GC pauses, uptime) ride the same
	// registry as application metrics: windowed, scraped, bundled.
	runtimeSampler := obs.NewRuntimeSampler(obs.Default(), 10*time.Second)
	runtimeSampler.Start()
	defer runtimeSampler.Close()

	// Tracing is always configured for the serving binary: the tail sampler
	// keeps every error/degraded/slow trace in memory for /tracez, and
	// -trace-dir additionally persists them as rotated JSONL.
	var exporter *obs.JSONLExporter
	if *traceDir != "" {
		var err error
		exporter, err = obs.NewJSONLExporter(*traceDir, 0, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exporting traces to %s\n", exporter.Dir())
	}
	tracingCfg := obs.TracingConfig{
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
	}
	// Only set the sink when an exporter exists: assigning the nil
	// *JSONLExporter directly would store a typed-nil interface that passes
	// the sampler's != nil check and panic on the first kept trace.
	if exporter != nil {
		tracingCfg.Exporter = exporter
	}
	obs.ConfigureTracing(tracingCfg)

	var debug *obs.DebugServer
	if *debugAddr != "" {
		var err error
		debug, err = obs.StartDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("debug server on http://%s (/metrics, /spans, /tracez, /debug/pprof)\n", debug.Addr())
	}

	// Startup hygiene: a crash between SaveFile's temp-write and rename
	// leaves orphaned `<snapshot>.tmp-*` files that are never live data.
	if *saveFile != "" {
		if n := core.CleanSnapshotTemps(*saveFile); n > 0 {
			fmt.Printf("startup hygiene: removed %d orphaned snapshot temp file(s)\n", n)
		}
	}
	// Open the WAL before the server exists: Open performs the disk-side
	// recovery (torn-tail truncation, corrupt-frame skipping, stale-segment
	// removal) and hands back the tail to replay once the system is built.
	var (
		wlog *wal.Log
		wrec wal.Recovery
	)
	if *walDir != "" {
		var werr error
		wlog, wrec, werr = wal.Open(*walDir, wal.Options{
			SegmentBytes:       *walSegBytes,
			DisableGroupCommit: *walNoGroup,
		})
		if werr != nil {
			fatal(werr)
		}
		fmt.Printf("wal: %s (%d segments scanned, %d frames to replay, %d dropped, %d torn bytes truncated)\n",
			*walDir, wrec.Stats.Segments, wrec.Stats.FramesReplayed, wrec.Stats.FramesDropped, wrec.Stats.TruncatedBytes)
	}

	srv := server.New(nil, server.Config{
		Addr:            *addr,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queue,
		DefaultTimeout:  *queryTimeout,
		MaxRows:         *maxRows,
		DrainTimeout:    *drainTimeout,
		BreakerTrips:    *breakerTrips,
		BreakerCooldown: *breakerCooldown,
		Seed:            *seed,
		AuditSample:     *auditSample,
		AuditWorkers:    *auditWorkers,
		QualitySLOP95:   *sloQuality,
		DriftObserve:    *driftObserve,
		SLOAvailability: *sloAvail,
		SLOLatencyP99:   *sloLatency,
		SLOQualityP95:   *sloQuality,
		SLOWindows:      windows,
		DiagDir:         *diagDir,
		DiagMinInterval: *diagMinInterval,
		Retrain: retrain.Config{
			Enabled:        *retrainOn,
			Interval:       *retrainInterval,
			Timeout:        *retrainTimeout,
			ValidateMargin: *retrainMargin,
			RollbackWindow: *retrainRollback,
			// With -save set, the retrained candidate replaces the snapshot via
			// the same atomic-rename path before every swap (and the incumbent
			// re-replaces it after a rollback), so a crash at any moment
			// restarts with a consistent, current approximation set.
			SnapshotPath: *saveFile,
			Seed:         *seed,
		},
		WAL: wlog,
	})
	if wlog != nil {
		// /readyz stays 503 "recovering" until the tail is replayed into the
		// freshly built system — a probe can never see a half-restored server.
		srv.BeginRecovery()
	}
	bound, err := srv.Start()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving on http://%s (/query, /healthz, /readyz, /stats, /qualityz, /retrainz, /sloz, /debugz); not ready until the system loads\n", bound)
	if *auditSample > 0 {
		fmt.Printf("shadow auditing %.0f%% of approx-served answers (workers=%d, slo-p95=%g)\n",
			*auditSample*100, *auditWorkers, *sloQuality)
	}
	if *sloAvail > 0 || *sloLatency > 0 || *sloQuality > 0 {
		fmt.Printf("slo engine armed (availability=%g, latency-p99=%s, quality-p95=%g)\n",
			*sloAvail, *sloLatency, *sloQuality)
	}
	if *diagDir != "" {
		fmt.Printf("flight recorder armed: bundles in %s on SLO fast-burn or /debugz?capture=1\n", *diagDir)
	}
	if *retrainOn {
		fmt.Printf("background retraining armed (margin=%g, attempt timeout=%s, rollback window=%s)\n",
			*retrainMargin, *retrainTimeout, *retrainRollback)
	}

	// Drain on SIGTERM/SIGINT: stop admitting, wait for in-flight queries up
	// to -drain-timeout, then cancel them. A second signal aborts the wait.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	sys, err := buildSystem(ctx, *dataset, *dataDir, *workloadFile, *loadFile, *scale, *seed, *k, *frame, *light, *parallelism, *rowEngine, *driftConfidence, *driftCount)
	if err != nil {
		fatal(err)
	}
	// Apply detector overrides to a -load'ed system too: its detector came
	// from the snapshot's training-time config. (Train-path overrides are
	// baked into the config inside buildSystem, so clones made by the
	// retrain controller inherit them through the snapshot.)
	if d := sys.Drift(); d != nil {
		if *driftConfidence > 0 {
			d.Confidence = *driftConfidence
		}
		if *driftCount > 0 {
			d.Count = *driftCount
		}
	}
	if *saveFile != "" {
		if err := sys.SaveFile(*saveFile); err != nil {
			fatal(err)
		}
		fmt.Printf("saved system to %s\n", *saveFile)
	}
	if wlog != nil {
		info := srv.Recover(sys, wrec)
		fmt.Printf("recovered: %d frames replayed, %d drift observations restored, %d dropped\n",
			info.FramesReplayed, info.DriftRestored, info.FramesDropped)
		// With nothing replayed and a fresh snapshot on disk, the log's old
		// history is dead weight: checkpoint now so segments from previous
		// runs are pruned. With a replayed tail we must NOT checkpoint — the
		// restored drift evidence lives only in memory until a retrain
		// consumes it and persists, and truncating the log here would lose it
		// on the next crash.
		if len(wrec.Tail) == 0 && *saveFile != "" {
			_, gen := srv.System()
			if err := wlog.Checkpoint(gen); err != nil {
				fmt.Fprintln(os.Stderr, "asqp-serve: initial wal checkpoint:", err)
			}
		}
	} else {
		srv.SetSystem(sys)
	}
	fmt.Printf("ready: approximation set of %d tuples\n", sys.Set().Size())

	<-ctx.Done()
	stop() // restore default signal handling: a second ^C kills immediately
	fmt.Println("\nsignal received; draining...")
	if err := srv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "asqp-serve: drain:", err)
	}
	// Traffic is drained; seal the WAL (flush + fsync + close) so a clean
	// shutdown leaves no torn tail for the next start to repair.
	if err := wlog.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "asqp-serve: wal close:", err)
	}
	if debug != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = debug.Shutdown(shutCtx)
	}
	// Stop sampling before closing the export file so no trace races the
	// close; writes are synchronous, so everything sampled so far is on disk.
	obs.DisableTracing()
	if exporter != nil {
		if err := exporter.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "asqp-serve: trace export:", err)
		}
	}
	fmt.Println("drained; bye")
}

// buildSystem loads a snapshot or trains from scratch, honoring cancellation.
func buildSystem(ctx context.Context, dataset, dataDir, workloadFile, loadFile string, scale float64, seed int64, k, frame int, light bool, parallelism int, rowEngine bool, driftConfidence float64, driftCount int) (*core.System, error) {
	db, err := loadDB(dataset, dataDir, scale, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("database: %d tables, %d tuples\n", len(db.TableNames()), db.TotalRows())
	if loadFile != "" {
		sys, err := core.LoadFile(db, loadFile)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded system from %s\n", loadFile)
		return sys, nil
	}
	w, err := loadWorkload(workloadFile, db, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("workload: %d queries; training...\n", len(w))
	cfg := core.DefaultConfig()
	if light {
		cfg = core.LightConfig()
	}
	cfg.K = k
	cfg.F = frame
	cfg.Seed = seed
	cfg.Parallelism = parallelism
	cfg.RowEngine = rowEngine
	if driftConfidence > 0 {
		cfg.DriftConfidence = driftConfidence
	}
	if driftCount > 0 {
		cfg.DriftCount = driftCount
	}
	start := time.Now()
	sys, err := core.TrainContext(ctx, db, w, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("trained in %s\n", time.Since(start).Round(time.Millisecond))
	return sys, nil
}

func loadDB(dataset, dataDir string, scale float64, seed int64) (*table.Database, error) {
	switch {
	case dataDir != "":
		entries, err := filepath.Glob(filepath.Join(dataDir, "*.csv"))
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			return nil, fmt.Errorf("no CSV files in %s", dataDir)
		}
		db := table.NewDatabase()
		for _, path := range entries {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			t, err := table.ReadCSV(name, bufio.NewReader(f))
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			db.Add(t)
		}
		return db, nil
	case dataset == "imdb" || dataset == "":
		return datagen.IMDB(scale, seed), nil
	case dataset == "mas":
		return datagen.MAS(scale, seed), nil
	case dataset == "flights":
		return datagen.Flights(scale, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func loadWorkload(path string, db *table.Database, seed int64) (workload.Workload, error) {
	if path == "" {
		return core.GenerateWorkload(db, core.GenOptions{N: 30, Seed: seed})
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sqls []string
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		sqls = append(sqls, line)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return workload.New(sqls...)
}

// parseSLOWindows parses "fast-short,fast-long,slow-short,slow-long" (e.g.
// "1m,5m,30m,6h"); empty keeps the engine defaults.
func parseSLOWindows(s string) (slo.Windows, error) {
	var w slo.Windows
	if s == "" {
		return w, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return w, fmt.Errorf("-slo-windows wants 4 comma-separated durations, got %q", s)
	}
	for i, dst := range []*time.Duration{&w.FastShort, &w.FastLong, &w.SlowShort, &w.SlowLong} {
		d, err := time.ParseDuration(strings.TrimSpace(parts[i]))
		if err != nil || d <= 0 {
			return w, fmt.Errorf("-slo-windows element %d (%q): need a positive duration", i+1, parts[i])
		}
		*dst = d
	}
	return w, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asqp-serve:", err)
	os.Exit(1)
}
