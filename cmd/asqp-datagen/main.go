// Command asqp-datagen emits the synthetic benchmark datasets as CSV files,
// one file per table, into the chosen directory.
//
// Usage:
//
//	asqp-datagen -dataset imdb -scale 0.1 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"asqprl/internal/datagen"
	"asqprl/internal/table"
)

func main() {
	dataset := flag.String("dataset", "imdb", "dataset: imdb, mas or flights")
	scale := flag.Float64("scale", 0.1, "scale factor (1.0 = full synthetic size)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var db *table.Database
	switch *dataset {
	case "imdb":
		db = datagen.IMDB(*scale, *seed)
	case "mas":
		db = datagen.MAS(*scale, *seed)
	case "flights":
		db = datagen.Flights(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q (want imdb, mas or flights)\n", *dataset)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range db.Tables() {
		path := filepath.Join(*out, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.NumRows())
	}
}
