// Command asqp-loadgen is a closed-loop load generator for asqp-serve: N
// concurrent clients each fire queries back-to-back at the server for a fixed
// duration, and the run's throughput, latency quantiles, and shed rate are
// printed and optionally appended as JSON to the BENCH_<date>.json history
// (same file the benchjson gate writes).
//
// Closed-loop means offered load scales with -clients relative to the
// server's -max-inflight: clients = 4x max-inflight probes the shedding
// behavior at 4x capacity.
//
// Usage:
//
//	asqp-serve -dataset imdb -light -max-inflight 8 &
//	asqp-loadgen -url http://localhost:8080 -clients 32 -duration 10s \
//	    -json BENCH_$(date +%Y%m%d).json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"asqprl/internal/obs"
)

type result struct {
	Name       string  `json:"name"`
	Clients    int     `json:"clients"`
	Duration   string  `json:"duration"`
	Requests   int64   `json:"iterations"`
	QPS        float64 `json:"qps"`
	NsPerOp    float64 `json:"ns_per_op"` // mean latency, benchjson-compatible
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	OK         int64   `json:"ok"`
	Degraded   int64   `json:"degraded"`
	Shed       int64   `json:"shed"`
	Errors     int64   `json:"errors"`
	Malformed  int64   `json:"malformed"`
	ShedRate   float64 `json:"shed_rate"`
	DegradRate float64 `json:"degraded_rate"`
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	url := flag.String("url", "http://localhost:8080", "asqp-serve base URL")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	timeoutMs := flag.Int("timeout-ms", 0, "per-query timeout_ms sent to the server (0 = server default)")
	jsonOut := flag.String("json", "", "append the run's JSON record to this file (e.g. BENCH_<date>.json)")
	label := flag.String("label", "LoadgenServe", "benchmark name recorded in the JSON output")
	trace := flag.Bool("traceparent", true, "send a W3C traceparent header per request and check the server echoes the trace ID")
	var queries queryList
	flag.Var(&queries, "query", "query to fire (repeatable; defaults to an IMDB mix)")
	flag.Parse()

	if len(queries) == 0 {
		queries = queryList{
			"SELECT * FROM title WHERE rating > 7",
			"SELECT name FROM name WHERE birth_year > 1980",
			"SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.rating > 8",
		}
	}

	// Wait for readiness so training time is not billed as latency.
	if err := waitReady(*url, 5*time.Minute); err != nil {
		fatal(err)
	}

	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds
		res       = result{Name: fmt.Sprintf("%s/clients=%d", *label, *clients), Clients: *clients}
	)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				sql := queries[(id+i)%len(queries)]
				// Each request carries its own W3C trace identity; a traced
				// server must echo the same trace ID back, so a mismatch is a
				// correctness failure, not a formatting nit.
				var traceparent string
				var tid obs.TraceID
				if *trace {
					tid = obs.NewTraceID()
					traceparent = obs.FormatTraceparent(tid, obs.NewSpanID(), true)
				}
				t0 := time.Now()
				status, body, err := post(client, *url+"/query", sql, *timeoutMs, traceparent)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				res.Requests++
				latencies = append(latencies, ms)
				switch {
				case err != nil:
					res.Errors++
				case !json.Valid(body):
					res.Malformed++
				case traceparent != "" && !traceIDMatches(body, tid):
					res.Malformed++
				case status == http.StatusOK:
					res.OK++
					if bytes.Contains(body, []byte(`"degraded":true`)) {
						res.Degraded++
					}
				case status == http.StatusServiceUnavailable:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	res.Duration = elapsed.Round(time.Millisecond).String()
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.NsPerOp = sum / float64(len(latencies)) * 1e6
		res.P50Ms = quantile(latencies, 0.50)
		res.P99Ms = quantile(latencies, 0.99)
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
		res.DegradRate = float64(res.Degraded) / float64(res.Requests)
	}

	fmt.Printf("%s: %d requests in %s (%.1f qps)\n", res.Name, res.Requests, res.Duration, res.QPS)
	fmt.Printf("  latency: mean %.2fms  p50 %.2fms  p99 %.2fms\n", res.NsPerOp/1e6, res.P50Ms, res.P99Ms)
	fmt.Printf("  ok %d (degraded %d), shed %d (%.1f%%), errors %d, malformed %d\n",
		res.OK, res.Degraded, res.Shed, 100*res.ShedRate, res.Errors, res.Malformed)
	if res.Malformed > 0 {
		fatal(fmt.Errorf("%d malformed (non-JSON) responses", res.Malformed))
	}

	if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]result{res}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("appended JSON record to %s\n", *jsonOut)
	}
}

func post(client *http.Client, url, sql string, timeoutMs int, traceparent string) (int, []byte, error) {
	req := map[string]any{"sql": sql}
	if timeoutMs > 0 {
		req["timeout_ms"] = timeoutMs
	}
	payload, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	return resp.StatusCode, body, err
}

// traceIDMatches checks that a response either omits trace_id (tracing off
// server-side) or echoes exactly the trace ID this request was sent under.
func traceIDMatches(body []byte, tid obs.TraceID) bool {
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return false
	}
	return resp.TraceID == "" || resp.TraceID == tid.String()
}

func waitReady(base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", base, patience)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// quantile returns the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asqp-loadgen:", err)
	os.Exit(1)
}
