// Command asqp-loadgen is a closed-loop load generator for asqp-serve: N
// concurrent clients each fire queries back-to-back at the server for a fixed
// duration, and the run's throughput, latency quantiles, and shed rate are
// printed and optionally appended as JSON to the BENCH_<date>.json history
// (same file the benchjson gate writes).
//
// Closed-loop means offered load scales with -clients relative to the
// server's -max-inflight: clients = 4x max-inflight probes the shedding
// behavior at 4x capacity.
//
// Usage:
//
//	asqp-serve -dataset imdb -light -max-inflight 8 &
//	asqp-loadgen -url http://localhost:8080 -clients 32 -duration 10s \
//	    -json BENCH_$(date +%Y%m%d).json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"asqprl/internal/obs"
)

type result struct {
	Name       string  `json:"name"`
	Clients    int     `json:"clients"`
	Duration   string  `json:"duration"`
	Requests   int64   `json:"iterations"`
	QPS        float64 `json:"qps"`
	NsPerOp    float64 `json:"ns_per_op"` // mean latency, benchjson-compatible
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	OK         int64   `json:"ok"`
	Degraded   int64   `json:"degraded"`
	Shed       int64   `json:"shed"`
	Errors     int64   `json:"errors"`
	Malformed  int64   `json:"malformed"`
	ShedRate   float64 `json:"shed_rate"`
	DegradRate float64 `json:"degraded_rate"`
	// WithObservedError counts OK responses carrying a well-formed
	// observed_error field (present only when the server shadow-audits).
	WithObservedError int64 `json:"with_observed_error,omitempty"`
	// RetrainSwaps and Generation record the drift-storm outcome: how many
	// hot swaps the server's retrain controller completed and which system
	// generation was serving when the run ended.
	RetrainSwaps int64 `json:"retrain_swaps,omitempty"`
	Generation   int64 `json:"generation,omitempty"`
	// RecoveryFramesReplayed and RecoveryDriftRestored record the
	// -expect-recovery outcome: what the server's startup WAL replay
	// reported in /stats.
	RecoveryFramesReplayed int64 `json:"recovery_frames_replayed,omitempty"`
	RecoveryDriftRestored  int64 `json:"recovery_drift_restored,omitempty"`
	// SLOFastBurn and DiagBundles record the slo-burn outcome: which SLO hit
	// fast_burn and how many flight-recorder bundles exist afterwards.
	SLOFastBurn string `json:"slo_fast_burn,omitempty"`
	DiagBundles int64  `json:"diag_bundles,omitempty"`
}

type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }
func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	url := flag.String("url", "http://localhost:8080", "asqp-serve base URL")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	timeoutMs := flag.Int("timeout-ms", 0, "per-query timeout_ms sent to the server (0 = server default)")
	jsonOut := flag.String("json", "", "append the run's JSON record to this file (e.g. BENCH_<date>.json)")
	label := flag.String("label", "LoadgenServe", "benchmark name recorded in the JSON output")
	trace := flag.Bool("traceparent", true, "send a W3C traceparent header per request and check the server echoes the trace ID")
	quality := flag.Bool("quality", false, "after the run, fetch /qualityz and fail unless the audit block is well-formed")
	scenario := flag.String("scenario", "", "traffic scenario: empty (steady mix), drift-storm (shift the query mix mid-run, then require a completed retrain or clean backoff), or slo-burn (steady traffic against an impossible latency target; require a fast_burn on /sloz plus a flight-recorder bundle)")
	retrainWait := flag.Duration("retrain-wait", 45*time.Second, "drift-storm: how long to wait after the run for the server's retrain to reach a terminal state")
	sloGate := flag.Bool("slo-gate", false, "after the run, fetch /sloz and fail unless the page is well-formed and no SLO is fast-burning")
	sloBurnWait := flag.Duration("slo-burn-wait", 30*time.Second, "slo-burn: how long to wait for fast_burn and a captured bundle after the run")
	expectRecovery := flag.Bool("expect-recovery", false, "require the server's /stats to report a completed WAL recovery with replayed frames (kill-and-restart smoke)")
	var queries queryList
	flag.Var(&queries, "query", "query to fire (repeatable; defaults to an IMDB mix)")
	flag.Parse()

	if *scenario != "" && *scenario != "drift-storm" && *scenario != "slo-burn" {
		fatal(fmt.Errorf("unknown scenario %q (want drift-storm or slo-burn)", *scenario))
	}
	if len(queries) == 0 {
		queries = queryList{
			"SELECT * FROM title WHERE rating > 7",
			"SELECT name FROM name WHERE birth_year > 1980",
			"SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.rating > 8",
		}
	}
	// The drift-storm second-half mix: queries far from the typical training
	// workload, so the server's estimator sees low similarity and the drift
	// detector accumulates evidence (Section 4.4's interest shift, compressed
	// into one run).
	driftQueries := queryList{
		"SELECT * FROM name WHERE birth_year > 1985",
		"SELECT * FROM name WHERE birth_year < 1890",
		"SELECT name, birth_year FROM name WHERE birth_year > 1970",
	}

	// Wait for readiness so training time is not billed as latency.
	if err := waitReady(*url, 5*time.Minute); err != nil {
		fatal(err)
	}

	var recFrames, recDrift int64
	if *expectRecovery {
		var err error
		recFrames, recDrift, err = checkRecovery(&http.Client{Timeout: 10 * time.Second}, *url)
		if err != nil {
			fatal(err)
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds
		res       = result{Name: fmt.Sprintf("%s/clients=%d", *label, *clients), Clients: *clients}
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline := start.Add(*duration)
	storm := start.Add(*duration / 2) // drift-storm: the mix shifts here
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				mix := queries
				if *scenario == "drift-storm" && time.Now().After(storm) {
					mix = driftQueries
				}
				sql := mix[(id+i)%len(mix)]
				// Each request carries its own W3C trace identity; a traced
				// server must echo the same trace ID back, so a mismatch is a
				// correctness failure, not a formatting nit.
				var traceparent string
				var tid obs.TraceID
				if *trace {
					tid = obs.NewTraceID()
					traceparent = obs.FormatTraceparent(tid, obs.NewSpanID(), true)
				}
				t0 := time.Now()
				status, body, err := post(client, *url+"/query", sql, *timeoutMs, traceparent)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				res.Requests++
				latencies = append(latencies, ms)
				switch {
				case err != nil:
					res.Errors++
				case !json.Valid(body):
					res.Malformed++
				case traceparent != "" && !traceIDMatches(body, tid):
					res.Malformed++
				case !observedErrorWellFormed(body):
					res.Malformed++
				case status == http.StatusOK:
					res.OK++
					if bytes.Contains(body, []byte(`"degraded":true`)) {
						res.Degraded++
					}
					if bytes.Contains(body, []byte(`"observed_error"`)) {
						res.WithObservedError++
					}
				case status == http.StatusServiceUnavailable:
					res.Shed++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	res.Duration = elapsed.Round(time.Millisecond).String()
	res.QPS = float64(res.Requests) / elapsed.Seconds()
	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.NsPerOp = sum / float64(len(latencies)) * 1e6
		res.P50Ms = quantile(latencies, 0.50)
		res.P99Ms = quantile(latencies, 0.99)
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
		res.DegradRate = float64(res.Degraded) / float64(res.Requests)
	}

	fmt.Printf("%s: %d requests in %s (%.1f qps)\n", res.Name, res.Requests, res.Duration, res.QPS)
	fmt.Printf("  latency: mean %.2fms  p50 %.2fms  p99 %.2fms\n", res.NsPerOp/1e6, res.P50Ms, res.P99Ms)
	fmt.Printf("  ok %d (degraded %d), shed %d (%.1f%%), errors %d, malformed %d\n",
		res.OK, res.Degraded, res.Shed, 100*res.ShedRate, res.Errors, res.Malformed)
	if res.WithObservedError > 0 {
		fmt.Printf("  observed_error present on %d responses\n", res.WithObservedError)
	}
	if res.Malformed > 0 {
		fatal(fmt.Errorf("%d malformed responses (invalid JSON, trace mismatch, or bad observed_error)", res.Malformed))
	}
	if *quality {
		if err := checkQuality(client, *url); err != nil {
			fatal(err)
		}
	}
	if *scenario == "drift-storm" {
		swaps, gen, err := checkRetrain(client, *url, *retrainWait)
		if err != nil {
			fatal(err)
		}
		res.RetrainSwaps = swaps
		res.Generation = gen
	}
	if *scenario == "slo-burn" {
		burning, bundles, err := checkSLOBurn(client, *url, *sloBurnWait)
		if err != nil {
			fatal(err)
		}
		res.SLOFastBurn = burning
		res.DiagBundles = bundles
	}
	if *sloGate {
		if err := checkSLOGate(client, *url); err != nil {
			fatal(err)
		}
	}
	if *expectRecovery {
		res.RecoveryFramesReplayed = recFrames
		res.RecoveryDriftRestored = recDrift
	}

	if *jsonOut != "" {
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]result{res}); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("appended JSON record to %s\n", *jsonOut)
	}
}

func post(client *http.Client, url, sql string, timeoutMs int, traceparent string) (int, []byte, error) {
	req := map[string]any{"sql": sql}
	if timeoutMs > 0 {
		req["timeout_ms"] = timeoutMs
	}
	payload, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	return resp.StatusCode, body, err
}

// observedErrorWellFormed checks that a response either omits observed_error
// (no audit evidence yet, or auditing off) or carries a finite value in
// [0, 1] — relative error is a fraction by construction, so anything else is
// a server bug.
func observedErrorWellFormed(body []byte) bool {
	if !bytes.Contains(body, []byte(`"observed_error"`)) {
		return true
	}
	var resp struct {
		ObservedError *float64 `json:"observed_error"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.ObservedError == nil {
		return false
	}
	v := *resp.ObservedError
	return v >= 0 && v <= 1
}

// checkQuality fetches /qualityz and validates the audit block: counters
// non-negative and consistent, coverage and error quantiles in [0, 1], and
// each shape's quantiles ordered p50 ≤ p95 ≤ max. It is the e2e guard that
// the quality surface stays well-formed under real traffic.
func checkQuality(client *http.Client, base string) error {
	resp, err := client.Get(base + "/qualityz")
	if err != nil {
		return fmt.Errorf("/qualityz: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return fmt.Errorf("/qualityz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/qualityz: HTTP %d", resp.StatusCode)
	}
	var page struct {
		Audit struct {
			Enabled   bool    `json:"enabled"`
			Eligible  int64   `json:"eligible"`
			Sampled   int64   `json:"sampled"`
			Completed int64   `json:"completed"`
			Failed    int64   `json:"failed"`
			Coverage  float64 `json:"coverage"`
			ErrorP50  float64 `json:"error_p50"`
			ErrorP95  float64 `json:"error_p95"`
			ErrorMax  float64 `json:"error_max"`
		} `json:"audit"`
		Shapes []struct {
			Shape string  `json:"shape"`
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			Max   float64 `json:"max"`
		} `json:"shapes"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return fmt.Errorf("/qualityz: bad JSON: %w", err)
	}
	a := page.Audit
	if !a.Enabled {
		return fmt.Errorf("/qualityz: auditing not enabled on the server")
	}
	const eps = 1e-9
	switch {
	case a.Eligible < 0 || a.Sampled < 0 || a.Completed < 0 || a.Failed < 0:
		return fmt.Errorf("/qualityz: negative audit counter: %+v", a)
	case a.Sampled > a.Eligible:
		return fmt.Errorf("/qualityz: sampled %d > eligible %d", a.Sampled, a.Eligible)
	case a.Coverage < 0 || a.Coverage > 1:
		return fmt.Errorf("/qualityz: coverage %v outside [0,1]", a.Coverage)
	case a.ErrorP50 < 0 || a.ErrorP95 > 1+eps || a.ErrorP50 > a.ErrorP95+eps || a.ErrorP95 > a.ErrorMax+eps:
		return fmt.Errorf("/qualityz: inconsistent error quantiles p50=%v p95=%v max=%v", a.ErrorP50, a.ErrorP95, a.ErrorMax)
	}
	for _, sh := range page.Shapes {
		if sh.Shape == "" || sh.Count <= 0 {
			return fmt.Errorf("/qualityz: malformed shape entry %+v", sh)
		}
		if sh.P50 < 0 || sh.P50 > sh.P95+eps || sh.P95 > sh.Max+eps || sh.Max > 1+eps {
			return fmt.Errorf("/qualityz: shape %q quantiles out of order: p50=%v p95=%v max=%v", sh.Shape, sh.P50, sh.P95, sh.Max)
		}
	}
	fmt.Printf("quality: audited %d/%d eligible (coverage %.0f%%), error p50 %.3f p95 %.3f max %.3f over %d shapes\n",
		a.Completed, a.Eligible, 100*a.Coverage, a.ErrorP50, a.ErrorP95, a.ErrorMax, len(page.Shapes))
	return nil
}

// checkRetrain polls /retrainz until the server's retrain controller reaches
// a terminal outcome for the drift storm: a completed hot swap (success), or
// a clean failure path — validation reject, give-up, or armed backoff — with
// the incumbent still serving. Anything else within the wait (controller
// disabled, no drift picked up, no attempt started) fails the run: the storm
// was supposed to trip the pipeline.
func checkRetrain(client *http.Client, base string, wait time.Duration) (swaps, generation int64, err error) {
	deadline := time.Now().Add(wait)
	var page struct {
		Generation int64 `json:"generation"`
		Status     struct {
			Enabled     bool   `json:"enabled"`
			State       string `json:"state"`
			Attempts    int64  `json:"attempts"`
			Swaps       int64  `json:"swaps"`
			Rollbacks   int64  `json:"rollbacks"`
			Failures    int64  `json:"failures"`
			LastOutcome string `json:"last_outcome"`
			LastError   string `json:"last_error"`
		} `json:"status"`
	}
	for {
		resp, gerr := client.Get(base + "/retrainz")
		if gerr != nil {
			return 0, 0, fmt.Errorf("/retrainz: %w", gerr)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			return 0, 0, fmt.Errorf("/retrainz: %w", rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("/retrainz: HTTP %d: %s", resp.StatusCode, body)
		}
		if uerr := json.Unmarshal(body, &page); uerr != nil {
			return 0, 0, fmt.Errorf("/retrainz: bad JSON: %w", uerr)
		}
		st := page.Status
		if !st.Enabled {
			return 0, 0, fmt.Errorf("drift-storm needs a server started with -retrain (controller reports disabled)")
		}
		switch {
		case st.Swaps > 0:
			fmt.Printf("retrain: %d swap(s), %d rollback(s); serving generation %d (state %s)\n",
				st.Swaps, st.Rollbacks, page.Generation, st.State)
			return st.Swaps, page.Generation, nil
		case st.Failures > 0 && (st.State == "backoff" || st.LastOutcome == "gave_up"):
			// Clean backoff: attempts ran, failed validated-or-faulted, and the
			// controller is holding off — the incumbent never stopped serving.
			fmt.Printf("retrain: no swap, clean backoff after %d attempt(s) (%s: %s); still generation %d\n",
				st.Attempts, st.LastOutcome, st.LastError, page.Generation)
			return 0, page.Generation, nil
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("retrain reached no terminal state within %s: %+v", wait, st)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// checkRecovery validates the /stats recovery block after a kill-and-restart:
// the server must have gone through WAL recovery, replayed at least one frame
// (the pre-kill traffic wrote some), and report internally consistent
// counters. It returns the replayed-frame and restored-drift counts for the
// JSON record.
func checkRecovery(client *http.Client, base string) (frames, drift int64, err error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return 0, 0, fmt.Errorf("/stats: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, 0, fmt.Errorf("/stats: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("/stats: HTTP %d", resp.StatusCode)
	}
	var page struct {
		WAL *struct {
			Dir      string `json:"dir"`
			Segments int    `json:"segments"`
			Failed   string `json:"failed"`
		} `json:"wal"`
		Recovery *struct {
			Segments       int64   `json:"segments"`
			FramesReplayed int64   `json:"frames_replayed"`
			FramesDropped  int64   `json:"frames_dropped"`
			TruncatedBytes int64   `json:"truncated_bytes"`
			DriftRestored  int64   `json:"drift_restored"`
			ServedSeen     int64   `json:"served_seen"`
			WallMs         float64 `json:"wall_ms"`
		} `json:"recovery"`
		DriftedQueries int64 `json:"drifted_queries"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return 0, 0, fmt.Errorf("/stats: bad JSON: %w", err)
	}
	switch {
	case page.WAL == nil:
		return 0, 0, fmt.Errorf("expected recovery: server has no WAL (start it with -wal-dir)")
	case page.WAL.Failed != "":
		return 0, 0, fmt.Errorf("expected recovery: WAL is in failed state: %s", page.WAL.Failed)
	case page.Recovery == nil:
		return 0, 0, fmt.Errorf("expected recovery: /stats has no recovery block (server did not replay a WAL)")
	}
	r := page.Recovery
	switch {
	case r.FramesReplayed <= 0:
		return 0, 0, fmt.Errorf("expected recovery: 0 frames replayed — pre-kill traffic did not survive")
	case r.FramesDropped < 0 || r.TruncatedBytes < 0 || r.DriftRestored < 0 || r.WallMs < 0:
		return 0, 0, fmt.Errorf("expected recovery: negative recovery counter: %+v", *r)
	case r.DriftRestored > 0 && page.DriftedQueries < r.DriftRestored:
		return 0, 0, fmt.Errorf("expected recovery: restored %d drift observations but detector holds %d",
			r.DriftRestored, page.DriftedQueries)
	}
	fmt.Printf("recovery: %d segments, %d frames replayed (%d drift restored, %d served), %d dropped, %d torn bytes, %.1fms\n",
		r.Segments, r.FramesReplayed, r.DriftRestored, r.ServedSeen, r.FramesDropped, r.TruncatedBytes, r.WallMs)
	return r.FramesReplayed, r.DriftRestored, nil
}

// slozPage is the subset of /sloz the load generator validates.
type slozPage struct {
	Enabled bool `json:"enabled"`
	SLOs    []struct {
		Name           string  `json:"name"`
		Kind           string  `json:"kind"`
		State          string  `json:"state"`
		BudgetConsumed float64 `json:"budget_consumed"`
		Burns          []struct {
			Window    string  `json:"window"`
			ErrorRate float64 `json:"error_rate"`
			Burn      float64 `json:"burn"`
			Events    int64   `json:"events"`
		} `json:"burns"`
	} `json:"slos"`
	FastBurning []string `json:"fast_burning"`
}

func fetchSloz(client *http.Client, base string) (slozPage, error) {
	var page slozPage
	resp, err := client.Get(base + "/sloz")
	if err != nil {
		return page, fmt.Errorf("/sloz: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return page, fmt.Errorf("/sloz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("/sloz: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return page, fmt.Errorf("/sloz: bad JSON: %w", err)
	}
	return page, nil
}

// validateSloz checks the structural invariants of an SLO page: four burn
// windows per SLO, error rates and budget in [0,1], burns non-negative, and
// a known state label.
func validateSloz(page slozPage) error {
	if !page.Enabled {
		return fmt.Errorf("/sloz: SLO engine not enabled on the server")
	}
	known := map[string]bool{"no_data": true, "ok": true, "slow_burn": true, "fast_burn": true}
	for _, s := range page.SLOs {
		if !known[s.State] {
			return fmt.Errorf("/sloz: SLO %q has unknown state %q", s.Name, s.State)
		}
		if len(s.Burns) != 4 {
			return fmt.Errorf("/sloz: SLO %q has %d burn windows, want 4", s.Name, len(s.Burns))
		}
		if s.BudgetConsumed < 0 || s.BudgetConsumed > 1 {
			return fmt.Errorf("/sloz: SLO %q budget_consumed %v outside [0,1]", s.Name, s.BudgetConsumed)
		}
		for _, b := range s.Burns {
			if b.ErrorRate < 0 || b.ErrorRate > 1 || b.Burn < 0 || b.Events < 0 {
				return fmt.Errorf("/sloz: SLO %q window %s malformed: %+v", s.Name, b.Window, b)
			}
		}
	}
	return nil
}

// checkSLOGate passes when the SLO page is well-formed and nothing is
// fast-burning — the steady-state gate for healthy smoke runs.
func checkSLOGate(client *http.Client, base string) error {
	page, err := fetchSloz(client, base)
	if err != nil {
		return err
	}
	if err := validateSloz(page); err != nil {
		return err
	}
	for _, s := range page.SLOs {
		if s.State == "fast_burn" {
			return fmt.Errorf("slo-gate: SLO %q is fast-burning (budget %.0f%% consumed)", s.Name, 100*s.BudgetConsumed)
		}
	}
	if len(page.FastBurning) > 0 {
		return fmt.Errorf("slo-gate: fast_burning = %v", page.FastBurning)
	}
	fmt.Printf("slo-gate: %d SLO(s) healthy\n", len(page.SLOs))
	return nil
}

// checkSLOBurn is the slo-burn scenario's verdict: the run's traffic (fired
// at a server with an impossible latency target and tiny windows) must push
// some SLO into fast_burn, and the flight recorder must have captured at
// least one bundle for it.
func checkSLOBurn(client *http.Client, base string, wait time.Duration) (burning string, bundles int64, err error) {
	deadline := time.Now().Add(wait)
	for {
		page, perr := fetchSloz(client, base)
		if perr != nil {
			return "", 0, perr
		}
		if verr := validateSloz(page); verr != nil {
			return "", 0, verr
		}
		if len(page.FastBurning) > 0 {
			burning = page.FastBurning[0]
			break
		}
		if time.Now().After(deadline) {
			return "", 0, fmt.Errorf("slo-burn: no SLO reached fast_burn within %s: %+v", wait, page.SLOs)
		}
		time.Sleep(200 * time.Millisecond)
	}
	// The fast-burn transition triggers an async capture; poll /debugz for it.
	for {
		resp, derr := client.Get(base + "/debugz")
		if derr != nil {
			return "", 0, fmt.Errorf("/debugz: %w", derr)
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			return "", 0, fmt.Errorf("/debugz: %w", rerr)
		}
		var page struct {
			Enabled bool `json:"enabled"`
			Status  struct {
				Captures   int64    `json:"captures"`
				LastReason string   `json:"last_reason"`
				Bundles    []string `json:"bundles"`
			} `json:"status"`
		}
		if uerr := json.Unmarshal(body, &page); uerr != nil {
			return "", 0, fmt.Errorf("/debugz: bad JSON: %w", uerr)
		}
		if !page.Enabled {
			return "", 0, fmt.Errorf("slo-burn needs a server started with -diag-dir (flight recorder disabled)")
		}
		if page.Status.Captures > 0 {
			fmt.Printf("slo-burn: %q fast-burning; %d bundle(s) captured (last reason %q)\n",
				burning, page.Status.Captures, page.Status.LastReason)
			return burning, page.Status.Captures, nil
		}
		if time.Now().After(deadline) {
			return "", 0, fmt.Errorf("slo-burn: fast_burn reached but no bundle captured within %s", wait)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// traceIDMatches checks that a response either omits trace_id (tracing off
// server-side) or echoes exactly the trace ID this request was sent under.
func traceIDMatches(body []byte, tid obs.TraceID) bool {
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return false
	}
	return resp.TraceID == "" || resp.TraceID == tid.String()
}

func waitReady(base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			ready := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ready {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", base, patience)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// quantile returns the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asqp-loadgen:", err)
	os.Exit(1)
}
