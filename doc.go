// Package asqprl is a from-scratch Go reproduction of "Learning
// Approximation Sets for Exploratory Queries" (ASQP-RL, SIGMOD 2024):
// reinforcement-learning-selected data subsets that answer complex
// non-aggregate exploratory queries fast and accurately.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// inventory), the runnable entry points under cmd/ and examples/, and the
// benchmark harness that regenerates every table and figure of the paper's
// evaluation in bench_test.go and internal/experiments.
package asqprl
