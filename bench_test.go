package asqprl

// This file maps every table and figure of the paper's evaluation (Section
// 6) to a testing.B benchmark. Each benchmark executes the corresponding
// experiment runner from internal/experiments at smoke sizing and reports
// the headline numbers through b.ReportMetric, so `go test -bench=.` both
// regenerates the paper's artifacts and times them. Full-size runs are
// produced by `go run ./cmd/asqp-bench -run <id>`; EXPERIMENTS.md records
// paper-vs-measured values from those runs.

import (
	"strconv"
	"strings"
	"testing"

	"asqprl/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration and reports
// a headline metric parsed from the first table when available.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := experiments.Fast()
	var tables []*experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err = r.Run(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if metric, ok := headline(tables); ok {
		b.ReportMetric(metric, "headline_score")
	}
}

// headline extracts the first parseable numeric cell of the first table's
// first row (typically ASQP-RL's score).
func headline(tables []*experiments.Table) (float64, bool) {
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		return 0, false
	}
	for _, cell := range tables[0].Rows[0] {
		if v, ok := parseHeadlineCell(cell); ok {
			return v, true
		}
	}
	return 0, false
}

// parseHeadlineCell parses one rendered table cell into its leading numeric
// value. The ± uncertainty suffix is stripped before the unit suffixes so
// both "12.3±0.4ms" and "12.3ms±0.4" parse; "ms" must be trimmed before "s"
// so milliseconds are not mistaken for seconds with a trailing 'm'.
func parseHeadlineCell(cell string) (float64, bool) {
	s := strings.SplitN(cell, "±", 2)[0]
	for _, unit := range []string{"ms", "s", "%"} {
		s = strings.TrimSuffix(s, unit)
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// BenchmarkFig2OverallEvaluation regenerates Figure 2: score, setup time and
// per-query time for ASQP-RL, ASQP-Light, the VAE and all nine subset
// baselines on IMDB and MAS.
func BenchmarkFig2OverallEvaluation(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3RLAblation regenerates Figure 3: {GSL, DRP, DRP+GSL} × {full,
// −ppo, −ppo−ac}.
func BenchmarkFig3RLAblation(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4ProblemJustification regenerates Figure 4: cumulative average
// direct-query latency vs database blow-up factor.
func BenchmarkFig4ProblemJustification(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5EstimatorQuality regenerates Figure 5 and the Section 6.2
// fallback variants: estimator precision/recall vs training fraction.
func BenchmarkFig5EstimatorQuality(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6NoWorkload regenerates Figure 6: the unknown-workload mode on
// FLIGHTS with iterative refinement, vs RAN and QRD.
func BenchmarkFig6NoWorkload(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7DriftFineTuning regenerates Figure 7: interest-drift
// detection and fine-tuning over three workload clusters.
func BenchmarkFig7DriftFineTuning(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8MemorySweep regenerates Figure 8: score vs memory budget k.
func BenchmarkFig8MemorySweep(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9FrameSweep regenerates Figure 9: score vs frame size F.
func BenchmarkFig9FrameSweep(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10TrainingSetSize regenerates Figure 10: score and setup time
// vs the executed fraction of training queries.
func BenchmarkFig10TrainingSetSize(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Hyperparams regenerates Figure 11: entropy, learning-rate
// and KL coefficient sweeps.
func BenchmarkFig11Hyperparams(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Aggregates regenerates Figure 12: aggregate relative error
// by operator vs the VAE (gAQP) and SPN (DeepDB) comparators.
func BenchmarkFig12Aggregates(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkDiversity regenerates the Section 6.2 diversity comparison.
func BenchmarkDiversity(b *testing.B) { runExperiment(b, "div") }

// BenchmarkAblationRepSelection regenerates the representative-selection
// ablation called out in DESIGN.md.
func BenchmarkAblationRepSelection(b *testing.B) { runExperiment(b, "abl-reps") }

// BenchmarkAblationRelaxation regenerates the query-relaxation ablation
// called out in DESIGN.md.
func BenchmarkAblationRelaxation(b *testing.B) { runExperiment(b, "abl-relax") }

// BenchmarkScaleCrossover runs the reproduction-extension experiment growing
// the dataset under fixed time budgets.
func BenchmarkScaleCrossover(b *testing.B) { runExperiment(b, "crossover") }
