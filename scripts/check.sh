#!/usr/bin/env sh
# check.sh — the full local gate: vet, build, race tests, smoke benches.
# Bench results are appended (as a JSON array per run) to BENCH_<date>.json
# in the repo root, building an in-repo perf history.
#
# Usage: scripts/check.sh [extra go-test args for the bench step]
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Chaos gate: the randomized fault-injection sweeps (Train/Query under seeded
# fault schedules) run under the race detector with a hard timeout, so any
# panic, data race, or hang introduced by a change fails the gate here rather
# than in production. The seeds are fixed inside the tests — a failure log
# names the seed and replays deterministically.
echo "==> chaos gate: fault-injection sweeps under -race"
go test -race -timeout 5m -count=1 ./internal/faults/
go test -race -timeout 5m -count=1 \
	-run 'TestChaos|TestScanFaultInjection|TestPreprocessCancellationPerStage|TestTrainRecoversFromInjectedNaN|TestQueryPanicRecovered' \
	./internal/core/ ./internal/engine/

bench_out="BENCH_$(date +%Y%m%d).json"
echo "==> go test -bench=. -benchtime=1x -run='^\$' ./...  (-> ${bench_out})"
go test -bench=. -benchtime=1x -run='^$' "$@" ./... |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

echo "==> all checks passed; bench results appended to ${bench_out}"
