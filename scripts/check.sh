#!/usr/bin/env sh
# check.sh — the full local gate: vet, build, race tests, smoke benches.
# Bench results are appended (as a JSON array per run) to BENCH_<date>.json
# in the repo root, building an in-repo perf history.
#
# Usage: scripts/check.sh [extra go-test args for the bench step]
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

bench_out="BENCH_$(date +%Y%m%d).json"
echo "==> go test -bench=. -benchtime=1x -run='^\$' ./...  (-> ${bench_out})"
go test -bench=. -benchtime=1x -run='^$' "$@" ./... |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

echo "==> all checks passed; bench results appended to ${bench_out}"
