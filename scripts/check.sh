#!/usr/bin/env sh
# check.sh — the full local gate: vet, build, race tests, smoke benches.
# Bench results are appended (as a JSON array per run) to BENCH_<date>.json
# in the repo root, building an in-repo perf history.
#
# Usage: scripts/check.sh [extra go-test args for the bench step]
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Parallelism gate: the data-parallel operators (morsel scans, join probe,
# projection), the scoring worker pool, and the blocked PPO gradient
# accumulation must stay race-free and worker-count-deterministic. -count=1
# defeats the test cache so the determinism sweeps actually rerun. This gate
# also covers the columnar engine: the FuzzRowVsColumnar seed corpus runs the
# row-vs-columnar differential (byte-identical results and guard/error
# semantics at parallelism 1 and 8) under the race detector.
echo "==> parallelism gate: engine/metrics/rl under -race"
go test -race -count=1 ./internal/engine/ ./internal/metrics/ ./internal/rl/

# Chaos gate: the randomized fault-injection sweeps (Train/Query under seeded
# fault schedules) run under the race detector with a hard timeout, so any
# panic, data race, or hang introduced by a change fails the gate here rather
# than in production. The seeds are fixed inside the tests — a failure log
# names the seed and replays deterministically.
echo "==> chaos gate: fault-injection sweeps under -race"
go test -race -timeout 5m -count=1 ./internal/faults/
go test -race -timeout 5m -count=1 \
	-run 'TestChaos|TestScanFaultInjection|TestPreprocessCancellationPerStage|TestTrainRecoversFromInjectedNaN|TestQueryPanicRecovered' \
	./internal/core/ ./internal/engine/

# Serving gate: the HTTP layer's admission control, circuit breaker, drain,
# and chaos tests (concurrent clients + fault injection) must stay race-free.
# -count=1 defeats the cache so the goroutine-leak checks rerun every time.
# The hot-swap chaos tests (zero-downtime swap under load, retrain faults
# leaving the incumbent byte-identical, retrain under 4x overload) live here
# too and run as part of this gate.
echo "==> serving gate: internal/server under -race"
go test -race -count=1 -timeout 5m ./internal/server/

# Retrain gate: the drift-triggered background retraining controller — clone
# isolation, validation gate, atomic swap, rollback, backoff/budget — under
# the race detector, including the seeded fault-injection sweep over the four
# retrain/* points. Seeds are fixed inside the tests.
echo "==> retrain gate: internal/retrain under -race"
go test -race -count=1 -timeout 5m ./internal/retrain/

# Durability gate: the WAL's crash-fault matrix (seeded kills at every
# append/fsync/rotate/checkpoint boundary, zero acknowledged-then-lost
# frames), the replay fuzzer's seed corpus, and the recovery tests run under
# the race detector. The snapshot-swap kill point and the server-layer
# kill-and-restart tests are covered by the core and serving gates above.
echo "==> durability gate: internal/wal under -race"
go test -race -count=1 -timeout 5m ./internal/wal/

# Bench smoke: the Fig2 benches cover the scoring hot loop (serial vs
# parallel vs reference-cached) plus the end-to-end Figure 2 harness; pass
# extra args (e.g. -bench=.) to widen the sweep.
bench_out="BENCH_$(date +%Y%m%d).json"
echo "==> go test -bench=Fig2 -benchtime=1x -run='^\$' ./...  (-> ${bench_out})"
go test -bench=Fig2 -benchtime=1x -run='^$' "$@" ./... |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Columnar engine bench: the vectorized scan and typed-key hash join against
# their row-engine counterparts, recorded into the same history so benchdiff
# below can gate on them.
echo "==> go test -bench='ColumnarScan|HashJoinAllocs' ./internal/engine/  (-> ${bench_out})"
go test -bench='ColumnarScan|HashJoinAllocs' -benchtime=10x -run='^$' ./internal/engine/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Serving bench: closed-loop HTTP load at 1x/4x/16x admission capacity,
# recording throughput, p50/p99 latency, and shed rate.
echo "==> go test -bench=ServeLoad ./internal/server/  (-> ${bench_out})"
go test -bench=ServeLoad -benchtime=200x -run='^$' ./internal/server/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Hot-swap bench: closed-loop load at exactly admission capacity with one
# SetSystem swap mid-run; records p99 before/after the swap and the delta,
# and fails outright if any request is dropped across the swap.
echo "==> go test -bench=HotSwapUnderLoad ./internal/server/  (-> ${bench_out})"
go test -bench=HotSwapUnderLoad -benchtime=200x -run='^$' ./internal/server/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Trace-export overhead: ns per exported span tree and per ring add, recorded
# alongside the other benches so export-path regressions show in the history.
echo "==> go test -bench='TraceExport|SpanRingAdd' ./internal/obs/  (-> ${bench_out})"
go test -bench='TraceExport|SpanRingAdd' -benchtime=10000x -run='^$' ./internal/obs/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# WAL benches: durable append throughput with group commit on vs off (the
# on/off ratio justifies the design) plus the fire-and-forget hot-path
# append, and a full 100k-frame recovery replay (replay_ms must stay well
# under the 2s acceptance bar).
echo "==> go test -bench='WALAppend' ./internal/wal/  (-> ${bench_out})"
go test -bench='WALAppend' -benchtime=2000x -run='^$' ./internal/wal/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson
echo "==> go test -bench='RecoveryReplay' ./internal/wal/  (-> ${bench_out})"
go test -bench='RecoveryReplay' -benchtime=2x -run='^$' ./internal/wal/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Audit-overhead bench: the disabled shadow auditor must stay a pointer
# compare on the serve hot path — the bench records ns/op and allocs/op so
# any regression shows in the history (the 0-alloc assertion itself lives in
# TestAuditDisabledZeroAlloc, run in the race gate above).
echo "==> go test -bench=AuditDisabledOverhead ./internal/audit/  (-> ${bench_out})"
go test -bench=AuditDisabledOverhead -benchtime=100000x -run='^$' ./internal/audit/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# SLO-instrumentation overhead: with recording off (the shipped default) the
# request-path instrumentation the SLO layer added must stay one atomic load
# and zero allocations; the bench records ns/op and allocs/op for both the
# disabled and armed paths (the hard 0-alloc assertion lives in
# TestSLOHotPathZeroAlloc, run in the serving gate above).
echo "==> go test -bench=SLODisabledOverhead ./internal/server/  (-> ${bench_out})"
go test -bench=SLODisabledOverhead -benchtime=100000x -run='^$' ./internal/server/ |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

# Loadgen smoke: boot a real asqp-serve process on a tiny dataset, point
# asqp-loadgen at it, and record the end-to-end numbers. Fails if any
# response is malformed — including a malformed observed_error field — and
# the -quality flag makes loadgen validate the /qualityz audit rollup after
# the run (auditing runs at full sampling here, so the gate exercises the
# shadow-audit path end to end). The drift-storm scenario shifts the query
# mix halfway through; with retraining armed (and the drift threshold
# lowered so the storm registers) loadgen then waits for the controller to
# either hot-swap a fine-tuned candidate or back off cleanly, so the gate
# exercises drift → retrain → validate → swap end to end. The binary is
# built and exec'd directly (not `go run`) so the recorded pid is the server
# itself and the TERM below actually exercises — and completes — the
# graceful drain.
echo "==> loadgen smoke: asqp-serve + asqp-loadgen (drift-storm)  (-> ${bench_out})"
serve_port=18479
serve_bin="$(mktemp -t asqp-serve.XXXXXX)"
trace_dir="$(mktemp -d -t asqp-traces.XXXXXX)"
snap_file="$(mktemp -t asqp-snap.XXXXXX)"
go build -o "${serve_bin}" ./cmd/asqp-serve
"${serve_bin}" -addr "localhost:${serve_port}" -scale 0.02 -k 150 -light \
	-trace-dir "${trace_dir}" -trace-sample 1 \
	-audit-sample 1 -quality-slo-p95 0.5 \
	-drift-confidence 0.15 \
	-retrain -retrain-interval 500ms -retrain-validate-margin 0.5 \
	-retrain-rollback-window 2s -save "${snap_file}" \
	-log warn >/dev/null &
serve_pid=$!
trap 'kill "${serve_pid}" 2>/dev/null || true; rm -f "${serve_bin}" "${snap_file}"; rm -rf "${trace_dir}"' EXIT
go run ./cmd/asqp-loadgen -url "http://localhost:${serve_port}" \
	-clients 8 -duration 6s -scenario drift-storm -retrain-wait 90s \
	-label LoadgenSmoke -quality -slo-gate -json "${bench_out}"
kill -TERM "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
rm -f "${serve_bin}" "${snap_file}"

# Tracing gate: the smoke run above exported every trace (sample rate 1, with
# the loadgen stamping a traceparent on each request). The export must parse
# as JSONL and every record must be a single connected span tree. Goroutine
# hygiene after a traced drain is asserted in-process by
# TestDrainLeavesNoTraceGoroutines in the serving gate.
echo "==> tracing gate: validate JSONL trace export"
go run ./scripts/tracecheck "${trace_dir}"
rm -rf "${trace_dir}"
trap - EXIT

# SLO burn smoke: a server armed with an impossible latency target (every
# real request blows a 100µs p99) and second-scale burn windows must reach
# fast_burn on /sloz under steady loadgen traffic, and the flight recorder
# must capture a bundle for it — the alerting path end to end, driven by a
# real process and real HTTP latencies rather than an injected histogram.
echo "==> slo smoke: impossible latency target -> fast_burn + flight-recorder bundle  (-> ${bench_out})"
serve_port=18481
serve_bin="$(mktemp -t asqp-serve.XXXXXX)"
diag_dir="$(mktemp -d -t asqp-diag.XXXXXX)"
go build -o "${serve_bin}" ./cmd/asqp-serve
"${serve_bin}" -addr "localhost:${serve_port}" -scale 0.02 -k 150 -light \
	-slo-latency-p99 100us -slo-windows 2s,6s,20s,2m \
	-diag-dir "${diag_dir}" -diag-min-interval 1s \
	-log warn >/dev/null &
serve_pid=$!
trap 'kill "${serve_pid}" 2>/dev/null || true; rm -f "${serve_bin}"; rm -rf "${diag_dir}"' EXIT
go run ./cmd/asqp-loadgen -url "http://localhost:${serve_port}" \
	-clients 4 -duration 4s -scenario slo-burn -slo-burn-wait 30s \
	-label SLOBurnSmoke -json "${bench_out}"
kill -TERM "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
rm -f "${serve_bin}"
rm -rf "${diag_dir}"
trap - EXIT

# Durability smoke: the end-to-end kill -9 story. First life: asqp-serve with
# a WAL and a snapshot path takes live traffic (drift observation on, so the
# log fills with served and drift frames), then dies by SIGKILL — no drain,
# no WAL close, a real torn tail. Second life: the same binary
# restarts from the same snapshot + WAL dir (retraining off so the replayed
# drift evidence is still visible in /stats when loadgen checks), and
# asqp-loadgen -expect-recovery fails the gate unless /stats reports a
# completed recovery with replayed frames and consistent counters.
echo "==> durability smoke: kill -9 asqp-serve, restart, verify WAL recovery  (-> ${bench_out})"
serve_port=18480
serve_bin="$(mktemp -t asqp-serve.XXXXXX)"
wal_dir="$(mktemp -d -t asqp-wal.XXXXXX)"
snap_file="$(mktemp -t asqp-snap.XXXXXX)"
go build -o "${serve_bin}" ./cmd/asqp-serve
"${serve_bin}" -addr "localhost:${serve_port}" -scale 0.02 -k 150 -light \
	-drift-confidence 0.15 -wal-dir "${wal_dir}" -save "${snap_file}" \
	-log warn >/dev/null &
serve_pid=$!
trap 'kill -9 "${serve_pid}" 2>/dev/null || true; rm -f "${serve_bin}" "${snap_file}"; rm -rf "${wal_dir}"' EXIT
go run ./cmd/asqp-loadgen -url "http://localhost:${serve_port}" \
	-clients 4 -duration 3s \
	-label DurabilityPreKill -json "${bench_out}"
sleep 1 # let the group-commit syncer land the last async frames
kill -9 "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
"${serve_bin}" -addr "localhost:${serve_port}" -load "${snap_file}" \
	-drift-confidence 0.15 -wal-dir "${wal_dir}" -save "${snap_file}" \
	-log warn >/dev/null &
serve_pid=$!
go run ./cmd/asqp-loadgen -url "http://localhost:${serve_port}" \
	-clients 2 -duration 2s -expect-recovery \
	-label DurabilityPostRecovery -json "${bench_out}"
kill -TERM "${serve_pid}" 2>/dev/null || true
wait "${serve_pid}" 2>/dev/null || true
rm -f "${serve_bin}" "${snap_file}"
rm -rf "${wal_dir}"
trap - EXIT

# Perf regression gate: compare the scan-heavy benchmarks (vectorized scans,
# hash joins, workload scoring) in today's bench history against the most
# recent prior BENCH_<date>.json; any >20% ns/op regression fails the check.
echo "==> benchdiff: scan-heavy perf regression gate"
go run ./scripts/benchdiff

echo "==> all checks passed; bench results appended to ${bench_out}"
