#!/usr/bin/env sh
# check.sh — the full local gate: vet, build, race tests, smoke benches.
# Bench results are appended (as a JSON array per run) to BENCH_<date>.json
# in the repo root, building an in-repo perf history.
#
# Usage: scripts/check.sh [extra go-test args for the bench step]
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Parallelism gate: the data-parallel operators (morsel scans, join probe,
# projection), the scoring worker pool, and the blocked PPO gradient
# accumulation must stay race-free and worker-count-deterministic. -count=1
# defeats the test cache so the determinism sweeps actually rerun.
echo "==> parallelism gate: engine/metrics/rl under -race"
go test -race -count=1 ./internal/engine/ ./internal/metrics/ ./internal/rl/

# Chaos gate: the randomized fault-injection sweeps (Train/Query under seeded
# fault schedules) run under the race detector with a hard timeout, so any
# panic, data race, or hang introduced by a change fails the gate here rather
# than in production. The seeds are fixed inside the tests — a failure log
# names the seed and replays deterministically.
echo "==> chaos gate: fault-injection sweeps under -race"
go test -race -timeout 5m -count=1 ./internal/faults/
go test -race -timeout 5m -count=1 \
	-run 'TestChaos|TestScanFaultInjection|TestPreprocessCancellationPerStage|TestTrainRecoversFromInjectedNaN|TestQueryPanicRecovered' \
	./internal/core/ ./internal/engine/

# Bench smoke: the Fig2 benches cover the scoring hot loop (serial vs
# parallel vs reference-cached) plus the end-to-end Figure 2 harness; pass
# extra args (e.g. -bench=.) to widen the sweep.
bench_out="BENCH_$(date +%Y%m%d).json"
echo "==> go test -bench=Fig2 -benchtime=1x -run='^\$' ./...  (-> ${bench_out})"
go test -bench=Fig2 -benchtime=1x -run='^$' "$@" ./... |
	BENCHJSON_OUT="${bench_out}" go run ./scripts/benchjson

echo "==> all checks passed; bench results appended to ${bench_out}"
