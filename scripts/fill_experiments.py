# fill_experiments.py — development helper that splices the tables from a
# full `asqp-bench -run all` output into EXPERIMENTS.md's placeholders.
# Usage: python3 scripts/fill_experiments.py
import re

OUT = "experiments_full_output.txt"
MD = "EXPERIMENTS.md"

text = open(OUT).read()

# Split the output into per-experiment chunks keyed by id.
chunks = {}
for m in re.finditer(r"^# (\S+) —.*?\n(.*?)\n\(\1 completed in ([^)]+)\)",
                     text, re.S | re.M):
    exp_id, body, took = m.group(1), m.group(2).strip(), m.group(3)
    chunks[exp_id] = f"```\n{body}\n```\n\n*(regenerated in {took})*\n"

md = open(MD).read()
mapping = {
    "<!-- FIG2 -->": "fig2",
    "<!-- FIG3 -->": "fig3",
    "<!-- FIG4 -->": "fig4",
    "<!-- FIG5 -->": "fig5",
    "<!-- FIG6 -->": "fig6",
    "<!-- FIG7 -->": "fig7",
    "<!-- FIG8 -->": "fig8",
    "<!-- FIG9 -->": "fig9",
    "<!-- FIG10 -->": "fig10",
    "<!-- FIG11 -->": "fig11",
    "<!-- FIG12 -->": "fig12",
    "<!-- DIV -->": "div",
}
for placeholder, exp_id in mapping.items():
    if exp_id in chunks:
        md = md.replace(placeholder, chunks[exp_id])

abl = ""
for exp_id in ("abl-reps", "abl-relax"):
    if exp_id in chunks:
        abl += chunks[exp_id] + "\n"
md = md.replace("<!-- ABL -->", abl.strip() + "\n")

open(MD, "w").write(md)
print("EXPERIMENTS.md filled with", len(chunks), "experiment outputs")
