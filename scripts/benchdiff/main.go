// Command benchdiff is the perf-regression gate over the in-repo bench
// history. It compares the scan-heavy benchmarks (vectorized scans, hash
// joins, workload scoring — the columnar execution core's hot paths) in the
// most recent BENCH_<date>.json against the most recent prior file and fails
// when any of them regressed by more than the threshold.
//
//	go run ./scripts/benchdiff [-threshold 0.20] [-match regexp] [dir]
//
// Each BENCH_<date>.json holds one JSON array per check.sh run, concatenated
// (not a single document), so the file is consumed with a json.Decoder loop.
// Within a file the minimum ns/op per benchmark name is used: the best
// observed run is the least noisy estimate of the code's speed. With fewer
// than two history files the gate passes trivially.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// scanHeavy selects the benchmarks the gate watches: the engine's scan and
// join micro-benchmarks plus the Figure 2 scoring loop that motivated the
// columnar core.
const scanHeavy = `ColumnarScan|ExecuteFilter|ExecuteHashJoin|ExecuteThreeWay|Fig2WorkloadScoring`

type entry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// readMinNs returns the minimum ns/op per benchmark name across every run
// recorded in the file, keeping only names matching re.
func readMinNs(path string, re *regexp.Regexp) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	min := make(map[string]float64)
	dec := json.NewDecoder(f)
	for {
		var run []entry
		if err := dec.Decode(&run); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, e := range run {
			if e.NsPerOp <= 0 || !re.MatchString(e.Name) {
				continue
			}
			if cur, ok := min[e.Name]; !ok || e.NsPerOp < cur {
				min[e.Name] = e.NsPerOp
			}
		}
	}
	return min, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated fractional ns/op regression")
	match := flag.String("match", scanHeavy, "regexp selecting benchmarks to compare")
	flag.Parse()
	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad -match: %v\n", err)
		os.Exit(2)
	}
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	sort.Strings(files) // dates are zero-padded YYYYMMDD, so name order is time order
	if len(files) < 2 {
		fmt.Println("benchdiff: fewer than two BENCH_*.json files; nothing to compare")
		return
	}
	prevFile, curFile := files[len(files)-2], files[len(files)-1]
	prev, err := readMinNs(prevFile, re)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := readMinNs(curFile, re)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := prev[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Printf("benchdiff: %s vs %s (threshold +%.0f%%)\n", filepath.Base(prevFile), filepath.Base(curFile), *threshold*100)
	if len(names) == 0 {
		fmt.Println("benchdiff: no overlapping scan-heavy benchmarks; nothing to compare")
		return
	}
	regressed := 0
	for _, name := range names {
		p, c := prev[name], cur[name]
		delta := c/p - 1
		mark := "ok"
		if delta > *threshold {
			mark = "REGRESSION"
			regressed++
		}
		fmt.Printf("  %-60s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n", name, p, c, delta*100, mark)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%%\n", regressed, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: scan-heavy benchmarks within threshold")
}
