// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark result line. It exists so
// scripts/check.sh can append machine-readable bench history to
// BENCH_<date>.json without depending on jq or python.
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | go run ./scripts/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkExecuteScan-8   1000000   1234 ns/op   56 B/op   7 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "qps", "p99_ms",
	// "shed_rate") keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through so the caller still sees it
		if r, ok := parse(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stderr)
	if out := os.Getenv("BENCHJSON_OUT"); out != "" {
		f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts a result from one bench output line, reporting ok=false for
// non-benchmark lines (package headers, PASS/ok, etc.).
func parse(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Procs: procs, Iterations: iters}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp == 0 {
		return result{}, false
	}
	return r, true
}
