// Command tracecheck validates a directory of exported trace JSONL files
// (asqp-serve -trace-dir): every line must parse as a trace record, and every
// record must be a single connected span tree — one root, every span carrying
// the record's trace ID, and every child's parent_id equal to its parent's
// span_id. The check.sh tracing gate runs it against a live smoke run's
// export, so a broken exporter or a disconnected trace fails the gate.
//
// Usage: go run ./scripts/tracecheck <trace-dir>
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

type span struct {
	Name     string `json:"name"`
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id"`
	Children []span `json:"children"`
}

type record struct {
	TraceID    string  `json:"trace_id"`
	Verdict    string  `json:"verdict"`
	DurationMS float64 `json:"duration_ms"`
	Root       span    `json:"root"`
}

func main() {
	if len(os.Args) != 2 {
		fatal(fmt.Errorf("usage: tracecheck <trace-dir>"))
	}
	dir := os.Args[1]
	files, err := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no traces-*.jsonl files in %s", dir))
	}
	sort.Strings(files)

	traces, spans := 0, 0
	verdicts := map[string]int{}
	for _, f := range files {
		n, s, err := checkFile(f, verdicts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", f, err))
		}
		traces += n
		spans += s
	}
	if traces == 0 {
		fatal(fmt.Errorf("%d files but zero trace records in %s", len(files), dir))
	}
	fmt.Printf("tracecheck ok: %d traces (%d spans) across %d files; verdicts:", traces, spans, len(files))
	for _, v := range sortedKeys(verdicts) {
		fmt.Printf(" %s=%d", v, verdicts[v])
	}
	fmt.Println()
}

func checkFile(path string, verdicts map[string]int) (traces, spans int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return traces, spans, fmt.Errorf("line %d: not valid JSON: %w", line, err)
		}
		if rec.TraceID == "" || rec.Verdict == "" {
			return traces, spans, fmt.Errorf("line %d: missing trace_id or verdict", line)
		}
		n, err := checkTree(rec.Root, rec.TraceID, rec.Root.SpanID, true)
		if err != nil {
			return traces, spans, fmt.Errorf("line %d (trace %s): %w", line, rec.TraceID, err)
		}
		traces++
		spans += n
		verdicts[rec.Verdict]++
	}
	return traces, spans, sc.Err()
}

// checkTree walks the span tree verifying connectivity: every span shares the
// trace ID and each child points back at its parent. Returns the span count.
func checkTree(s span, traceID, parentSpanID string, isRoot bool) (int, error) {
	if s.Name == "" || s.SpanID == "" {
		return 0, fmt.Errorf("span missing name or span_id: %+v", s)
	}
	if s.TraceID != traceID {
		return 0, fmt.Errorf("span %s has trace_id %s, want %s (disconnected tree)", s.Name, s.TraceID, traceID)
	}
	if !isRoot && s.ParentID != parentSpanID {
		return 0, fmt.Errorf("span %s has parent_id %s, want containing span %s", s.Name, s.ParentID, parentSpanID)
	}
	seen := map[string]bool{}
	n := 1
	for _, c := range s.Children {
		if seen[c.SpanID] {
			return 0, fmt.Errorf("duplicate span_id %s under %s", c.SpanID, s.Name)
		}
		seen[c.SpanID] = true
		cn, err := checkTree(c, traceID, s.SpanID, false)
		if err != nil {
			return 0, err
		}
		n += cn
	}
	return n, nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
