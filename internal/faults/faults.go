// Package faults is a deterministic fault-injection harness. Production code
// declares named injection points (Inject / Triggered calls); tests arm them
// with a seeded Schedule describing which points fire, how often, and what
// they do — return an error, add latency, panic, or run a hook. With no
// schedule armed every injection point is a single atomic load, so the
// instrumentation can stay compiled into hot paths permanently.
//
// Schedules are fully deterministic: the same seed and the same sequence of
// Inject calls produce the same firing pattern, which is what makes the chaos
// tests (randomized fault schedules over Train/Query) reproducible.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what an armed injection does when it fires.
type Kind uint8

const (
	// KindError makes Inject return the injection's error.
	KindError Kind = iota
	// KindLatency makes Inject sleep for the injection's latency.
	KindLatency
	// KindPanic makes Inject panic.
	KindPanic
	// KindHook makes Inject call the injection's OnTrigger function.
	KindHook
)

// String names the kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindHook:
		return "hook"
	default:
		return "unknown"
	}
}

// ErrInjected is the base error returned by KindError injections that do not
// carry their own error; callers match it with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Injection arms one injection point.
type Injection struct {
	// Point is the injection-point name this arms (exact match).
	Point string
	// Kind selects the behavior when the injection fires.
	Kind Kind
	// Prob is the per-hit firing probability; values <= 0 or >= 1 mean
	// "always fire".
	Prob float64
	// After skips the first After hits of the point before arming.
	After int
	// MaxFires bounds how many times the injection fires (0 = unlimited).
	MaxFires int
	// Err overrides the returned error for KindError (default ErrInjected).
	Err error
	// Latency is the sleep duration for KindLatency.
	Latency time.Duration
	// OnTrigger is called when a KindHook injection fires.
	OnTrigger func()
}

// armed is an Injection plus its per-schedule firing state.
type armed struct {
	Injection
	hits  int
	fires int
}

// Schedule is a set of armed injections sharing one seeded random source.
type Schedule struct {
	mu   sync.Mutex
	rng  *rand.Rand
	arms map[string][]*armed
	log  []Event
}

// Event records one firing, for post-run assertions and debugging.
type Event struct {
	Point string
	Kind  Kind
	Hit   int // 1-based hit index at the point when it fired
}

// NewSchedule builds a deterministic schedule from seed and injections.
func NewSchedule(seed int64, injections ...Injection) *Schedule {
	s := &Schedule{
		rng:  rand.New(rand.NewSource(seed)),
		arms: make(map[string][]*armed),
	}
	for _, in := range injections {
		s.arms[in.Point] = append(s.arms[in.Point], &armed{Injection: in})
	}
	return s
}

// active is the armed schedule; nil means every injection point is a no-op.
var active atomic.Pointer[Schedule]

// Enable arms s process-wide. Passing nil disables injection.
func Enable(s *Schedule) {
	active.Store(s)
}

// Disable disarms fault injection.
func Disable() { active.Store(nil) }

// Active reports whether a schedule is armed. Hot paths may use it to skip
// building injection-point names.
func Active() bool { return active.Load() != nil }

// Inject is the injection point: production code calls it with a stable
// point name and propagates a non-nil error. With no schedule armed it costs
// one atomic load. KindLatency sleeps and returns nil; KindPanic panics;
// KindHook runs the hook and returns nil.
func Inject(point string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.hit(point)
}

// Triggered is Inject for boolean corruption points: it reports whether an
// error-kind injection fired, swallowing the error itself. Production code
// uses it where the fault is "corrupt this value" rather than "fail".
func Triggered(point string) bool {
	return Inject(point) != nil
}

// hit advances the point's state and applies the first firing injection.
func (s *Schedule) hit(point string) error {
	s.mu.Lock()
	arms := s.arms[point]
	if len(arms) == 0 {
		s.mu.Unlock()
		return nil
	}
	var fire *armed
	for _, a := range arms {
		a.hits++
		if fire != nil {
			continue
		}
		if a.hits <= a.After {
			continue
		}
		if a.MaxFires > 0 && a.fires >= a.MaxFires {
			continue
		}
		if a.Prob > 0 && a.Prob < 1 && s.rng.Float64() >= a.Prob {
			continue
		}
		a.fires++
		fire = a
	}
	if fire == nil {
		s.mu.Unlock()
		return nil
	}
	s.log = append(s.log, Event{Point: point, Kind: fire.Kind, Hit: fire.hits})
	inj := fire.Injection
	s.mu.Unlock() // release before sleeping, panicking or calling hooks

	switch inj.Kind {
	case KindLatency:
		if inj.Latency > 0 {
			time.Sleep(inj.Latency)
		}
		return nil
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s", point))
	case KindHook:
		if inj.OnTrigger != nil {
			inj.OnTrigger()
		}
		return nil
	default:
		if inj.Err != nil {
			return fmt.Errorf("faults: %s: %w", point, inj.Err)
		}
		return fmt.Errorf("faults: %s: %w", point, ErrInjected)
	}
}

// Events returns a copy of the firing log.
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.log...)
}

// Fired reports whether any injection fired at point.
func (s *Schedule) Fired(point string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.log {
		if e.Point == point {
			return true
		}
	}
	return false
}

// FiredAny reports whether any injection fired at all.
func (s *Schedule) FiredAny() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log) > 0
}

// Canonical injection-point names wired into the system. Chaos tests draw
// from this list; keeping it here documents the available surface.
const (
	PointEngineScan    = "engine/scan"
	PointEngineJoin    = "engine/join"
	PointEngineProject = "engine/project"
	PointPreRelax      = "core/preprocess/relax"
	PointPreEmbed      = "core/preprocess/embed"
	PointPreSelect     = "core/preprocess/select"
	PointPreExecute    = "core/preprocess/execute"
	PointPreSubsample  = "core/preprocess/subsample"
	PointRLUpdate      = "rl/update"
	// Retrain-controller stages (internal/retrain): each fires before the
	// stage runs, so an armed fault fails the retrain attempt while the
	// incumbent system keeps serving untouched.
	PointRetrainClone    = "retrain/clone"
	PointRetrainTrain    = "retrain/train"
	PointRetrainValidate = "retrain/validate"
	PointRetrainSwap     = "retrain/swap"
	// Durability kill points (internal/wal, core.SaveFile): each sits at a
	// write/fsync/rename boundary so the crash matrix can simulate process
	// death exactly where durability guarantees are made. KindError at one of
	// these models "the process died here"; KindPanic models it literally.
	PointWALAppend      = "wal/append"
	PointWALSync        = "wal/fsync"
	PointWALRotate      = "wal/rotate"
	PointWALCheckpoint  = "wal/checkpoint"
	PointSnapshotRename = "core/snapshot/rename"
)

// Points lists every canonical injection point, sorted.
func Points() []string {
	ps := []string{
		PointEngineScan,
		PointEngineJoin,
		PointEngineProject,
		PointPreRelax,
		PointPreEmbed,
		PointPreSelect,
		PointPreExecute,
		PointPreSubsample,
		PointRLUpdate,
		PointRetrainClone,
		PointRetrainTrain,
		PointRetrainValidate,
		PointRetrainSwap,
		PointWALAppend,
		PointWALSync,
		PointWALRotate,
		PointWALCheckpoint,
		PointSnapshotRename,
	}
	sort.Strings(ps)
	return ps
}

// RandomSchedule builds a seed-derived schedule arming a random subset of the
// canonical points with random kinds (error, latency, or panic) and
// probabilities. It is the generator behind the chaos tests: the same seed
// always yields the same schedule.
func RandomSchedule(seed int64) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	var injections []Injection
	for _, point := range Points() {
		if rng.Float64() < 0.55 {
			continue // leave this point clean
		}
		in := Injection{
			Point:    point,
			Prob:     0.2 + 0.6*rng.Float64(),
			After:    rng.Intn(3),
			MaxFires: 1 + rng.Intn(3),
		}
		switch r := rng.Float64(); {
		case r < 0.5:
			in.Kind = KindError
		case r < 0.8:
			in.Kind = KindLatency
			in.Latency = time.Duration(rng.Intn(3)) * time.Millisecond
		default:
			in.Kind = KindPanic
		}
		injections = append(injections, in)
	}
	return NewSchedule(seed, injections...)
}
