package faults

import (
	"errors"
	"testing"
	"time"
)

// TestDisabledIsNoop: with no schedule armed, injection points never fire.
func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active() true with no schedule")
	}
	for i := 0; i < 100; i++ {
		if err := Inject(PointEngineScan); err != nil {
			t.Fatalf("disabled Inject returned %v", err)
		}
	}
}

// TestErrorInjection: error kind fires deterministically, honoring After and
// MaxFires, and wraps ErrInjected.
func TestErrorInjection(t *testing.T) {
	s := NewSchedule(1, Injection{Point: "p", Kind: KindError, After: 2, MaxFires: 1})
	Enable(s)
	defer Disable()

	for i := 0; i < 2; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("hit %d fired before After: %v", i, err)
		}
	}
	err := Inject("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit should fire with ErrInjected, got %v", err)
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("MaxFires=1 exceeded: %v", err)
	}
	if !s.Fired("p") || len(s.Events()) != 1 {
		t.Fatalf("event log wrong: %+v", s.Events())
	}
}

// TestCustomError: an injection's Err is surfaced through errors.Is.
func TestCustomError(t *testing.T) {
	custom := errors.New("boom")
	Enable(NewSchedule(1, Injection{Point: "p", Kind: KindError, Err: custom}))
	defer Disable()
	if err := Inject("p"); !errors.Is(err, custom) {
		t.Fatalf("want custom error, got %v", err)
	}
}

// TestPanicInjection: panic kind panics with a recognizable message.
func TestPanicInjection(t *testing.T) {
	Enable(NewSchedule(1, Injection{Point: "p", Kind: KindPanic}))
	defer Disable()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = Inject("p")
}

// TestHookInjection: hook kind runs the callback and returns nil.
func TestHookInjection(t *testing.T) {
	fired := false
	Enable(NewSchedule(1, Injection{Point: "p", Kind: KindHook, OnTrigger: func() { fired = true }}))
	defer Disable()
	if err := Inject("p"); err != nil {
		t.Fatalf("hook returned error %v", err)
	}
	if !fired {
		t.Fatal("hook did not run")
	}
}

// TestLatencyInjection: latency kind sleeps and returns nil.
func TestLatencyInjection(t *testing.T) {
	Enable(NewSchedule(1, Injection{Point: "p", Kind: KindLatency, Latency: 5 * time.Millisecond}))
	defer Disable()
	start := time.Now()
	if err := Inject("p"); err != nil {
		t.Fatalf("latency returned error %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency injection did not sleep")
	}
}

// TestTriggered: boolean corruption points report firing without an error.
func TestTriggered(t *testing.T) {
	Enable(NewSchedule(1, Injection{Point: "p", Kind: KindError, MaxFires: 1}))
	defer Disable()
	if !Triggered("p") {
		t.Fatal("armed point should trigger")
	}
	if Triggered("p") {
		t.Fatal("exhausted point should not trigger")
	}
}

// TestProbabilisticDeterminism: the same seed yields the same firing pattern.
func TestProbabilisticDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		Enable(NewSchedule(seed, Injection{Point: "p", Kind: KindError, Prob: 0.5}))
		defer Disable()
		out := make([]bool, 50)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("firing pattern diverged at hit %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 50-hit patterns (suspicious)")
	}
}

// TestRandomScheduleDeterminism: RandomSchedule is a pure function of seed.
func TestRandomScheduleDeterminism(t *testing.T) {
	a, b := RandomSchedule(7), RandomSchedule(7)
	if len(a.arms) != len(b.arms) {
		t.Fatalf("schedules differ: %d vs %d armed points", len(a.arms), len(b.arms))
	}
	for p, arms := range a.arms {
		other := b.arms[p]
		if len(arms) != len(other) {
			t.Fatalf("point %s armed differently", p)
		}
		for i := range arms {
			if arms[i].Kind != other[i].Kind || arms[i].Prob != other[i].Prob {
				t.Fatalf("point %s injection %d differs", p, i)
			}
		}
	}
}
