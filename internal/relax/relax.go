// Package relax implements query relaxation (Section 4.2 of the paper):
// loosening query conditions so the result set grows, pulling tuples beyond
// the exact workload answers into the RL action space and helping the learned
// approximation set generalize to future, unseen queries.
//
// The relaxations applied are:
//   - numeric comparisons widen by a configurable factor of the constant's
//     magnitude (a > c becomes a > c - f·|c|, etc.);
//   - numeric equality becomes a BETWEEN window around the constant;
//   - BETWEEN intervals widen symmetrically by a factor of their width;
//   - LIKE 'prefix%' patterns lose their last literal character;
//   - optionally, the most selective conjunct is dropped entirely.
package relax

import (
	"math"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// Options controls how aggressively queries are relaxed.
type Options struct {
	// Factor is the relative widening applied to numeric predicates.
	// 0.25 means a range grows by 25% of its magnitude on each side.
	// Zero means the default of 0.25.
	Factor float64
	// DropConjunct, when true, also removes one conjunct from the WHERE
	// clause (the one estimated most selective: equality before LIKE before
	// ranges), producing a strictly more general query.
	DropConjunct bool
}

func (o Options) factor() float64 {
	if o.Factor <= 0 {
		return 0.25
	}
	return o.Factor
}

// Relax returns a relaxed copy of stmt. The original statement is not
// modified. LIMIT clauses are removed, since relaxation exists to enlarge the
// observable result set.
func Relax(stmt *sqlparse.Select, opts Options) *sqlparse.Select {
	out := stmt.Clone()
	out.Limit = -1
	if out.Where == nil {
		return out
	}
	conjuncts := sqlparse.Conjuncts(out.Where)
	relaxed := make([]sqlparse.Expr, 0, len(conjuncts))
	for _, c := range conjuncts {
		relaxed = append(relaxed, relaxExpr(c, opts.factor()))
	}
	if opts.DropConjunct && len(relaxed) > 1 {
		drop := mostSelectiveIndex(relaxed)
		relaxed = append(relaxed[:drop], relaxed[drop+1:]...)
	}
	out.Where = sqlparse.AndAll(relaxed)
	return out
}

// relaxExpr relaxes one predicate. Join predicates (column = column) and
// predicates it does not understand are returned unchanged.
func relaxExpr(e sqlparse.Expr, factor float64) sqlparse.Expr {
	switch x := e.(type) {
	case *sqlparse.Binary:
		col, isColLeft := x.Left.(*sqlparse.ColumnRef)
		lit, isLitRight := x.Right.(*sqlparse.Literal)
		if !isColLeft || !isLitRight || !lit.Value.IsNumeric() {
			return e
		}
		c := lit.Value.AsFloat()
		delta := widen(c, factor)
		switch x.Op {
		case ">", ">=":
			return &sqlparse.Binary{Op: x.Op, Left: col.CloneExpr(), Right: numLit(c-delta, lit.Value.Kind)}
		case "<", "<=":
			return &sqlparse.Binary{Op: x.Op, Left: col.CloneExpr(), Right: numLit(c+delta, lit.Value.Kind)}
		case "=":
			return &sqlparse.Between{
				X:  col.CloneExpr(),
				Lo: numLit(c-delta, lit.Value.Kind),
				Hi: numLit(c+delta, lit.Value.Kind),
			}
		default:
			return e
		}
	case *sqlparse.Between:
		lo, okLo := x.Lo.(*sqlparse.Literal)
		hi, okHi := x.Hi.(*sqlparse.Literal)
		if x.Not || !okLo || !okHi || !lo.Value.IsNumeric() || !hi.Value.IsNumeric() {
			return e
		}
		a, b := lo.Value.AsFloat(), hi.Value.AsFloat()
		width := b - a
		if width <= 0 {
			width = math.Max(math.Abs(a), 1)
		}
		delta := width * factor
		return &sqlparse.Between{
			X:  x.X.CloneExpr(),
			Lo: numLit(a-delta, lo.Value.Kind),
			Hi: numLit(b+delta, hi.Value.Kind),
		}
	case *sqlparse.Like:
		if x.Not {
			return e
		}
		// Shorten 'prefix%' to 'prefi%'.
		p := x.Pattern
		if len(p) >= 3 && p[len(p)-1] == '%' && p[len(p)-2] != '%' && p[len(p)-2] != '_' {
			return &sqlparse.Like{X: x.X.CloneExpr(), Pattern: p[:len(p)-2] + "%"}
		}
		return e
	default:
		return e
	}
}

// widen computes the absolute widening for a constant c.
func widen(c, factor float64) float64 {
	m := math.Abs(c)
	if m < 1 {
		m = 1
	}
	return m * factor
}

// numLit builds a literal preserving integer-ness where possible.
func numLit(v float64, kind table.Kind) *sqlparse.Literal {
	if kind == table.KindInt {
		return &sqlparse.Literal{Value: table.NewInt(int64(math.Round(v)))}
	}
	return &sqlparse.Literal{Value: table.NewFloat(v)}
}

// mostSelectiveIndex heuristically picks the conjunct to drop: string
// equality first (most selective), then IN, LIKE, numeric equality, ranges.
func mostSelectiveIndex(conjuncts []sqlparse.Expr) int {
	best, bestScore := 0, -1
	for i, c := range conjuncts {
		score := selectivityRank(c)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func selectivityRank(e sqlparse.Expr) int {
	switch x := e.(type) {
	case *sqlparse.Binary:
		if x.Op == "=" {
			if _, isCol := x.Right.(*sqlparse.ColumnRef); isCol {
				return -1 // join predicate: never drop
			}
			if lit, ok := x.Right.(*sqlparse.Literal); ok && lit.Value.Kind == table.KindString {
				return 5
			}
			return 4
		}
		if x.Op == "AND" || x.Op == "OR" {
			return 1
		}
		return 2
	case *sqlparse.In:
		return 4
	case *sqlparse.Like:
		return 3
	case *sqlparse.Between:
		return 2
	default:
		return 0
	}
}
