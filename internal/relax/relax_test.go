package relax

import (
	"strings"
	"testing"

	"asqprl/internal/engine"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

func numbersDB() *table.Database {
	t := table.New("nums", table.Schema{
		{Name: "v", Kind: table.KindInt},
		{Name: "name", Kind: table.KindString},
	})
	names := []string{"apple", "apricot", "banana", "berry", "cherry"}
	for i := 0; i < 100; i++ {
		t.AppendRow(table.Row{table.NewInt(int64(i)), table.NewString(names[i%len(names)])})
	}
	db := table.NewDatabase()
	db.Add(t)
	return db
}

// resultCount executes stmt and returns the row count.
func resultCount(t *testing.T, db *table.Database, stmt *sqlparse.Select) int {
	t.Helper()
	n, err := engine.Count(db, stmt)
	if err != nil {
		t.Fatalf("count %s: %v", stmt, err)
	}
	return n
}

// TestRelaxationEnlargesResults is the core contract: a relaxed query's
// result is a superset (here: at least as large) for monotone predicates.
func TestRelaxationEnlargesResults(t *testing.T) {
	db := numbersDB()
	queries := []string{
		"SELECT * FROM nums WHERE v > 50",
		"SELECT * FROM nums WHERE v < 20",
		"SELECT * FROM nums WHERE v >= 80",
		"SELECT * FROM nums WHERE v BETWEEN 40 AND 60",
		"SELECT * FROM nums WHERE v = 30",
		"SELECT * FROM nums WHERE v > 10 AND v < 30",
	}
	for _, q := range queries {
		stmt := sqlparse.MustParse(q)
		relaxed := Relax(stmt, Options{})
		before := resultCount(t, db, stmt)
		after := resultCount(t, db, relaxed)
		if after < before {
			t.Errorf("%s: relaxed result %d < original %d (relaxed: %s)", q, after, before, relaxed)
		}
		if after == before && q != queries[0] {
			// Most of these should strictly grow on this dense domain.
			t.Logf("note: %s did not strictly grow (%d)", q, after)
		}
	}
}

func TestRelaxStrictGrowth(t *testing.T) {
	db := numbersDB()
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v BETWEEN 40 AND 60")
	relaxed := Relax(stmt, Options{Factor: 0.5})
	before := resultCount(t, db, stmt)
	after := resultCount(t, db, relaxed)
	if after <= before {
		t.Errorf("factor 0.5 should strictly grow result: %d -> %d", before, after)
	}
}

func TestRelaxEqualityBecomesRange(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v = 30")
	relaxed := Relax(stmt, Options{})
	if !strings.Contains(relaxed.String(), "BETWEEN") {
		t.Errorf("numeric equality should relax to BETWEEN: %s", relaxed)
	}
	db := numbersDB()
	if resultCount(t, db, relaxed) <= 1 {
		t.Error("relaxed equality should match multiple rows")
	}
}

func TestRelaxDropsLimit(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v > 0 LIMIT 5")
	relaxed := Relax(stmt, Options{})
	if relaxed.Limit != -1 {
		t.Errorf("relaxation should drop LIMIT, got %d", relaxed.Limit)
	}
}

func TestRelaxPreservesOriginal(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v > 50")
	before := stmt.String()
	Relax(stmt, Options{})
	if stmt.String() != before {
		t.Error("Relax must not mutate its input")
	}
}

func TestRelaxNoWhere(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums")
	relaxed := Relax(stmt, Options{})
	if relaxed.Where != nil {
		t.Error("no WHERE should stay no WHERE")
	}
}

func TestRelaxStringEqualityUntouched(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE name = 'apple'")
	relaxed := Relax(stmt, Options{})
	if relaxed.Where.String() != stmt.Where.String() {
		t.Errorf("string equality should be unchanged, got %s", relaxed.Where)
	}
}

func TestRelaxJoinPredicateUntouched(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM a, b WHERE a.x = b.y AND a.v > 10")
	relaxed := Relax(stmt, Options{})
	conjs := sqlparse.Conjuncts(relaxed.Where)
	if conjs[0].String() != "a.x = b.y" {
		t.Errorf("join predicate should be unchanged, got %s", conjs[0])
	}
}

func TestRelaxLikePrefixShortened(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE name LIKE 'apri%'")
	relaxed := Relax(stmt, Options{})
	like := relaxed.Where.(*sqlparse.Like)
	if like.Pattern != "apr%" {
		t.Errorf("pattern = %q, want apr%%", like.Pattern)
	}
	// The relaxed pattern matches a superset.
	db := numbersDB()
	before := resultCount(t, db, stmt)
	after := resultCount(t, db, relaxed)
	if after < before {
		t.Errorf("LIKE relaxation shrank results: %d -> %d", before, after)
	}
}

func TestRelaxShortLikeUntouched(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE name LIKE 'a%'")
	relaxed := Relax(stmt, Options{})
	if relaxed.Where.(*sqlparse.Like).Pattern != "a%" {
		t.Error("two-char pattern should be unchanged")
	}
}

func TestDropConjunct(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v > 10 AND name = 'apple'")
	relaxed := Relax(stmt, Options{DropConjunct: true})
	conjs := sqlparse.Conjuncts(relaxed.Where)
	if len(conjs) != 1 {
		t.Fatalf("expected one remaining conjunct, got %v", conjs)
	}
	// The string equality (most selective) goes, the range stays.
	if !strings.Contains(conjs[0].String(), "v >") {
		t.Errorf("should keep the range predicate, kept %s", conjs[0])
	}
	db := numbersDB()
	if resultCount(t, db, relaxed) < resultCount(t, db, stmt) {
		t.Error("dropping a conjunct must enlarge the result")
	}
}

func TestDropConjunctSingleKept(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v > 10")
	relaxed := Relax(stmt, Options{DropConjunct: true})
	if relaxed.Where == nil {
		t.Error("sole conjunct must never be dropped")
	}
}

func TestRelaxFactorDefaults(t *testing.T) {
	var o Options
	if o.factor() != 0.25 {
		t.Errorf("default factor = %v", o.factor())
	}
	o.Factor = 0.1
	if o.factor() != 0.1 {
		t.Errorf("explicit factor = %v", o.factor())
	}
}

func TestRelaxIntegerKindPreserved(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v > 50")
	relaxed := Relax(stmt, Options{})
	lit := relaxed.Where.(*sqlparse.Binary).Right.(*sqlparse.Literal)
	if lit.Value.Kind != table.KindInt {
		t.Errorf("int literal should stay int, got %v", lit.Value.Kind)
	}
}

func TestRelaxNotBetweenUntouched(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT * FROM nums WHERE v NOT BETWEEN 10 AND 20")
	relaxed := Relax(stmt, Options{})
	if relaxed.Where.String() != stmt.Where.String() {
		t.Error("NOT BETWEEN must not be widened (that would shrink results)")
	}
}
