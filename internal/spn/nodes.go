package spn

import (
	"math"
	"sort"

	"asqprl/internal/table"
)

// --- node implementations ---

// productNode multiplies independent children with disjoint scopes.
type productNode struct {
	children []node
}

func (p *productNode) scope() []int {
	var out []int
	for _, c := range p.children {
		out = append(out, c.scope()...)
	}
	sort.Ints(out)
	return out
}

func (p *productNode) moment(col int, preds predSet) (float64, float64) {
	prob := 1.0
	m := -1.0 // -1 marks "column not seen yet"
	for _, c := range p.children {
		inScope := false
		for _, sc := range c.scope() {
			if sc == col {
				inScope = true
				break
			}
		}
		cp, cm := c.moment(col, preds)
		prob *= cp
		if inScope {
			m = cm
		}
	}
	if m < 0 {
		// Column not in scope: the moment is undefined here; callers only
		// read it at nodes whose scope contains col.
		return prob, 0
	}
	// cm already includes the child's own predicate mass; scale by the
	// other children's probabilities.
	if m != 0 {
		// moment of child * Π other children's p. prob currently includes
		// the owning child's p as well, so divide it out.
		ownerP, _ := ownerProb(p, col, preds)
		if ownerP > 0 {
			m = m * prob / ownerP
		} else {
			m = 0
		}
	}
	return prob, m
}

// ownerProb returns the predicate probability of the child whose scope
// contains col.
func ownerProb(p *productNode, col int, preds predSet) (float64, bool) {
	for _, c := range p.children {
		for _, sc := range c.scope() {
			if sc == col {
				cp, _ := c.moment(col, preds)
				return cp, true
			}
		}
	}
	return 1, false
}

// sumNode mixes children over the same scope.
type sumNode struct {
	weights  []float64
	children []node
}

func (s *sumNode) scope() []int { return s.children[0].scope() }

func (s *sumNode) moment(col int, preds predSet) (float64, float64) {
	var p, m float64
	for i, c := range s.children {
		cp, cm := c.moment(col, preds)
		p += s.weights[i] * cp
		m += s.weights[i] * cm
	}
	return p, m
}

// leaf models a single column.
type leaf struct {
	col int
	// numeric histogram
	numeric  bool
	binLo    []float64
	binHi    []float64
	binMass  []float64 // fraction of rows
	binMean  []float64
	nullFrac float64
	// categorical masses
	catMass map[string]float64 // Value.Key() -> fraction
}

func (l *leaf) scope() []int { return []int{l.col} }

func newLeaf(t *table.Table, rows []int, col int, opts Options) *leaf {
	l := &leaf{col: col}
	kind := t.Schema[col].Kind
	n := float64(len(rows))
	if n == 0 {
		n = 1
	}
	if kind == table.KindInt || kind == table.KindFloat {
		l.numeric = true
		lo, hi := math.Inf(1), math.Inf(-1)
		nulls := 0
		for _, r := range rows {
			v := t.Rows[r][col]
			if v.IsNull() {
				nulls++
				continue
			}
			f := v.AsFloat()
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		l.nullFrac = float64(nulls) / n
		if math.IsInf(lo, 1) { // all null
			return l
		}
		bins := opts.Bins
		if hi == lo {
			bins = 1
		}
		width := (hi - lo) / float64(bins)
		if width == 0 {
			width = 1
		}
		l.binLo = make([]float64, bins)
		l.binHi = make([]float64, bins)
		l.binMass = make([]float64, bins)
		l.binMean = make([]float64, bins)
		sums := make([]float64, bins)
		counts := make([]float64, bins)
		for b := 0; b < bins; b++ {
			l.binLo[b] = lo + float64(b)*width
			l.binHi[b] = lo + float64(b+1)*width
		}
		l.binHi[bins-1] = hi
		for _, r := range rows {
			v := t.Rows[r][col]
			if v.IsNull() {
				continue
			}
			f := v.AsFloat()
			b := int((f - lo) / width)
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
			counts[b]++
			sums[b] += f
		}
		for b := 0; b < bins; b++ {
			l.binMass[b] = counts[b] / n
			if counts[b] > 0 {
				l.binMean[b] = sums[b] / counts[b]
			} else {
				l.binMean[b] = (l.binLo[b] + l.binHi[b]) / 2
			}
		}
		return l
	}
	// Categorical (string/bool) leaf.
	l.catMass = map[string]float64{}
	for _, r := range rows {
		v := t.Rows[r][col]
		if v.IsNull() {
			l.nullFrac += 1 / n
			continue
		}
		l.catMass[v.Key()] += 1 / n
	}
	return l
}

// moment computes P(pred) and E[x · 1(pred)] for this column's predicate
// (if any; no predicate means P=1, E = E[x]).
func (l *leaf) moment(col int, preds predSet) (float64, float64) {
	pred := preds[l.col]
	wantMoment := col == l.col

	if l.numeric {
		var p, m float64
		for b := range l.binMass {
			frac := l.overlapFraction(b, pred)
			p += l.binMass[b] * frac
			m += l.binMass[b] * frac * l.binMean[b]
		}
		if pred == nil {
			p = 1 - l.nullFrac
		}
		if pred != nil && pred.negate {
			p = (1 - l.nullFrac) - p
			fullM := 0.0
			for b := range l.binMass {
				fullM += l.binMass[b] * l.binMean[b]
			}
			m = fullM - m
		}
		if !wantMoment {
			m = 0
		}
		return clamp01(p), m
	}
	// Categorical.
	var p float64
	if pred == nil {
		p = 1 - l.nullFrac
	} else if pred.inSet != nil {
		for key := range pred.inSet {
			p += l.catMass[key]
		}
		if pred.negate {
			p = (1 - l.nullFrac) - p
		}
	}
	if !wantMoment {
		return clamp01(p), 0
	}
	// Moments over categorical columns are meaningless; return 0.
	return clamp01(p), 0
}

// overlapFraction returns the fraction of bin b's mass satisfying pred's
// numeric range (uniform-within-bin assumption).
func (l *leaf) overlapFraction(b int, pred *predicate) float64 {
	if pred == nil {
		return 1
	}
	if pred.inSet != nil {
		// Numeric IN-set: count bins containing the values; approximate by
		// point mass at bucket mean.
		for key := range pred.inSet {
			_ = key
		}
		// Treated by equality ranges at extraction time; fall through.
	}
	if !pred.hasRange {
		return 1
	}
	lo, hi := l.binLo[b], l.binHi[b]
	a := math.Max(lo, pred.lo)
	z := math.Min(hi, pred.hi)
	if z < a {
		return 0
	}
	width := hi - lo
	if width <= 0 {
		return 1
	}
	f := (z - a) / width
	if f > 1 {
		f = 1
	}
	return f
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
