package spn

import (
	"fmt"
	"strings"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// AggregateEstimate holds estimated aggregate values keyed by group. Global
// (ungrouped) aggregates use the empty-string key.
type AggregateEstimate map[string]float64

// Estimate answers a single-table aggregate query (COUNT/SUM/AVG, optional
// WHERE conjunction of simple predicates, optional single-column GROUP BY)
// from the SPN alone. It returns the estimate for the first aggregate item
// in the SELECT list.
func (s *SPN) Estimate(stmt *sqlparse.Select) (AggregateEstimate, error) {
	if len(stmt.From) != 1 || len(stmt.Joins) != 0 {
		return nil, fmt.Errorf("spn: only single-table queries are supported")
	}
	if !strings.EqualFold(stmt.From[0].Table, s.tableName) {
		return nil, fmt.Errorf("spn: query targets %q, model covers %q", stmt.From[0].Table, s.tableName)
	}
	call := firstAggregate(stmt)
	if call == nil {
		return nil, fmt.Errorf("spn: no aggregate in SELECT list")
	}
	basePreds, err := s.extractPredicates(stmt.Where)
	if err != nil {
		return nil, err
	}

	var groupCol = -1
	if len(stmt.GroupBy) > 1 {
		return nil, fmt.Errorf("spn: at most one GROUP BY column supported")
	}
	if len(stmt.GroupBy) == 1 {
		ref, ok := stmt.GroupBy[0].(*sqlparse.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("spn: GROUP BY must be a plain column")
		}
		groupCol = s.schema.ColumnIndex(ref.Column)
		if groupCol < 0 {
			return nil, fmt.Errorf("spn: unknown GROUP BY column %q", ref.Column)
		}
	}

	out := AggregateEstimate{}
	if groupCol < 0 {
		v, err := s.estimateOne(call, basePreds)
		if err != nil {
			return nil, err
		}
		out[""] = v
		return out, nil
	}
	domain := s.groupDomains[groupCol]
	if len(domain) == 0 {
		return nil, fmt.Errorf("spn: GROUP BY column %q has too many distinct values", s.schema[groupCol].Name)
	}
	for _, gv := range domain {
		preds := clonePreds(basePreds)
		mergeEquality(preds, groupCol, gv)
		v, err := s.estimateOne(call, preds)
		if err != nil {
			return nil, err
		}
		// Only emit groups the model believes exist under the predicates.
		p, _ := s.root.moment(-1, preds)
		if p*float64(s.n) >= 0.5 {
			out[gv.String()] = v
		}
	}
	return out, nil
}

// estimateOne computes one aggregate under a predicate set.
func (s *SPN) estimateOne(call *sqlparse.Call, preds predSet) (float64, error) {
	switch call.Name {
	case "COUNT":
		p, _ := s.root.moment(-1, preds)
		return p * float64(s.n), nil
	case "SUM", "AVG":
		if call.Arg == nil {
			return 0, fmt.Errorf("spn: %s requires a column argument", call.Name)
		}
		ref, ok := call.Arg.(*sqlparse.ColumnRef)
		if !ok {
			return 0, fmt.Errorf("spn: %s argument must be a plain column", call.Name)
		}
		col := s.schema.ColumnIndex(ref.Column)
		if col < 0 {
			return 0, fmt.Errorf("spn: unknown column %q", ref.Column)
		}
		p, m := s.root.moment(col, preds)
		if call.Name == "SUM" {
			return m * float64(s.n), nil
		}
		if p <= 0 {
			return 0, nil
		}
		return m / p, nil
	default:
		return 0, fmt.Errorf("spn: unsupported aggregate %s", call.Name)
	}
}

// N returns the number of rows the SPN was learned from.
func (s *SPN) N() int { return s.n }

func firstAggregate(stmt *sqlparse.Select) *sqlparse.Call {
	for _, it := range stmt.Items {
		var found *sqlparse.Call
		sqlparse.Walk(it.Expr, func(e sqlparse.Expr) {
			if c, ok := e.(*sqlparse.Call); ok && found == nil {
				found = c
			}
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// extractPredicates converts a WHERE tree into per-column predicates. Only
// AND-combined simple predicates are supported; anything else errors so the
// caller can fall back.
func (s *SPN) extractPredicates(where sqlparse.Expr) (predSet, error) {
	preds := predSet{}
	for _, conj := range sqlparse.Conjuncts(where) {
		if err := s.addPredicate(preds, conj); err != nil {
			return nil, err
		}
	}
	return preds, nil
}

func (s *SPN) addPredicate(preds predSet, e sqlparse.Expr) error {
	switch x := e.(type) {
	case *sqlparse.Binary:
		ref, okL := x.Left.(*sqlparse.ColumnRef)
		lit, okR := x.Right.(*sqlparse.Literal)
		if !okL || !okR {
			return fmt.Errorf("spn: unsupported predicate %s", e)
		}
		col := s.schema.ColumnIndex(ref.Column)
		if col < 0 {
			return fmt.Errorf("spn: unknown column %q", ref.Column)
		}
		isInt := s.schema[col].Kind == table.KindInt
		v := lit.Value.AsFloat()
		switch x.Op {
		case "=":
			mergeEquality(preds, col, lit.Value)
			return nil
		case "<":
			if isInt {
				v -= 0.5 // x < v over integers means x <= v-1
			}
			mergeRange(preds, col, negInfinity, v)
			return nil
		case "<=":
			if isInt {
				v += 0.5
			}
			mergeRange(preds, col, negInfinity, v)
			return nil
		case ">":
			if isInt {
				v += 0.5
			}
			mergeRange(preds, col, v, posInfinity)
			return nil
		case ">=":
			if isInt {
				v -= 0.5
			}
			mergeRange(preds, col, v, posInfinity)
			return nil
		default:
			return fmt.Errorf("spn: unsupported operator %q", x.Op)
		}
	case *sqlparse.Between:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok || x.Not {
			return fmt.Errorf("spn: unsupported predicate %s", e)
		}
		lo, okL := x.Lo.(*sqlparse.Literal)
		hi, okH := x.Hi.(*sqlparse.Literal)
		if !okL || !okH {
			return fmt.Errorf("spn: unsupported predicate %s", e)
		}
		col := s.schema.ColumnIndex(ref.Column)
		if col < 0 {
			return fmt.Errorf("spn: unknown column %q", ref.Column)
		}
		loV, hiV := lo.Value.AsFloat(), hi.Value.AsFloat()
		if s.schema[col].Kind == table.KindInt {
			loV -= 0.5
			hiV += 0.5
		}
		mergeRange(preds, col, loV, hiV)
		return nil
	case *sqlparse.In:
		ref, ok := x.X.(*sqlparse.ColumnRef)
		if !ok || x.Not {
			return fmt.Errorf("spn: unsupported predicate %s", e)
		}
		col := s.schema.ColumnIndex(ref.Column)
		if col < 0 {
			return fmt.Errorf("spn: unknown column %q", ref.Column)
		}
		p := ensurePred(preds, col)
		if p.inSet == nil {
			p.inSet = map[string]bool{}
		}
		for _, item := range x.List {
			lit, ok := item.(*sqlparse.Literal)
			if !ok {
				return fmt.Errorf("spn: unsupported IN item %s", item)
			}
			p.inSet[lit.Value.Key()] = true
		}
		return nil
	default:
		return fmt.Errorf("spn: unsupported predicate %s", e)
	}
}

const (
	negInfinity = -1e300
	posInfinity = 1e300
)

func ensurePred(preds predSet, col int) *predicate {
	p := preds[col]
	if p == nil {
		p = &predicate{}
		preds[col] = p
	}
	return p
}

func mergeRange(preds predSet, col int, lo, hi float64) {
	p := ensurePred(preds, col)
	if !p.hasRange {
		p.hasRange = true
		p.lo, p.hi = lo, hi
		return
	}
	if lo > p.lo {
		p.lo = lo
	}
	if hi < p.hi {
		p.hi = hi
	}
}

func mergeEquality(preds predSet, col int, v table.Value) {
	p := ensurePred(preds, col)
	if v.IsNumeric() {
		f := v.AsFloat()
		// A narrow window around the point keeps the uniform-bin math sane.
		mergeRange(preds, col, f-1e-9, f+1e-9)
		// Integer equality: widen to the unit interval centred on f so the
		// histogram mass of that value is captured.
		if v.Kind == table.KindInt {
			p.hasRange = true
			p.lo, p.hi = f-0.5, f+0.5
		}
		return
	}
	if p.inSet == nil {
		p.inSet = map[string]bool{}
	}
	p.inSet[v.Key()] = true
}

func clonePreds(preds predSet) predSet {
	out := predSet{}
	for c, p := range preds {
		cp := *p
		if p.inSet != nil {
			cp.inSet = map[string]bool{}
			for k := range p.inSet {
				cp.inSet[k] = true
			}
		}
		out[c] = &cp
	}
	return out
}
