package spn

import (
	"math"
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

func flightsDB() *table.Database { return datagen.Flights(0.05, 3) }

func learned(t *testing.T) (*SPN, *table.Database) {
	t.Helper()
	db := flightsDB()
	s, err := Learn(db.Table("flights"), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

// truth executes the query exactly and maps group -> value (first agg item
// after the optional group column).
func truth(t *testing.T, db *table.Database, sql string) map[string]float64 {
	t.Helper()
	res, err := engine.ExecuteSQL(db, sql)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	stmt := sqlparse.MustParse(sql)
	hasGroup := len(stmt.GroupBy) > 0
	for _, r := range res.Table.Rows {
		if hasGroup {
			out[r[0].String()] = r[1].AsFloat()
		} else {
			out[""] = r[0].AsFloat()
		}
	}
	return out
}

func TestCountEstimates(t *testing.T) {
	s, db := learned(t)
	queries := []string{
		"SELECT COUNT(*) FROM flights WHERE dep_delay > 30",
		"SELECT COUNT(*) FROM flights WHERE carrier = 'AA'",
		"SELECT COUNT(*) FROM flights WHERE month BETWEEN 6 AND 8",
		"SELECT COUNT(*) FROM flights WHERE distance > 1000 AND dep_delay > 10",
	}
	for _, q := range queries {
		est, err := s.Estimate(sqlparse.MustParse(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := truth(t, db, q)[""]
		got := est[""]
		relErr := metrics.RelativeError(got, want)
		t.Logf("%s: est %.0f true %.0f (err %.3f)", q, got, want, relErr)
		if relErr > 0.35 {
			t.Errorf("%s: relative error %.3f too high (est %.0f, true %.0f)", q, relErr, got, want)
		}
	}
}

func TestSumAvgEstimates(t *testing.T) {
	s, db := learned(t)
	queries := []string{
		"SELECT SUM(distance) FROM flights WHERE carrier = 'AA'",
		"SELECT AVG(distance) FROM flights WHERE month = 6",
	}
	for _, q := range queries {
		est, err := s.Estimate(sqlparse.MustParse(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want := truth(t, db, q)[""]
		relErr := metrics.RelativeError(est[""], want)
		t.Logf("%s: est %.0f true %.0f (err %.3f)", q, est[""], want, relErr)
		if relErr > 0.4 {
			t.Errorf("%s: relative error %.3f too high", q, relErr)
		}
	}
}

func TestGroupByEstimates(t *testing.T) {
	s, db := learned(t)
	q := "SELECT carrier, COUNT(*) FROM flights WHERE dep_delay > 20 GROUP BY carrier"
	est, err := s.Estimate(sqlparse.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	want := truth(t, db, q)
	if len(est) == 0 {
		t.Fatal("no groups estimated")
	}
	gre := metrics.GroupRelativeError(map[string]float64(est), want)
	t.Logf("grouped count error: %.3f over %d true groups (%d estimated)", gre, len(want), len(est))
	if gre > 0.45 {
		t.Errorf("grouped relative error %.3f too high", gre)
	}
}

func TestAvgGroupEstimates(t *testing.T) {
	s, db := learned(t)
	q := "SELECT month, AVG(dep_delay) FROM flights GROUP BY month"
	est, err := s.Estimate(sqlparse.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	want := truth(t, db, q)
	gre := metrics.GroupRelativeError(map[string]float64(est), want)
	t.Logf("grouped avg error: %.3f", gre)
	if gre > 0.5 {
		t.Errorf("grouped avg error %.3f too high", gre)
	}
}

func TestUnsupportedQueries(t *testing.T) {
	s, _ := learned(t)
	bad := []string{
		"SELECT COUNT(*) FROM flights f JOIN flights g ON f.id = g.id",           // join
		"SELECT COUNT(*) FROM other_table",                                       // wrong table
		"SELECT carrier FROM flights",                                            // no aggregate
		"SELECT COUNT(*) FROM flights WHERE dep_delay > 10 OR month = 1",         // OR
		"SELECT MIN(distance) FROM flights",                                      // unsupported agg
		"SELECT carrier, origin, COUNT(*) FROM flights GROUP BY carrier, origin", // 2 group cols
	}
	for _, q := range bad {
		if _, err := s.Estimate(sqlparse.MustParse(q)); err == nil {
			t.Errorf("%s: expected error", q)
		}
	}
}

func TestLearnEmptyTableErrors(t *testing.T) {
	empty := table.New("flights", table.Schema{{Name: "a", Kind: table.KindInt}})
	if _, err := Learn(empty, Options{}); err == nil {
		t.Error("empty table should error")
	}
}

func TestEstimateNoPredicates(t *testing.T) {
	s, db := learned(t)
	q := "SELECT COUNT(*) FROM flights"
	est, err := s.Estimate(sqlparse.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(db.Table("flights").NumRows())
	if math.Abs(est[""]-want)/want > 0.01 {
		t.Errorf("unfiltered count = %.0f, want %.0f", est[""], want)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if got := pearson(a, b); math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", got)
	}
	c := []float64{5, 4, 3, 2, 1}
	if got := pearson(a, c); math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anti-correlation = %v", got)
	}
	if got := pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant column correlation = %v, want 0", got)
	}
}

func TestSPNDeterministic(t *testing.T) {
	db := flightsDB()
	s1, _ := Learn(db.Table("flights"), Options{Seed: 9})
	s2, _ := Learn(db.Table("flights"), Options{Seed: 9})
	q := sqlparse.MustParse("SELECT COUNT(*) FROM flights WHERE dep_delay > 15")
	e1, _ := s1.Estimate(q)
	e2, _ := s2.Estimate(q)
	if e1[""] != e2[""] {
		t.Errorf("same seed gave different estimates: %v vs %v", e1[""], e2[""])
	}
}

func TestNAccessor(t *testing.T) {
	s, db := learned(t)
	if s.N() != db.Table("flights").NumRows() {
		t.Errorf("N = %d", s.N())
	}
}
