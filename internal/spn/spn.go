// Package spn implements a sum-product network over a single table, the
// DeepDB comparator of Section 6.4. Structure learning follows the DeepDB
// recipe at miniature scale: column groups with low mutual correlation are
// split into product nodes (independence), row populations are split into
// sum nodes by 2-means clustering, and leaves hold per-column histograms
// with bucket means so COUNT, SUM and AVG (optionally GROUP BY) queries are
// answered by evaluating probabilities and first moments bottom-up — no data
// access at query time.
package spn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"asqprl/internal/table"
)

// Options configures SPN structure learning.
type Options struct {
	// MinRows is the row threshold below which no further sum-splits
	// happen (default 256).
	MinRows int
	// MaxDepth bounds recursion (default 8).
	MaxDepth int
	// Bins is the histogram resolution for numeric leaves (default 32).
	Bins int
	// CorrThreshold is the |Pearson correlation| above which two columns
	// stay in the same product-node group (default 0.3).
	CorrThreshold float64
	// Seed drives the row-cluster splits.
	Seed int64
}

func (o Options) normalize() Options {
	if o.MinRows <= 0 {
		o.MinRows = 256
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.Bins <= 0 {
		o.Bins = 32
	}
	if o.CorrThreshold <= 0 {
		o.CorrThreshold = 0.3
	}
	return o
}

// predicate restricts one column: a numeric interval and/or a categorical
// membership set.
type predicate struct {
	hasRange bool
	lo, hi   float64
	inSet    map[string]bool // Value.Key() members
	negate   bool            // for <> / NOT IN
}

// predSet maps column index to its (conjunctive) predicate.
type predSet map[int]*predicate

// node is an SPN node over a set of columns (its scope).
type node interface {
	// moment returns P(preds over scope) and E[x_col · 1(preds)] when col is
	// in scope (m is 0 and pOnly=true semantics when col is not in scope).
	moment(col int, preds predSet) (p float64, m float64)
	scope() []int
}

// SPN is a learned sum-product network for one table.
type SPN struct {
	tableName string
	schema    table.Schema
	n         int
	root      node
	// distinct values per column (capped), for GROUP BY enumeration.
	groupDomains map[int][]table.Value
}

// Learn fits an SPN to the rows of t.
func Learn(t *table.Table, opts Options) (*SPN, error) {
	opts = opts.normalize()
	if t.NumRows() == 0 {
		return nil, fmt.Errorf("spn: cannot learn from empty table %s", t.Name)
	}
	s := &SPN{
		tableName:    strings.ToLower(t.Name),
		schema:       t.Schema.Clone(),
		n:            t.NumRows(),
		groupDomains: map[int][]table.Value{},
	}
	rows := make([]int, t.NumRows())
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, len(t.Schema))
	for i := range cols {
		cols[i] = i
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	s.root = learnNode(t, rows, cols, 0, opts, rng)

	// Group-by domains: distinct values for low-cardinality columns.
	for ci := range t.Schema {
		seen := map[string]table.Value{}
		var order []string
		for _, r := range t.Rows {
			v := r[ci]
			if v.IsNull() {
				continue
			}
			k := v.Key()
			if _, ok := seen[k]; !ok {
				seen[k] = v
				order = append(order, k)
			}
			if len(seen) > 64 {
				break
			}
		}
		if len(seen) <= 64 {
			sort.Strings(order)
			for _, k := range order {
				s.groupDomains[ci] = append(s.groupDomains[ci], seen[k])
			}
		}
	}
	return s, nil
}

// --- structure learning ---

func learnNode(t *table.Table, rows, cols []int, depth int, opts Options, rng *rand.Rand) node {
	if len(cols) == 1 {
		return newLeaf(t, rows, cols[0], opts)
	}
	if len(rows) < opts.MinRows || depth >= opts.MaxDepth {
		return naiveProduct(t, rows, cols, opts)
	}
	// Try a column (independence) split.
	groups := splitColumns(t, rows, cols, opts)
	if len(groups) > 1 {
		p := &productNode{}
		for _, g := range groups {
			p.children = append(p.children, learnNode(t, rows, g, depth+1, opts, rng))
		}
		return p
	}
	// Row (mixture) split via 2-means.
	left, right := splitRows(t, rows, cols, rng)
	if len(left) == 0 || len(right) == 0 {
		return naiveProduct(t, rows, cols, opts)
	}
	total := float64(len(rows))
	return &sumNode{
		weights: []float64{float64(len(left)) / total, float64(len(right)) / total},
		children: []node{
			learnNode(t, left, cols, depth+1, opts, rng),
			learnNode(t, right, cols, depth+1, opts, rng),
		},
	}
}

// naiveProduct treats every column as independent.
func naiveProduct(t *table.Table, rows, cols []int, opts Options) node {
	p := &productNode{}
	for _, c := range cols {
		p.children = append(p.children, newLeaf(t, rows, c, opts))
	}
	return p
}

// colValue maps a cell to a float for correlation/clustering purposes.
func colValue(v table.Value) float64 {
	switch v.Kind {
	case table.KindInt, table.KindFloat:
		return v.AsFloat()
	case table.KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case table.KindString:
		// Stable cheap hash to a float — enough for correlation screening.
		var h float64
		for i := 0; i < len(v.Str) && i < 8; i++ {
			h = h*31 + float64(v.Str[i])
		}
		return h
	default:
		return 0
	}
}

// splitColumns groups cols into connected components of the |corr| >=
// threshold graph. One component means no split.
func splitColumns(t *table.Table, rows, cols []int, opts Options) [][]int {
	k := len(cols)
	// Sampled column vectors.
	sampleSize := len(rows)
	if sampleSize > 1000 {
		sampleSize = 1000
	}
	vals := make([][]float64, k)
	for i, c := range cols {
		v := make([]float64, sampleSize)
		step := len(rows) / sampleSize
		if step < 1 {
			step = 1
		}
		for j := 0; j < sampleSize; j++ {
			v[j] = colValue(t.Rows[rows[(j*step)%len(rows)]][c])
		}
		vals[i] = v
	}
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if math.Abs(pearson(vals[i], vals[j])) >= opts.CorrThreshold {
				parent[find(i)] = find(j)
			}
		}
	}
	comp := map[int][]int{}
	for i, c := range cols {
		root := find(i)
		comp[root] = append(comp[root], c)
	}
	var out [][]int
	roots := make([]int, 0, len(comp))
	for r := range comp {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		out = append(out, comp[r])
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// splitRows partitions rows by a single 2-means pass over normalized column
// values.
func splitRows(t *table.Table, rows, cols []int, rng *rand.Rand) (left, right []int) {
	if len(rows) < 2 {
		return rows, nil
	}
	// Normalization stats.
	means := make([]float64, len(cols))
	stds := make([]float64, len(cols))
	for i, c := range cols {
		var s, ss float64
		for _, r := range rows {
			f := colValue(t.Rows[r][c])
			s += f
			ss += f * f
		}
		n := float64(len(rows))
		means[i] = s / n
		stds[i] = math.Sqrt(math.Max(ss/n-means[i]*means[i], 1e-9))
	}
	feat := func(r int, buf []float64) []float64 {
		for i, c := range cols {
			buf[i] = (colValue(t.Rows[r][c]) - means[i]) / stds[i]
		}
		return buf
	}
	// Initialize centers from two random rows.
	c1 := make([]float64, len(cols))
	c2 := make([]float64, len(cols))
	feat(rows[rng.Intn(len(rows))], c1)
	feat(rows[rng.Intn(len(rows))], c2)
	buf := make([]float64, len(cols))
	assign := make([]bool, len(rows)) // true = right
	for iter := 0; iter < 8; iter++ {
		var s1, s2 []float64
		s1 = make([]float64, len(cols))
		s2 = make([]float64, len(cols))
		n1, n2 := 0, 0
		for ri, r := range rows {
			f := feat(r, buf)
			d1, d2 := 0.0, 0.0
			for i := range f {
				a := f[i] - c1[i]
				b := f[i] - c2[i]
				d1 += a * a
				d2 += b * b
			}
			assign[ri] = d2 < d1
			if assign[ri] {
				for i := range f {
					s2[i] += f[i]
				}
				n2++
			} else {
				for i := range f {
					s1[i] += f[i]
				}
				n1++
			}
		}
		if n1 == 0 || n2 == 0 {
			break
		}
		for i := range c1 {
			c1[i] = s1[i] / float64(n1)
			c2[i] = s2[i] / float64(n2)
		}
	}
	for ri, r := range rows {
		if assign[ri] {
			right = append(right, r)
		} else {
			left = append(left, r)
		}
	}
	return left, right
}
