// Package table implements the in-memory relational storage substrate used
// throughout the ASQP-RL reproduction: typed values, schemas, tables, row
// identifiers, databases (catalogs of tables), subsets of databases, and CSV
// import/export.
//
// The storage model is deliberately simple — row-major slices of Value — so
// that the query engine (internal/engine), the preprocessing pipeline and
// every baseline operate over exactly the same representation.
package table

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the storage engine.
type Kind uint8

const (
	// KindNull is the kind of the SQL NULL value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the lower-case name of the kind ("int", "float", ...).
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name produced by Kind.String back into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "null":
		return KindNull, nil
	case "int", "integer", "int64":
		return KindInt, nil
	case "float", "float64", "double", "real":
		return KindFloat, nil
	case "string", "text", "varchar":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("table: unknown kind %q", s)
	}
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether the value is an int or a float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat converts a numeric or boolean value to float64. NULL and strings
// convert to 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindFloat:
		return int64(v.Float)
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// String renders the value for display and CSV output. NULL renders as the
// empty string, which ReadCSV maps back to NULL for non-string columns.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		return strconv.FormatBool(v.Bool)
	default:
		return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
	}
}

// Key returns a string that uniquely identifies the value across kinds; it is
// suitable for use as a map key (hash joins, grouping, Jaccard sets).
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// AppendKey appends the value's key bytes (see Key) to dst and returns the
// extended slice. Hot paths reuse dst across values so keying a row costs no
// allocations once the buffer has grown.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 0, 'n')
	case KindInt:
		return strconv.AppendInt(append(dst, 0, 'i'), v.Int, 10)
	case KindFloat:
		// Integral floats share keys with ints so joins across int/float
		// columns behave as SQL users expect.
		if v.Float == float64(int64(v.Float)) {
			return strconv.AppendInt(append(dst, 0, 'i'), int64(v.Float), 10)
		}
		return strconv.AppendFloat(append(dst, 0, 'f'), v.Float, 'g', -1, 64)
	case KindString:
		return append(append(dst, 0, 's'), v.Str...)
	case KindBool:
		if v.Bool {
			return append(dst, 0, 'b', '1')
		}
		return append(dst, 0, 'b', '0')
	default:
		return append(dst, 0, '?')
	}
}

// Equal reports SQL equality between two values. NULL never equals anything,
// including NULL. Ints and floats compare numerically.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindBool:
		return v.Bool == o.Bool
	default:
		return false
	}
}

// Compare returns -1, 0 or +1 ordering v before, equal to, or after o.
// NULL sorts before every non-NULL value; mixed numeric kinds compare
// numerically; otherwise values of different kinds order by kind.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.Str, o.Str)
	case KindBool:
		switch {
		case v.Bool == o.Bool:
			return 0
		case !v.Bool:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// ParseValue parses s as the given kind. The empty string parses to NULL for
// every kind except KindString.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "" && k != KindString {
		return Null, nil
	}
	switch k {
	case KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("table: parse int %q: %w", s, err)
		}
		return NewInt(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("table: parse float %q: %w", s, err)
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(s), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null, fmt.Errorf("table: parse bool %q: %w", s, err)
		}
		return NewBool(b), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("table: parse: unknown kind %v", k)
	}
}
