package table

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the columnar view of a Table: typed column vectors
// (int64/float64/bool), dictionary-encoded strings, validity bitmaps, and
// per-chunk zone maps. The row-major Rows slice remains the source of truth —
// CSV load, lineage (RowID) and snapshot persistence are untouched — and the
// columnar form is derived lazily and cached, invalidated on AppendRow.
//
// The engine's vectorized operators consume this view; everything else keeps
// reading Rows. A column whose cells disagree with the declared schema kind
// is marked Mixed and the engine falls back to row-at-a-time evaluation for
// predicates touching it, so the columnar path never has to reproduce
// cross-kind coercion semantics cell by cell.

// ZoneChunkRows is the number of rows summarized by one zone-map entry. It is
// deliberately equal to the engine's morsel size so a zone prunes exactly one
// morsel.
const ZoneChunkRows = 1024

// Bitmap is a dense bitset over row indices.
type Bitmap []uint64

// NewBitmap returns a bitmap with capacity for n bits, all zero.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Dict is a first-appearance string dictionary: code i maps to the i-th
// distinct string encountered in row order, so dictionary contents are
// deterministic for a given table.
type Dict struct {
	Strs  []string
	codes map[string]int32
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int { return len(d.Strs) }

// Code returns the code for s, if present.
func (d *Dict) Code(s string) (int32, bool) {
	c, ok := d.codes[s]
	return c, ok
}

func (d *Dict) add(s string) int32 {
	if c, ok := d.codes[s]; ok {
		return c
	}
	if d.codes == nil {
		d.codes = make(map[string]int32)
	}
	c := int32(len(d.Strs))
	d.Strs = append(d.Strs, s)
	d.codes[s] = c
	return c
}

// Zone summarizes one ZoneChunkRows-sized chunk of a column: min/max over
// non-null cells (numeric columns only) plus null/value presence flags. The
// engine consults zones to skip whole morsels that cannot satisfy a filter.
type Zone struct {
	// Min and Max bound the non-null values of the chunk as float64 (the
	// engine compares numerics through float64, matching Value.Compare).
	// They are meaningful only when HasValue is true and the column kind is
	// numeric.
	Min, Max float64
	// HasValue reports whether the chunk holds at least one non-null cell.
	HasValue bool
	// HasNull reports whether the chunk holds at least one NULL cell.
	HasNull bool
}

// ColumnData is the columnar form of a single column. Exactly one of the
// typed vectors is populated, chosen by the declared schema Kind; cells whose
// runtime kind disagrees with the declaration mark the column Mixed, in which
// case no vectors are built and callers must read Rows.
type ColumnData struct {
	Kind  Kind
	Mixed bool
	// Nulls is non-nil iff the column has at least one NULL cell.
	Nulls Bitmap
	// Ints holds KindInt cells (0 at NULL positions).
	Ints []int64
	// Floats holds KindFloat cells (0 at NULL positions).
	Floats []float64
	// Bools holds KindBool cells (false at NULL positions).
	Bools []bool
	// Codes holds dictionary codes for KindString cells (-1 at NULL
	// positions); Dict resolves codes back to strings.
	Codes []int32
	Dict  *Dict
	// Zones has one entry per ZoneChunkRows rows (last chunk may be short).
	Zones []Zone
}

// IsNull reports whether cell i is NULL.
func (c *ColumnData) IsNull(i int) bool { return c.Nulls != nil && c.Nulls.Get(i) }

// HasNulls reports whether any cell is NULL.
func (c *ColumnData) HasNulls() bool { return c.Nulls != nil }

// Value reconstructs cell i as a Value. It must not be called on Mixed
// columns.
func (c *ColumnData) Value(i int) Value {
	if c.IsNull(i) {
		return Null
	}
	switch c.Kind {
	case KindInt:
		return NewInt(c.Ints[i])
	case KindFloat:
		return NewFloat(c.Floats[i])
	case KindString:
		return NewString(c.Dict.Strs[c.Codes[i]])
	case KindBool:
		return NewBool(c.Bools[i])
	default:
		return Null
	}
}

// ColumnSet is the cached columnar view of a whole table.
type ColumnSet struct {
	NumRows int
	Cols    []ColumnData
}

// Columns returns the columnar view of the table, building and caching it on
// first use. The cache is invalidated by AppendRow; concurrent callers may
// build redundantly but always observe a complete, immutable ColumnSet.
func (t *Table) Columns() *ColumnSet {
	if cs := t.cols.Load(); cs != nil {
		return cs
	}
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if cs := t.cols.Load(); cs != nil {
		return cs
	}
	cs := buildColumnSet(t)
	t.cols.Store(cs)
	return cs
}

func buildColumnSet(t *Table) *ColumnSet {
	cs := &ColumnSet{NumRows: len(t.Rows), Cols: make([]ColumnData, len(t.Schema))}
	for ci := range t.Schema {
		buildColumn(t, ci, &cs.Cols[ci])
	}
	return cs
}

func buildColumn(t *Table, ci int, out *ColumnData) {
	n := len(t.Rows)
	kind := t.Schema[ci].Kind
	out.Kind = kind
	if kind == KindNull {
		// A column declared NULL holds no typed vector worth building.
		out.Mixed = true
		return
	}
	switch kind {
	case KindInt:
		out.Ints = make([]int64, n)
	case KindFloat:
		out.Floats = make([]float64, n)
	case KindString:
		out.Codes = make([]int32, n)
		out.Dict = &Dict{}
	case KindBool:
		out.Bools = make([]bool, n)
	}
	nChunks := (n + ZoneChunkRows - 1) / ZoneChunkRows
	zones := make([]Zone, nChunks)
	for i, r := range t.Rows {
		v := r[ci]
		z := &zones[i/ZoneChunkRows]
		if v.Kind == KindNull {
			if out.Nulls == nil {
				out.Nulls = NewBitmap(n)
			}
			out.Nulls.Set(i)
			if out.Codes != nil {
				out.Codes[i] = -1
			}
			z.HasNull = true
			continue
		}
		if v.Kind != kind {
			*out = ColumnData{Kind: kind, Mixed: true}
			return
		}
		switch kind {
		case KindInt:
			out.Ints[i] = v.Int
			updateZone(z, float64(v.Int))
		case KindFloat:
			out.Floats[i] = v.Float
			updateZone(z, v.Float)
		case KindString:
			out.Codes[i] = out.Dict.add(v.Str)
			z.HasValue = true
		case KindBool:
			out.Bools[i] = v.Bool
			z.HasValue = true
		}
	}
	out.Zones = zones
}

func updateZone(z *Zone, v float64) {
	if v != v {
		// NaN compares as equal-to-everything under Value.Compare, so a chunk
		// containing NaN can satisfy any ordered predicate: poison the zone to
		// an infinite range so no prune rule ever fires on it.
		z.Min, z.Max = math.Inf(-1), math.Inf(1)
		z.HasValue = true
		return
	}
	if !z.HasValue {
		z.Min, z.Max = v, v
		z.HasValue = true
		return
	}
	if v < z.Min {
		z.Min = v
	}
	if v > z.Max {
		z.Max = v
	}
}

// cache holds the lazily-derived per-table indexes: the columnar view and the
// case-folded column-name index. It lives in its own struct so Table's hot
// fields stay simple and the zero Table remains usable.
type cache struct {
	cols    atomic.Pointer[ColumnSet]
	colsMu  sync.Mutex
	nameIdx atomic.Pointer[nameIndexData]
}

// invalidate drops the columnar view (called on row mutation). The name index
// survives: the schema is fixed at New time.
func (c *cache) invalidate() {
	if c.cols.Load() != nil {
		c.cols.Store(nil)
	}
}

// nameIndexData is the memoized case-folded column-name index. ascii reports
// whether every schema name is plain ASCII; when it is, a map miss on an
// ASCII lookup is a definitive miss (ASCII ToLower and EqualFold agree).
type nameIndexData struct {
	m     map[string]int
	ascii bool
}

// nameIndex returns the memoized case-folded name→index map for the schema,
// building it on first use. Duplicate folded names keep the first index,
// matching the linear scan's first-match behavior.
func (t *Table) nameIndex() *nameIndexData {
	if ni := t.nameIdx.Load(); ni != nil {
		return ni
	}
	ni := &nameIndexData{m: make(map[string]int, len(t.Schema)), ascii: true}
	for i, c := range t.Schema {
		if !asciiOnly(c.Name) {
			ni.ascii = false
		}
		key := strings.ToLower(c.Name)
		if _, ok := ni.m[key]; !ok {
			ni.m[key] = i
		}
	}
	t.nameIdx.Store(ni)
	return ni
}

func asciiOnly(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// lookupFolded probes the name index without allocating for ASCII names of
// reasonable length (the overwhelmingly common case for SQL identifiers).
func lookupFolded(ni *nameIndexData, name string) (int, bool) {
	needsFold := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 0x80 || (c >= 'A' && c <= 'Z') {
			needsFold = true
			break
		}
	}
	if !needsFold {
		i, ok := ni.m[name]
		return i, ok
	}
	if len(name) <= 64 && asciiOnly(name) {
		var buf [64]byte
		for i := 0; i < len(name); i++ {
			c := name[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		i, ok := ni.m[string(buf[:len(name)])]
		return i, ok
	}
	i, ok := ni.m[strings.ToLower(name)]
	return i, ok
}
