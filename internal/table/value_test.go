package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v       Value
		kind    Kind
		asFloat float64
		str     string
	}{
		{NewInt(42), KindInt, 42, "42"},
		{NewInt(-7), KindInt, -7, "-7"},
		{NewFloat(2.5), KindFloat, 2.5, "2.5"},
		{NewString("abc"), KindString, 0, "abc"},
		{NewBool(true), KindBool, 1, "true"},
		{NewBool(false), KindBool, 0, "false"},
		{Null, KindNull, 0, ""},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.AsFloat(); got != c.asFloat {
			t.Errorf("%v: AsFloat = %v, want %v", c.v, got, c.asFloat)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("%v: String = %q, want %q", c.v, got, c.str)
		}
	}
}

func TestValueEqualNullSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Error("NULL = NULL should be false (SQL semantics)")
	}
	if Null.Equal(NewInt(0)) || NewInt(0).Equal(Null) {
		t.Error("NULL should not equal any value")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3.0)) {
		t.Error("int 3 should equal float 3.0")
	}
	if NewInt(3).Equal(NewFloat(3.5)) {
		t.Error("int 3 should not equal float 3.5")
	}
	if NewInt(1).Equal(NewString("1")) {
		t.Error("int should not equal string")
	}
}

func TestValueCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	vals := []Value{NewInt(1), NewString("1"), NewBool(true), Null, NewFloat(1.5)}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %v and %v", prev, v)
		}
		seen[k] = v
	}
}

func TestValueKeyIntFloatJoinCompat(t *testing.T) {
	// Integral floats must share keys with the equivalent int so hash joins
	// across int/float columns match Equal semantics.
	if NewInt(7).Key() != NewFloat(7.0).Key() {
		t.Error("int 7 and float 7.0 should share a key")
	}
	if NewInt(7).Key() == NewFloat(7.5).Key() {
		t.Error("int 7 and float 7.5 should not share a key")
	}
}

func TestValueKeyConsistentWithEqual(t *testing.T) {
	// Property: for non-null values, Equal implies same Key.
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if va.Equal(vb) {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{
		NewInt(123), NewInt(-5), NewFloat(1.25), NewFloat(-0.5),
		NewString("hello world"), NewBool(true), NewBool(false),
	}
	for _, v := range vals {
		got, err := ParseValue(v.String(), v.Kind)
		if err != nil {
			t.Fatalf("ParseValue(%q, %v): %v", v.String(), v.Kind, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip of %v gave %v", v, got)
		}
	}
}

func TestParseValueEmptyIsNull(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindBool} {
		v, err := ParseValue("", k)
		if err != nil {
			t.Fatalf("ParseValue empty %v: %v", k, err)
		}
		if !v.IsNull() {
			t.Errorf("empty string as %v should be NULL, got %v", k, v)
		}
	}
	v, err := ParseValue("", KindString)
	if err != nil || v.IsNull() || v.Str != "" {
		t.Errorf("empty string as string should be empty string, got %v (%v)", v, err)
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue("abc", KindInt); err == nil {
		t.Error("parsing 'abc' as int should fail")
	}
	if _, err := ParseValue("1.2.3", KindFloat); err == nil {
		t.Error("parsing '1.2.3' as float should fail")
	}
	if _, err := ParseValue("yes please", KindBool); err == nil {
		t.Error("parsing 'yes please' as bool should fail")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString, KindBool} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("widget"); err == nil {
		t.Error("ParseKind of unknown name should fail")
	}
}

func TestFloatProperties(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := NewFloat(x)
		return v.AsFloat() == x && v.Compare(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
