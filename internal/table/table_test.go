package table

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tab := New("movies", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "title", Kind: KindString},
		{Name: "year", Kind: KindInt},
		{Name: "rating", Kind: KindFloat},
	})
	tab.AppendRow(Row{NewInt(1), NewString("Alpha"), NewInt(1999), NewFloat(8.1)})
	tab.AppendRow(Row{NewInt(2), NewString("Beta"), NewInt(2005), NewFloat(6.4)})
	tab.AppendRow(Row{NewInt(3), NewString("Gamma"), NewInt(2010), Null})
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := testTable(t)
	if tab.NumRows() != 3 || tab.NumCols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", tab.NumRows(), tab.NumCols())
	}
	if tab.ColumnIndex("TITLE") != 1 {
		t.Error("column lookup should be case-insensitive")
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("missing column should return -1")
	}
	col, err := tab.Column("year")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 3 || col[0].Int != 1999 {
		t.Errorf("Column(year) = %v", col)
	}
	if _, err := tab.Column("missing"); err == nil {
		t.Error("Column on missing name should error")
	}
}

func TestTableAppendArityPanics(t *testing.T) {
	tab := testTable(t)
	defer func() {
		if recover() == nil {
			t.Error("appending wrong-arity row should panic")
		}
	}()
	tab.AppendRow(Row{NewInt(1)})
}

func TestTableSelect(t *testing.T) {
	tab := testTable(t)
	sel := tab.Select([]int{2, 0, 99, -1})
	if sel.NumRows() != 2 {
		t.Fatalf("Select kept %d rows, want 2 (out-of-range skipped)", sel.NumRows())
	}
	if sel.Rows[0][1].Str != "Gamma" || sel.Rows[1][1].Str != "Alpha" {
		t.Errorf("Select order not preserved: %v", sel.Rows)
	}
}

func TestTableCloneIndependence(t *testing.T) {
	tab := testTable(t)
	cl := tab.Clone()
	cl.Rows[0][1] = NewString("Mutated")
	if tab.Rows[0][1].Str != "Alpha" {
		t.Error("mutating clone affected original")
	}
}

func TestDatabaseCatalog(t *testing.T) {
	db := NewDatabase()
	db.Add(testTable(t))
	other := New("People", Schema{{Name: "id", Kind: KindInt}})
	other.AppendRow(Row{NewInt(1)})
	db.Add(other)

	if db.Table("MOVIES") == nil || db.Table("people") == nil {
		t.Error("table lookup should be case-insensitive")
	}
	if db.Table("ghost") != nil {
		t.Error("missing table should be nil")
	}
	if got := db.TotalRows(); got != 4 {
		t.Errorf("TotalRows = %d, want 4", got)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "movies" || names[1] != "people" {
		t.Errorf("TableNames = %v", names)
	}
	// Replacing a table keeps order and count.
	db.Add(New("movies", Schema{{Name: "x", Kind: KindInt}}))
	if len(db.TableNames()) != 2 {
		t.Error("re-adding existing table should not duplicate entry")
	}
}

func TestSubsetBasics(t *testing.T) {
	s := NewSubset()
	s.Add(RowID{Table: "Movies", Row: 1})
	s.Add(RowID{Table: "movies", Row: 1}) // duplicate, different case
	s.Add(RowID{Table: "movies", Row: 0})
	s.Add(RowID{Table: "people", Row: 5})

	if s.Size() != 3 {
		t.Errorf("Size = %d, want 3", s.Size())
	}
	if !s.Contains(RowID{Table: "MOVIES", Row: 1}) {
		t.Error("Contains should be case-insensitive")
	}
	if s.Contains(RowID{Table: "movies", Row: 7}) {
		t.Error("Contains on absent row")
	}
	rows := s.TableRows("movies")
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Errorf("TableRows = %v, want [0 1]", rows)
	}
	ids := s.IDs()
	if len(ids) != 3 || ids[0].Table != "movies" || ids[2].Table != "people" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestSubsetMaterialize(t *testing.T) {
	db := NewDatabase()
	db.Add(testTable(t))
	empty := New("empty", Schema{{Name: "id", Kind: KindInt}})
	db.Add(empty)

	s := NewSubset()
	s.Add(RowID{Table: "movies", Row: 0})
	s.Add(RowID{Table: "movies", Row: 2})
	sub := s.Materialize(db)

	m := sub.Table("movies")
	if m.NumRows() != 2 {
		t.Fatalf("materialized movies has %d rows, want 2", m.NumRows())
	}
	if m.Rows[0][1].Str != "Alpha" || m.Rows[1][1].Str != "Gamma" {
		t.Errorf("materialized rows = %v", m.Rows)
	}
	// Tables with no selected rows exist but are empty.
	if e := sub.Table("empty"); e == nil || e.NumRows() != 0 {
		t.Error("unselected table should materialize empty, not missing")
	}
}

func TestSubsetCloneIndependence(t *testing.T) {
	s := NewSubset()
	s.Add(RowID{Table: "t", Row: 1})
	c := s.Clone()
	c.Add(RowID{Table: "t", Row: 2})
	if s.Size() != 1 || c.Size() != 2 {
		t.Errorf("clone not independent: orig=%d clone=%d", s.Size(), c.Size())
	}
}

func TestSubsetSizeProperty(t *testing.T) {
	// Property: Size equals the number of distinct (table,row) pairs added.
	f := func(rows []uint8) bool {
		s := NewSubset()
		distinct := map[int]bool{}
		for _, r := range rows {
			s.Add(RowID{Table: "t", Row: int(r)})
			distinct[int(r)] = true
		}
		return s.Size() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyUniqueness(t *testing.T) {
	a := Row{NewString("x"), NewString("y")}
	b := Row{NewString("xy"), NewString("")}
	if a.Key() == b.Key() {
		t.Error("row keys should not collide across different splits")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := testTable(t)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("movies", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != tab.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", got.NumRows(), tab.NumRows())
	}
	for i, r := range tab.Rows {
		for j, v := range r {
			g := got.Rows[i][j]
			if v.IsNull() != g.IsNull() || (!v.IsNull() && !v.Equal(g)) {
				t.Errorf("cell (%d,%d): got %v want %v", i, j, g, v)
			}
		}
	}
	if got.Schema.String() != tab.Schema.String() {
		t.Errorf("schema round trip: got %q want %q", got.Schema.String(), tab.Schema.String())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("id\n1\n")); err == nil {
		t.Error("header without kind should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("id:widget\n1\n")); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("id:int\nnot_a_number\n")); err == nil {
		t.Error("bad int cell should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("id:int,name:string\n1\n")); err == nil {
		t.Error("wrong field count should fail")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}}
	if got := s.Names(); len(got) != 2 || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
	cl := s.Clone()
	cl[0].Name = "z"
	if s[0].Name != "a" {
		t.Error("Clone should be independent")
	}
	if s.String() != "a:int, b:string" {
		t.Errorf("String = %q", s.String())
	}
}

func TestRowIDString(t *testing.T) {
	id := RowID{Table: "movies", Row: 42}
	if id.String() != "movies:42" {
		t.Errorf("RowID.String = %q", id.String())
	}
}
