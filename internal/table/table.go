package table

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the index of the named column, or -1. The scan is
// linear; Table.ColumnIndex memoizes a case-folded map and should be
// preferred on hot paths.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "name:kind, name:kind, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Row is one tuple: a slice of values aligned with a Schema.
type Row []Value

// Key returns a string that uniquely identifies the row's contents.
func (r Row) Key() string { return string(r.AppendKey(nil)) }

// AppendKey appends the row's key bytes (see Key) to dst and returns the
// extended slice. Callers on hot paths reuse dst across rows to avoid the
// per-row allocation of Key.
func (r Row) AppendKey(dst []byte) []byte {
	for _, v := range r {
		dst = v.AppendKey(dst)
		dst = append(dst, 0x1f)
	}
	return dst
}

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a named relation: a schema plus row-major tuple storage. The
// embedded cache lazily derives a columnar view (see Columns) and a
// case-folded column-name index; both are rebuilt on demand and never
// serialized.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row

	cache
}

// New creates an empty table with the given name and schema.
func New(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema.Clone()}
}

// NumRows returns the number of tuples in the table.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Schema) }

// AppendRow adds a tuple. It panics if the arity does not match the schema,
// since that is always a programming error in this codebase.
func (t *Table) AppendRow(r Row) {
	if len(r) != len(t.Schema) {
		panic(fmt.Sprintf("table %s: row arity %d != schema arity %d", t.Name, len(r), len(t.Schema)))
	}
	t.Rows = append(t.Rows, r)
	t.cache.invalidate()
}

// ColumnIndex returns the index of the named column, or -1. Unlike
// Schema.ColumnIndex it answers from a memoized case-folded map, so repeated
// lookups (binder resolution, projection, ORDER BY) are O(1).
func (t *Table) ColumnIndex(name string) int {
	ni := t.nameIndex()
	if i, ok := lookupFolded(ni, name); ok {
		return i
	}
	if !ni.ascii || !asciiOnly(name) {
		// Exotic Unicode identifiers: defer to the reference EqualFold scan,
		// whose simple-fold semantics differ from ToLower in rare cases.
		return t.Schema.ColumnIndex(name)
	}
	return -1
}

// Column returns all values of the named column. It returns an error if the
// column does not exist.
func (t *Table) Column(name string) ([]Value, error) {
	idx := t.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("table %s: no column %q", t.Name, name)
	}
	out := make([]Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out, nil
}

// Select returns a new table containing the rows at the given indices (in the
// given order). Indices out of range are skipped.
func (t *Table) Select(indices []int) *Table {
	out := New(t.Name, t.Schema)
	out.Rows = make([]Row, 0, len(indices))
	for _, i := range indices {
		if i >= 0 && i < len(t.Rows) {
			out.Rows = append(out.Rows, t.Rows[i])
		}
	}
	return out
}

// Clone returns a deep copy of the table (rows are shallow-copied Value
// slices, which is safe because Value is immutable by convention).
func (t *Table) Clone() *Table {
	out := New(t.Name, t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// RowID identifies a base tuple by table name and row index. It is the unit
// of membership in approximation sets.
type RowID struct {
	Table string
	Row   int
}

// String renders the RowID as "table:row".
func (id RowID) String() string { return fmt.Sprintf("%s:%d", id.Table, id.Row) }

// Database is a catalog of tables. Table order is preserved for deterministic
// iteration.
type Database struct {
	names  []string
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// Add inserts or replaces a table.
func (d *Database) Add(t *Table) {
	key := strings.ToLower(t.Name)
	if _, ok := d.tables[key]; !ok {
		d.names = append(d.names, key)
	}
	d.tables[key] = t
}

// Table returns the named table (case-insensitive), or nil.
func (d *Database) Table(name string) *Table {
	return d.tables[strings.ToLower(name)]
}

// TableNames returns table names in insertion order.
func (d *Database) TableNames() []string {
	out := make([]string, len(d.names))
	copy(out, d.names)
	return out
}

// Tables returns all tables in insertion order.
func (d *Database) Tables() []*Table {
	out := make([]*Table, 0, len(d.names))
	for _, n := range d.names {
		out = append(out, d.tables[n])
	}
	return out
}

// TotalRows returns the total tuple count over all tables.
func (d *Database) TotalRows() int {
	total := 0
	for _, t := range d.Tables() {
		total += t.NumRows()
	}
	return total
}

// Subset is a selection of row indices per table, i.e. an approximation set
// 𝒮 = {S1..Sn} in the paper's notation. Indices refer to rows of the parent
// database's tables.
type Subset struct {
	rows map[string]map[int]bool
}

// NewSubset creates an empty subset.
func NewSubset() *Subset {
	return &Subset{rows: make(map[string]map[int]bool)}
}

// Add inserts a row reference. Duplicate additions are idempotent.
func (s *Subset) Add(id RowID) {
	key := strings.ToLower(id.Table)
	m := s.rows[key]
	if m == nil {
		m = make(map[int]bool)
		s.rows[key] = m
	}
	m[id.Row] = true
}

// AddAll inserts every row reference in ids.
func (s *Subset) AddAll(ids []RowID) {
	for _, id := range ids {
		s.Add(id)
	}
}

// Contains reports whether the subset holds the row.
func (s *Subset) Contains(id RowID) bool {
	return s.rows[strings.ToLower(id.Table)][id.Row]
}

// Size returns Σ|S_i|, the total number of tuples in the subset.
func (s *Subset) Size() int {
	total := 0
	for _, m := range s.rows {
		total += len(m)
	}
	return total
}

// TableRows returns the sorted row indices kept for the named table.
func (s *Subset) TableRows(name string) []int {
	m := s.rows[strings.ToLower(name)]
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// IDs returns every row reference in the subset, sorted by table then row.
func (s *Subset) IDs() []RowID {
	tables := make([]string, 0, len(s.rows))
	for t := range s.rows {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var out []RowID
	for _, t := range tables {
		for _, r := range s.TableRows(t) {
			out = append(out, RowID{Table: t, Row: r})
		}
	}
	return out
}

// Clone returns a deep copy of the subset.
func (s *Subset) Clone() *Subset {
	out := NewSubset()
	for t, m := range s.rows {
		nm := make(map[int]bool, len(m))
		for r := range m {
			nm[r] = true
		}
		out.rows[t] = nm
	}
	return out
}

// Materialize builds a Database holding only the subset's rows of db. Tables
// of db with no selected rows are materialized empty, so queries referencing
// them still execute (and return empty results).
func (s *Subset) Materialize(db *Database) *Database {
	out := NewDatabase()
	for _, t := range db.Tables() {
		out.Add(t.Select(s.TableRows(t.Name)))
	}
	return out
}
