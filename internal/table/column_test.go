package table

import (
	"fmt"
	"testing"
)

func colFixture() *Table {
	t := New("mix", Schema{
		{Name: "Id", Kind: KindInt},
		{Name: "Score", Kind: KindFloat},
		{Name: "Genre", Kind: KindString},
		{Name: "Active", Kind: KindBool},
	})
	t.AppendRow(Row{NewInt(3), NewFloat(1.5), NewString("drama"), NewBool(true)})
	t.AppendRow(Row{NewInt(1), Null, NewString("comedy"), NewBool(false)})
	t.AppendRow(Row{NewInt(2), NewFloat(-0.5), NewString("drama"), Null})
	t.AppendRow(Row{Null, NewFloat(9), Null, NewBool(true)})
	return t
}

func TestColumnsBuildTypedVectors(t *testing.T) {
	tbl := colFixture()
	cs := tbl.Columns()
	if cs.NumRows != 4 {
		t.Fatalf("NumRows = %d, want 4", cs.NumRows)
	}
	ints := cs.Cols[0]
	if ints.Mixed || ints.Kind != KindInt {
		t.Fatalf("int column: Mixed=%v Kind=%v", ints.Mixed, ints.Kind)
	}
	if ints.Ints[0] != 3 || ints.Ints[1] != 1 || ints.Ints[2] != 2 {
		t.Fatalf("int vector = %v", ints.Ints)
	}
	if !ints.IsNull(3) || ints.IsNull(0) {
		t.Fatal("int null bitmap wrong")
	}
	strs := cs.Cols[2]
	if strs.Dict.Len() != 2 {
		t.Fatalf("dict size = %d, want 2 distinct strings", strs.Dict.Len())
	}
	// First-appearance coding: drama=0, comedy=1.
	if strs.Codes[0] != 0 || strs.Codes[1] != 1 || strs.Codes[2] != 0 {
		t.Fatalf("codes = %v", strs.Codes)
	}
	if strs.Codes[3] != -1 || !strs.IsNull(3) {
		t.Fatal("NULL string cell should carry code -1 and a null bit")
	}
	if c, ok := strs.Dict.Code("drama"); !ok || c != 0 {
		t.Fatalf("Code(drama) = %d,%v", c, ok)
	}
	if _, ok := strs.Dict.Code("noir"); ok {
		t.Fatal("Code(noir) should miss")
	}
	// Every cell round-trips through Value.
	for ci := range tbl.Schema {
		for ri, r := range tbl.Rows {
			got, want := cs.Cols[ci].Value(ri), r[ci]
			if got.Key() != want.Key() {
				t.Fatalf("col %d row %d: %v != %v", ci, ri, got, want)
			}
		}
	}
}

func TestColumnsMixedFallback(t *testing.T) {
	tbl := New("m", Schema{{Name: "x", Kind: KindInt}})
	tbl.AppendRow(Row{NewInt(1)})
	tbl.AppendRow(Row{NewString("oops")})
	cs := tbl.Columns()
	if !cs.Cols[0].Mixed {
		t.Fatal("kind-mismatched cell must mark the column Mixed")
	}
	// A column declared KindNull never gets vectors either.
	tn := New("n", Schema{{Name: "v", Kind: KindNull}})
	tn.AppendRow(Row{Null})
	if !tn.Columns().Cols[0].Mixed {
		t.Fatal("KindNull column should be Mixed")
	}
}

func TestColumnsZoneMaps(t *testing.T) {
	tbl := New("z", Schema{{Name: "v", Kind: KindInt}})
	n := ZoneChunkRows*2 + 100
	for i := 0; i < n; i++ {
		tbl.AppendRow(Row{NewInt(int64(i))})
	}
	c := tbl.Columns().Cols[0]
	if len(c.Zones) != 3 {
		t.Fatalf("zones = %d, want 3", len(c.Zones))
	}
	if c.Zones[0].Min != 0 || c.Zones[0].Max != float64(ZoneChunkRows-1) {
		t.Fatalf("zone 0 = [%v,%v]", c.Zones[0].Min, c.Zones[0].Max)
	}
	if c.Zones[2].Min != float64(2*ZoneChunkRows) || c.Zones[2].Max != float64(n-1) {
		t.Fatalf("last zone = [%v,%v]", c.Zones[2].Min, c.Zones[2].Max)
	}
	if c.Zones[1].HasNull || !c.Zones[1].HasValue {
		t.Fatal("zone flags wrong for all-value chunk")
	}
}

func TestColumnsInvalidatedOnAppend(t *testing.T) {
	tbl := New("inv", Schema{{Name: "v", Kind: KindInt}})
	tbl.AppendRow(Row{NewInt(1)})
	if got := tbl.Columns().NumRows; got != 1 {
		t.Fatalf("NumRows = %d", got)
	}
	tbl.AppendRow(Row{NewInt(2)})
	cs := tbl.Columns()
	if cs.NumRows != 2 || cs.Cols[0].Ints[1] != 2 {
		t.Fatal("Columns() served a stale view after AppendRow")
	}
}

// TestColumnIndexCaseFolded exercises the memoized name index: hits at every
// casing, definitive misses, and agreement with the linear EqualFold scan for
// non-ASCII names (where ToLower-based folding could diverge).
func TestColumnIndexCaseFolded(t *testing.T) {
	tbl := New("ci", Schema{
		{Name: "Id", Kind: KindInt},
		{Name: "PRODUCTION_YEAR", Kind: KindInt},
		{Name: "Straße", Kind: KindString}, // non-ASCII: forces the fallback scan
	})
	hits := map[string]int{
		"Id": 0, "id": 0, "ID": 0, "iD": 0,
		"production_year": 1, "Production_Year": 1, "PRODUCTION_YEAR": 1,
		"Straße": 2, "straße": 2, "STRASSE": -1, // ß does not case-fold to ss under EqualFold
	}
	for name, want := range hits {
		if got := tbl.ColumnIndex(name); got != want {
			t.Errorf("ColumnIndex(%q) = %d, want %d", name, got, want)
		}
		// Memoized result must agree with the reference linear scan.
		if ref := tbl.Schema.ColumnIndex(name); ref != want {
			t.Errorf("Schema.ColumnIndex(%q) = %d, want %d (test expectation wrong?)", name, ref, want)
		}
	}
	for _, miss := range []string{"", "idx", "I", "production_year2", "straß"} {
		if got := tbl.ColumnIndex(miss); got != -1 {
			t.Errorf("ColumnIndex(%q) = %d, want -1", miss, got)
		}
	}
	// Repeated lookups stay correct once the index is warm.
	for i := 0; i < 3; i++ {
		if tbl.ColumnIndex("iD") != 0 || tbl.ColumnIndex("nope") != -1 {
			t.Fatal("warm index lookup diverged")
		}
	}
}

func TestColumnIndexDuplicateNamesFirstWins(t *testing.T) {
	tbl := New("dup", Schema{
		{Name: "X", Kind: KindInt},
		{Name: "x", Kind: KindFloat},
	})
	for _, name := range []string{"x", "X", "x "} {
		if got, ref := tbl.ColumnIndex(name), tbl.Schema.ColumnIndex(name); got != ref {
			t.Errorf("ColumnIndex(%q) = %d, linear scan = %d", name, got, ref)
		}
	}
	if tbl.ColumnIndex("x") != 0 {
		t.Fatal("duplicate folded names must resolve to the first column")
	}
}

// TestValueAppendKeyMatchesKey pins the key encoding byte for byte, including
// the int/integral-float unification the hash joins rely on.
func TestValueAppendKeyMatchesKey(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "\x00n"},
		{NewInt(42), "\x00i42"},
		{NewInt(-7), "\x00i-7"},
		{NewFloat(42), "\x00i42"},  // integral float unifies with int
		{NewFloat(-0.0), "\x00i0"}, // negative zero is integral
		{NewFloat(2.5), "\x00f2.5"},
		{NewString("a b"), "\x00sa b"},
		{NewBool(true), "\x00b1"},
		{NewBool(false), "\x00b0"},
	}
	for _, c := range cases {
		if got := c.v.Key(); got != c.want {
			t.Errorf("Key(%v) = %q, want %q", c.v, got, c.want)
		}
		if got := string(c.v.AppendKey(nil)); got != c.want {
			t.Errorf("AppendKey(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	r := Row{NewInt(1), NewString("x"), Null}
	if got, want := string(r.AppendKey(nil)), r.Key(); got != want {
		t.Errorf("Row.AppendKey = %q, Row.Key = %q", got, want)
	}
}

// TestRowAppendKeyNoAllocs pins the dedup/join key path: appending into a
// pre-sized buffer must not allocate (this is what removed the per-row string
// materialization from the hash-join and DISTINCT loops).
func TestRowAppendKeyNoAllocs(t *testing.T) {
	r := Row{NewInt(123456), NewFloat(3.25), NewString("somegenre"), NewBool(true)}
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		buf = r.AppendKey(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Row.AppendKey allocates %v times per run, want 0", allocs)
	}
}

// BenchmarkRowKey contrasts the legacy per-row string materialization against
// the buffer-reusing AppendKey used on the join/dedup hot path.
func BenchmarkRowKey(b *testing.B) {
	r := Row{NewInt(123456), NewFloat(3.25), NewString("somegenre"), NewBool(true)}
	b.Run("Key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.Key()
		}
	})
	b.Run("AppendKey", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 128)
		for i := 0; i < b.N; i++ {
			buf = r.AppendKey(buf[:0])
		}
	})
}

// BenchmarkColumnsBuild measures the one-time cost of deriving the columnar
// view (paid on first query after load/append, then cached).
func BenchmarkColumnsBuild(b *testing.B) {
	tbl := New("b", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "genre", Kind: KindString},
	})
	for i := 0; i < 50_000; i++ {
		tbl.AppendRow(Row{NewInt(int64(i)), NewString(fmt.Sprintf("g%d", i%32))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.invalidate()
		_ = tbl.Columns()
	}
}
