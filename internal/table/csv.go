package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV serializes the table to w as CSV. The header row encodes both
// column names and kinds as "name:kind" so ReadCSV can reconstruct the
// schema without guessing.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	record := make([]string, len(t.Schema))
	for _, r := range t.Rows {
		for i, v := range r {
			record[i] = v.String()
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("table: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		name, kindName, found := strings.Cut(h, ":")
		if !found {
			return nil, fmt.Errorf("table: csv header field %q missing kind", h)
		}
		kind, err := ParseKind(kindName)
		if err != nil {
			return nil, err
		}
		schema[i] = Column{Name: name, Kind: kind}
	}
	t := New(name, schema)
	for lineNo := 2; ; lineNo++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", lineNo, err)
		}
		if len(record) != len(schema) {
			return nil, fmt.Errorf("table: csv line %d has %d fields, want %d", lineNo, len(record), len(schema))
		}
		row := make(Row, len(schema))
		for i, field := range record {
			v, err := ParseValue(field, schema[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("table: csv line %d col %s: %w", lineNo, schema[i].Name, err)
			}
			row[i] = v
		}
		t.AppendRow(row)
	}
	return t, nil
}
