package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asqprl/internal/faults"
)

// TestCrashMatrix is the durability proof surface: for every kill point at a
// write/fsync/rotate/checkpoint boundary, and across a spread of seeds, it
//
//  1. drives a mixed workload (durable appends, async appends, periodic
//     checkpoints) with a seeded fault injected at the kill point,
//  2. simulates process death by abandoning the log without Close and then
//     tearing a seeded number of bytes off the tail of the last segment —
//     only bytes past the last acknowledged frame, because fsync already
//     pinned everything acknowledged to disk,
//  3. restarts (re-Opens) and asserts the recovery invariant: every frame
//     acknowledged after the last durable checkpoint is replayed, in order,
//     with nothing invented — zero acknowledged-then-lost frames.
//
// The snapshot-swap kill point (core/snapshot/rename) is covered by the
// core package's TestSaveFileKilledBeforeRename and the server recovery
// tests, where a real snapshot exists to swap.
func TestCrashMatrix(t *testing.T) {
	points := []string{
		faults.PointWALAppend,
		faults.PointWALSync,
		faults.PointWALRotate,
		faults.PointWALCheckpoint,
	}
	for _, point := range points {
		for seed := int64(1); seed <= 6; seed++ {
			name := fmt.Sprintf("%s/seed=%d", strings.ReplaceAll(point, "/", "_"), seed)
			t.Run(name, func(t *testing.T) {
				runCrashCase(t, point, seed)
			})
		}
	}
}

func runCrashCase(t *testing.T, point string, seed int64) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed))

	// One error injection, firing once somewhere in the run. KindError at a
	// write boundary models the process dying there: the operation reports
	// failure (or the log goes sticky-failed), and nothing after it is
	// acknowledged.
	sched := faults.NewSchedule(seed, faults.Injection{
		Point:    point,
		Kind:     faults.KindError,
		After:    rng.Intn(30),
		MaxFires: 1,
	})
	faults.Enable(sched)
	defer faults.Disable()

	l, _ := openT(t, dir, Options{SegmentBytes: 300})

	// acked tracks frames acknowledged durable since the last durable
	// checkpoint — exactly the set recovery must replay.
	var acked []string
	ckptDurable := func(err error) bool {
		// The wal/checkpoint kill point fires after the checkpoint record's
		// fsync, so an error naming it means the checkpoint IS durable and
		// only the pruning was lost. Any other failure (rotate, fsync, write)
		// happened before durability.
		return err == nil || strings.Contains(err.Error(), faults.PointWALCheckpoint)
	}
	for i := 0; i < 60; i++ {
		switch {
		case i%15 == 14:
			err := l.Checkpoint(int64(i))
			if ckptDurable(err) {
				acked = acked[:0]
			}
		case i%7 == 3:
			// Async appends are never acknowledged; losing them is allowed.
			_ = l.AppendAsync(Record{Type: TypeServed, SQL: fmt.Sprintf("async-%d", i)})
		default:
			rec := Record{Type: TypeServed, SQL: fmt.Sprintf("acked-%d", i)}
			if err := l.Append(rec); err == nil {
				acked = append(acked, rec.SQL)
			} else if point == faults.PointWALSync || point == faults.PointWALRotate {
				// fsyncgate: a failed fsync/rotate is sticky-fatal. Every
				// later durable append must also fail — an ack after a lost
				// fsync would be a lie.
				for j := 0; j < 3; j++ {
					if err2 := l.Append(servedRec(1000 + j)); err2 == nil {
						t.Fatalf("append acknowledged after sticky %s failure", point)
					}
				}
			}
		}
	}

	// Simulated SIGKILL: abandon the log. No Close, no flush — whatever the
	// group syncer had not yet written stays in the dead process's memory.
	// Then tear a seeded number of tail bytes off the last segment,
	// restricted to bytes past the last acknowledged frame (fsync pinned the
	// acknowledged prefix; only the unsynced suffix can tear).
	tearTail(t, dir, acked, rng)
	faults.Disable()

	l2, rec := openT(t, dir, Options{SegmentBytes: 300})
	defer l2.Close()

	assertSubsequence(t, acked, tailSQLs(rec.Tail))
	for _, r := range rec.Tail {
		if r.Type == TypeCheckpoint {
			t.Fatalf("checkpoint record leaked into the replay tail: %+v", r)
		}
	}
	// Recovery repaired the disk: a second restart must be clean and agree.
	l2.Close()
	l3, rec2 := openT(t, dir, Options{SegmentBytes: 300})
	defer l3.Close()
	if rec2.Stats.TruncatedBytes != 0 {
		t.Fatalf("second open still truncating: %+v", rec2.Stats)
	}
	a, b := tailSQLs(rec.Tail), tailSQLs(rec2.Tail)
	if len(a) != len(b) {
		t.Fatalf("recovery not idempotent: %d then %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("recovery not idempotent at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// tearTail truncates the last segment at a seeded offset no earlier than the
// end of the last acknowledged frame.
func tearTail(t *testing.T, dir string, acked []string, rng *rand.Rand) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		return
	}
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ackedSet := make(map[string]bool, len(acked))
	for _, s := range acked {
		ackedSet[s] = true
	}
	floor := 0 // truncation may not cut below this offset
	off := 0
	for off < len(data) {
		rec, _, n, ok := decodeFrameAt(data[off:])
		if !ok {
			break
		}
		off += n
		// Checkpoint frames are fsynced before Checkpoint returns, and acked
		// frames are fsynced by definition; both are pinned.
		if rec.Type == TypeCheckpoint || ackedSet[rec.SQL] {
			floor = off
		}
	}
	if floor >= len(data) {
		return
	}
	cut := floor + rng.Intn(len(data)-floor+1)
	if cut >= len(data) {
		return
	}
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatal(err)
	}
}

// assertSubsequence checks want appears within got in order (got may hold
// extra unacknowledged-but-surviving frames between them).
func assertSubsequence(t *testing.T, want, got []string) {
	t.Helper()
	j := 0
	for _, g := range got {
		if j < len(want) && g == want[j] {
			j++
		}
	}
	if j != len(want) {
		t.Fatalf("acknowledged frame lost: replayed %d of %d acked frames\nacked: %v\nreplayed: %v",
			j, len(want), want, got)
	}
}
