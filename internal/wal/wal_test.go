package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// servedRec builds a served record with a recognizable SQL payload.
func servedRec(i int) Record {
	return Record{Type: TypeServed, SQL: fmt.Sprintf("SELECT %d FROM t", i), Source: "approximation"}
}

// tailSQLs extracts the SQL of every non-checkpoint record in a tail.
func tailSQLs(tail []Record) []string {
	var out []string
	for _, r := range tail {
		out = append(out, r.SQL)
	}
	return out
}

// TestAppendRecoverRoundtrip: durably appended records come back in order
// from a clean re-open, with no repair stats.
func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if rec.Stats.FramesReplayed != 0 || len(rec.Tail) != 0 {
		t.Fatalf("fresh dir should recover nothing, got %+v", rec.Stats)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	if got := len(rec2.Tail); got != n {
		t.Fatalf("recovered %d records, want %d", got, n)
	}
	for i, r := range rec2.Tail {
		if want := servedRec(i); r.SQL != want.SQL || r.Type != TypeServed || r.Source != "approximation" {
			t.Fatalf("record %d = %+v, want %+v", i, r, want)
		}
	}
	st := rec2.Stats
	if st.FramesDropped != 0 || st.TruncatedBytes != 0 || st.StaleSegmentsRemoved != 0 {
		t.Fatalf("clean log reported repairs: %+v", st)
	}
}

// TestConcurrentDurableAppends: many goroutines share group commits; every
// acknowledged record survives a re-open.
func TestConcurrentDurableAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(Record{Type: TypeServed, SQL: fmt.Sprintf("q-%d-%d", w, i)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if got, want := len(rec.Tail), workers*per; got != want {
		t.Fatalf("recovered %d records, want %d", got, want)
	}
	seen := make(map[string]bool, workers*per)
	for _, r := range rec.Tail {
		if seen[r.SQL] {
			t.Fatalf("duplicate record %q", r.SQL)
		}
		seen[r.SQL] = true
	}
}

// TestSegmentRotation: a small segment budget produces multiple segments and
// recovery reads across all of them in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation with 256-byte segments, got %d segment(s)", st.Segments)
	}
	l.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("listSegments = %v, %v; want >= 2 segments", segs, err)
	}
	_, rec := openT(t, dir, Options{SegmentBytes: 256})
	if got := len(rec.Tail); got != n {
		t.Fatalf("recovered %d records across segments, want %d", got, n)
	}
	for i, r := range rec.Tail {
		if r.SQL != servedRec(i).SQL {
			t.Fatalf("record %d out of order: %q", i, r.SQL)
		}
	}
}

// TestCheckpointTruncatesHistory: records before a checkpoint are not
// replayed and their segments are deleted; records after it are.
func TestCheckpointTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Checkpoint(7); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 20; i < 25; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	_, rec := openT(t, dir, Options{SegmentBytes: 256})
	if got := tailSQLs(rec.Tail); len(got) != 5 || got[0] != servedRec(20).SQL {
		t.Fatalf("post-checkpoint tail = %v, want records 20..24", got)
	}
	if rec.Stats.CheckpointGen != 7 {
		t.Fatalf("CheckpointGen = %d, want 7", rec.Stats.CheckpointGen)
	}
	if rec.Stats.FramesSkipped != 0 {
		// Checkpoint prunes the pre-checkpoint segments; nothing should be
		// left to skip on a clean run.
		t.Fatalf("FramesSkipped = %d, want 0 (segments pruned)", rec.Stats.FramesSkipped)
	}
}

// TestTornTailTruncated: bytes cut mid-frame at the end of the last segment
// are physically truncated and every complete frame survives.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil { // tear the last frame
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if got := len(rec.Tail); got != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", got)
	}
	if rec.Stats.TruncatedBytes == 0 {
		t.Fatalf("expected TruncatedBytes > 0, got %+v", rec.Stats)
	}
	// The torn bytes are gone from disk: a second open is clean.
	_, rec2 := openT(t, dir, Options{})
	if rec2.Stats.TruncatedBytes != 0 || len(rec2.Tail) != 9 {
		t.Fatalf("second open not clean: %+v, %d records", rec2.Stats, len(rec2.Tail))
	}
}

// TestMidFileCorruptionSkipped: a corrupted frame in the middle is dropped
// and counted; frames on both sides survive.
func TestMidFileCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the file (not in a header, so the
	// frame still parses structurally but fails CRC).
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, Options{})
	if rec.Stats.FramesDropped == 0 {
		t.Fatalf("expected dropped frames, got %+v", rec.Stats)
	}
	if got := len(rec.Tail); got >= 10 || got < 8 {
		t.Fatalf("recovered %d records, want 8..9 (one region corrupted)", got)
	}
	// Replayed records are a subsequence of what was written: nothing invented.
	want := make(map[string]bool, 10)
	for i := 0; i < 10; i++ {
		want[servedRec(i).SQL] = true
	}
	for _, r := range rec.Tail {
		if !want[r.SQL] {
			t.Fatalf("replay invented record %q", r.SQL)
		}
	}
}

// TestAppendAsyncDurableAtClose: async appends are not acknowledged durable,
// but a clean Close syncs them; they all survive.
func TestAppendAsyncDurableAtClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 30; i++ {
		if err := l.AppendAsync(servedRec(i)); err != nil {
			t.Fatalf("AppendAsync: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openT(t, dir, Options{})
	if got := len(rec.Tail); got != 30 {
		t.Fatalf("recovered %d async records after clean close, want 30", got)
	}
}

// TestNilLogNoOps: a nil *Log accepts every call.
func TestNilLogNoOps(t *testing.T) {
	var l *Log
	if err := l.Append(servedRec(0)); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	if err := l.AppendAsync(servedRec(0)); err != nil {
		t.Fatalf("nil AppendAsync: %v", err)
	}
	if err := l.Checkpoint(1); err != nil {
		t.Fatalf("nil Checkpoint: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if st := l.Stats(); st.Segments != 0 {
		t.Fatalf("nil Stats = %+v", st)
	}
	if l.Dir() != "" {
		t.Fatalf("nil Dir = %q", l.Dir())
	}
}

// TestMaxSegmentsPrunes: rotation beyond the retention cap deletes the oldest
// segments.
func TestMaxSegmentsPrunes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 128, MaxSegments: 3})
	for i := 0; i < 60; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := l.Stats(); st.Segments > 3 {
		t.Fatalf("retention cap ignored: %d segments", st.Segments)
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) > 3 {
		t.Fatalf("%d segment files on disk, want <= 3", len(segs))
	}
}

// TestRecoveryNeverReopensSealedSegments: appends after recovery go to a new
// segment; the recovered segment's bytes stay untouched.
func TestRecoveryNeverReopensSealedSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(servedRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	before, _ := os.ReadFile(path)

	l2, _ := openT(t, dir, Options{})
	for i := 5; i < 10; i++ {
		if err := l2.Append(servedRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	l2.Close()
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatalf("recovered segment %s was modified by post-recovery appends", path)
	}
	_, rec := openT(t, dir, Options{})
	if got := len(rec.Tail); got != 10 {
		t.Fatalf("recovered %d records, want 10", got)
	}
}
