package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"asqprl/internal/obs"
)

// RecoveryStats summarizes what startup replay found and fixed; it is
// surfaced verbatim in /stats and as wal/recovery_* metrics so operators can
// see exactly how much evidence a crash cost.
type RecoveryStats struct {
	// Segments is how many segment files were scanned.
	Segments int `json:"segments"`
	// FramesReplayed counts valid frames after the last checkpoint that were
	// handed back for replay.
	FramesReplayed int `json:"frames_replayed"`
	// FramesSkipped counts valid frames at or before the last checkpoint
	// (already captured by the snapshot).
	FramesSkipped int `json:"frames_skipped"`
	// FramesDropped counts frames lost to damage, measured exactly from holes
	// in the frame-sequence line (a corrupt frame skipped by resync, a region
	// zeroed over, a sealed segment cut at a frame boundary — all leave the
	// same evidence: missing sequence numbers between surviving frames).
	FramesDropped int `json:"frames_dropped"`
	// TruncatedBytes is how many torn-tail bytes were physically cut from the
	// last segment.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// StaleSegmentsRemoved counts pre-checkpoint segments deleted by hygiene
	// (a crash between checkpoint fsync and prune leaves them behind).
	StaleSegmentsRemoved int `json:"stale_segments_removed"`
	// CheckpointGen is the snapshot generation of the last durable
	// checkpoint (0 if none).
	CheckpointGen int64 `json:"checkpoint_gen"`
	// WallMs is how long the scan + replay preparation took.
	WallMs float64 `json:"wall_ms"`
}

// Recovery is what Open found on disk: the stats and the tail of records
// (everything after the last checkpoint) for the caller to replay into live
// state.
type Recovery struct {
	Stats RecoveryStats
	Tail  []Record
}

// scannedFrame is one valid frame recovered from disk, with its header
// sequence number for gap accounting.
type scannedFrame struct {
	rec Record
	seq uint64
}

// segScan is the outcome of scanning one segment file.
type segScan struct {
	frames   []scannedFrame
	tornAt   int64 // offset of the torn tail (== file size when clean)
	fileSize int64
}

// scanSegment reads every decodable frame from path. Damage handling has two
// regimes, matching how real logs die:
//
//   - A torn tail (crash mid-write) shows up as a frame that runs past EOF or
//     trailing garbage with no further valid frame: everything from the tear
//     to EOF is reported via tornAt for physical truncation.
//   - Mid-file corruption (bit rot, overwritten page) is skipped by scanning
//     forward byte-by-byte to the next magic.
//
// Counting what the damage cost is not done here: the caller reads it off the
// frame-sequence line, where every lost frame — however it was lost — leaves
// a hole.
func scanSegment(path string) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	sc := segScan{fileSize: int64(len(data)), tornAt: int64(len(data))}
	off := 0
	lastGood := 0 // end offset of the last fully valid frame
	for off < len(data) {
		rec, seq, n, ok := decodeFrameAt(data[off:])
		if ok {
			sc.frames = append(sc.frames, scannedFrame{rec: rec, seq: seq})
			off += n
			lastGood = off
			continue
		}
		// Invalid at off: resync to the next magic strictly after off.
		next := nextMagic(data, off+1)
		if next < 0 {
			// No further valid frame start: everything from lastGood is tail
			// garbage (most commonly a torn final write).
			sc.tornAt = int64(lastGood)
			return sc, nil
		}
		off = next
	}
	return sc, nil
}

// decodeFrameAt tries to decode one frame at the start of b, returning the
// record, its header sequence number, and its total encoded length.
func decodeFrameAt(b []byte) (Record, uint64, int, bool) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, 0, false
	}
	if !bytes.Equal(b[:4], frameMagic[:]) || b[4] != frameVersion {
		return Record{}, 0, 0, false
	}
	seq := binary.LittleEndian.Uint64(b[6:14])
	plen := binary.LittleEndian.Uint32(b[14:18])
	if plen > frameMaxPayload || int(plen) > len(b)-frameHeaderLen {
		return Record{}, 0, 0, false
	}
	payload := b[frameHeaderLen : frameHeaderLen+int(plen)]
	crc := crc32.ChecksumIEEE(b[4:18])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(b[18:22]) {
		return Record{}, 0, 0, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, 0, false
	}
	if rec.Type != Type(b[5]) {
		return Record{}, 0, 0, false
	}
	return rec, seq, frameHeaderLen + int(plen), true
}

// nextMagic returns the offset of the next frame-magic occurrence at or after
// from, or -1.
func nextMagic(data []byte, from int) int {
	if from < 0 {
		from = 0
	}
	if from >= len(data) {
		return -1
	}
	i := bytes.Index(data[from:], frameMagic[:])
	if i < 0 {
		return -1
	}
	return from + i
}

// Open opens (or creates) the log in dir, recovering whatever a previous
// process left behind:
//
//  1. Scan every segment in order, truncating the last segment's torn tail
//     and skip-counting mid-file corruption.
//  2. Find the last checkpoint record; frames at or before it are already
//     captured by the snapshot and are skipped. Segments that end before the
//     checkpoint's segment are stale (a crash interrupted checkpoint
//     pruning) and are deleted.
//  3. Return the post-checkpoint tail for the caller to replay, and position
//     the writer to append to a fresh segment after the highest existing one
//     (sealed history is never reopened for append — a recovered segment's
//     bytes stay exactly as recovered).
func Open(dir string, opts Options) (*Log, Recovery, error) {
	start := time.Now()
	opts = opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, Recovery{}, err
	}

	var rec Recovery
	type scanned struct {
		seq int
		sc  segScan
	}
	var scans []scanned
	for i, seq := range seqs {
		sc, err := scanSegment(filepath.Join(dir, segName(seq)))
		if err != nil {
			return nil, Recovery{}, err
		}
		rec.Stats.Segments++
		if sc.tornAt < sc.fileSize {
			if i == len(seqs)-1 {
				// Torn tail on the final segment: the expected crash artifact.
				// Physically truncate so the bytes never resurface.
				if err := os.Truncate(filepath.Join(dir, segName(seq)), sc.tornAt); err != nil {
					return nil, Recovery{}, fmt.Errorf("wal: truncate torn tail of segment %d: %w", seq, err)
				}
				rec.Stats.TruncatedBytes += sc.fileSize - sc.tornAt
			}
			// Tail garbage on a sealed (non-final) segment is left in place —
			// the file is immutable history. If it buried frames, the sequence
			// line below counts them.
		}
		scans = append(scans, scanned{seq: seq, sc: sc})
	}

	// Walk the surviving frames in disk order, doing three things at once:
	// drop frames whose sequence runs backwards (only forgery or undetected
	// corruption can produce one — recovered appends always continue past the
	// highest recovered sequence), count every hole in the sequence line as
	// exactly that many lost frames, and locate the last checkpoint. Holes
	// before the first survivor are invisible (the expected start is unknown
	// after legitimate checkpoint pruning); everything between survivors is
	// accounted exactly.
	var prevSeq, maxSeq uint64
	ckptSeg, ckptIdx := -1, -1
	for si := range scans {
		kept := scans[si].sc.frames[:0]
		for _, f := range scans[si].sc.frames {
			if prevSeq != 0 && f.seq <= prevSeq {
				rec.Stats.FramesDropped++
				continue
			}
			if prevSeq != 0 && f.seq > prevSeq+1 {
				rec.Stats.FramesDropped += int(f.seq - prevSeq - 1)
			}
			prevSeq = f.seq
			if f.seq > maxSeq {
				maxSeq = f.seq
			}
			kept = append(kept, f)
			if f.rec.Type == TypeCheckpoint {
				ckptSeg, ckptIdx = si, len(kept)-1
				rec.Stats.CheckpointGen = f.rec.Generation
			}
		}
		scans[si].sc.frames = kept
	}
	for si, s := range scans {
		for ri, f := range s.sc.frames {
			atOrBefore := ckptSeg >= 0 && (si < ckptSeg || (si == ckptSeg && ri <= ckptIdx))
			if f.rec.Type == TypeCheckpoint {
				continue
			}
			if atOrBefore {
				rec.Stats.FramesSkipped++
				continue
			}
			rec.Tail = append(rec.Tail, f.rec)
			rec.Stats.FramesReplayed++
		}
	}

	// Hygiene: segments strictly before the checkpoint's segment hold only
	// consumed history — a crash between checkpoint fsync and prune left
	// them. Remove them now so disk usage converges.
	live := make([]int, 0, len(scans))
	for si, s := range scans {
		if ckptSeg >= 0 && si < ckptSeg {
			if err := os.Remove(filepath.Join(dir, segName(s.seq))); err == nil || os.IsNotExist(err) {
				rec.Stats.StaleSegmentsRemoved++
				continue
			}
		}
		live = append(live, s.seq)
	}
	if rec.Stats.StaleSegmentsRemoved > 0 {
		syncDir(dir)
	}

	l := &Log{
		dir:  dir,
		opts: opts,
		segs: live,
		// New frames continue the sequence line past everything recovered, so
		// sequences stay monotonic per directory across restarts and the next
		// recovery's gap accounting stays exact.
		written: maxSeq,
		flushed: maxSeq,
		syncReq: make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	next := 1
	if n := len(seqs); n > 0 {
		next = seqs[n-1] + 1
	}
	l.mu.Lock()
	err = l.openSegmentLocked(next)
	l.mu.Unlock()
	if err != nil {
		return nil, Recovery{}, err
	}
	l.ckptGen = rec.Stats.CheckpointGen
	l.wg.Add(1)
	go l.syncer()

	rec.Stats.WallMs = float64(time.Since(start).Microseconds()) / 1e3
	if obs.Enabled() {
		m := obs.Default()
		m.Counter("wal/recovery/frames_replayed").Add(int64(rec.Stats.FramesReplayed))
		m.Counter("wal/recovery/frames_dropped").Add(int64(rec.Stats.FramesDropped))
		m.Counter("wal/recovery/truncated_bytes").Add(rec.Stats.TruncatedBytes)
		m.Counter("wal/recovery/stale_segments_removed").Add(int64(rec.Stats.StaleSegmentsRemoved))
		m.Gauge("wal/segments").Set(float64(len(l.segs)))
	}
	if rec.Stats.FramesDropped > 0 || rec.Stats.TruncatedBytes > 0 {
		obs.Logger().Warn("wal recovery repaired damage",
			"dir", dir,
			"frames_dropped", rec.Stats.FramesDropped,
			"truncated_bytes", rec.Stats.TruncatedBytes,
			"frames_replayed", rec.Stats.FramesReplayed)
	}
	return l, rec, nil
}
