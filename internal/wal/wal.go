// Package wal is the crash-safe durability layer of ASQP-RL's serving loop:
// a CRC32-framed, segment-rotated write-ahead log that durably records served
// statements, drift observations, and retrain lifecycle events, so the
// continuous-learning signal (ROADMAP item 3's "persistent workload log")
// survives process death instead of evaporating with the heap.
//
// Design, in the order the guarantees matter:
//
//   - Frames reuse the snapshot codec's magic/version/length/CRC idea: every
//     record is `magic | version | type | payload-len | payload-crc | payload`
//     with a JSON payload. Replay rejects torn or bit-flipped frames by
//     construction, never by decoder luck.
//   - Append acknowledges only after fsync. Appends are group-committed: a
//     single syncer goroutine batches every frame written while the previous
//     fsync was in flight into the next one, so concurrent appenders share
//     fsyncs instead of queueing on them. AppendAsync enqueues without
//     waiting — the record is durable at the next group sync — for
//     high-volume evidence (served statements) whose loss window is an
//     explicit, documented trade.
//   - Segments rotate at a size threshold (`wal-NNNNNNNN.seg`); rotation
//     fsyncs and closes the old segment first, so completed segments are
//     immutable history.
//   - Checkpoint(gen) marks "everything before this point is captured by the
//     snapshot of generation gen": it rotates, writes a checkpoint frame as
//     the new segment's first record, fsyncs, and deletes the older
//     segments. Recovery replays only frames after the last checkpoint.
//   - A failed fsync is sticky-fatal (the fsyncgate lesson): once the kernel
//     has possibly dropped a page, no later fsync can resurrect the
//     guarantee, so every subsequent Append fails loudly and the operator
//     restarts into recovery instead of serving from a lying log.
//
// Every write/fsync/rename boundary carries a fault-injection point
// (faults.PointWAL*) so the crash matrix in crash_test.go can simulate
// process death at each one and prove recovery never loses an acknowledged
// frame.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
)

// Type tags what a record describes.
type Type uint8

const (
	// TypeServed is one served statement (canonical SQL + routing outcome).
	TypeServed Type = 1
	// TypeDrift is one drift observation: a served statement whose estimator
	// confidence marked it as deviating from the training workload.
	TypeDrift Type = 2
	// TypeRetrain is a retrain-controller lifecycle event ("started",
	// "validated", "swapped", "rolled_back", "failed", "gave_up").
	TypeRetrain Type = 3
	// TypeCheckpoint marks a snapshot boundary: everything before it is
	// captured by the snapshot of the record's Generation.
	TypeCheckpoint Type = 4
	// TypeDiag marks a flight-recorder capture: the Event field holds the
	// trigger reason (e.g. "slo-latency") and Path the bundle name. If the
	// replayed tail ends with diag records, recovery reports that the
	// process crashed while alerting.
	TypeDiag Type = 5
)

// String names the record type for logs and stats.
func (t Type) String() string {
	switch t {
	case TypeServed:
		return "served"
	case TypeDrift:
		return "drift"
	case TypeRetrain:
		return "retrain"
	case TypeCheckpoint:
		return "checkpoint"
	case TypeDiag:
		return "diag"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Record is one logged fact. Fields are a union over the record types; JSON
// omit-empty keeps frames small.
type Record struct {
	Type Type `json:"type"`
	// UnixNs is the wall-clock time the record was appended (stamped by the
	// caller so replay tests stay deterministic).
	UnixNs int64 `json:"t,omitempty"`
	// SQL is the canonical statement text (served / drift records).
	SQL string `json:"sql,omitempty"`
	// Confidence is the estimator similarity confidence at observe time
	// (drift records); replay feeds it back into the drift detector so the
	// restored detector makes the same drifted/not decision.
	Confidence float64 `json:"conf,omitempty"`
	// Source is "approximation" or "full" (served records).
	Source string `json:"src,omitempty"`
	// Degraded mirrors the response tagging (served records).
	Degraded bool `json:"deg,omitempty"`
	// Event is the retrain lifecycle event name (retrain records).
	Event string `json:"event,omitempty"`
	// Generation is the snapshot/publish generation (checkpoint records, and
	// retrain swapped/rolled_back events).
	Generation int64 `json:"gen,omitempty"`
	// Queries is the drifted-batch size (retrain "started" events).
	Queries int `json:"queries,omitempty"`
	// Attempt is the per-batch attempt number (retrain "failed"/"validated").
	Attempt int `json:"attempt,omitempty"`
	// Path is the flight-recorder bundle name (diag records).
	Path string `json:"path,omitempty"`
}

// Frame layout: magic (4) + version (1) + type (1) + sequence (8, LE) +
// payload length (4, LE) + CRC32-IEEE (4, LE) + payload. The CRC covers the
// header after the magic plus the payload, so a bit flip anywhere in a frame
// fails verification — including the sequence field, which replay trusts for
// exact loss accounting. Sequences are per-directory monotonic (a restart
// continues after the highest recovered sequence), so a hole in the sequence
// line is a hole in history: replay counts exactly how many frames a damaged
// or missing region swallowed, even when the damage erased the frames
// themselves — e.g. a sealed segment truncated at a clean frame boundary,
// which no per-frame checksum can see. The magic differs from the snapshot
// codec's so a WAL segment can never be mistaken for a snapshot (or vice
// versa) by a confused operator script.
var frameMagic = [4]byte{'A', 'W', 'A', 'L'}

const (
	frameVersion   = 1
	frameHeaderLen = 4 + 1 + 1 + 8 + 4 + 4
	// frameMaxPayload caps a single record; anything larger in a length field
	// is corruption, not data.
	frameMaxPayload = 1 << 24
)

// marshalRecord serializes the payload half of a frame (done outside the log
// mutex; the header needs the under-mutex sequence number).
func marshalRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode: %w", err)
	}
	if len(payload) > frameMaxPayload {
		return nil, fmt.Errorf("wal: encode: record payload %d exceeds cap", len(payload))
	}
	return payload, nil
}

// buildFrame assembles the full frame for a marshaled payload.
func buildFrame(typ Type, seq uint64, payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	copy(buf[:4], frameMagic[:])
	buf[4] = frameVersion
	buf[5] = byte(typ)
	binary.LittleEndian.PutUint64(buf[6:14], seq)
	binary.LittleEndian.PutUint32(buf[14:18], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(buf[4:18])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(buf[18:22], crc)
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// Options tunes a Log. The zero value is production-safe via normalize.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB).
	SegmentBytes int64
	// MaxSegments bounds the directory: rotation beyond it prunes the oldest
	// segment, sacrificing (and counting) its evidence rather than growing
	// without bound between checkpoints (default 64).
	MaxSegments int
	// DisableGroupCommit makes every durable Append perform its own
	// flush+fsync instead of sharing batched ones. Exists for the
	// BenchmarkWALAppend on/off comparison and for paranoid deployments.
	DisableGroupCommit bool
}

func (o Options) normalize() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 64
	}
	return o
}

// Log is an append-only, segment-rotated write-ahead log. Safe for concurrent
// use. A nil *Log is a valid disabled log: every method is a cheap no-op, so
// serving layers can thread an optional log without branching.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when flushed advances or the log fails
	f        *os.File
	w        *bufio.Writer
	seq      int    // active segment sequence number
	size     int64  // bytes written (including buffered) to the active segment
	segs     []int  // live segment sequence numbers, ascending (incl. active)
	written  uint64 // last assigned frame sequence (seeded from recovery)
	flushed  uint64 // highest frame sequence known durable (fsynced)
	appended int64  // lifetime appended frames (stats)
	ckptGen  int64  // generation of the last checkpoint written
	failed   error  // sticky fsync/write failure
	closed   bool
	syncBusy bool // a group fsync is in flight outside mu

	syncReq chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup
}

// Stats is a point-in-time view of the log for /stats.
type Stats struct {
	Dir           string `json:"dir"`
	Segments      int    `json:"segments"`
	Appended      int64  `json:"appended"`
	ActiveBytes   int64  `json:"active_bytes"`
	CheckpointGen int64  `json:"checkpoint_gen"`
	Failed        string `json:"failed,omitempty"`
}

// segName formats a segment file name; segSeq parses one.
func segName(seq int) string { return fmt.Sprintf("wal-%08d.seg", seq) }

func segSeq(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "wal-%d.seg", &n); err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the sequence numbers of the segments in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := segSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Append durably logs rec: it returns nil only after the frame is fsynced.
// Under group commit, concurrent Appends share fsyncs. On a nil or failed log
// it returns immediately (nil log: no-op nil; failed log: the sticky error).
func (l *Log) Append(rec Record) error {
	if l == nil {
		return nil
	}
	my, err := l.write(rec)
	if err != nil {
		return err
	}
	if l.opts.DisableGroupCommit {
		return l.syncNow()
	}
	select {
	case l.syncReq <- struct{}{}:
	default: // a sync is already requested; our frame rides along
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushed < my && l.failed == nil && !l.closed {
		l.cond.Wait()
	}
	if l.failed != nil && l.flushed < my {
		return l.failed
	}
	if l.closed && l.flushed < my {
		return fmt.Errorf("wal: closed before frame %d was durable", my)
	}
	return nil
}

// AppendAsync logs rec without waiting for durability: the frame is written
// into the active segment and becomes durable at the next group fsync. A
// crash inside that window loses the record — callers use it for high-volume
// evidence (served statements) where the bounded loss window is an explicit
// trade for zero added request latency. Errors (rotation failure, failed log)
// are returned but the caller typically just counts them.
func (l *Log) AppendAsync(rec Record) error {
	if l == nil {
		return nil
	}
	if _, err := l.write(rec); err != nil {
		return err
	}
	select {
	case l.syncReq <- struct{}{}:
	default:
	}
	return nil
}

// write encodes and buffers one frame under mu, rotating first if the active
// segment is over budget. It returns the frame's sequence number (the value
// flushed must reach for the frame to be durable).
func (l *Log) write(rec Record) (uint64, error) {
	payload, err := marshalRecord(rec)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if err := faults.Inject(faults.PointWALAppend); err != nil {
		return 0, err
	}
	frameLen := int64(frameHeaderLen + len(payload))
	if l.size+frameLen > l.opts.SegmentBytes && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := buildFrame(rec.Type, l.written+1, payload)
	if _, err := l.w.Write(frame); err != nil {
		l.failLocked(fmt.Errorf("wal: write segment %d: %w", l.seq, err))
		return 0, l.failed
	}
	l.size += int64(len(frame))
	l.written++
	l.appended++
	if obs.Enabled() {
		obs.Default().Counter("wal/appends").Inc()
	}
	return l.written, nil
}

// syncNow flushes and fsyncs inline (per-append durability mode).
func (l *Log) syncNow() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := l.flushAndSyncLocked(); err != nil {
		return err
	}
	l.flushed = l.written
	l.cond.Broadcast()
	return nil
}

// flushAndSyncLocked drains the buffer and fsyncs the active segment under
// mu. Rotation uses it too; errors become sticky.
func (l *Log) flushAndSyncLocked() error {
	if err := faults.Inject(faults.PointWALSync); err != nil {
		l.failLocked(err)
		return err
	}
	if err := l.w.Flush(); err != nil {
		l.failLocked(fmt.Errorf("wal: flush segment %d: %w", l.seq, err))
		return l.failed
	}
	if err := l.f.Sync(); err != nil {
		l.failLocked(fmt.Errorf("wal: fsync segment %d: %w", l.seq, err))
		return l.failed
	}
	if obs.Enabled() {
		obs.Default().Counter("wal/fsyncs").Inc()
	}
	return nil
}

// syncer is the group-commit goroutine: every wakeup flushes the buffer under
// mu, then fsyncs outside it so appenders keep writing into the next batch.
func (l *Log) syncer() {
	defer l.wg.Done()
	for {
		select {
		case <-l.stop:
			return
		case <-l.syncReq:
		}
		l.mu.Lock()
		if l.closed || l.failed != nil {
			l.cond.Broadcast()
			l.mu.Unlock()
			continue
		}
		if l.flushed == l.written {
			l.mu.Unlock()
			continue
		}
		if err := faults.Inject(faults.PointWALSync); err != nil {
			l.failLocked(err)
			l.cond.Broadcast()
			l.mu.Unlock()
			continue
		}
		if err := l.w.Flush(); err != nil {
			l.failLocked(fmt.Errorf("wal: flush segment %d: %w", l.seq, err))
			l.cond.Broadcast()
			l.mu.Unlock()
			continue
		}
		target := l.written
		f := l.f
		l.syncBusy = true
		l.mu.Unlock()

		err := f.Sync()

		l.mu.Lock()
		l.syncBusy = false
		switch {
		case err == nil:
			if target > l.flushed {
				l.flushed = target
			}
			if obs.Enabled() {
				obs.Default().Counter("wal/fsyncs").Inc()
			}
		case l.flushed >= target:
			// A rotation fsynced-and-closed the file under us; the frames we
			// were syncing are already durable, so the stale-handle error is
			// benign.
		default:
			l.failLocked(fmt.Errorf("wal: fsync segment: %w", err))
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// rotateLocked seals the active segment (flush + fsync + close — completed
// segments are immutable history) and opens the next one. Caller holds mu.
func (l *Log) rotateLocked() error {
	if err := faults.Inject(faults.PointWALRotate); err != nil {
		l.failLocked(err)
		return l.failed
	}
	// Wait out any in-flight group fsync so closing the file cannot race it.
	for l.syncBusy {
		l.cond.Wait()
	}
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			l.failLocked(fmt.Errorf("wal: rotate flush segment %d: %w", l.seq, err))
			return l.failed
		}
		if err := l.f.Sync(); err != nil {
			l.failLocked(fmt.Errorf("wal: rotate fsync segment %d: %w", l.seq, err))
			return l.failed
		}
		l.flushed = l.written // everything so far is durable
		l.cond.Broadcast()
		if err := l.f.Close(); err != nil {
			l.failLocked(fmt.Errorf("wal: rotate close segment %d: %w", l.seq, err))
			return l.failed
		}
	}
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	if obs.Enabled() {
		obs.Default().Counter("wal/rotations").Inc()
		obs.Default().Gauge("wal/segments").Set(float64(len(l.segs)))
	}
	// Retention cap: prune the oldest segments beyond MaxSegments. Their
	// evidence is sacrificed and counted — bounded disk beats unbounded truth.
	for len(l.segs) > l.opts.MaxSegments {
		oldest := l.segs[0]
		if err := os.Remove(filepath.Join(l.dir, segName(oldest))); err != nil && !os.IsNotExist(err) {
			break // leave it for the next rotation; pruning is best-effort
		}
		l.segs = l.segs[1:]
		if obs.Enabled() {
			obs.Default().Counter("wal/segments_pruned").Inc()
		}
	}
	return nil
}

// openSegmentLocked creates segment seq and makes it active. Caller holds mu.
func (l *Log) openSegmentLocked(seq int) error {
	path := filepath.Join(l.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.failLocked(fmt.Errorf("wal: open segment %s: %w", path, err))
		return l.failed
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.seq = seq
	l.size = 0
	l.segs = append(l.segs, seq)
	// Persist the new directory entry so a crash right after rotation cannot
	// lose the (empty) segment and confuse sequence recovery.
	syncDir(l.dir)
	return nil
}

// Checkpoint records that the snapshot of generation gen captures every prior
// frame: it rotates to a fresh segment whose first frame is the checkpoint
// record, fsyncs it, and deletes the older segments. Recovery replays only
// frames after the last durable checkpoint. A crash between the checkpoint
// fsync and the deletions leaves stale segments behind — startup hygiene in
// Open removes them.
func (l *Log) Checkpoint(gen int64) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if err := l.rotateLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	payload, err := marshalRecord(Record{Type: TypeCheckpoint, Generation: gen})
	if err != nil {
		l.mu.Unlock()
		return err
	}
	frame := buildFrame(TypeCheckpoint, l.written+1, payload)
	if _, err := l.w.Write(frame); err != nil {
		l.failLocked(fmt.Errorf("wal: checkpoint write: %w", err))
		err := l.failed
		l.mu.Unlock()
		return err
	}
	l.size += int64(len(frame))
	l.written++
	l.appended++
	if err := l.flushAndSyncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.flushed = l.written
	l.ckptGen = gen
	l.cond.Broadcast()
	ckptSeq := l.seq
	stale := make([]int, 0, len(l.segs))
	for _, s := range l.segs {
		if s < ckptSeq {
			stale = append(stale, s)
		}
	}
	l.mu.Unlock()

	// The checkpoint is durable; deleting consumed history can happen outside
	// mu. The injection point simulates dying between the two — recovery then
	// sees stale segments, skips their pre-checkpoint frames, and hygiene
	// removes them.
	if err := faults.Inject(faults.PointWALCheckpoint); err != nil {
		return err
	}
	for _, s := range stale {
		if err := os.Remove(filepath.Join(l.dir, segName(s))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: checkpoint prune segment %d: %w", s, err)
		}
	}
	syncDir(l.dir)
	l.mu.Lock()
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s >= ckptSeq {
			kept = append(kept, s)
		}
	}
	l.segs = kept
	l.mu.Unlock()
	if obs.Enabled() {
		obs.Default().Counter("wal/checkpoints").Inc()
		obs.Default().Gauge("wal/segments").Set(float64(len(kept)))
	}
	return nil
}

// Stats returns a point-in-time view for /stats. Nil-safe.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Dir:           l.dir,
		Segments:      len(l.segs),
		Appended:      l.appended,
		ActiveBytes:   l.size,
		CheckpointGen: l.ckptGen,
	}
	if l.failed != nil {
		st.Failed = l.failed.Error()
	}
	return st
}

// Dir returns the log directory (empty for a nil log).
func (l *Log) Dir() string {
	if l == nil {
		return ""
	}
	return l.dir
}

// Close flushes, fsyncs, and closes the active segment, then stops the
// syncer. Nil-safe and idempotent. A clean Close means no torn tail on the
// next Open.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	for l.syncBusy {
		l.cond.Wait()
	}
	var err error
	if l.failed == nil && l.f != nil {
		if ferr := l.w.Flush(); ferr != nil {
			err = ferr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		} else {
			l.flushed = l.written
		}
	}
	if l.f != nil {
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	return err
}

// failLocked records the first fatal error; later calls keep the original.
// Caller holds mu.
func (l *Log) failLocked(err error) {
	if l.failed == nil {
		l.failed = err
		if obs.Enabled() {
			obs.Default().Counter("wal/append_errors").Inc()
		}
		obs.Logger().Error("wal failed; log is read-only until restart", "dir", l.dir, "err", err)
	}
}

// syncDir best-effort fsyncs a directory so renames/creates/unlinks are
// durable (same idiom as core.SaveFile).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
