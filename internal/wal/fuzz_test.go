package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary destruction at a known-good multi-segment
// log — bit flips, zeroed ranges, truncations, anywhere in any segment — and
// asserts the recovery scanner's contract:
//
//   - Open never panics and never errors on damage (damage is data loss to
//     account for, not a failure to start);
//   - the replayed tail is a subsequence of what was written: corruption can
//     lose frames but never invent, duplicate, or reorder them;
//   - a frame lost from the *middle* of the survivors is always accounted
//     for in FramesDropped (a lost suffix may instead be truncated tail
//     bytes or an exact-boundary cut, which is indistinguishable from
//     frames that never reached the disk);
//   - recovery repairs the disk: a second Open is clean and replays the
//     same tail.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 10, 1, 0})
	f.Add([]byte{1, 0, 50, 30, 1, 2, 1, 200, 0, 2})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 1, 255, 7, 1, 1, 2, 40, 9, 0})

	f.Fuzz(func(t *testing.T, ops []byte) {
		dir := t.TempDir()
		written := seedLog(t, dir)

		applyCorruption(t, dir, ops)

		l, rec := openT(t, dir, Options{SegmentBytes: 256})
		replayed := tailSQLs(rec.Tail)

		// Subsequence check, recording which written frames survived.
		matched := make([]bool, len(written))
		j := 0
		for _, g := range replayed {
			for j < len(written) && written[j] != g {
				j++
			}
			if j == len(written) {
				t.Fatalf("replayed frame %q not in written order %v", g, written)
			}
			matched[j] = true
			j++
		}

		// Mid-gap accounting: a hole strictly between two survivors must be
		// a counted drop.
		last := -1
		for i := len(matched) - 1; i >= 0; i-- {
			if matched[i] {
				last = i
				break
			}
		}
		first := -1
		for i, m := range matched {
			if m {
				first = i
				break
			}
		}
		if first >= 0 {
			for i := first; i < last; i++ {
				if !matched[i] && rec.Stats.FramesDropped == 0 {
					t.Fatalf("frame %q lost mid-stream with FramesDropped=0 (stats %+v, replayed %v)",
						written[i], rec.Stats, replayed)
				}
			}
		}
		if rec.Stats.FramesDropped < 0 || rec.Stats.TruncatedBytes < 0 {
			t.Fatalf("negative damage counters: %+v", rec.Stats)
		}

		if err := l.Close(); err != nil {
			t.Fatalf("close after damaged open: %v", err)
		}

		// Second restart: disk is repaired, replay is stable.
		l2, rec2 := openT(t, dir, Options{SegmentBytes: 256})
		defer l2.Close()
		if rec2.Stats.TruncatedBytes != 0 {
			t.Fatalf("second open still truncating: %+v", rec2.Stats)
		}
		again := tailSQLs(rec2.Tail)
		if len(again) != len(replayed) {
			t.Fatalf("replay unstable: %d then %d frames", len(replayed), len(again))
		}
		for i := range again {
			if again[i] != replayed[i] {
				t.Fatalf("replay unstable at %d: %q vs %q", i, replayed[i], again[i])
			}
		}
	})
}

// seedLog writes a deterministic workload spanning several segments, with a
// checkpoint partway through, and returns the full written SQL order (the
// superset any replay must be a subsequence of; the undamaged tail is the
// post-checkpoint suffix).
func seedLog(t *testing.T, dir string) []string {
	t.Helper()
	l, _ := openT(t, dir, Options{SegmentBytes: 256})
	var written []string
	for i := 0; i < 24; i++ {
		if i == 8 {
			if err := l.Checkpoint(3); err != nil {
				t.Fatal(err)
			}
			continue
		}
		sql := fmt.Sprintf("q-%02d", i)
		if err := l.Append(Record{Type: TypeServed, SQL: sql}); err != nil {
			t.Fatal(err)
		}
		written = append(written, sql)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return written
}

// applyCorruption decodes ops as 5-byte instructions (kind, segment pick,
// offset hi/lo, arg) and applies each to an on-disk segment: 0 = flip one
// bit, 1 = zero a range, 2 = truncate at offset.
func applyCorruption(t *testing.T, dir string, ops []byte) {
	t.Helper()
	for len(ops) >= 5 && len(ops) <= 8*5 {
		op, rest := ops[:5], ops[5:]
		ops = rest
		segs, err := listSegments(dir)
		if err != nil || len(segs) == 0 {
			return
		}
		path := filepath.Join(dir, segName(segs[int(op[1])%len(segs)]))
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			continue
		}
		off := (int(op[2])<<8 | int(op[3])) % len(data)
		switch op[0] % 3 {
		case 0: // flip a bit
			data[off] ^= 1 << (op[4] % 8)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		case 1: // zero a range
			end := off + int(op[4])
			if end > len(data) {
				end = len(data)
			}
			for i := off; i < end; i++ {
				data[i] = 0
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		case 2: // torn tail
			if err := os.Truncate(path, int64(off)); err != nil {
				t.Fatal(err)
			}
		}
	}
}
