package wal

import (
	"fmt"
	"testing"
	"time"
)

// benchRecord is a realistic served-statement frame (~100 B payload).
var benchRecord = Record{
	Type:       TypeServed,
	UnixNs:     1700000000000000000,
	SQL:        "SELECT * FROM title WHERE rating > 7 AND production_year > 1990",
	Confidence: 0.87,
	Source:     "approximation",
}

// BenchmarkWALAppend measures durable append throughput with group commit on
// (concurrent appenders share fsyncs) and off (every append pays its own
// fsync) — the on/off ratio is the whole argument for the group-commit
// design.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"group-commit", false},
		{"per-append-fsync", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			l, _, err := Open(b.TempDir(), Options{DisableGroupCommit: mode.disable})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := l.Append(benchRecord); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkWALAppendAsync measures the fire-and-forget path the serving hot
// loop uses: no fsync wait, durability at the next group sync.
func BenchmarkWALAppendAsync(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.AppendAsync(benchRecord); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkRecoveryReplay measures a full startup scan of a 100k-frame log —
// the acceptance bar is well under two seconds. replay_ms is reported per
// Open.
func BenchmarkRecoveryReplay(b *testing.B) {
	const frames = 100_000
	dir := b.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		rec := benchRecord
		rec.SQL = fmt.Sprintf("%s -- %d", benchRecord.SQL, i)
		if err := l.AppendAsync(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, rec, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rec.Stats.FramesReplayed != frames {
			b.Fatalf("replayed %d of %d frames (stats %+v)", rec.Stats.FramesReplayed, frames, rec.Stats)
		}
		l2.Close()
	}
	b.ReportMetric(float64(b.Elapsed())/float64(b.N)/float64(time.Millisecond), "replay_ms")
}
