package retrain

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/faults"
	"asqprl/internal/sqlparse"
	"asqprl/internal/workload"
)

var (
	fixtureOnce sync.Once
	fixtureSys  *core.System
	fixtureErr  error
)

// fixture trains one small system and caches it; every test clones it so the
// shared fixture is never mutated (the same isolation the controller itself
// guarantees for the incumbent).
func fixture(t *testing.T) *core.System {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.K = 150
		cfg.F = 25
		cfg.NumRepresentatives = 8
		cfg.ActionSpaceSize = 64
		cfg.MaxTrackedPerQuery = 60
		cfg.Episodes = 24
		cfg.RL.Workers = 4
		cfg.Seed = 1
		fixtureSys, fixtureErr = core.Train(datagen.IMDB(0.02, 7), workload.IMDB(18, 11), cfg)
	})
	if fixtureErr != nil {
		t.Fatalf("training shared fixture: %v", fixtureErr)
	}
	sys, err := fixtureSys.Clone()
	if err != nil {
		t.Fatalf("cloning fixture: %v", err)
	}
	return sys
}

// host is a fake serving layer: an incumbent slot plus a publish log.
type host struct {
	mu        sync.Mutex
	sys       *core.System
	publishes []*core.System

	qmu     sync.Mutex
	quality func() (float64, int64, bool)
}

func newHost(sys *core.System) *host { return &host{sys: sys} }

func (h *host) incumbent() *core.System {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sys
}

func (h *host) publish(sys *core.System) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sys = sys
	h.publishes = append(h.publishes, sys)
}

func (h *host) publishCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.publishes)
}

func (h *host) setQuality(f func() (float64, int64, bool)) {
	h.qmu.Lock()
	h.quality = f
	h.qmu.Unlock()
}

func (h *host) probe() (float64, int64, bool) {
	h.qmu.Lock()
	f := h.quality
	h.qmu.Unlock()
	if f == nil {
		return 0, 0, false
	}
	return f()
}

func (h *host) hooks() Hooks {
	return Hooks{Incumbent: h.incumbent, Publish: h.publish, Quality: h.probe}
}

// testCfg is a controller config tuned for fast deterministic tests: huge
// poll interval (only Force drives it), tiny training budget, short windows.
func testCfg() Config {
	return Config{
		Enabled:          true,
		Interval:         time.Hour,
		Timeout:          2 * time.Minute,
		ExtraEpisodes:    2,
		ValidateMargin:   2, // scores live in [0,1]: the gate always passes
		HoldbackFraction: 0.25,
		RollbackWindow:   300 * time.Millisecond,
		RollbackCheck:    20 * time.Millisecond,
		MaxAttempts:      3,
		Backoff:          10 * time.Millisecond,
		MaxBackoff:       40 * time.Millisecond,
		Seed:             1,
	}
}

// primeDrift pushes n maximally-deviating statements into the system's drift
// detector.
func primeDrift(t *testing.T, sys *core.System, n int) {
	t.Helper()
	sqls := []string{
		"SELECT * FROM name WHERE birth_year > 1950",
		"SELECT * FROM name WHERE birth_year < 1900",
		"SELECT * FROM name WHERE birth_year > 1980",
	}
	for i := 0; i < n; i++ {
		stmt, err := sqlparse.Parse(sqls[i%len(sqls)])
		if err != nil {
			t.Fatal(err)
		}
		sys.Drift().Observe(stmt, 0) // deviation 1.0: always counts as drifted
	}
}

// waitStatus polls the controller until cond is true or the deadline passes.
func waitStatus(t *testing.T, c *Controller, timeout time.Duration, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := c.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached before deadline; last status: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func mustBytes(t *testing.T, sys *core.System) []byte {
	t.Helper()
	b, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNilControllerIsDisabled(t *testing.T) {
	var c *Controller
	if st := c.Status(); st.Enabled || st.State != "disabled" {
		t.Fatalf("nil controller status = %+v", st)
	}
	if err := c.Force(); err != ErrDisabled {
		t.Fatalf("nil Force err = %v, want ErrDisabled", err)
	}
	c.Close() // must not panic
}

// TestForcedRetrainSwaps drives the happy path end to end: forced retrain on
// accumulated drift fine-tunes a clone, passes the gate, swaps it in, and
// commits after a clean rollback window — with the original incumbent
// never mutated (byte-identical snapshot before vs. after).
func TestForcedRetrainSwaps(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)
	incBefore := mustBytes(t, inc)

	h := newHost(inc)
	c := New(testCfg(), h.hooks())
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}

	st := waitStatus(t, c, 2*time.Minute, func(st Status) bool {
		return st.Swaps == 1 && st.State == "idle"
	})
	if st.LastOutcome != "swapped" {
		t.Fatalf("last outcome %q, want swapped", st.LastOutcome)
	}
	if st.LastGate == nil || !st.LastGate.Passed {
		t.Fatalf("gate not recorded as passed: %+v", st.LastGate)
	}
	if h.publishCount() != 1 {
		t.Fatalf("publishes = %d, want 1", h.publishCount())
	}
	if h.incumbent() == inc {
		t.Fatal("swap did not replace the incumbent")
	}
	// The candidate actually learned: its fine-tune counter advanced and the
	// drifted statements joined its training workload.
	cand := h.incumbent()
	if cand.Stats().FineTunes != inc.Stats().FineTunes+1 {
		t.Fatalf("candidate FineTunes = %d, incumbent %d", cand.Stats().FineTunes, inc.Stats().FineTunes)
	}
	if len(cand.TrainingWorkload()) <= len(inc.TrainingWorkload()) {
		t.Fatal("candidate training workload did not grow")
	}
	// The incumbent was never mutated by the attempt.
	if !bytes.Equal(incBefore, mustBytes(t, inc)) {
		t.Fatal("incumbent bytes changed across a successful retrain")
	}
	if inc.Drift().DriftedCount() != 0 {
		t.Fatal("drifted batch should have been consumed")
	}
}

// TestValidationRejectKeepsIncumbent arms an impossible gate (margin -2:
// the candidate must beat the incumbent by 2 on scores that live in [0,1])
// and proves a rejected candidate is discarded without any publish and
// without touching the incumbent.
func TestValidationRejectKeepsIncumbent(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)
	incBefore := mustBytes(t, inc)

	cfg := testCfg()
	cfg.ValidateMargin = -2
	cfg.MaxAttempts = 1
	h := newHost(inc)
	c := New(cfg, h.hooks())
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}

	st := waitStatus(t, c, 2*time.Minute, func(st Status) bool {
		return st.ValidationRejects == 1
	})
	if st.Swaps != 0 {
		t.Fatalf("swaps = %d, want 0", st.Swaps)
	}
	if st.LastGate == nil || st.LastGate.Passed {
		t.Fatalf("gate should have failed: %+v", st.LastGate)
	}
	if h.publishCount() != 0 {
		t.Fatalf("rejected candidate was published %d times", h.publishCount())
	}
	if h.incumbent() != inc {
		t.Fatal("incumbent pointer changed")
	}
	if !bytes.Equal(incBefore, mustBytes(t, inc)) {
		t.Fatal("incumbent bytes changed across a rejected retrain")
	}
	// MaxAttempts 1: the batch is discarded after the single reject.
	waitStatus(t, c, 5*time.Second, func(st Status) bool {
		return st.LastOutcome == "gave_up" && st.PendingDrifted == 0
	})
}

// TestRollbackRestoresIncumbentByteIdentical swaps a candidate in, then
// reports a quality regression; the controller must republish the retained
// incumbent, byte-identical to its pre-swap snapshot, and discard the batch.
func TestRollbackRestoresIncumbentByteIdentical(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)
	incBefore := mustBytes(t, inc)

	h := newHost(inc)
	// Pre-swap baseline: healthy (p95 0.05 over 10 audits). After the swap
	// the probe reports fresh evidence with a much worse p95 — a regression
	// beyond the 0.10 default.
	h.setQuality(func() (float64, int64, bool) { return 0.05, 10, true })

	cfg := testCfg()
	cfg.RollbackWindow = 2 * time.Second
	c := New(cfg, h.hooks())
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}

	waitStatus(t, c, 2*time.Minute, func(st Status) bool { return st.Swaps == 1 })
	h.setQuality(func() (float64, int64, bool) { return 0.5, 20, true })

	st := waitStatus(t, c, 10*time.Second, func(st Status) bool { return st.Rollbacks == 1 })
	if st.LastOutcome != "rolled_back" {
		t.Fatalf("last outcome %q, want rolled_back", st.LastOutcome)
	}
	if h.incumbent() != inc {
		t.Fatal("rollback did not restore the incumbent pointer")
	}
	if h.publishCount() != 2 {
		t.Fatalf("publishes = %d, want 2 (swap + rollback)", h.publishCount())
	}
	if !bytes.Equal(incBefore, mustBytes(t, inc)) {
		t.Fatal("restored incumbent is not byte-identical to its pre-swap state")
	}
	if st.PendingDrifted != 0 {
		t.Fatalf("rolled-back batch still pending: %d", st.PendingDrifted)
	}
}

// TestFaultsFailAttemptAndBackOff injects a deterministic error at every
// retrain stage in turn (clone, train, validate, swap) plus a panic, and
// proves each failure leaves the incumbent untouched and unpublished while
// the backoff arms and the attempt budget eventually discards the batch.
func TestFaultsFailAttemptAndBackOff(t *testing.T) {
	points := []struct {
		point string
		kind  faults.Kind
	}{
		{faults.PointRetrainClone, faults.KindError},
		{faults.PointRetrainTrain, faults.KindError},
		{faults.PointRetrainValidate, faults.KindError},
		{faults.PointRetrainSwap, faults.KindError},
		{faults.PointRetrainTrain, faults.KindPanic},
	}
	for _, tc := range points {
		t.Run(tc.point+"/"+tc.kind.String(), func(t *testing.T) {
			inc := fixture(t)
			primeDrift(t, inc, 3)
			incBefore := mustBytes(t, inc)

			sched := faults.NewSchedule(1, faults.Injection{Point: tc.point, Kind: tc.kind})
			faults.Enable(sched)
			t.Cleanup(faults.Disable)

			cfg := testCfg()
			cfg.MaxAttempts = 2
			h := newHost(inc)
			c := New(cfg, h.hooks())
			c.Start()
			defer c.Close()
			if err := c.Force(); err != nil {
				t.Fatal(err)
			}

			st := waitStatus(t, c, 2*time.Minute, func(st Status) bool {
				return st.Failures == 1
			})
			if st.Swaps != 0 {
				t.Fatalf("swaps = %d, want 0", st.Swaps)
			}
			if h.publishCount() != 0 {
				t.Fatalf("failed attempt published %d systems", h.publishCount())
			}
			if h.incumbent() != inc {
				t.Fatal("incumbent pointer changed under fault")
			}
			if !bytes.Equal(incBefore, mustBytes(t, inc)) {
				t.Fatalf("incumbent bytes changed across a failed attempt at %s", tc.point)
			}
			// The batch is retained for the next attempt (budget not yet
			// exhausted) and the backoff is armed.
			if st.PendingDrifted == 0 {
				t.Fatal("drift batch dropped before the attempt budget was exhausted")
			}
		})
	}
}

// TestAttemptBudgetExhaustionDiscardsBatch forces repeated failures until
// MaxAttempts is hit and checks the batch is dropped with outcome gave_up.
func TestAttemptBudgetExhaustionDiscardsBatch(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)

	sched := faults.NewSchedule(1, faults.Injection{Point: faults.PointRetrainClone, Kind: faults.KindError})
	faults.Enable(sched)
	t.Cleanup(faults.Disable)

	cfg := testCfg()
	cfg.MaxAttempts = 2
	h := newHost(inc)
	c := New(cfg, h.hooks())
	c.Start()
	defer c.Close()

	for i := 0; i < cfg.MaxAttempts; i++ {
		want := int64(i + 1)
		if err := c.Force(); err != nil {
			t.Fatal(err)
		}
		waitStatus(t, c, 30*time.Second, func(st Status) bool { return st.Failures == want })
	}
	st := waitStatus(t, c, 5*time.Second, func(st Status) bool {
		return st.LastOutcome == "gave_up"
	})
	if st.PendingDrifted != 0 {
		t.Fatalf("batch still pending after budget exhaustion: %d", st.PendingDrifted)
	}
	if st.AttemptsThisBatch != 0 {
		t.Fatalf("attempt counter not reset: %d", st.AttemptsThisBatch)
	}
}

// TestSnapshotPersistedBeforeSwap sets SnapshotPath and checks the candidate
// snapshot is on disk, loadable, and identical to the published system.
func TestSnapshotPersistedBeforeSwap(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)

	cfg := testCfg()
	cfg.SnapshotPath = t.TempDir() + "/candidate.asqp"
	h := newHost(inc)
	c := New(cfg, h.hooks())
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, 2*time.Minute, func(st Status) bool {
		return st.Swaps == 1 && st.State == "idle"
	})

	loaded, err := core.LoadFile(inc.DB(), cfg.SnapshotPath)
	if err != nil {
		t.Fatalf("persisted candidate does not load: %v", err)
	}
	pub := h.incumbent()
	if loaded.Set().Size() != pub.Set().Size() {
		t.Fatalf("persisted set size %d != published %d", loaded.Set().Size(), pub.Set().Size())
	}
	for _, id := range pub.Set().IDs() {
		if !loaded.Set().Contains(id) {
			t.Fatalf("persisted snapshot missing %v", id)
		}
	}
	if loaded.Stats().FineTunes != pub.Stats().FineTunes {
		t.Fatalf("persisted FineTunes %d != published %d", loaded.Stats().FineTunes, pub.Stats().FineTunes)
	}
}

// TestForceWithoutDrift reports a clean no_drift outcome instead of spinning.
func TestForceWithoutDrift(t *testing.T) {
	inc := fixture(t)
	h := newHost(inc)
	c := New(testCfg(), h.hooks())
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, c, 10*time.Second, func(st Status) bool {
		return st.LastOutcome == "no_drift"
	})
	if st.Attempts != 0 {
		t.Fatalf("no-drift force should not count an attempt, got %d", st.Attempts)
	}
	if h.publishCount() != 0 {
		t.Fatalf("no-drift force published %d systems", h.publishCount())
	}
}

// TestWeightedDriftBatch pins the frequency×recency weighting of the
// fine-tune batch: repeats compound, newer observations outweigh older ones,
// ties order deterministically, and the result is normalized.
func TestWeightedDriftBatch(t *testing.T) {
	parse := func(sql string) *sqlparse.Select {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		return stmt
	}
	a := "SELECT * FROM name WHERE birth_year > 1950"
	b := "SELECT * FROM name WHERE birth_year < 1900"
	c := "SELECT * FROM name WHERE birth_year > 1980"
	// Observation order, oldest first: a a b c c. With decay d and n=5 the
	// positional weights are d⁴ d³ d² d 1, so
	//   a = d⁴+d³, b = d², c = d+1.
	stmts := []*sqlparse.Select{parse(a), parse(a), parse(b), parse(c), parse(c)}
	const d = 0.5
	got := weightedDriftBatch(stmts, d)
	if len(got) != 3 {
		t.Fatalf("batch has %d entries, want 3 (deduplicated): %+v", len(got), got)
	}
	wantOrder := []string{c, b, a} // 1.5 > 0.25 > 0.1875
	for i, sql := range wantOrder {
		if got[i].SQL != sql {
			t.Fatalf("batch[%d] = %q, want %q (full: %+v)", i, got[i].SQL, sql, got)
		}
	}
	raw := []float64{d + 1, d * d, math.Pow(d, 4) + math.Pow(d, 3)}
	total := raw[0] + raw[1] + raw[2]
	for i := range wantOrder {
		if diff := math.Abs(got[i].Weight - raw[i]/total); diff > 1e-12 {
			t.Errorf("batch[%d] weight = %v, want %v", i, got[i].Weight, raw[i]/total)
		}
	}
	// Determinism: same input, same output, including tie-breaks.
	again := weightedDriftBatch(stmts, d)
	for i := range got {
		if got[i].SQL != again[i].SQL || got[i].Weight != again[i].Weight {
			t.Fatalf("weightedDriftBatch not deterministic at %d", i)
		}
	}
	// A recency-dominant run: one old statement repeated, one brand-new one.
	// Uniform weighting would put the repeated statement first; decay flips it.
	stmts = []*sqlparse.Select{parse(a), parse(a), parse(a), parse(b)}
	got = weightedDriftBatch(stmts, 0.3)
	if got[0].SQL != b {
		t.Fatalf("recency did not outweigh stale frequency: first = %q", got[0].SQL)
	}
}

// TestRestoreRearmsBackoff checks crash recovery of in-flight retrain
// attempts: Restore(n) re-arms the failure backoff as if those n attempts had
// just failed, so a crash-looping process cannot reset the backoff clock and
// turn retraining into a hot loop.
func TestRestoreRearmsBackoff(t *testing.T) {
	cfg := testCfg()
	cfg.Backoff = 50 * time.Millisecond
	cfg.MaxBackoff = 200 * time.Millisecond
	sys := fixture(t)
	h := newHost(sys)
	c := New(cfg, h.hooks())

	c.Restore(2)
	st := c.Status()
	if st.LastOutcome != "recovered" {
		t.Fatalf("LastOutcome = %q, want recovered", st.LastOutcome)
	}
	c.mu.Lock()
	until, backoff := c.until, c.backoff
	c.mu.Unlock()
	if remaining := time.Until(until); remaining <= 0 {
		t.Fatal("Restore did not arm a backoff window")
	} else if remaining > cfg.MaxBackoff {
		t.Fatalf("backoff window %v exceeds MaxBackoff %v", remaining, cfg.MaxBackoff)
	}
	// Two prior attempts: armed with Backoff×2=100ms, next doubling 200ms.
	if backoff != 200*time.Millisecond {
		t.Fatalf("next backoff = %v, want 200ms", backoff)
	}

	// Restore with no attempts is a no-op.
	c2 := New(cfg, h.hooks())
	c2.Restore(0)
	c2.mu.Lock()
	armed := !c2.until.IsZero()
	c2.mu.Unlock()
	if armed {
		t.Fatal("Restore(0) armed a backoff")
	}
}

// TestQualityAlarmSupersedesProbe wires the SLO-alarm rollback hook: the
// window must consume it instead of the raw probe (which screams regression
// the whole time and must be ignored), must not act on an alarm whose onset
// predates the swap, and must roll back once the alarm postdates it.
func TestQualityAlarmSupersedesProbe(t *testing.T) {
	inc := fixture(t)
	primeDrift(t, inc, 3)
	h := newHost(inc)
	h.setQuality(func() (float64, int64, bool) { return 0.9, 100, true })

	var amu sync.Mutex
	burning := true
	since := time.Now().Add(-time.Hour) // stale: long before any swap
	hooks := h.hooks()
	hooks.QualityAlarm = func() (bool, time.Time, string) {
		amu.Lock()
		defer amu.Unlock()
		return burning, since, "quality SLO fast-burn (test)"
	}

	cfg := testCfg()
	cfg.RollbackWindow = 2 * time.Second
	c := New(cfg, hooks)
	c.Start()
	defer c.Close()
	if err := c.Force(); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, 2*time.Minute, func(st Status) bool { return st.Swaps == 1 })

	// Several rollback checks pass: neither the stale alarm nor the
	// superseded raw probe may trigger.
	time.Sleep(150 * time.Millisecond)
	if st := c.Status(); st.Rollbacks != 0 {
		t.Fatalf("rolled back on a stale alarm or the superseded probe: %+v", st)
	}

	amu.Lock()
	since = time.Now()
	amu.Unlock()
	st := waitStatus(t, c, 10*time.Second, func(st Status) bool { return st.Rollbacks == 1 })
	if st.LastOutcome != "rolled_back" || !strings.Contains(st.LastError, "quality SLO fast-burn") {
		t.Fatalf("outcome %q, err %q", st.LastOutcome, st.LastError)
	}
	if h.incumbent() != inc {
		t.Fatal("rollback did not restore the incumbent pointer")
	}
}
