// Package retrain closes the continuous-learning loop of ASQP-RL: it turns
// the interest-drift signal (Section 4.4, the paper's drift_finetune story)
// into a supervised background retraining pipeline with a validated,
// zero-downtime hot-swap and automatic rollback.
//
// The controller never touches the incumbent system. When the drift detector
// trips (or an operator forces a run via /retrainz?force=1) it:
//
//  1. clones the incumbent through the CRC-framed snapshot path — the clone
//     shares only the immutable database, so serving is never blocked and
//     never shares mutable state with training;
//  2. fine-tunes the clone on the drifted statements under the existing PPO
//     divergence watchdog, bounded by a hard per-attempt deadline;
//  3. runs the validation gate: the candidate must score no worse than the
//     incumbent (within ValidateMargin) on BOTH the drifted statements and a
//     held-back slice of the incumbent's training workload — a candidate
//     that learned the new interest by forgetting the old one is rejected;
//  4. persists the candidate via the atomic SaveFile path, then publishes it
//     with one atomic pointer swap (the serving layer's SetSystem);
//  5. retains the incumbent for a rollback window, during which a regression
//     in the shadow-audit per-shape p95 error (vs. the pre-swap baseline)
//     republishes the retained incumbent — byte-identical, it was never
//     mutated.
//
// Failed attempts (clone/train/validate/swap faults, divergence, deadline,
// gate rejection) discard the candidate and back off with doubling delays
// under a capped attempt budget; the incumbent keeps serving throughout.
// Every stage carries a fault-injection point (faults.PointRetrain*) so chaos
// tests can prove the invariant "the incumbent is never mutated by a retrain
// attempt" under injected failure at any stage.
package retrain

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/faults"
	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/workload"
)

// Config tunes the controller. The zero value (plus Enabled) is usable:
// every field has a production-safe default filled in by normalize.
type Config struct {
	// Enabled turns the controller on. Serving layers construct it only when
	// set, so a disabled deployment pays nothing.
	Enabled bool
	// Interval is the drift-poll cadence (default 2s). The controller wakes,
	// checks the incumbent's drift detector, and goes back to sleep; a Force
	// call wakes it immediately.
	Interval time.Duration
	// Timeout is the hard wall-clock deadline for one retrain attempt:
	// clone + fine-tune + validate (default 5m). A deadline overrun discards
	// the candidate — a half-trained set never reaches the gate.
	Timeout time.Duration
	// ExtraEpisodes is the fine-tuning budget per attempt (0 = core's
	// default, half the original training episodes).
	ExtraEpisodes int
	// ValidateMargin is how much worse (in workload score, Equation 1) the
	// candidate may be than the incumbent and still pass the gate, on both
	// the drifted and the held-back workload (default 0.05; negative values
	// demand the candidate beat the incumbent by that much).
	ValidateMargin float64
	// HoldbackFraction is the share of the incumbent's training workload
	// held back as the catastrophic-forgetting probe (default 0.25, at
	// least one query).
	HoldbackFraction float64
	// RollbackWindow is how long the swapped-out incumbent is retained after
	// a successful swap, watching for a quality regression (default 30s).
	RollbackWindow time.Duration
	// RollbackCheck is the polling cadence inside the window (default
	// RollbackWindow/10, at least 10ms).
	RollbackCheck time.Duration
	// RollbackRegression is the increase in worst-shape p95 audit error over
	// the pre-swap baseline that triggers automatic rollback (default 0.10
	// absolute error).
	RollbackRegression float64
	// MaxAttempts caps retrain attempts per drift batch (default 3); an
	// exhausted budget discards the batch and waits for fresh drift.
	MaxAttempts int
	// Backoff is the initial delay after a failed attempt, doubling up to
	// MaxBackoff (defaults 5s and 80s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SnapshotPath, when set, receives the candidate via the atomic SaveFile
	// path *before* the swap (and the incumbent again after a rollback), so
	// a crash at any point recovers to a consistent approximation set.
	SnapshotPath string
	// RecencyDecay is the per-position exponential decay applied when
	// weighting the drifted batch: the newest observation gets weight 1, the
	// one before it RecencyDecay, then RecencyDecay², … Repeats of the same
	// canonical statement sum their weights, so a query that drifted five
	// times recently dominates one stale outlier. 1 means pure frequency
	// weighting (no decay); default 0.9.
	RecencyDecay float64
	// Seed drives holdback sampling (default 1).
	Seed int64
}

func (c Config) normalize() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	if c.ValidateMargin == 0 {
		c.ValidateMargin = 0.05
	}
	if c.HoldbackFraction <= 0 || c.HoldbackFraction > 1 {
		c.HoldbackFraction = 0.25
	}
	if c.RollbackWindow <= 0 {
		c.RollbackWindow = 30 * time.Second
	}
	if c.RollbackCheck <= 0 {
		c.RollbackCheck = c.RollbackWindow / 10
	}
	if c.RollbackCheck < 10*time.Millisecond {
		c.RollbackCheck = 10 * time.Millisecond
	}
	if c.RollbackRegression <= 0 {
		c.RollbackRegression = 0.10
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * time.Second
	}
	if c.RecencyDecay <= 0 || c.RecencyDecay > 1 {
		c.RecencyDecay = 0.9
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = 16 * c.Backoff
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Event is one retrain lifecycle transition, emitted through Hooks.Journal so
// a durability layer (the WAL) can persist the controller's progress. Names:
// "started" (batch picked up; Queries set), "validated" (gate passed; Attempt
// set), "swapped" (candidate published; Persisted reports whether the
// snapshot on disk already captures it), "rolled_back" (incumbent
// republished), "failed" (one attempt failed; Attempt set), "gave_up"
// (attempt budget exhausted, batch discarded).
type Event struct {
	Name string
	// Queries is the drifted-batch size ("started").
	Queries int
	// Attempt is the per-batch attempt number ("validated"/"failed").
	Attempt int
	// Persisted reports whether SnapshotPath captured the published system
	// ("swapped"/"rolled_back") — the journal consumer checkpoints its log
	// only when true, because only then is the event's state on disk.
	Persisted bool
}

// QualityProbe reports the current worst per-shape p95 relative error from
// the shadow auditor, the number of completed audits backing it, and whether
// any evidence exists. With ok false (auditing disabled, or no audits yet)
// the rollback monitor has no signal and the window expires without action.
type QualityProbe func() (worstShapeP95 float64, completed int64, ok bool)

// Hooks connect the controller to the serving layer without importing it.
type Hooks struct {
	// Incumbent returns the live system (nil while none is loaded). The
	// controller only ever reads it and clones it — never mutates it.
	Incumbent func() *core.System
	// Publish atomically replaces the live system (the serving layer's
	// SetSystem). Called once per swap and once per rollback.
	Publish func(*core.System)
	// Quality is the rollback signal (optional; nil means no rollback
	// monitoring — the window still runs so tests and operators see the
	// state, but nothing can trigger).
	Quality QualityProbe
	// QualityAlarm, when set, supersedes Quality as the rollback trigger:
	// instead of polling the raw worst-shape p95 and judging a regression
	// against the pre-swap baseline, the window rolls back as soon as the
	// serving layer's quality SLO reports fast-burn with evidence that
	// postdates the swap (since > swap time). The SLO engine already owns
	// windowing, budgets, and hysteresis, so the controller does not
	// re-derive them.
	QualityAlarm func() (burning bool, since time.Time, desc string)
	// Journal receives lifecycle events for durable logging (optional). It is
	// called synchronously from the controller goroutine; implementations
	// that need durability (WAL append + fsync) should still be quick, and
	// must never call back into the controller.
	Journal func(Event)
}

// GateScores records one validation-gate evaluation for /retrainz.
type GateScores struct {
	IncumbentDrift    float64 `json:"incumbent_drift"`
	CandidateDrift    float64 `json:"candidate_drift"`
	IncumbentHoldback float64 `json:"incumbent_holdback"`
	CandidateHoldback float64 `json:"candidate_holdback"`
	HoldbackQueries   int     `json:"holdback_queries"`
	Margin            float64 `json:"margin"`
	Passed            bool    `json:"passed"`
}

// Status is the controller's point-in-time view, served on /retrainz and
// embedded in /stats. All counters are lifetime totals.
type Status struct {
	Enabled bool `json:"enabled"`
	// State is the controller state machine position: "idle", "training",
	// "validating", "rollback-window", or "backoff".
	State             string      `json:"state"`
	Attempts          int64       `json:"attempts"`
	Swaps             int64       `json:"swaps"`
	Rollbacks         int64       `json:"rollbacks"`
	Failures          int64       `json:"failures"`
	ValidationRejects int64       `json:"validation_rejects"`
	PendingDrifted    int         `json:"pending_drifted"`
	AttemptsThisBatch int         `json:"attempts_this_batch"`
	BackoffUntil      *time.Time  `json:"backoff_until,omitempty"`
	LastOutcome       string      `json:"last_outcome,omitempty"`
	LastError         string      `json:"last_error,omitempty"`
	LastSwapAt        *time.Time  `json:"last_swap_at,omitempty"`
	LastGate          *GateScores `json:"last_gate,omitempty"`
	BaselineP95       float64     `json:"baseline_p95,omitempty"`
}

// Controller is the background retraining loop. Create with New, Start it,
// and Close it during drain. A nil *Controller is a valid disabled
// controller: Status reports Enabled false, Force errors, Close no-ops.
type Controller struct {
	cfg   Config
	hooks Hooks

	ctx    context.Context // canceled at Close so in-flight training stops
	cancel context.CancelFunc
	force  chan struct{}
	stopWg sync.WaitGroup

	mu      sync.Mutex
	st      Status
	pending workload.Workload // drifted batch being retrained, nil when idle
	backoff time.Duration
	until   time.Time // backoff deadline; zero when not backing off
	rng     *rand.Rand
}

// ErrDisabled is returned by Force on a nil (disabled) controller.
var ErrDisabled = errors.New("retrain: disabled")

// New builds a controller. Incumbent and Publish hooks are required; New
// panics without them (a controller that cannot read or publish systems is a
// programming error, not a runtime condition). The loop does not run until
// Start.
func New(cfg Config, hooks Hooks) *Controller {
	if hooks.Incumbent == nil || hooks.Publish == nil {
		panic("retrain: New requires Incumbent and Publish hooks")
	}
	cfg = cfg.normalize()
	c := &Controller{
		cfg:     cfg,
		hooks:   hooks,
		force:   make(chan struct{}, 1),
		backoff: cfg.Backoff,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.st = Status{Enabled: true, State: "idle"}
	return c
}

// Start launches the background loop. Idempotent-unsafe: call once.
func (c *Controller) Start() {
	if c == nil {
		return
	}
	c.stopWg.Add(1)
	go c.loop()
}

// Close stops the loop and cancels any in-flight retrain attempt (fine-tuning
// stops between RL iterations; a candidate mid-flight is discarded). If the
// controller is inside a rollback window, the swapped-in candidate stays
// published — Close never un-publishes. Nil-safe and idempotent.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.cancel()
	c.stopWg.Wait()
}

// Force requests an immediate retrain attempt, bypassing the drift-count
// threshold (any accumulated drifted statement qualifies) and any backoff
// delay. Nil-safe: a disabled controller returns ErrDisabled.
func (c *Controller) Force() error {
	if c == nil {
		return ErrDisabled
	}
	if c.ctx.Err() != nil {
		return errors.New("retrain: controller closed")
	}
	select {
	case c.force <- struct{}{}:
	default: // a force is already queued; one wake is enough
	}
	return nil
}

// Status returns a snapshot of the controller state. Nil-safe: a disabled
// controller reports Enabled false.
func (c *Controller) Status() Status {
	if c == nil {
		return Status{State: "disabled"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.PendingDrifted = len(c.pending)
	if !c.until.IsZero() && time.Now().Before(c.until) {
		u := c.until
		st.BackoffUntil = &u
		st.State = "backoff"
	}
	return st
}

// loop is the controller goroutine: wake on the poll interval or a Force,
// pick up drift, and run attempts.
func (c *Controller) loop() {
	defer c.stopWg.Done()
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	for {
		forced := false
		select {
		case <-c.ctx.Done():
			return
		case <-ticker.C:
		case <-c.force:
			forced = true
		}
		c.runOnce(forced)
	}
}

// runOnce performs at most one retrain attempt: honor backoff (unless
// forced), pick up a drifted batch if none is pending, and attempt it.
func (c *Controller) runOnce(forced bool) {
	c.mu.Lock()
	backingOff := !c.until.IsZero() && time.Now().Before(c.until)
	if forced {
		c.until = time.Time{} // operator override clears the backoff
		backingOff = false
	}
	c.mu.Unlock()
	if backingOff {
		return
	}

	inc := c.hooks.Incumbent()
	if inc == nil {
		return
	}
	c.mu.Lock()
	pending := c.pending
	c.mu.Unlock()
	if pending == nil {
		d := inc.Drift()
		if d == nil {
			return
		}
		min := d.Count
		if forced {
			min = 1 // operator force: any drift evidence qualifies
		}
		drifted := d.Take(min)
		if drifted == nil {
			if forced {
				c.setOutcome("no_drift", "forced retrain skipped: no drifted queries accumulated")
			}
			return
		}
		pending = weightedDriftBatch(drifted, c.cfg.RecencyDecay)
		c.mu.Lock()
		c.pending = pending
		c.st.AttemptsThisBatch = 0
		c.mu.Unlock()
		c.journal(Event{Name: "started", Queries: len(drifted)})
		obs.Logger().Info("retrain triggered",
			"drifted_queries", len(drifted), "distinct", len(pending), "forced", forced)
	}
	c.attempt(inc, pending)
}

// attempt runs one full retrain attempt against the incumbent. Any panic —
// including injected ones — is recovered into a failed attempt; the
// incumbent is untouched on every failure path because nothing here ever
// writes to it.
func (c *Controller) attempt(inc *core.System, drifted workload.Workload) {
	c.mu.Lock()
	c.st.Attempts++
	c.st.AttemptsThisBatch++
	c.st.State = "training"
	c.st.LastError = ""
	seed := c.cfg.Seed + c.st.Attempts
	c.mu.Unlock()
	if obs.Enabled() {
		obs.Default().Counter("retrain/attempts").Inc()
	}

	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.Timeout)
	defer cancel()
	ctx, span := obs.StartSpan(ctx, "retrain/attempt")
	defer span.End()
	span.Annotate("drifted_queries", len(drifted))

	failed := func(stage string, err error) {
		span.Event("stage_failed", "stage", stage)
		span.MarkError(err.Error())
		c.fail(stage, err)
	}
	defer func() {
		if r := recover(); r != nil {
			failed("panic", fmt.Errorf("retrain: attempt panic recovered: %v", r))
		}
	}()

	// Stage 1: clone. The snapshot path deep-copies everything mutable; the
	// incumbent is read-only input from here on.
	_, cloneSpan := obs.StartSpan(ctx, "retrain/clone")
	if err := faults.Inject(faults.PointRetrainClone); err != nil {
		cloneSpan.End()
		failed("clone", err)
		return
	}
	cand, err := inc.Clone()
	cloneSpan.End()
	if err != nil {
		failed("clone", err)
		return
	}

	// Baselines are scored on the candidate BEFORE fine-tuning: its set is
	// identical to the incumbent's, so these are the incumbent's scores
	// without running anything against the incumbent's own caches.
	holdback := holdbackSlice(cand.TrainingWorkload(), c.cfg.HoldbackFraction, seed)
	incDrift, err := cand.ScoreOn(drifted)
	if err != nil {
		failed("baseline", err)
		return
	}
	incHold, err := cand.ScoreOn(holdback)
	if err != nil {
		failed("baseline", err)
		return
	}

	// Stage 2: fine-tune the clone under the attempt deadline. The PPO
	// divergence watchdog inside rl.TrainContext handles NaN/KL blowups with
	// checkpoint rollback; a deadline overrun discards the candidate rather
	// than gating a half-trained set.
	trainCtx, trainSpan := obs.StartSpan(ctx, "retrain/train")
	if err := faults.Inject(faults.PointRetrainTrain); err != nil {
		trainSpan.End()
		failed("train", err)
		return
	}
	err = cand.FineTuneContext(trainCtx, drifted, c.cfg.ExtraEpisodes)
	trainSpan.End()
	if err != nil {
		failed("train", err)
		return
	}
	if ctx.Err() != nil {
		failed("train", fmt.Errorf("retrain: attempt deadline exceeded: %w", ctx.Err()))
		return
	}

	// Stage 3: validation gate.
	c.setState("validating")
	_, valSpan := obs.StartSpan(ctx, "retrain/validate")
	if err := faults.Inject(faults.PointRetrainValidate); err != nil {
		valSpan.End()
		failed("validate", err)
		return
	}
	candDrift, err := cand.ScoreOn(drifted)
	if err != nil {
		valSpan.End()
		failed("validate", err)
		return
	}
	candHold, err := cand.ScoreOn(holdback)
	valSpan.End()
	if err != nil {
		failed("validate", err)
		return
	}
	gate := GateScores{
		IncumbentDrift:    incDrift,
		CandidateDrift:    candDrift,
		IncumbentHoldback: incHold,
		CandidateHoldback: candHold,
		HoldbackQueries:   len(holdback),
		Margin:            c.cfg.ValidateMargin,
		Passed: candDrift >= incDrift-c.cfg.ValidateMargin &&
			candHold >= incHold-c.cfg.ValidateMargin,
	}
	c.mu.Lock()
	g := gate
	c.st.LastGate = &g
	c.mu.Unlock()
	span.Annotate("gate_passed", gate.Passed)
	if gate.Passed {
		c.mu.Lock()
		attemptNo := c.st.AttemptsThisBatch
		c.mu.Unlock()
		c.journal(Event{Name: "validated", Attempt: attemptNo})
	}
	if !gate.Passed {
		c.mu.Lock()
		c.st.ValidationRejects++
		c.mu.Unlock()
		if obs.Enabled() {
			obs.Default().Counter("retrain/validation_rejects").Inc()
		}
		failed("validate", fmt.Errorf(
			"retrain: validation gate rejected candidate: drift %.4f vs %.4f, holdback %.4f vs %.4f (margin %.4f)",
			candDrift, incDrift, candHold, incHold, c.cfg.ValidateMargin))
		return
	}

	// Stage 4: persist the candidate before it goes live, so a crash between
	// here and the swap recovers to a consistent (new) set.
	if c.cfg.SnapshotPath != "" {
		if err := cand.SaveFile(c.cfg.SnapshotPath); err != nil {
			failed("persist", err)
			return
		}
		span.Event("persisted", "path", c.cfg.SnapshotPath)
	}

	// Stage 5: swap. One atomic pointer publish; in-flight queries finish on
	// the incumbent they loaded, new ones land on the candidate.
	if err := faults.Inject(faults.PointRetrainSwap); err != nil {
		failed("swap", err)
		return
	}
	baseP95, baseCompleted := 0.0, int64(0)
	baseOK := false
	if c.hooks.Quality != nil {
		baseP95, baseCompleted, baseOK = c.hooks.Quality()
	}
	c.hooks.Publish(cand)
	now := time.Now()
	c.mu.Lock()
	c.st.Swaps++
	c.st.LastSwapAt = &now
	c.st.State = "rollback-window"
	c.st.LastOutcome = "swapped"
	c.st.BaselineP95 = baseP95
	c.mu.Unlock()
	if obs.Enabled() {
		obs.Default().Counter("retrain/swaps").Inc()
	}
	c.journal(Event{Name: "swapped", Persisted: c.cfg.SnapshotPath != ""})
	span.Event("swapped", "baseline_p95", baseP95, "baseline_ok", baseOK)
	obs.Logger().Info("retrain swapped in candidate",
		"drift_score", candDrift, "holdback_score", candHold,
		"baseline_p95", baseP95, "rollback_window", c.cfg.RollbackWindow)

	// Stage 6: rollback window. The incumbent stays retained (and unmutated)
	// until the window expires clean; a quality regression republishes it.
	if c.watchRollback(inc, now, baseP95, baseCompleted, baseOK) {
		span.Event("rolled_back")
		return
	}
	// Committed: forget the incumbent, reset the failure budget.
	c.mu.Lock()
	c.pending = nil
	c.st.AttemptsThisBatch = 0
	c.st.State = "idle"
	c.backoff = c.cfg.Backoff
	c.until = time.Time{}
	c.mu.Unlock()
	span.Event("committed")
}

// watchRollback holds the swapped-out incumbent for the rollback window.
// With a QualityAlarm hook it consumes the quality SLO state: rollback fires
// when the SLO is fast-burning and entered that state after the swap.
// Otherwise it polls the raw quality probe and judges a regression against
// the pre-swap baseline (evidence must postdate the swap: completed count
// advanced past the baseline). It returns true when it rolled back.
func (c *Controller) watchRollback(inc *core.System, swapAt time.Time, baseP95 float64, baseCompleted int64, baseOK bool) bool {
	deadline := time.Now().Add(c.cfg.RollbackWindow)
	for {
		select {
		case <-c.ctx.Done():
			return false // closing: leave the candidate published
		case <-time.After(c.cfg.RollbackCheck):
		}
		if c.hooks.QualityAlarm != nil {
			if burning, since, desc := c.hooks.QualityAlarm(); burning && since.After(swapAt) {
				c.rollbackReason(inc, "quality SLO fast-burn since "+
					since.Format(time.RFC3339Nano)+": "+desc)
				return true
			}
		} else if c.hooks.Quality != nil {
			p95, completed, ok := c.hooks.Quality()
			fresh := completed > baseCompleted
			base := baseP95
			if !baseOK {
				base = 0 // no pre-swap evidence: any post-swap error is new
			}
			if ok && fresh && p95 > base+c.cfg.RollbackRegression {
				c.rollbackReason(inc, fmt.Sprintf(
					"quality regression: worst-shape p95 %.4f > baseline %.4f + %.4f",
					p95, base, c.cfg.RollbackRegression))
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}

// rollbackReason republishes the retained incumbent — byte-identical to what
// served before the swap, since no retrain path ever mutates it — and
// re-persists it so the on-disk snapshot matches what is live again. The
// failed batch is discarded and the controller backs off before retraining.
func (c *Controller) rollbackReason(inc *core.System, reason string) {
	c.hooks.Publish(inc)
	if c.cfg.SnapshotPath != "" {
		if err := inc.SaveFile(c.cfg.SnapshotPath); err != nil {
			obs.Logger().Error("rollback snapshot re-persist failed",
				"path", c.cfg.SnapshotPath, "err", err)
		}
	}
	c.mu.Lock()
	c.st.Rollbacks++
	c.st.LastOutcome = "rolled_back"
	c.st.LastError = reason
	c.pending = nil
	c.st.AttemptsThisBatch = 0
	c.st.State = "idle"
	c.armBackoffLocked()
	c.mu.Unlock()
	if obs.Enabled() {
		obs.Default().Counter("retrain/rollbacks").Inc()
	}
	c.journal(Event{Name: "rolled_back", Persisted: c.cfg.SnapshotPath != ""})
	obs.Logger().Warn("retrain rolled back to incumbent", "reason", reason)
}

// fail records a failed attempt: the candidate is discarded (nothing to do —
// it was never published), the backoff doubles, and an exhausted attempt
// budget discards the drift batch entirely.
func (c *Controller) fail(stage string, err error) {
	if obs.Enabled() {
		obs.Default().Counter("retrain/failures").Inc()
		obs.Default().Counter("retrain/failures/" + stage).Inc()
	}
	obs.Logger().Warn("retrain attempt failed", "stage", stage, "err", err)
	c.mu.Lock()
	c.st.Failures++
	c.st.LastOutcome = "failed_" + stage
	c.st.LastError = err.Error()
	c.st.State = "idle"
	attemptNo := c.st.AttemptsThisBatch
	gaveUp := attemptNo >= c.cfg.MaxAttempts
	if gaveUp {
		c.pending = nil
		c.st.AttemptsThisBatch = 0
		c.st.LastOutcome = "gave_up"
		c.backoff = c.cfg.Backoff
		c.until = time.Time{}
	} else {
		c.armBackoffLocked()
	}
	c.mu.Unlock()
	if gaveUp {
		c.journal(Event{Name: "gave_up", Attempt: attemptNo})
		obs.Logger().Warn("retrain attempt budget exhausted; discarding drift batch",
			"max_attempts", c.cfg.MaxAttempts)
		return
	}
	c.journal(Event{Name: "failed", Attempt: attemptNo})
}

// journal emits ev through the optional Journal hook. Nil-safe.
func (c *Controller) journal(ev Event) {
	if c.hooks.Journal != nil {
		c.hooks.Journal(ev)
	}
}

// Restore re-arms the failure backoff after crash recovery: the WAL replay
// tells the controller how many attempts the pre-crash batch had already
// burned, and Restore resumes the doubled backoff where it left off, so a
// crash-looping deployment cannot turn retraining into a hot loop. The drift
// batch itself is restored separately (replay re-observes the drifted
// statements into the detector; the controller picks them up as usual once
// the backoff expires).
func (c *Controller) Restore(attemptsThisBatch int) {
	if c == nil || attemptsThisBatch <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backoff = c.cfg.Backoff
	for i := 1; i < attemptsThisBatch; i++ {
		if c.backoff *= 2; c.backoff > c.cfg.MaxBackoff {
			c.backoff = c.cfg.MaxBackoff
			break
		}
	}
	c.st.LastOutcome = "recovered"
	c.armBackoffLocked()
}

// armBackoffLocked starts (and doubles) the failure backoff. Caller holds mu.
func (c *Controller) armBackoffLocked() {
	c.until = time.Now().Add(c.backoff)
	if c.backoff *= 2; c.backoff > c.cfg.MaxBackoff {
		c.backoff = c.cfg.MaxBackoff
	}
}

func (c *Controller) setState(s string) {
	c.mu.Lock()
	c.st.State = s
	c.mu.Unlock()
}

func (c *Controller) setOutcome(outcome, msg string) {
	c.mu.Lock()
	c.st.LastOutcome = outcome
	c.st.LastError = msg
	c.mu.Unlock()
}

// weightedDriftBatch turns the raw drift observations (in observation order,
// oldest first) into a weighted fine-tune workload: each occurrence of a
// canonical statement contributes decay^(age) weight, where age counts
// observations back from the newest. Frequency and recency therefore compound
// — a statement that drifted repeatedly and recently dominates the batch —
// instead of the old uniform treatment where one stale outlier pulled as hard
// as the workload's new center of mass. The result is deduplicated, ordered
// by weight descending (ties broken by canonical SQL for determinism), and
// normalized.
func weightedDriftBatch(stmts []*sqlparse.Select, decay float64) workload.Workload {
	if len(stmts) == 0 {
		return nil
	}
	weights := make(map[string]float64, len(stmts))
	repr := make(map[string]*sqlparse.Select, len(stmts))
	n := len(stmts)
	for i, s := range stmts {
		sql := s.String()
		weights[sql] += math.Pow(decay, float64(n-1-i))
		if _, ok := repr[sql]; !ok {
			repr[sql] = s
		}
	}
	w := make(workload.Workload, 0, len(weights))
	for sql, wt := range weights {
		w = append(w, workload.Query{SQL: sql, Stmt: repr[sql], Weight: wt})
	}
	sort.Slice(w, func(i, j int) bool {
		if w[i].Weight != w[j].Weight {
			return w[i].Weight > w[j].Weight
		}
		return w[i].SQL < w[j].SQL
	})
	w.Normalize()
	return w
}

// holdbackSlice deterministically samples a fraction of the training workload
// (at least one query) as the catastrophic-forgetting probe. The sample is a
// function of seed, so one attempt's gate is reproducible, while successive
// attempts rotate through different slices.
func holdbackSlice(w workload.Workload, frac float64, seed int64) workload.Workload {
	if len(w) == 0 {
		return nil
	}
	n := int(frac * float64(len(w)))
	if n < 1 {
		n = 1
	}
	if n > len(w) {
		n = len(w)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(w))[:n]
	return w.Subset(idx)
}
