package audit

import (
	"sort"
	"time"

	"asqprl/internal/obs"
)

// shapeStats aggregates audit verdicts for one query shape. A shape is the
// pair (plan skeleton, aggregate-ness) produced by engine.PlanShape — coarse
// enough that repeated exploratory variations of one query pattern pool
// their error evidence, fine enough that a sick join pattern does not hide
// behind healthy point lookups.
type shapeStats struct {
	shape string
	hist  *obs.Histogram

	// worst offender for this shape, updated under Auditor.mu.
	worstErr   float64
	worstTrace string
	worstSQL   string
	lastSQL    string
	lastAt     time.Time
	degraded   int64
}

// record folds one audit verdict into the per-shape aggregation and the
// canonical-SQL index used by ObservedError. Both maps are bounded with FIFO
// eviction; evictions only forget history, never block.
func (a *Auditor) record(j job, shape string, relErr float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.shapes[shape]
	if st == nil {
		if len(a.order) >= a.cfg.MaxShapes {
			oldest := a.order[0]
			a.order = a.order[1:]
			delete(a.shapes, oldest)
		}
		st = &shapeStats{shape: shape, hist: obs.NewHistogram()}
		a.shapes[shape] = st
		a.order = append(a.order, shape)
	}
	st.hist.ObserveExemplar(relErr, j.served.TraceID)
	st.lastSQL = j.served.SQL
	st.lastAt = time.Now()
	if j.served.Degraded {
		st.degraded++
	}
	if relErr >= st.worstErr && (relErr > st.worstErr || st.worstTrace == "") {
		st.worstErr = relErr
		st.worstTrace = j.served.TraceID.String()
		st.worstSQL = j.served.SQL
	}
	if a.sqlShape[j.served.SQL] == nil {
		if len(a.sqlOrder) >= a.cfg.MaxSQLIndex {
			oldest := a.sqlOrder[0]
			a.sqlOrder = a.sqlOrder[1:]
			delete(a.sqlShape, oldest)
		}
		a.sqlOrder = append(a.sqlOrder, j.served.SQL)
	}
	a.sqlShape[j.served.SQL] = st
}

// ObservedError returns the historical p95 relative error observed for the
// shape of the query with the given canonical SQL, and whether any audit
// evidence exists for it. It backs the optional observed_error field on
// /query responses: "answers shaped like yours have measured error ≤ X 95%
// of the time". Nil-safe; a disabled auditor has no evidence.
func (a *Auditor) ObservedError(canonicalSQL string) (float64, bool) {
	if a == nil {
		return 0, false
	}
	a.mu.Lock()
	st := a.sqlShape[canonicalSQL]
	a.mu.Unlock()
	if st == nil || st.hist.Count() == 0 {
		return 0, false
	}
	return st.hist.Quantile(0.95), true
}

// WorstShapeP95 returns the worst per-shape p95 relative error observed so
// far, plus the total number of completed audits backing the figure. ok is
// false when auditing is disabled or no audit has completed yet — callers
// (the retrain controller's rollback monitor) then have no quality signal
// and must not act on the zeros. The per-shape p95 is the right rollback
// signal: a retrained set that regresses one query pattern shows up in that
// shape's histogram immediately, where a pooled global quantile would dilute
// it under healthy traffic.
func (a *Auditor) WorstShapeP95() (p95 float64, completed int64, ok bool) {
	if a == nil {
		return 0, 0, false
	}
	a.mu.Lock()
	shapes := len(a.shapes)
	for _, st := range a.shapes {
		if q := st.hist.Quantile(0.95); q > p95 {
			p95 = q
		}
	}
	a.mu.Unlock()
	if shapes == 0 {
		return 0, a.completed.Load(), false
	}
	return p95, a.completed.Load(), true
}

// Summary is the compact audit rollup embedded as the "quality" block of
// /stats.
type Summary struct {
	Enabled    bool    `json:"enabled"`
	SampleRate float64 `json:"sample_rate"`
	SLOP95     float64 `json:"slo_p95,omitempty"`
	Eligible   int64   `json:"eligible"`
	Sampled    int64   `json:"sampled"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Dropped    int64   `json:"dropped"`
	Deferred   int64   `json:"deferred"`
	SLOBurn    int64   `json:"slo_burn"`
	// Coverage is completed / eligible — the fraction of eligible answers
	// whose error has actually been measured.
	Coverage float64 `json:"coverage"`
	// ErrorP50/P95/Max summarize relative error across ALL completed audits.
	ErrorP50 float64 `json:"error_p50"`
	ErrorP95 float64 `json:"error_p95"`
	ErrorMax float64 `json:"error_max"`
	Shapes   int     `json:"shapes"`
}

// Stats returns the audit rollup. Nil-safe: a disabled auditor reports
// Enabled false and zeros.
func (a *Auditor) Stats() Summary {
	if a == nil {
		return Summary{}
	}
	s := Summary{
		Enabled:    true,
		SampleRate: a.cfg.SampleRate,
		SLOP95:     a.cfg.SLOP95,
		Eligible:   a.eligible.Load(),
		Sampled:    a.sampled.Load(),
		Completed:  a.completed.Load(),
		Failed:     a.failed.Load(),
		Dropped:    a.dropped.Load(),
		Deferred:   a.deferrals.Load(),
		SLOBurn:    a.sloBurn.Load(),
	}
	if s.Eligible > 0 {
		s.Coverage = float64(s.Completed) / float64(s.Eligible)
	}
	// Global quantiles come from the pooled registry histogram when
	// observability is on; the per-shape max is tracked either way.
	a.mu.Lock()
	s.Shapes = len(a.shapes)
	for _, st := range a.shapes {
		if m := st.hist.Max(); m > s.ErrorMax {
			s.ErrorMax = m
		}
	}
	a.mu.Unlock()
	if obs.Enabled() {
		h := obs.Default().Histogram("asqp/audit/relative_error")
		if h.Count() > 0 {
			s.ErrorP50 = h.Quantile(0.50)
			s.ErrorP95 = h.Quantile(0.95)
			s.ErrorMax = h.Max()
		}
	}
	return s
}

// ShapeReport is one query shape's observed-error profile in /qualityz,
// including its worst offender with the trace ID to jump to in /tracez.
type ShapeReport struct {
	Shape      string    `json:"shape"`
	Count      int64     `json:"count"`
	Degraded   int64     `json:"degraded"`
	P50        float64   `json:"p50"`
	P95        float64   `json:"p95"`
	Max        float64   `json:"max"`
	WorstErr   float64   `json:"worst_error"`
	WorstTrace string    `json:"worst_trace_id,omitempty"`
	WorstSQL   string    `json:"worst_sql,omitempty"`
	LastSQL    string    `json:"last_sql,omitempty"`
	LastAt     time.Time `json:"last_at"`
	// BurningSLO marks shapes whose p95 exceeds the configured quality SLO.
	BurningSLO bool `json:"burning_slo,omitempty"`
}

// DriftStatus is the drift-detector view composed into QualityPage by the
// serving layer (the auditor itself does not depend on core).
type DriftStatus struct {
	Enabled bool `json:"enabled"`
	// Drifted is the number of deviating queries accumulated since the last
	// fine-tune; Threshold is the count that triggers fine-tuning.
	Drifted   int  `json:"drifted"`
	Threshold int  `json:"threshold"`
	Triggered bool `json:"triggered"`
}

// QualityPage is the full /qualityz payload: the audit rollup, every shape
// sorted worst-p95 first (so the top of the list IS the worst-offenders
// list), and the drift status.
type QualityPage struct {
	Audit  Summary       `json:"audit"`
	Shapes []ShapeReport `json:"shapes,omitempty"`
	Drift  *DriftStatus  `json:"drift,omitempty"`
}

// Page renders the /qualityz payload. drift may be nil (no system loaded or
// drift observation off). Nil-safe: a disabled auditor renders an empty page
// with Audit.Enabled false, so the endpoint is always mounted.
func (a *Auditor) Page(drift *DriftStatus) QualityPage {
	p := QualityPage{Audit: a.Stats(), Drift: drift}
	if a == nil {
		return p
	}
	a.mu.Lock()
	shapes := make([]*shapeStats, 0, len(a.shapes))
	for _, st := range a.shapes {
		shapes = append(shapes, st)
	}
	for _, st := range shapes {
		r := ShapeReport{
			Shape:      st.shape,
			Count:      st.hist.Count(),
			Degraded:   st.degraded,
			P50:        st.hist.Quantile(0.50),
			P95:        st.hist.Quantile(0.95),
			Max:        st.hist.Max(),
			WorstErr:   st.worstErr,
			WorstTrace: st.worstTrace,
			WorstSQL:   st.worstSQL,
			LastSQL:    st.lastSQL,
			LastAt:     st.lastAt,
		}
		r.BurningSLO = a.cfg.SLOP95 > 0 && r.P95 > a.cfg.SLOP95
		p.Shapes = append(p.Shapes, r)
	}
	a.mu.Unlock()
	sort.Slice(p.Shapes, func(i, j int) bool {
		if p.Shapes[i].P95 != p.Shapes[j].P95 {
			return p.Shapes[i].P95 > p.Shapes[j].P95
		}
		return p.Shapes[i].Shape < p.Shapes[j].Shape
	})
	return p
}
