// Package audit is the answer-quality observability layer of ASQP-RL: a
// background shadow auditor that samples a fraction of the approximation-set
// (and degraded) answers the serving layer hands out, re-executes them
// against the full database asynchronously, and turns the comparison into
// per-query-shape relative-error histograms with trace-ID exemplars.
//
// The system's value claim is bounded-error exploratory answering; the
// auditor is what makes that claim observable on live traffic instead of a
// training-time promise. Design constraints, in order:
//
//  1. Audits must never degrade user traffic. Audit workers run outside
//     admission control entirely — they hold no execution slots and no queue
//     tickets — and before touching the full database they consult a
//     capacity gate supplied by the serving layer. When the gate reports no
//     spare capacity (breaker open, in-flight load high, draining), workers
//     back off with doubling sleeps instead of competing with users.
//  2. The hot path pays nothing when auditing is off. Every entry point is
//     nil-receiver safe, so a disabled auditor costs one pointer compare and
//     zero allocations (asserted by BenchmarkAuditDisabledOverhead).
//  3. Everything is bounded: the pending-audit queue, the per-shape stats
//     map, and the SQL→shape index all have fixed caps with FIFO eviction
//     and drop counters — sustained overload sheds audits, never memory.
package audit

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// TargetFunc returns the current ground-truth database and frame size F.
// Returning a nil database (system not loaded yet, or hot-swapped away)
// skips the audit. The serving layer supplies a closure over its atomic
// system pointer so audits always run against the live system.
type TargetFunc func() (db *table.Database, frame int)

// GateFunc reports whether there is spare capacity for one audit execution
// right now. The serving layer's gate returns false while the circuit
// breaker is non-closed, while in-flight load exceeds half the admission
// slots, while requests are queued, or while draining.
type GateFunc func() bool

// Config tunes the shadow auditor. The zero value disables sampling; every
// other field has a production-safe default filled in by normalize.
type Config struct {
	// SampleRate is the fraction of eligible (approximation-served or
	// degraded) answers that are shadow-audited, in [0, 1]. Zero disables
	// auditing.
	SampleRate float64
	// Workers is the number of low-priority audit executors (default 1; the
	// auditor is a background verifier, not a throughput machine).
	Workers int
	// QueueDepth bounds the pending-audit queue (default 64). A full queue
	// drops the new audit and counts it — user-facing serving is never
	// blocked on audit capacity.
	QueueDepth int
	// Timeout bounds one ground-truth re-execution (default 10s).
	Timeout time.Duration
	// Backoff is the initial sleep when the capacity gate denies an audit;
	// it doubles up to MaxBackoff (defaults 25ms and 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SLOP95 is the quality SLO: the relative error above which one audited
	// answer burns error budget (0 disables the SLO). The name mirrors the
	// -quality-slo-p95 flag: the target is that per-shape p95 observed error
	// stays under it, and every single observation above it is a burn.
	SLOP95 float64
	// MaxShapes bounds the per-shape stats map (default 256, FIFO eviction).
	MaxShapes int
	// MaxSQLIndex bounds the canonical-SQL → shape index used for
	// observed_error lookups (default 1024, FIFO eviction).
	MaxSQLIndex int
	// Seed drives the sampling decisions (default 1).
	Seed int64
}

func (c Config) normalize() Config {
	if c.SampleRate < 0 {
		c.SampleRate = 0
	}
	if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = time.Second
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 256
	}
	if c.MaxSQLIndex <= 0 {
		c.MaxSQLIndex = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Served describes one answer the serving layer handed out, as the auditor
// needs to see it. The result table itself is read inside Consider (row
// count, aggregate values) and not retained, so large results are never
// pinned by the audit queue.
type Served struct {
	// SQL is the canonical SQL text (sqlparse.Select.String()).
	SQL string
	// TraceID links the audit verdict back to the original request's trace.
	TraceID obs.TraceID
	// Source is "approximation" or "full" (the /query response's source).
	Source string
	// Degraded and Reason mirror the response's degradation tagging.
	Degraded bool
	Reason   string
}

// job is one queued shadow audit.
type job struct {
	stmt   *sqlparse.Select
	served Served
	rows   int                // served row count
	values map[string]float64 // served aggregate values (nil for SPJ)
	isAgg  bool
}

// Auditor owns the background shadow-audit pipeline. Create with New, feed
// it with Consider from the serving path, read it via Summary / ShapeReport /
// ObservedError, and Close it during drain. A nil *Auditor is a valid
// disabled auditor: every method is a cheap no-op.
type Auditor struct {
	cfg    Config
	target TargetFunc
	gate   GateFunc

	jobs   chan job
	stop   chan struct{}
	ctx    context.Context // canceled at Close so in-flight audits abort
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand

	mu       sync.Mutex
	shapes   map[string]*shapeStats
	order    []string // shape insertion order, for FIFO eviction
	sqlShape map[string]*shapeStats
	sqlOrder []string

	eligible  atomic.Int64 // answers that could have been audited
	sampled   atomic.Int64 // answers chosen for audit
	dropped   atomic.Int64 // sampled but queue full
	completed atomic.Int64
	failed    atomic.Int64 // ground truth could not be computed
	deferrals atomic.Int64 // capacity-gate backoff sleeps
	sloBurn   atomic.Int64 // audits whose error exceeded SLOP95

	burnWarn obs.WarnLimiter // rate-limits SLO-burn warnings
}

// New builds and starts an auditor. target supplies the live full database
// and frame size; gate (optional) supplies the spare-capacity signal. The
// worker pool starts immediately; with SampleRate 0 New returns nil — the
// disabled auditor — so callers can gate construction on a single flag.
func New(target TargetFunc, gate GateFunc, cfg Config) *Auditor {
	cfg = cfg.normalize()
	if cfg.SampleRate == 0 || target == nil {
		return nil
	}
	a := &Auditor{
		cfg:      cfg,
		target:   target,
		gate:     gate,
		jobs:     make(chan job, cfg.QueueDepth),
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		shapes:   map[string]*shapeStats{},
		sqlShape: map[string]*shapeStats{},
	}
	a.ctx, a.cancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		a.wg.Add(1)
		go a.worker()
	}
	return a
}

// Enabled reports whether the auditor is sampling (false for nil).
func (a *Auditor) Enabled() bool { return a != nil }

// Consider offers one served answer for shadow auditing. Only
// approximation-served or degraded answers are eligible — a full-database
// non-degraded answer is exact by construction. Eligible answers are sampled
// at the configured rate; sampled ones are enqueued for asynchronous
// verification (the caller's latency is one channel send). It returns true
// when the answer was enqueued. Nil-safe and allocation-free when disabled.
func (a *Auditor) Consider(stmt *sqlparse.Select, sv Served, result *table.Table) bool {
	if a == nil || a.closed.Load() {
		return false
	}
	if sv.Source != "approximation" && !sv.Degraded {
		return false
	}
	a.eligible.Add(1)
	a.rngMu.Lock()
	keep := a.rng.Float64() < a.cfg.SampleRate
	a.rngMu.Unlock()
	if !keep {
		return false
	}
	a.sampled.Add(1)
	j := job{stmt: stmt, served: sv}
	if sv.SQL == "" {
		j.served.SQL = stmt.String()
	}
	if result != nil {
		j.rows = result.NumRows()
	}
	if stmt.HasAggregates() {
		j.isAgg = true
		j.values = aggValues(stmt, result)
	}
	select {
	case a.jobs <- j:
		if obs.Enabled() {
			obs.Default().Counter("asqp/audit/sampled").Inc()
		}
		return true
	default:
		a.dropped.Add(1)
		if obs.Enabled() {
			obs.Default().Counter("asqp/audit/dropped").Inc()
		}
		return false
	}
}

// Close stops accepting new audits, aborts in-flight ground-truth
// executions via context cancellation, and waits for every worker to exit.
// Pending queued audits are discarded (counted as dropped). Close is
// idempotent and nil-safe.
func (a *Auditor) Close() {
	if a == nil || a.closed.Swap(true) {
		return
	}
	a.cancel()
	close(a.stop)
	a.wg.Wait()
	// Count the audits that were queued but never ran.
	for {
		select {
		case <-a.jobs:
			a.dropped.Add(1)
		default:
			return
		}
	}
}

// worker is one low-priority audit executor.
func (a *Auditor) worker() {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case j := <-a.jobs:
			if !a.waitCapacity() {
				a.dropped.Add(1)
				return
			}
			a.run(j)
		}
	}
}

// waitCapacity blocks until the capacity gate reports spare headroom,
// sleeping with doubling backoff between polls. It returns false when the
// auditor is closing — the audit is abandoned, never forced through.
func (a *Auditor) waitCapacity() bool {
	if a.gate == nil {
		return true
	}
	wait := a.cfg.Backoff
	for {
		if a.gate() {
			return true
		}
		a.deferrals.Add(1)
		if obs.Enabled() {
			obs.Default().Counter("asqp/audit/deferred").Inc()
		}
		select {
		case <-a.stop:
			return false
		case <-time.After(wait):
		}
		if wait *= 2; wait > a.cfg.MaxBackoff {
			wait = a.cfg.MaxBackoff
		}
	}
}

// run executes one shadow audit: re-run the query against the full database
// under a deadline, compute the relative error of the served answer, and
// publish the verdict everywhere the spine surfaces (shape histograms, the
// asqp_audit_relative_error exemplar histogram, the original trace, logs).
func (a *Auditor) run(j job) {
	db, frame := a.target()
	if db == nil {
		a.failed.Add(1)
		return
	}
	// The audit runs under its own root span so the verification work is
	// itself traceable; audited_trace_id links it to the user's request.
	ctx, span := obs.StartSpan(a.ctx, "audit/shadow")
	defer span.End()
	span.Annotate("sql", j.served.SQL)
	span.Annotate("audited_trace_id", j.served.TraceID.String())
	ctx, cancel := context.WithTimeout(ctx, a.cfg.Timeout)
	defer cancel()

	shape, err := engine.PlanShape(db, j.stmt)
	if err != nil {
		shape = "unbound"
	}
	relErr, truthRows, err := a.groundTruth(ctx, db, frame, j)
	if err != nil {
		a.failed.Add(1)
		span.MarkError(err.Error())
		if obs.Enabled() {
			obs.Default().Counter("asqp/audit/failed").Inc()
		}
		obs.LoggerCtx(ctx).Warn("shadow audit failed",
			"sql", j.served.SQL, "audited_trace_id", j.served.TraceID.String(), "err", err)
		return
	}
	a.completed.Add(1)
	a.record(j, shape, relErr)
	span.Annotate("relative_error", relErr)
	span.Annotate("shape", shape)
	span.Event("verdict", "relative_error", relErr, "truth_rows", truthRows, "served_rows", j.rows)

	burned := a.cfg.SLOP95 > 0 && relErr > a.cfg.SLOP95
	if burned {
		a.sloBurn.Add(1)
		if obs.Enabled() {
			obs.Default().Counter("asqp/audit/slo_burn").Inc()
		}
		a.warnBurn(j, shape, relErr)
	}
	if obs.Enabled() {
		obs.Default().Counter("asqp/audit/completed").Inc()
		obs.Default().Histogram("asqp/audit/relative_error").ObserveExemplar(relErr, j.served.TraceID)
	}
	// Attach the verdict to the original request's trace so /tracez shows
	// "this degraded answer was later measured at error X". The amendment is
	// best-effort: only tail-kept traces are still addressable, and the JSONL
	// export (written at span end) is not rewritten — offline joins use the
	// audit span's audited_trace_id instead.
	obs.AmendTrace(j.served.TraceID.String(), obs.SpanEvent{
		Name: "audit",
		At:   time.Now(),
		Attrs: map[string]any{
			"relative_error": relErr,
			"shape":          shape,
			"slo_burn":       burned,
		},
	})
}

// groundTruth re-executes the audited statement against the full database
// and returns the served answer's relative error. Aggregates compare value
// maps (Equation 2, per group); SPJ queries compare result cardinality
// against the frame-capped truth (Equation 1 coverage turned into an error).
func (a *Auditor) groundTruth(ctx context.Context, db *table.Database, frame int, j job) (relErr float64, truthRows int, err error) {
	if j.isAgg {
		res, err := engine.ExecuteWithContext(ctx, db, j.stmt, engine.Options{})
		if err != nil {
			return 0, 0, fmt.Errorf("audit: ground truth: %w", err)
		}
		truth := aggValues(j.stmt, res.Table)
		return metrics.GroupRelativeError(j.values, truth), res.Table.NumRows(), nil
	}
	n, err := engine.CountContext(ctx, db, j.stmt, engine.Options{})
	if err != nil {
		return 0, 0, fmt.Errorf("audit: ground truth: %w", err)
	}
	return metrics.CoverageError(j.rows, n, frame), n, nil
}

// warnBurn logs an SLO-burn warning, rate-limited to one per second so a
// sick shape cannot flood the logs.
func (a *Auditor) warnBurn(j job, shape string, relErr float64) {
	if !a.burnWarn.Allow(time.Second) {
		return
	}
	obs.Logger().Warn("quality SLO burn",
		"relative_error", relErr, "slo_p95", a.cfg.SLOP95, "shape", shape,
		"sql", j.served.SQL, "trace_id", j.served.TraceID.String(),
		"degraded", j.served.Degraded, "reason", j.served.Reason)
}

// aggValues converts an executed aggregate result into group → value, the
// same convention as core.AggregateResult (group key is the first column's
// Value.String(); "" for global aggregates; first aggregate value only).
func aggValues(stmt *sqlparse.Select, t *table.Table) map[string]float64 {
	out := map[string]float64{}
	if t == nil {
		return out
	}
	grouped := len(stmt.GroupBy) > 0
	for _, r := range t.Rows {
		if grouped {
			if len(r) >= 2 {
				out[r[0].String()] = r[1].AsFloat()
			}
		} else if len(r) >= 1 {
			out[""] = r[0].AsFloat()
		}
	}
	return out
}
