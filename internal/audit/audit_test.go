package audit

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"asqprl/internal/obs"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
)

// testDB builds a tiny movie database — the auditor's "full database" —
// without any training, so unit tests run in milliseconds.
func testDB() *table.Database {
	movies := table.New("movies", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title", Kind: table.KindString},
		{Name: "rating", Kind: table.KindFloat},
		{Name: "genre", Kind: table.KindString},
	})
	rows := []struct {
		id     int64
		title  string
		rating float64
		genre  string
	}{
		{1, "Alpha", 8.1, "drama"},
		{2, "Beta", 6.4, "comedy"},
		{3, "Gamma", 7.7, "drama"},
		{4, "Delta", 5.2, "action"},
		{5, "Epsilon", 9.0, "drama"},
	}
	for _, r := range rows {
		movies.AppendRow(table.Row{
			table.NewInt(r.id), table.NewString(r.title),
			table.NewFloat(r.rating), table.NewString(r.genre),
		})
	}
	db := table.NewDatabase()
	db.Add(movies)
	return db
}

func mustParse(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// servedRows builds a result table with n placeholder rows — for SPJ audits
// only the cardinality matters.
func servedRows(n int) *table.Table {
	tb := table.New("served", table.Schema{{Name: "x", Kind: table.KindInt}})
	for i := 0; i < n; i++ {
		tb.AppendRow(table.Row{table.NewInt(int64(i))})
	}
	return tb
}

// newTestAuditor builds an auditor over testDB with frame F and sample rate 1.
func newTestAuditor(t *testing.T, frame int, mut func(*Config)) *Auditor {
	t.Helper()
	cfg := Config{SampleRate: 1, Timeout: 5 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	db := testDB()
	a := New(func() (*table.Database, int) { return db, frame }, nil, cfg)
	if a == nil {
		t.Fatal("New returned nil with a positive sample rate")
	}
	t.Cleanup(a.Close)
	return a
}

// waitCompleted polls until the auditor has completed (or failed) n audits.
func waitCompleted(t *testing.T, a *Auditor, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if a.completed.Load()+a.failed.Load() >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("audits did not complete: completed=%d failed=%d want %d",
		a.completed.Load(), a.failed.Load(), n)
}

// TestAuditSPJCoverageError: an approximation-served SPJ answer with 2 of the
// 3 true rows must audit to relative error 1/3, visible through every read
// surface (Stats, ObservedError, Page).
func TestAuditSPJCoverageError(t *testing.T) {
	a := newTestAuditor(t, 25, nil)
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	sv := Served{SQL: stmt.String(), Source: "approximation"}
	if !a.Consider(stmt, sv, servedRows(2)) {
		t.Fatal("eligible answer was not enqueued at sample rate 1")
	}
	waitCompleted(t, a, 1)

	s := a.Stats()
	if s.Completed != 1 || s.Failed != 0 {
		t.Fatalf("stats: %+v", s)
	}
	want := 1.0 / 3.0
	if math.Abs(s.ErrorMax-want) > 1e-9 {
		t.Errorf("ErrorMax = %v, want %v", s.ErrorMax, want)
	}
	if s.Coverage != 1 {
		t.Errorf("coverage = %v, want 1 (1 eligible, 1 completed)", s.Coverage)
	}

	oe, ok := a.ObservedError(sv.SQL)
	if !ok {
		t.Fatal("ObservedError has no evidence after a completed audit")
	}
	// p95 of a single observation must sit in the observation's bucket; the
	// histogram clamps interpolation to the observed extrema.
	if math.Abs(oe-want) > 1e-9 {
		t.Errorf("ObservedError = %v, want %v", oe, want)
	}

	page := a.Page(nil)
	if len(page.Shapes) != 1 {
		t.Fatalf("page shapes = %d, want 1", len(page.Shapes))
	}
	sh := page.Shapes[0]
	if sh.Count != 1 || math.Abs(sh.Max-want) > 1e-9 {
		t.Errorf("shape report: %+v", sh)
	}
	if sh.WorstSQL != sv.SQL {
		t.Errorf("worst SQL %q, want %q", sh.WorstSQL, sv.SQL)
	}
}

// TestAuditExactAnswerZeroError: serving all true rows audits to error 0 —
// and the zero still shows up as evidence (ObservedError ok=true).
func TestAuditExactAnswerZeroError(t *testing.T) {
	a := newTestAuditor(t, 25, nil)
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	sv := Served{SQL: stmt.String(), Source: "approximation"}
	a.Consider(stmt, sv, servedRows(3))
	waitCompleted(t, a, 1)
	oe, ok := a.ObservedError(sv.SQL)
	if !ok || oe != 0 {
		t.Errorf("ObservedError = (%v, %v), want (0, true)", oe, ok)
	}
}

// TestAuditAggregateGroupError: a grouped aggregate served with one wrong
// group value and one missing group must audit to the mean per-group
// relative error of Equation 2.
func TestAuditAggregateGroupError(t *testing.T) {
	a := newTestAuditor(t, 25, nil)
	stmt := mustParse(t, "SELECT genre, COUNT(*) FROM movies GROUP BY genre")
	// Truth: drama 3, comedy 1, action 1. Served: drama 2 (error 1/3),
	// comedy 1 (exact), action missing (error 1) → mean 4/9.
	served := table.New("served", table.Schema{
		{Name: "genre", Kind: table.KindString},
		{Name: "count", Kind: table.KindInt},
	})
	served.AppendRow(table.Row{table.NewString("drama"), table.NewInt(2)})
	served.AppendRow(table.Row{table.NewString("comedy"), table.NewInt(1)})
	sv := Served{SQL: stmt.String(), Source: "approximation"}
	a.Consider(stmt, sv, served)
	waitCompleted(t, a, 1)

	want := 4.0 / 9.0
	if got := a.Stats().ErrorMax; math.Abs(got-want) > 1e-9 {
		t.Errorf("aggregate relative error = %v, want %v", got, want)
	}
}

// TestAuditEligibility: full-database non-degraded answers are exact by
// construction and never audited; degraded full answers are.
func TestAuditEligibility(t *testing.T) {
	a := newTestAuditor(t, 25, nil)
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	if a.Consider(stmt, Served{SQL: stmt.String(), Source: "full"}, servedRows(3)) {
		t.Error("exact full-database answer was enqueued for audit")
	}
	if a.eligible.Load() != 0 {
		t.Error("exact answer counted as eligible")
	}
	if !a.Consider(stmt, Served{SQL: stmt.String(), Source: "full", Degraded: true, Reason: "rows"}, servedRows(1)) {
		t.Error("degraded full answer was not enqueued")
	}
}

// TestAuditSampleRateZeroDisables: New must return the nil (disabled)
// auditor, whose every method is a safe no-op.
func TestAuditSampleRateZeroDisables(t *testing.T) {
	db := testDB()
	a := New(func() (*table.Database, int) { return db, 25 }, nil, Config{SampleRate: 0})
	if a != nil {
		t.Fatal("New with SampleRate 0 should return nil")
	}
	if a.Enabled() {
		t.Error("nil auditor reports enabled")
	}
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	if a.Consider(stmt, Served{Source: "approximation"}, servedRows(1)) {
		t.Error("nil auditor enqueued an audit")
	}
	if _, ok := a.ObservedError("x"); ok {
		t.Error("nil auditor has observed error")
	}
	if s := a.Stats(); s.Enabled {
		t.Errorf("nil auditor stats: %+v", s)
	}
	a.Close() // must not panic
}

// TestAuditQueueBoundsAndDrop: with the worker pool wedged behind a denying
// gate, offers beyond QueueDepth are dropped (counted), never blocked on.
func TestAuditQueueBoundsAndDrop(t *testing.T) {
	var allow atomic.Bool
	db := testDB()
	a := New(
		func() (*table.Database, int) { return db, 25 },
		func() bool { return allow.Load() },
		Config{SampleRate: 1, QueueDepth: 2, Workers: 1, Backoff: time.Millisecond},
	)
	t.Cleanup(a.Close)
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	sv := Served{SQL: stmt.String(), Source: "approximation"}

	// The worker pulls one job and parks at the gate; 2 more fill the queue.
	// Everything beyond that must drop immediately.
	deadline := time.Now().Add(5 * time.Second)
	for a.dropped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drops despite a full queue")
		}
		done := make(chan bool, 1)
		go func() { done <- a.Consider(stmt, sv, servedRows(1)) }()
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("Consider blocked on a full audit queue")
		}
	}
	for a.deferrals.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate denial recorded no deferrals")
		}
		time.Sleep(time.Millisecond)
	}

	// Open the gate: the queued audits complete, the dropped ones stay lost.
	allow.Store(true)
	waitCompleted(t, a, a.sampled.Load()-a.dropped.Load())
	if got := a.completed.Load() + a.dropped.Load(); got != a.sampled.Load() {
		t.Errorf("completed %d + dropped %d != sampled %d",
			a.completed.Load(), a.dropped.Load(), a.sampled.Load())
	}
}

// TestAuditCloseDrainsWorkers: Close must stop every worker — including ones
// parked in gate backoff — and leave no goroutines behind.
func TestAuditCloseDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	db := testDB()
	a := New(
		func() (*table.Database, int) { return db, 25 },
		func() bool { return false }, // gate never opens
		Config{SampleRate: 1, Workers: 4, Backoff: time.Millisecond},
	)
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	sv := Served{SQL: stmt.String(), Source: "approximation"}
	for i := 0; i < 8; i++ {
		a.Consider(stmt, sv, servedRows(1))
	}
	done := make(chan struct{})
	go func() { a.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain the worker pool")
	}
	if a.Consider(stmt, sv, servedRows(1)) {
		t.Error("closed auditor accepted an audit")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines after Close: %d, want ≤ %d", after, before)
	}
}

// TestAuditSLOBurn: audited errors above the quality SLO must burn budget.
func TestAuditSLOBurn(t *testing.T) {
	a := newTestAuditor(t, 25, func(c *Config) { c.SLOP95 = 0.1 })
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	sv := Served{SQL: stmt.String(), Source: "approximation", Degraded: true, Reason: "rows"}
	a.Consider(stmt, sv, servedRows(1)) // error 2/3 > 0.1 → burn
	waitCompleted(t, a, 1)
	if got := a.Stats().SLOBurn; got != 1 {
		t.Errorf("SLO burn counter = %d, want 1", got)
	}
	// An exact answer must not burn.
	a.Consider(stmt, Served{SQL: sv.SQL, Source: "approximation"}, servedRows(3))
	waitCompleted(t, a, 2)
	if got := a.Stats().SLOBurn; got != 1 {
		t.Errorf("SLO burn counter after exact answer = %d, want 1", got)
	}
}

// TestAuditWorstOffenderOrdering: /qualityz shapes must sort worst p95
// first, with per-shape worst offenders retained.
func TestAuditWorstOffenderOrdering(t *testing.T) {
	a := newTestAuditor(t, 25, nil)
	// Shape A: scan with filter, error 2/3. Shape B: aggregate, error 0.
	bad := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	a.Consider(bad, Served{SQL: bad.String(), Source: "approximation"}, servedRows(1))
	good := mustParse(t, "SELECT COUNT(*) FROM movies")
	exact := table.New("served", table.Schema{{Name: "count", Kind: table.KindInt}})
	exact.AppendRow(table.Row{table.NewInt(5)})
	a.Consider(good, Served{SQL: good.String(), Source: "approximation"}, exact)
	waitCompleted(t, a, 2)

	page := a.Page(&DriftStatus{Enabled: true, Drifted: 3, Threshold: 10})
	if len(page.Shapes) != 2 {
		t.Fatalf("shapes = %d, want 2", len(page.Shapes))
	}
	if page.Shapes[0].P95 < page.Shapes[1].P95 {
		t.Errorf("shapes not sorted worst-first: %v then %v", page.Shapes[0].P95, page.Shapes[1].P95)
	}
	if page.Shapes[0].WorstSQL != bad.String() {
		t.Errorf("worst offender SQL %q, want %q", page.Shapes[0].WorstSQL, bad.String())
	}
	if page.Drift == nil || page.Drift.Drifted != 3 {
		t.Errorf("drift block not carried through: %+v", page.Drift)
	}
}

// TestAuditDisabledZeroAlloc is the zero-overhead guard: a disabled (nil)
// auditor must add zero allocations to the serving hot path — the same
// contract as TestDisabledTracingZeroAlloc in internal/obs.
func TestAuditDisabledZeroAlloc(t *testing.T) {
	var a *Auditor
	stmt := mustParse(t, "SELECT title FROM movies WHERE rating > 7")
	rows := servedRows(2)
	allocs := testing.AllocsPerRun(1000, func() {
		a.Consider(stmt, Served{Source: "approximation", TraceID: obs.TraceID{}}, rows)
		a.ObservedError("SELECT title FROM movies WHERE rating > 7")
	})
	if allocs != 0 {
		t.Errorf("disabled auditor allocates %.1f per op on the hot path, want 0", allocs)
	}
}

// BenchmarkAuditDisabledOverhead records the disabled-path cost in the bench
// history (expected: ~1ns and 0 allocs/op).
func BenchmarkAuditDisabledOverhead(b *testing.B) {
	var a *Auditor
	stmt, err := sqlparse.Parse("SELECT title FROM movies WHERE rating > 7")
	if err != nil {
		b.Fatal(err)
	}
	rows := servedRows(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Consider(stmt, Served{Source: "approximation"}, rows)
	}
}
