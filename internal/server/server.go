// Package server is the hardened query-serving layer of ASQP-RL: an
// HTTP/JSON front door over core.System designed so that overload, faults,
// and restarts never produce hangs, panics, or silent wrong answers.
//
// The pipeline every request passes through:
//
//	admission control -> circuit breaker routing -> core degradation ladder
//
// Admission control bounds concurrency (MaxInFlight execution slots) and
// queueing (QueueDepth waiters); anything beyond that is shed immediately
// with 503 + Retry-After instead of piling up. The circuit breaker watches
// the full-database fallback rung: after Breaker.Trips consecutive guard
// trips it opens and queries are answered from the approximation set tagged
// Degraded, with half-open probes on a jittered, doubling cooldown. Graceful
// drain (Shutdown) stops admitting, waits for in-flight queries up to the
// drain deadline, then cancels them via context — the listener goroutine and
// every request goroutine are accounted for.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asqprl/internal/audit"
	"asqprl/internal/core"
	"asqprl/internal/diag"
	"asqprl/internal/engine"
	"asqprl/internal/obs"
	"asqprl/internal/retrain"
	"asqprl/internal/slo"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/wal"
)

// Config tunes the serving layer. The zero value is usable: every field has
// a production-safe default filled in by normalize.
type Config struct {
	// Addr is the listen address (default "localhost:8080"; use ":0" in
	// tests to pick a free port).
	Addr string
	// MaxInFlight is the number of queries executing concurrently
	// (default 2×CPUs).
	MaxInFlight int
	// QueueDepth is how many admitted requests may wait for an execution
	// slot before new ones are shed (default MaxInFlight).
	QueueDepth int
	// DefaultTimeout is the per-query deadline when the client does not send
	// one (default 2s). Clients cannot disable it — only shorten or extend
	// it up to MaxTimeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// MaxRows caps per-query result rows (default 100000; 0 keeps the
	// default — the serving layer always bounds result size).
	MaxRows int
	// Retries and Backoff pass through to core.QueryOptions.
	Retries int
	Backoff time.Duration
	// BreakerTrips is the consecutive full-database guard-trip count that
	// opens the circuit breaker (default 5).
	BreakerTrips int
	// BreakerCooldown is the initial open duration before a half-open probe
	// (default 500ms); it doubles on each failed probe up to
	// BreakerMaxCooldown (default 16×).
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight queries
	// before canceling them (default 10s).
	DrainTimeout time.Duration
	// Seed drives the breaker's cooldown jitter (default 1).
	Seed int64
	// AuditSample is the fraction of approximation-served/degraded answers
	// shadow-audited against the full database (0 disables auditing, the
	// default — the hot path then pays zero overhead).
	AuditSample float64
	// AuditWorkers is the size of the low-priority audit worker pool
	// (default 1 when auditing is enabled).
	AuditWorkers int
	// AuditTimeout bounds one ground-truth re-execution (default 10s).
	AuditTimeout time.Duration
	// QualitySLOP95 is the relative-error quality SLO: audited answers whose
	// error exceeds it burn error budget and are logged (0 disables).
	QualitySLOP95 float64
	// DriftObserve feeds each served query into core's interest-drift
	// detector (Section 4.4). Off by default for in-process servers so
	// synthetic traffic cannot poison the fine-tuning signal; asqp-serve
	// enables it by default via -drift-observe.
	DriftObserve bool
	// Retrain configures the drift-triggered background retraining
	// controller (internal/retrain). Disabled unless Retrain.Enabled; it
	// usually wants DriftObserve on too, or only forced retrains ever fire.
	Retrain retrain.Config
	// WAL, when non-nil, durably records served statements, drift
	// observations, and retrain lifecycle events. Served/drift records use
	// the async (group-synced) append so the request path never waits on an
	// fsync; retrain events use the durable append, and a persisted swap or
	// rollback checkpoints the log against the snapshot generation.
	WAL *wal.Log

	// SLOAvailability is the availability objective in (0,1) — the target
	// fraction of requests answered without degradation, error, or shedding
	// (e.g. 0.999). 0 disables the availability SLO.
	SLOAvailability float64
	// SLOLatencyP99 is the p99 request-latency target; requests slower than
	// this burn error budget against a 0.99 objective. 0 disables.
	SLOLatencyP99 time.Duration
	// SLOQualityP95 is the p95 relative-error target for shadow-audited
	// answers; audits above it burn budget against a 0.95 objective. It needs
	// auditing on (AuditSample > 0) to see data. 0 disables.
	SLOQualityP95 float64
	// SLOWindows overrides the burn-rate windows (zero fields default to
	// 1m/5m/30m/6h). Tests shrink them to seconds.
	SLOWindows slo.Windows
	// SLOInterval overrides the telemetry sample interval (default:
	// min(FastShort/4, 5s)).
	SLOInterval time.Duration
	// SLOClock injects the SLO/diag clock for deterministic tests. When set,
	// the background sampler ticker is NOT started — drive
	// TimeSeries().SampleNow() manually.
	SLOClock func() time.Time
	// DiagDir enables the flight recorder: on SLO fast-burn (or
	// /debugz?capture=1) a diagnostic bundle is captured here. Empty
	// disables — the nil recorder adds nothing to any path.
	DiagDir string
	// DiagMinInterval rate-limits unforced captures (default 1m);
	// DiagMaxBundles caps retained bundles (default 8).
	DiagMinInterval time.Duration
	DiagMaxBundles  int
}

func (c Config) normalize() Config {
	if c.Addr == "" {
		c.Addr = "localhost:8080"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.NumCPU()
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = c.MaxInFlight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 100000
	}
	if c.BreakerTrips <= 0 {
		c.BreakerTrips = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 500 * time.Millisecond
	}
	if c.BreakerMaxCooldown < c.BreakerCooldown {
		c.BreakerMaxCooldown = 16 * c.BreakerCooldown
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Server serves approximate query answers over HTTP with overload protection
// and a graceful lifecycle. Create with New, attach a system (at construction
// or later via SetSystem — readiness is gated on it), Start, and eventually
// Shutdown.
type Server struct {
	cfg  Config
	live atomic.Pointer[liveSystem]
	adm  *admission
	brk  *breaker
	aud  *audit.Auditor // nil when AuditSample is 0 — the hot path stays free
	ret  *retrain.Controller
	wal  *wal.Log // nil when durability is off — appends are no-ops

	// ts/sloEng/rec are the windowed-telemetry sampler, burn-rate engine,
	// and flight recorder (all nil unless configured — nil receivers no-op).
	ts     *obs.TimeSeries
	sloEng *slo.Engine
	rec    *diag.Recorder

	// recovering gates readiness while the WAL tail replays at startup;
	// recInfo holds the finished replay's stats for /stats.
	recovering atomic.Bool
	recMu      sync.Mutex
	recInfo    *RecoveryInfo

	// pubMu serializes SetSystem publishes so generation numbers are strictly
	// monotonic even when a swap and a rollback race with an operator reload.
	pubMu sync.Mutex
	gen   int64

	httpSrv    *http.Server
	ln         net.Listener
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	started    atomic.Bool
	serveErr   error
	done       chan struct{}
}

// liveSystem pairs the served system with its publish generation. Responses
// carry the generation so a client (or a chaos test) can prove which system
// produced an answer across a hot swap — every response comes from exactly
// one generation, never a blend.
type liveSystem struct {
	sys *core.System
	gen int64
}

// New builds a server around sys (which may be nil: the server then reports
// not-ready until SetSystem is called, e.g. while a snapshot loads).
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:  cfg,
		adm:  newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		brk:  newBreaker(cfg.BreakerTrips, cfg.BreakerCooldown, cfg.BreakerMaxCooldown, cfg.Seed),
		wal:  cfg.WAL,
		done: make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if sys != nil {
		s.SetSystem(sys)
	}
	// The shadow auditor borrows spare capacity, never admission slots: its
	// gate denies work while draining, while the breaker is not closed (the
	// full database is already suspected sick — the last thing it needs is
	// audit traffic), while in-flight load exceeds half the slots, or while
	// any user request is queued. Denied workers back off; user traffic can
	// never be shed by an audit.
	s.aud = audit.New(
		func() (*table.Database, int) {
			sys, _ := s.System()
			if sys == nil {
				return nil, 0
			}
			return sys.DB(), sys.Config().F
		},
		func() bool {
			return !s.draining.Load() &&
				s.brk.currentState() == breakerClosed &&
				s.adm.queued.Load() == 0 &&
				2*s.adm.inFlight() <= cfg.MaxInFlight
		},
		audit.Config{
			SampleRate: cfg.AuditSample,
			Workers:    cfg.AuditWorkers,
			Timeout:    cfg.AuditTimeout,
			SLOP95:     cfg.QualitySLOP95,
			Seed:       cfg.Seed,
		},
	)
	s.initSLO()
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if cfg.Retrain.Enabled {
		hooks := retrain.Hooks{
			Incumbent: func() *core.System {
				sys, _ := s.System()
				return sys
			},
			Publish: s.SetSystem,
			Quality: s.aud.WorstShapeP95,
		}
		if s.sloEng != nil && cfg.SLOQualityP95 > 0 {
			// The rollback window consumes the quality SLO's state (windowed,
			// hysteretic, budget-aware) instead of re-polling the raw p95.
			hooks.QualityAlarm = s.qualityAlarm
		}
		if s.wal != nil {
			hooks.Journal = s.journalRetrain
		}
		s.ret = retrain.New(cfg.Retrain, hooks)
		s.ret.Start()
	}
	return s
}

// SetSystem attaches (or replaces) the system and flips the server ready.
// Each publish gets the next generation number; in-flight queries finish on
// the system they loaded, new ones see the replacement — the swap itself is
// one atomic pointer store, so no request is ever dropped or blended.
func (s *Server) SetSystem(sys *core.System) {
	s.pubMu.Lock()
	s.gen++
	gen := s.gen
	s.live.Store(&liveSystem{sys: sys, gen: gen})
	s.pubMu.Unlock()
	if obs.Enabled() {
		obs.Default().Gauge("server/generation").Set(float64(gen))
	}
}

// System returns the live system (nil before any SetSystem) and its publish
// generation.
func (s *Server) System() (*core.System, int64) {
	ls := s.live.Load()
	if ls == nil {
		return nil, 0
	}
	return ls.sys, ls.gen
}

// Retrain exposes the background retraining controller (nil when disabled);
// tests use it to force attempts and read status without HTTP.
func (s *Server) Retrain() *retrain.Controller { return s.ret }

// Ready reports whether the server would pass a readiness probe. Recovery
// (WAL tail replay at startup) holds readiness down until the replayed state
// is live — a load balancer never routes to a server still rebuilding its
// drift evidence.
func (s *Server) Ready() bool {
	return s.live.Load() != nil && !s.draining.Load() && !s.recovering.Load()
}

// Handler returns the HTTP handler (also used directly by tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/qualityz", s.handleQualityz)
	mux.HandleFunc("/retrainz", s.handleRetrainz)
	mux.HandleFunc("/sloz", s.handleSloz)
	mux.HandleFunc("/debugz", s.handleDebugz)
	return mux
}

// Start binds the listen address and serves in a background goroutine. It
// returns the bound address (useful with ":0") or the bind error.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.started.Store(true)
	go func() {
		defer close(s.done)
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr = err
			obs.Logger().Error("serve failed", "addr", ln.Addr().String(), "err", err)
		}
	}()
	obs.Logger().Info("serving", "addr", ln.Addr().String(),
		"max_inflight", s.cfg.MaxInFlight, "queue", s.cfg.QueueDepth,
		"query_timeout", s.cfg.DefaultTimeout, "drain_timeout", s.cfg.DrainTimeout)
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: it stops admitting (readiness goes
// 503, new queries are shed), waits for in-flight queries up to the drain
// deadline, then cancels any stragglers via context and closes the listener.
// It returns the first error observed (a drain-deadline overrun surfaces as
// context.DeadlineExceeded). Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		<-s.done
		return nil
	}
	start := time.Now()
	if obs.Enabled() {
		obs.Default().Counter("server/drains").Inc()
	}
	obs.Logger().Info("drain started", "inflight", s.adm.inFlight())
	// Stop the retraining controller first: it cancels any in-flight
	// fine-tune, and no new swap can land mid-drain. A candidate already
	// published stays published; Close never un-publishes. The telemetry
	// sampler goes with it — no SLO evaluation races the drain.
	s.ret.Close()
	s.ts.Close()
	if !s.started.Load() {
		s.baseCancel()
		s.aud.Close()
		close(s.done)
		return nil
	}
	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	s.httpSrv.SetKeepAlivesEnabled(false)
	err := s.httpSrv.Shutdown(drainCtx)
	if err != nil {
		// Drain deadline hit: cancel in-flight queries and close hard. Each
		// canceled query still writes a well-formed JSON error response.
		if obs.Enabled() {
			obs.Default().Counter("server/drain_timeouts").Inc()
		}
		s.baseCancel()
		grace, cancel2 := context.WithTimeout(context.Background(), time.Second)
		defer cancel2()
		if err2 := s.httpSrv.Shutdown(grace); err2 != nil {
			_ = s.httpSrv.Close()
		}
	}
	s.baseCancel()
	<-s.done
	// User traffic is drained; stop the audit workers too. Close rejects new
	// audits, aborts any in-flight ground-truth execution, and waits for the
	// pool to exit — SIGTERM leaves no audit goroutines behind.
	s.aud.Close()
	if obs.Enabled() {
		obs.Default().Histogram("server/drain_seconds").ObserveDuration(time.Since(start))
	}
	obs.Logger().Info("drain finished", "took", time.Since(start), "err", err)
	if err == nil {
		err = s.serveErr
	}
	return err
}

// QueryRequest is the JSON body of POST /query (GET uses ?q=<sql>).
type QueryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMs overrides the server's default per-query deadline, capped at
	// the server's maximum (0 = server default).
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// MaxRows lowers the server's per-query row cap (0 = server default).
	MaxRows int `json:"max_rows,omitempty"`
}

// QueryResponse is the JSON answer for /query. Exactly one of Rows/Error is
// populated; Degraded results are explicitly tagged, never passed off as
// exact.
type QueryResponse struct {
	Columns        []string `json:"columns,omitempty"`
	Rows           [][]any  `json:"rows,omitempty"`
	RowCount       int      `json:"row_count"`
	Source         string   `json:"source,omitempty"` // "approximation" | "full"
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedReason string   `json:"degraded_reason,omitempty"`
	PredictedScore float64  `json:"predicted_score,omitempty"`
	Confidence     float64  `json:"confidence,omitempty"`
	ElapsedMs      float64  `json:"elapsed_ms"`
	Error          string   `json:"error,omitempty"`
	// TraceID links the response to its distributed trace (also echoed in
	// the traceparent response header). Present whenever tracing is enabled.
	TraceID string `json:"trace_id,omitempty"`
	// ObservedError, when shadow auditing is enabled and has evidence for
	// this query's shape, is the historical p95 relative error measured for
	// answers shaped like this one — honest uncertainty from ground truth,
	// not a model prediction. A pointer so a measured 0.0 still serializes.
	ObservedError *float64 `json:"observed_error,omitempty"`
	// Generation is the publish generation of the system that answered (1 for
	// the system the server started with, bumped by every hot swap or
	// rollback). An answer is produced by exactly one generation.
	Generation int64 `json:"generation,omitempty"`
}

// handleQuery runs one query through admission control, breaker routing, and
// the core degradation ladder. Every exit path writes well-formed JSON.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if obs.Enabled() {
		obs.Default().Counter("server/requests").Inc()
	}
	// Join the caller's trace (W3C traceparent) or start a fresh one. The
	// root span opens before the drain/readiness checks so shed requests
	// leave a trace naming the cause, and the response always carries the
	// trace ID (header + JSON) for correlation.
	ctx := r.Context()
	if h := r.Header.Get("traceparent"); h != "" {
		if tid, parent, sampled, perr := obs.ParseTraceparent(h); perr == nil {
			ctx = obs.ContextWithRemoteTrace(ctx, tid, parent, sampled)
		} else if obs.Enabled() {
			obs.Default().Counter("server/traceparent_invalid").Inc()
		}
	}
	ctx, span := obs.StartSpan(ctx, "server/query")
	defer span.End()
	if span != nil {
		span.Annotate("method", r.Method)
		w.Header().Set("traceparent", obs.FormatTraceparent(span.TraceID(), span.SpanID(), true))
	}
	if s.draining.Load() {
		span.Event("shed", "cause", "draining")
		s.writeErr(w, span, http.StatusServiceUnavailable, start, "draining", true)
		return
	}
	sys, gen := s.System()
	if sys == nil {
		span.Event("shed", "cause", "not_ready")
		s.writeErr(w, span, http.StatusServiceUnavailable, start, "not ready: no system loaded", true)
		return
	}
	span.Annotate("generation", gen)
	req, err := parseQueryRequest(r)
	if err != nil {
		s.writeErr(w, span, http.StatusBadRequest, start, err.Error(), false)
		return
	}
	span.Annotate("sql", req.SQL)

	// Per-request deadline: client wish, clamped into (0, MaxTimeout], or the
	// server default. The admission wait runs under the same deadline so a
	// queued request cannot outlive its client's patience.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	maxRows := s.cfg.MaxRows
	if req.MaxRows > 0 && req.MaxRows < maxRows {
		maxRows = req.MaxRows
	}

	// Tie the query to both the connection (client gone = cancel) and the
	// server's base context (drain deadline = cancel).
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, ErrShed) {
			span.Event("shed", "cause", "admission", "in_flight", s.adm.inFlight())
			s.writeErr(w, span, http.StatusServiceUnavailable, start, "overloaded: in-flight and queue limits reached", true)
			return
		}
		s.writeErr(w, span, statusForError(err), start, "canceled while queued: "+err.Error(), false)
		return
	}
	defer s.adm.release()

	stmt, perr := sqlparse.Parse(req.SQL)
	if perr != nil {
		s.writeErr(w, span, http.StatusBadRequest, start, "parse error: "+perr.Error(), false)
		return
	}

	skipFull, probe := s.brk.acquire()
	if skipFull {
		span.Event("breaker_open", "state", s.brk.currentState().String())
	} else if probe {
		span.Event("breaker_probe")
	}
	opts := core.QueryOptions{
		Timeout:   0, // ctx already carries the deadline
		MaxRows:   maxRows,
		Retries:   s.cfg.Retries,
		Backoff:   s.cfg.Backoff,
		SkipFull:  skipFull,
		SkipDrift: !s.cfg.DriftObserve,
	}
	res, qerr := sys.QueryStmtContext(ctx, stmt, opts)
	s.brk.record(probe, res != nil && res.FullAttempted, fullRungFailed(res))

	if qerr != nil {
		s.writeErr(w, span, statusForError(qerr), start, qerr.Error(), false)
		return
	}
	resp := &QueryResponse{
		Columns:        res.Table.Schema.Names(),
		Rows:           jsonRows(res.Table),
		RowCount:       res.Table.NumRows(),
		Source:         "full",
		Degraded:       res.Degraded,
		DegradedReason: res.DegradedReason,
		PredictedScore: res.PredictedScore,
		Confidence:     res.Confidence,
		Generation:     gen,
	}
	if span != nil {
		resp.TraceID = span.TraceID().String()
	}
	if res.FromApproximation {
		resp.Source = "approximation"
	}
	if res.Degraded {
		span.MarkDegraded(res.DegradedReason)
	}
	// One canonicalization serves the quality features (historical-error
	// lookup, audit-sampling offer) and the WAL record.
	var canonical string
	if s.aud != nil || s.wal != nil {
		canonical = stmt.String()
	}
	if s.wal != nil {
		// Async appends: the frames are buffered now and fsynced by the next
		// group commit, so the request path never waits on the disk. A crash
		// can lose at most the frames of one un-synced batch — none of which
		// were promised durable to anyone.
		now := time.Now().UnixNano()
		aerr := s.wal.AppendAsync(wal.Record{
			Type: wal.TypeServed, UnixNs: now, SQL: canonical,
			Source: resp.Source, Degraded: resp.Degraded,
		})
		if aerr == nil && res.Drifted {
			aerr = s.wal.AppendAsync(wal.Record{
				Type: wal.TypeDrift, UnixNs: now, SQL: canonical,
				Confidence: res.Confidence,
			})
		}
		if aerr != nil && obs.Enabled() {
			obs.Default().Counter("server/wal_append_errors").Inc()
		}
	}
	if s.aud != nil {
		if oe, ok := s.aud.ObservedError(canonical); ok {
			resp.ObservedError = &oe
			span.Annotate("observed_error_p95", oe)
		}
		if s.aud.Consider(stmt, audit.Served{
			SQL:      canonical,
			TraceID:  span.TraceID(),
			Source:   resp.Source,
			Degraded: resp.Degraded,
			Reason:   resp.DegradedReason,
		}, res.Table) {
			span.Event("audit_sampled")
		}
	}
	if obs.Enabled() {
		reg := obs.Default()
		if res.Degraded {
			reg.Counter(metricDegraded).Inc()
		}
		elapsed := time.Since(start)
		reg.Histogram(metricRequestSeconds).ObserveDurationExemplar(elapsed, span.TraceID())
		// Per-rung latency (const metric names: no per-request allocation).
		if res.FromApproximation {
			reg.Histogram(metricRungApprox).ObserveDuration(elapsed)
		} else {
			reg.Histogram(metricRungFull).ObserveDuration(elapsed)
		}
	}
	s.writeJSON(w, http.StatusOK, start, resp)
}

// fullRungFailed reports whether the query's full-database rung tripped a
// guard or fault that should count against the circuit breaker. Client
// cancellation does not count — it says nothing about backend health.
func fullRungFailed(res *core.QueryResult) bool {
	if res == nil || !res.FullAttempted {
		return false
	}
	switch res.FullFailure {
	case "deadline", "rows", "fault":
		return true
	default:
		return false
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, time.Now(), map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, time.Now(), map[string]string{"status": "draining"})
	case s.recovering.Load():
		s.writeJSON(w, http.StatusServiceUnavailable, time.Now(), map[string]string{"status": "recovering"})
	case s.live.Load() == nil:
		s.writeJSON(w, http.StatusServiceUnavailable, time.Now(), map[string]string{"status": "loading"})
	default:
		s.writeJSON(w, http.StatusOK, time.Now(), map[string]string{"status": "ready"})
	}
}

// Stats is the JSON body of GET /stats: a point-in-time view of the
// admission controller, breaker, and lifecycle.
type Stats struct {
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining"`
	InFlight     int    `json:"in_flight"`
	Queued       int64  `json:"queued"`
	MaxInFlight  int    `json:"max_in_flight"`
	QueueDepth   int    `json:"queue_depth"`
	BreakerState string `json:"breaker_state"`
	SetSize      int    `json:"set_size,omitempty"`
	// Quality is the shadow-audit rollup (Enabled false when auditing is
	// off); DriftedQueries counts deviating queries accumulated by the
	// drift detector since the last fine-tune.
	Quality        audit.Summary `json:"quality"`
	DriftedQueries int           `json:"drifted_queries"`
	// Generation is the publish generation of the live system; Retrain is
	// the background retraining controller's status (State "disabled" when
	// the controller is off).
	Generation int64          `json:"generation"`
	Retrain    retrain.Status `json:"retrain"`
	// WAL is the write-ahead log's point-in-time view (absent when
	// durability is off); Recovery is the startup replay report (absent
	// until a WAL-enabled server finishes recovering).
	WAL      *wal.Stats    `json:"wal,omitempty"`
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
	// SLO is the burn-rate engine's page (absent when no objectives are
	// configured); Diag is the flight recorder's status (absent when
	// DiagDir is unset).
	SLO  *slo.Page    `json:"slo,omitempty"`
	Diag *diag.Status `json:"diag,omitempty"`
}

// statsNow assembles the /stats view. Shared by the HTTP handler and the
// flight recorder (a bundle's stats.json is exactly what /stats would have
// returned at capture time).
func (s *Server) statsNow() Stats {
	st := Stats{
		Ready:        s.Ready(),
		Draining:     s.draining.Load(),
		InFlight:     s.adm.inFlight(),
		Queued:       s.adm.queued.Load(),
		MaxInFlight:  s.cfg.MaxInFlight,
		QueueDepth:   s.cfg.QueueDepth,
		BreakerState: s.brk.currentState().String(),
		Quality:      s.aud.Stats(),
		Retrain:      s.ret.Status(),
	}
	if sys, gen := s.System(); sys != nil {
		st.Generation = gen
		if sys.Set() != nil {
			st.SetSize = sys.Set().Size()
		}
		if d := sys.Drift(); d != nil {
			st.DriftedQueries = d.DriftedCount()
		}
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WAL = &ws
	}
	st.Recovery = s.RecoveryInfo()
	if s.sloEng != nil {
		p := s.sloEng.Page()
		st.SLO = &p
	}
	if s.rec != nil {
		d := s.rec.Status()
		st.Diag = &d
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, time.Now(), s.statsNow())
}

// RetrainzPage is the /retrainz payload: the controller status plus the live
// generation, so one poll answers both "did a swap happen" and "which
// generation is serving".
type RetrainzPage struct {
	Generation int64          `json:"generation"`
	Status     retrain.Status `json:"status"`
}

// handleRetrainz serves the retraining controller status; ?force=1 requests
// an immediate retrain attempt, bypassing the drift-count threshold and any
// backoff (409 when the controller is disabled or closed). The endpoint is
// always mounted so dashboards can probe capability.
func (s *Server) handleRetrainz(w http.ResponseWriter, r *http.Request) {
	if v := r.URL.Query().Get("force"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, time.Now(),
				map[string]string{"error": fmt.Sprintf("bad force %q", v)})
			return
		}
		if on {
			if err := s.ret.Force(); err != nil {
				s.writeJSON(w, http.StatusConflict, time.Now(),
					map[string]string{"error": err.Error()})
				return
			}
		}
	}
	_, gen := s.System()
	s.writeJSON(w, http.StatusOK, time.Now(), RetrainzPage{Generation: gen, Status: s.ret.Status()})
}

// handleQualityz serves the /qualityz debug page: the audit rollup, every
// audited query shape sorted worst-p95 first, and the drift-detector status.
// The endpoint is always mounted; with auditing disabled it reports
// audit.enabled false so dashboards can probe capability.
func (s *Server) handleQualityz(w http.ResponseWriter, r *http.Request) {
	var drift *audit.DriftStatus
	if sys, _ := s.System(); sys != nil {
		if d := sys.Drift(); d != nil {
			drift = &audit.DriftStatus{
				Enabled:   s.cfg.DriftObserve,
				Drifted:   d.DriftedCount(),
				Threshold: d.Count,
				Triggered: d.Triggered(),
			}
		}
	}
	s.writeJSON(w, http.StatusOK, time.Now(), s.aud.Page(drift))
}

// parseQueryRequest accepts POST {json} or GET ?q=<sql>&timeout_ms=&max_rows=.
func parseQueryRequest(r *http.Request) (QueryRequest, error) {
	var req QueryRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad request body: %v", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.SQL = q.Get("q")
		if v := q.Get("timeout_ms"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad timeout_ms %q", v)
			}
			req.TimeoutMs = n
		}
		if v := q.Get("max_rows"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad max_rows %q", v)
			}
			req.MaxRows = n
		}
	default:
		return req, fmt.Errorf("method %s not allowed; use GET or POST", r.Method)
	}
	if req.SQL == "" {
		return req, errors.New("missing query: POST {\"sql\": ...} or GET ?q=...")
	}
	return req, nil
}

// statusForError maps query errors to HTTP statuses: deadline → 504, client
// cancellation → 499 (nginx convention), anything else → 500.
func statusForError(err error) int {
	switch {
	case errors.Is(err, engine.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, engine.ErrCanceled), errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeErr(w http.ResponseWriter, span *obs.Span, status int, start time.Time, msg string, shed bool) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	span.MarkError(msg)
	span.Annotate("http_status", status)
	if obs.Enabled() {
		reg := obs.Default()
		if shed {
			reg.Counter("server/unavailable").Inc()
		} else {
			reg.Counter("server/errors").Inc()
		}
		reg.Histogram("server/request_seconds").ObserveDurationExemplar(time.Since(start), span.TraceID())
	}
	resp := &QueryResponse{Error: msg}
	if span != nil {
		resp.TraceID = span.TraceID().String()
	}
	s.writeJSON(w, status, start, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, start time.Time, v any) {
	if resp, ok := v.(*QueryResponse); ok {
		resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		obs.Logger().Error("response encode failed", "err", err)
	}
}

// jsonRows converts result rows to JSON-native values (null, number, string,
// bool) so clients do not need the repo's Value encoding.
func jsonRows(t *table.Table) [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		out := make([]any, len(r))
		for j, v := range r {
			switch v.Kind {
			case table.KindInt:
				out[j] = v.Int
			case table.KindFloat:
				out[j] = v.Float
			case table.KindString:
				out[j] = v.Str
			case table.KindBool:
				out[j] = v.Bool
			default:
				out[j] = nil
			}
		}
		rows[i] = out
	}
	return rows
}
