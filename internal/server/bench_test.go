package server

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asqprl/internal/faults"
)

// BenchmarkServeLoad measures the serving layer under closed-loop load at
// 1x, 4x, and 16x admission capacity: each client fires back-to-back queries
// for the duration of the benchmark. Reported metrics: sustained qps, p50 and
// p99 latency (milliseconds), and the shed rate (fraction of requests turned
// away with 503). Only latencies of answered requests enter the percentiles;
// sheds return immediately and would flatter them.
//
// A 10ms scan latency injection stands in for the remote DBMS the paper's
// deployment queries on the full-database rung: service time is then
// IO-shaped (slots held while blocked, CPU mostly idle), so offered load
// translates into concurrency at the admission gate instead of vanishing
// into CPU starvation — clients and server share one process, and on a
// small machine a purely CPU-bound handler would serialize everything.
func BenchmarkServeLoad(b *testing.B) {
	sys := trainedSystem(b)
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:   faults.PointEngineScan,
		Kind:    faults.KindLatency,
		Latency: 10 * time.Millisecond,
	}))
	defer faults.Disable()
	const capacity = 2 // slots; queue adds the same again
	for _, mult := range []int{1, 4, 16} {
		name := map[int]string{1: "load=1x", 4: "load=4x", 16: "load=16x"}[mult]
		b.Run(name, func(b *testing.B) {
			srv := New(sys, Config{
				Addr:           "localhost:0",
				MaxInFlight:    capacity,
				QueueDepth:     capacity,
				DefaultTimeout: 2 * time.Second,
				DrainTimeout:   10 * time.Second,
			})
			addr, err := srv.Start()
			if err != nil {
				b.Fatal(err)
			}
			// Warm keep-alive connections: requests must reach the admission
			// gate concurrently rather than queue in the kernel accept backlog,
			// or the gate never sees the offered load.
			benchClient := &http.Client{Transport: &http.Transport{
				MaxIdleConnsPerHost: capacity * 16,
			}}
			defer benchClient.CloseIdleConnections()
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
				defer cancel()
				_ = srv.Shutdown(ctx)
			}()
			base := "http://" + addr

			clients := capacity * mult
			// Closed loop: b.N requests split across the clients.
			perClient := b.N/clients + 1
			// The join keeps service time well above client-side overhead, so
			// the offered-load multiplier translates into real server-side
			// concurrency (and, past capacity, real shedding).
			queries := []string{
				"SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.rating > 8",
				fullRouteSQL,
			}

			var (
				mu        sync.Mutex
				latencies []time.Duration
				shed      int
				total     int
			)
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						sql := queries[(c+i)%len(queries)]
						t0 := time.Now()
						status, _, err := tryPostQueryWith(benchClient, base, sql, 0, 0)
						lat := time.Since(t0)
						mu.Lock()
						total++
						switch {
						case err != nil:
							// transport errors count as neither answer nor shed
						case status == http.StatusServiceUnavailable:
							shed++
						case status == http.StatusOK:
							latencies = append(latencies, lat)
						}
						mu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			if len(latencies) == 0 {
				b.Fatal("no request was answered")
			}
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			p50 := latencies[len(latencies)/2]
			p99 := latencies[len(latencies)*99/100]
			b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "qps")
			b.ReportMetric(float64(p50.Microseconds())/1000, "p50_ms")
			b.ReportMetric(float64(p99.Microseconds())/1000, "p99_ms")
			b.ReportMetric(float64(shed)/float64(total), "shed_rate")
		})
	}
}

// BenchmarkHotSwapUnderLoad measures what a hot swap costs the clients that
// live through it: closed-loop load at exactly admission capacity (so nothing
// is shed structurally), one SetSystem swap halfway through, p99 latency
// reported separately for answers from the pre-swap and post-swap generation.
// The invariant the retrain design promises — zero dropped requests across
// the swap — is asserted, not just measured: any non-200 fails the benchmark.
func BenchmarkHotSwapUnderLoad(b *testing.B) {
	sys := trainedSystem(b)
	cand, err := sys.Clone()
	if err != nil {
		b.Fatal(err)
	}
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:   faults.PointEngineScan,
		Kind:    faults.KindLatency,
		Latency: 5 * time.Millisecond,
	}))
	defer faults.Disable()

	const clients = 8
	srv := New(sys, Config{
		Addr:           "localhost:0",
		MaxInFlight:    clients, // capacity == offered load: no structural shed
		QueueDepth:     clients,
		DefaultTimeout: 2 * time.Second,
		DrainTimeout:   10 * time.Second,
	})
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	benchClient := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: clients * 2,
	}}
	defer benchClient.CloseIdleConnections()
	base := "http://" + addr

	var (
		mu        sync.Mutex
		pre, post []time.Duration
		dropped   int
		completed atomic.Int64
		swapped   atomic.Bool
	)
	perClient := b.N/clients + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				status, resp, err := tryPostQueryWith(benchClient, base, approxRouteSQL, 0, 0)
				lat := time.Since(t0)
				if completed.Add(1) >= int64(b.N)/2 && swapped.CompareAndSwap(false, true) {
					srv.SetSystem(cand)
				}
				mu.Lock()
				switch {
				case err != nil || status != http.StatusOK:
					dropped++
				case resp.Generation <= 1:
					pre = append(pre, lat)
				default:
					post = append(post, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	b.StopTimer()

	if dropped > 0 {
		b.Fatalf("%d requests dropped across the hot swap; the swap must be invisible", dropped)
	}
	p99 := func(ls []time.Duration) float64 {
		if len(ls) == 0 {
			return 0
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		return float64(ls[len(ls)*99/100].Microseconds()) / 1000
	}
	p99Pre, p99Post := p99(pre), p99(post)
	b.ReportMetric(p99Pre, "p99_pre_ms")
	b.ReportMetric(p99Post, "p99_post_ms")
	if len(pre) > 0 && len(post) > 0 {
		b.ReportMetric(p99Post-p99Pre, "p99_delta_ms")
	}
	b.ReportMetric(float64(dropped), "dropped")
}
