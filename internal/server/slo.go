// SLO, windowed-telemetry, and flight-recorder wiring for the server: the
// sampler that turns the cumulative registry into burn-rate windows, the
// declarative SLO set built from Config, the /sloz and /debugz endpoints,
// and the fast-burn → bundle-capture hook.
package server

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"asqprl/internal/diag"
	"asqprl/internal/obs"
	"asqprl/internal/slo"
	"asqprl/internal/wal"
)

// Metric names the SLO layer reads. The counters and the request histogram
// are maintained by handleQuery/writeErr; the audit histogram by the shadow
// auditor. Per-rung histograms are const so the hot path pays no string
// concatenation.
const (
	metricRequests       = "server/requests"
	metricDegraded       = "server/degraded"
	metricErrors         = "server/errors"
	metricUnavailable    = "server/unavailable"
	metricRequestSeconds = "server/request_seconds"
	metricRungApprox     = "server/rung_seconds/approximation"
	metricRungFull       = "server/rung_seconds/full"
	metricAuditRelError  = "asqp/audit/relative_error"
)

// sloEnabled reports whether any objective is configured.
func (c Config) sloEnabled() bool {
	return c.SLOAvailability > 0 || c.SLOLatencyP99 > 0 || c.SLOQualityP95 > 0
}

// initSLO builds the windowed-telemetry sampler, the SLO engine, and the
// flight recorder from Config. Called once from New, after the auditor
// exists (the quality SLO annotates from it) and before the retrain
// controller (whose rollback hook consumes the quality SLO state). With no
// objectives and no DiagDir it leaves every field nil — the nil receivers
// are no-ops, so the request path is untouched.
func (s *Server) initSLO() {
	cfg := s.cfg
	if !cfg.sloEnabled() && cfg.DiagDir == "" {
		return
	}
	// The sampler reads the process-wide registry the request path writes
	// to; SLOs are meaningless with recording off, so configuring one turns
	// it on (asqp-serve already does; this covers embedded servers).
	if !obs.Enabled() {
		obs.SetEnabled(true)
		obs.Logger().Info("slo: enabling metric recording (objectives configured)")
	}

	windows := cfg.SLOWindows
	interval := cfg.SLOInterval
	if interval <= 0 {
		// Sample at least 4× per fast confirmation window so the window
		// always spans several samples; 5s matches the default 1m window.
		w := windows
		(&w).Normalize()
		interval = w.FastShort / 4
		if interval > 5*time.Second {
			interval = 5 * time.Second
		}
	}
	s.ts = obs.NewTimeSeries(obs.Default(), obs.TimeSeriesOptions{
		Interval: interval,
		Now:      cfg.SLOClock,
	})

	if cfg.sloEnabled() {
		var defs []slo.Def
		if cfg.SLOAvailability > 0 {
			defs = append(defs, slo.Def{
				Name:         "availability",
				Kind:         slo.Availability,
				Objective:    cfg.SLOAvailability,
				TotalCounter: metricRequests,
				BadCounters:  []string{metricDegraded, metricErrors, metricUnavailable},
			})
		}
		if cfg.SLOLatencyP99 > 0 {
			defs = append(defs, slo.Def{
				Name:      "latency",
				Kind:      slo.Latency,
				Objective: 0.99,
				Threshold: cfg.SLOLatencyP99.Seconds(),
				Metric:    metricRequestSeconds,
			})
		}
		if cfg.SLOQualityP95 > 0 {
			defs = append(defs, slo.Def{
				Name:      "quality",
				Kind:      slo.Quality,
				Objective: 0.95,
				Threshold: cfg.SLOQualityP95,
				Metric:    metricAuditRelError,
			})
		}
		eng, err := slo.New(s.ts, defs, slo.Options{
			Windows:    windows,
			Now:        cfg.SLOClock,
			WorstShape: s.aud.WorstShapeP95,
			Registry:   obs.Default(),
		})
		if err != nil {
			// Config objectives are validated ranges; reaching here is a
			// programming error in initSLO's def construction.
			panic(fmt.Sprintf("server: building SLO engine: %v", err))
		}
		s.sloEng = eng
	}

	if cfg.DiagDir != "" {
		rec, err := diag.New(diag.Config{
			Dir:         cfg.DiagDir,
			MaxBundles:  cfg.DiagMaxBundles,
			MinInterval: cfg.DiagMinInterval,
			Now:         cfg.SLOClock,
		}, diag.Source{
			Metrics:     func() any { return obs.Default().Snapshot() },
			Series:      func() any { return s.ts.DumpSeries() },
			SLO:         func() any { return s.sloEng.Page() },
			Traces:      func() any { return obs.KeptTraces() },
			SlowQueries: func() any { return obs.SlowQueries() },
			Stats:       func() any { return s.statsNow() },
			Journal:     s.journalDiag,
		})
		if err != nil {
			obs.Logger().Error("diag: flight recorder disabled", "dir", cfg.DiagDir, "err", err)
		} else {
			s.rec = rec
		}
	}

	// Fast-burn is the capture trigger: the recorder's rate limiter (not the
	// hysteresis alone) guarantees at most one bundle per MinInterval even
	// if several SLOs trip together. The capture runs off the sampler
	// goroutine — it writes profiles and JSON, which must not delay the next
	// sample.
	s.sloEng.OnTransition(func(tr slo.Transition) {
		obs.Logger().Warn("slo state change", "slo", tr.SLO.Name,
			"from", tr.From, "to", tr.To, "budget_consumed", tr.SLO.BudgetConsumed)
		if obs.Enabled() {
			obs.Default().Counter("slo/transitions").Inc()
		}
		if tr.To != slo.StateFastBurn || s.rec == nil {
			return
		}
		reason := "slo-fast-burn-" + tr.SLO.Name
		go func() {
			if dir, err := s.rec.Capture(reason, false); err != nil {
				obs.Logger().Error("diag capture failed", "reason", reason, "err", err)
			} else if dir != "" {
				obs.Logger().Warn("diag bundle captured", "reason", reason, "bundle", dir)
			}
		}()
	})

	// Every sample re-evaluates the SLOs, so state (and the fast-burn
	// trigger) advances at sampler cadence with no extra goroutine. With an
	// injected clock the ticker stays off and tests drive SampleNow.
	s.ts.OnSample(func() { s.sloEng.Evaluate() })
	if cfg.SLOClock == nil {
		s.ts.Start()
	}
}

// journalDiag stamps a diag/bundle record onto the WAL after a successful
// capture, durably: if the process dies right after alerting, the replayed
// tail says so ("crashed while alerting" in the recovery report).
func (s *Server) journalDiag(reason, bundle string) {
	if s.wal == nil {
		return
	}
	err := s.wal.Append(wal.Record{
		Type:   wal.TypeDiag,
		UnixNs: time.Now().UnixNano(),
		Event:  reason,
		Path:   bundle,
	})
	if err != nil {
		obs.Logger().Warn("diag journal append failed", "reason", reason, "err", err)
		if obs.Enabled() {
			obs.Default().Counter("server/wal_append_errors").Inc()
		}
	}
}

// qualityAlarm adapts the quality SLO state into the retrain controller's
// rollback trigger: burning is true only in fast_burn, and since is when the
// state was entered — the controller checks it postdates the swap.
func (s *Server) qualityAlarm() (burning bool, since time.Time, desc string) {
	st, ok := s.sloEng.Status("quality")
	if !ok || st.State != slo.StateFastBurn {
		return false, time.Time{}, ""
	}
	desc = fmt.Sprintf("relative-error p95 objective %.3g breached, budget %.0f%% consumed",
		st.Threshold, 100*st.BudgetConsumed)
	if st.WorstShapeP95 > 0 {
		desc += fmt.Sprintf(" (worst shape p95 %.4f)", st.WorstShapeP95)
	}
	return true, st.Since, desc
}

// TimeSeries exposes the windowed-telemetry sampler (nil when no SLOs or
// recorder are configured); tests drive SampleNow through it.
func (s *Server) TimeSeries() *obs.TimeSeries { return s.ts }

// SLOEngine exposes the burn-rate engine (nil when no objectives configured).
func (s *Server) SLOEngine() *slo.Engine { return s.sloEng }

// Recorder exposes the flight recorder (nil when DiagDir is unset).
func (s *Server) Recorder() *diag.Recorder { return s.rec }

// RungLatency is a per-degradation-rung windowed latency summary in /sloz.
type RungLatency struct {
	Window string  `json:"window"`
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// SlozPage is the /sloz payload: the engine's page plus per-rung latency
// quantiles over the fast-long window, so "which rung is slow" is answered
// on the same page as "which SLO is burning".
type SlozPage struct {
	slo.Page
	RungLatency map[string]RungLatency `json:"rung_latency,omitempty"`
}

// slozPage assembles the /sloz payload (also embedded in /stats bundles).
func (s *Server) slozPage() SlozPage {
	page := SlozPage{Page: s.sloEng.Page()}
	if s.ts == nil {
		return page
	}
	w := s.cfg.SLOWindows
	(&w).Normalize()
	for rung, metric := range map[string]string{
		"approximation": metricRungApprox,
		"full":          metricRungFull,
	} {
		hw, elapsed, ok := s.ts.HistogramWindow(metric, w.FastLong)
		if !ok || hw.Count == 0 {
			continue
		}
		if page.RungLatency == nil {
			page.RungLatency = make(map[string]RungLatency, 2)
		}
		page.RungLatency[rung] = RungLatency{
			Window: elapsed.Round(time.Millisecond).String(),
			Count:  hw.Count,
			P50Ms:  1000 * hw.Quantile(0.50),
			P99Ms:  1000 * hw.Quantile(0.99),
		}
	}
	return page
}

// handleSloz serves the SLO page: JSON by default, a plaintext table with
// ?view=human. Always mounted; with no objectives it reports enabled=false.
// Each GET re-evaluates, so the page reflects the current clock even between
// sampler ticks.
func (s *Server) handleSloz(w http.ResponseWriter, r *http.Request) {
	s.sloEng.Evaluate()
	page := s.slozPage()
	if r.URL.Query().Get("view") == "human" {
		var b strings.Builder
		page.WriteHuman(&b)
		if len(page.RungLatency) > 0 {
			b.WriteString("\nper-rung latency (fast-long window):\n")
			for _, rung := range []string{"approximation", "full"} {
				rl, ok := page.RungLatency[rung]
				if !ok {
					continue
				}
				fmt.Fprintf(&b, "  %-14s n=%-6d p50=%.2fms p99=%.2fms\n",
					rung, rl.Count, rl.P50Ms, rl.P99Ms)
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
		return
	}
	s.writeJSON(w, http.StatusOK, time.Now(), page)
}

// DebugzPage is the /debugz payload: recorder status plus what a capture
// just produced (when ?capture=1 was sent).
type DebugzPage struct {
	Enabled  bool        `json:"enabled"`
	Status   diag.Status `json:"status"`
	Captured string      `json:"captured,omitempty"`
	Error    string      `json:"error,omitempty"`
}

// handleDebugz reports the flight recorder's state; ?capture=1 forces an
// immediate bundle (bypassing the rate limiter — an operator asking gets a
// bundle). 409 when no recorder is configured and a capture was requested.
func (s *Server) handleDebugz(w http.ResponseWriter, r *http.Request) {
	page := DebugzPage{Enabled: s.rec != nil, Status: s.rec.Status()}
	if v := r.URL.Query().Get("capture"); v == "1" || v == "true" {
		if s.rec == nil {
			page.Error = "flight recorder disabled: start with a diag dir (-diag-dir)"
			s.writeJSON(w, http.StatusConflict, time.Now(), page)
			return
		}
		dir, err := s.rec.Capture("debugz", true)
		if err != nil {
			page.Error = err.Error()
			s.writeJSON(w, http.StatusInternalServerError, time.Now(), page)
			return
		}
		page.Captured = dir
		page.Status = s.rec.Status()
	}
	s.writeJSON(w, http.StatusOK, time.Now(), page)
}
