package server

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"asqprl/internal/audit"
	"asqprl/internal/slo"
)

// The golden-schema tests pin the wire shape of the operator surfaces
// (/stats, /qualityz, /sloz). They derive a deterministic field-path →
// JSON-type listing from the Go response types via reflection, so any
// rename, retag, or type change of a field an operator's dashboard might
// scrape shows up as a readable golden diff — and an intentional change is
// a one-flag regen:
//
//	go test ./internal/server -run TestSchema -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden schema files from the current types")

// jsonSchema renders the JSON shape of t as sorted "path: kind" lines.
func jsonSchema(t reflect.Type) string {
	var lines []string
	walkSchema(t, "$", map[reflect.Type]bool{}, &lines)
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func walkSchema(t reflect.Type, path string, seen map[reflect.Type]bool, out *[]string) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		// time.Time and similar marshal to scalars, not objects.
		if t.PkgPath() == "time" {
			*out = append(*out, path+": string(time)")
			return
		}
		if seen[t] {
			*out = append(*out, path+": object(recursive "+t.Name()+")")
			return
		}
		seen[t] = true
		defer delete(seen, t)
		*out = append(*out, path+": object")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("json")
			name, opts, _ := strings.Cut(tag, ",")
			if name == "-" {
				continue
			}
			if name == "" {
				if f.Anonymous {
					// Embedded struct: fields inline at this level.
					walkEmbedded(f.Type, path, seen, out)
					continue
				}
				name = f.Name
			}
			child := path + "." + name
			if strings.Contains(opts, "omitempty") {
				child += "?"
			}
			walkSchema(f.Type, child, seen, out)
		}
	case reflect.Map:
		*out = append(*out, path+": object(map)")
		walkSchema(t.Elem(), path+".*", seen, out)
	case reflect.Slice, reflect.Array:
		if t.Elem().Kind() == reflect.Uint8 {
			*out = append(*out, path+": string(base64)")
			return
		}
		*out = append(*out, path+": array")
		walkSchema(t.Elem(), path+"[]", seen, out)
	case reflect.String:
		*out = append(*out, path+": string")
	case reflect.Bool:
		*out = append(*out, path+": bool")
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*out = append(*out, path+": number(int)")
	case reflect.Float32, reflect.Float64:
		*out = append(*out, path+": number")
	case reflect.Interface:
		*out = append(*out, path+": any")
	default:
		*out = append(*out, path+": "+t.Kind().String())
	}
}

// walkEmbedded inlines an embedded struct's fields at the parent level,
// matching encoding/json's flattening of anonymous fields.
func walkEmbedded(t reflect.Type, path string, seen map[reflect.Type]bool, out *[]string) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct {
		return
	}
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		name, opts, _ := strings.Cut(tag, ",")
		if name == "-" {
			continue
		}
		if name == "" {
			if f.Anonymous {
				walkEmbedded(f.Type, path, seen, out)
				continue
			}
			name = f.Name
		}
		child := path + "." + name
		if strings.Contains(opts, "omitempty") {
			child += "?"
		}
		walkSchema(f.Type, child, seen, out)
	}
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v (regen with -update-golden)", path, err)
	}
	if string(want) != got {
		t.Fatalf("schema drift in %s — a dashboard-visible field changed shape.\n"+
			"If intentional, regen with: go test ./internal/server -run TestSchema -update-golden\n%s",
			name, schemaDiff(string(want), got))
	}
}

// schemaDiff renders the line-level delta between two schema listings.
func schemaDiff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "  - %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "  + %s\n", l)
		}
	}
	return b.String()
}

func TestSchemaStats(t *testing.T) {
	checkGolden(t, "stats_schema", jsonSchema(reflect.TypeOf(Stats{})))
}

func TestSchemaQualityz(t *testing.T) {
	checkGolden(t, "qualityz_schema", jsonSchema(reflect.TypeOf(audit.QualityPage{})))
}

func TestSchemaSloz(t *testing.T) {
	checkGolden(t, "sloz_schema", jsonSchema(reflect.TypeOf(SlozPage{})))
}

func TestSchemaDebugz(t *testing.T) {
	checkGolden(t, "debugz_schema", jsonSchema(reflect.TypeOf(DebugzPage{})))
}

// TestSchemaCoversSLOStatus guards against the walker silently skipping the
// nested slo.Status shape (e.g. if the page type changes to interface{}).
func TestSchemaCoversSLOStatus(t *testing.T) {
	s := jsonSchema(reflect.TypeOf(slo.Page{}))
	for _, want := range []string{
		"$.slos?[].state: string",
		"$.slos?[].burns[].burn: number",
		"$.slos?[].budget_consumed: number",
		"$.windows.fast_short: string",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("slo page schema missing %q:\n%s", want, s)
		}
	}
}
