package server

import (
	"math/rand"
	"sync"
	"time"

	"asqprl/internal/obs"
)

// breakerState is the circuit breaker's state machine position.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

// String names the state for logs and the /stats endpoint.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// breaker protects the full-database fallback rung of the degradation ladder.
// When the expensive path trips its guards (deadline, row budget, fault) N
// times in a row, the breaker opens: queries route around the full database
// and are answered from the approximation set tagged Degraded, instead of
// stacking doomed retries on a sick backend. After a jittered cooldown the
// breaker goes half-open and lets exactly one probe through; a successful
// probe closes it, a failed probe reopens it with doubled (capped) cooldown.
//
// All methods are safe for concurrent use.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // current open duration (doubles on probe failure)
	baseCool  time.Duration
	maxCool   time.Duration
	failures  int       // consecutive full-DB failures while closed
	until     time.Time // earliest probe time while open
	probing   bool      // a half-open probe is in flight
	rng       *rand.Rand
	now       func() time.Time // injectable clock for tests
}

func newBreaker(threshold int, cooldown, maxCooldown time.Duration, seed int64) *breaker {
	if threshold < 1 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	if maxCooldown < cooldown {
		maxCooldown = 16 * cooldown
	}
	return &breaker{
		state:     breakerClosed,
		threshold: threshold,
		cooldown:  cooldown,
		baseCool:  cooldown,
		maxCool:   maxCooldown,
		rng:       rand.New(rand.NewSource(seed)),
		now:       time.Now,
	}
}

// acquire decides how the next query treats the full-database rung. skipFull
// reports that the rung must be routed around (breaker open, or half-open
// with the probe slot taken); probe reports that this query IS the half-open
// probe and must report its outcome via record with probe=true.
func (b *breaker) acquire() (skipFull, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, false
	case breakerOpen:
		if b.now().Before(b.until) {
			return true, false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		if obs.Enabled() {
			obs.Default().Counter("server/breaker/probes").Inc()
		}
		return false, true
	default: // half-open
		if b.probing {
			return true, false
		}
		b.probing = true
		if obs.Enabled() {
			obs.Default().Counter("server/breaker/probes").Inc()
		}
		return false, true
	}
}

// record reports one query's full-database outcome. attempted is false when
// the rung never ran (the approximation set answered first); failed is true
// when the rung tripped a guard or fault. A probe that never attempted the
// full database returns its slot so the next request can probe instead.
func (b *breaker) record(probe, attempted, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if !attempted {
		return
	}
	switch {
	case failed && b.state == breakerHalfOpen && probe:
		// The probe failed: the backend is still sick. Reopen for longer.
		b.cooldown = minDuration(2*b.cooldown, b.maxCool)
		b.open()
	case failed && b.state == breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.cooldown = b.baseCool
			b.open()
		}
	case !failed && b.state == breakerHalfOpen && probe:
		b.failures = 0
		b.setState(breakerClosed)
		if obs.Enabled() {
			obs.Default().Counter("server/breaker/closed").Inc()
		}
	case !failed && b.state == breakerClosed:
		b.failures = 0
	}
	// Failures or successes of straggler queries admitted before the state
	// changed fall through: they carry no information about the current rung.
}

// open transitions to open with a jittered cooldown (±20%), so probes from a
// fleet of servers against one backend do not synchronize.
func (b *breaker) open() {
	jitter := 0.8 + 0.4*b.rng.Float64()
	b.until = b.now().Add(time.Duration(float64(b.cooldown) * jitter))
	b.failures = 0
	b.setState(breakerOpen)
	if obs.Enabled() {
		obs.Default().Counter("server/breaker/opened").Inc()
	}
}

// setState updates the state and its gauge (0 closed, 1 half-open, 2 open).
func (b *breaker) setState(s breakerState) {
	b.state = s
	if obs.Enabled() {
		obs.Default().Gauge("server/breaker/state").Set(float64(s))
	}
}

// currentState returns the state for /stats and tests.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
