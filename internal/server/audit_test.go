package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asqprl/internal/audit"
	"asqprl/internal/obs"
)

// TestAuditEndToEnd is the PR's acceptance test: an approximation-served
// query is sampled for shadow auditing, re-executed against the full
// database in the background, and its relative error must surface on every
// spine the quality layer claims — (a) an `audit` span event amended onto
// the original request's kept trace, (b) the /qualityz shape report, (c) the
// asqp_audit_relative_error Prometheus histogram carrying the same trace ID
// as an exemplar, (d) the quality block of /stats, and (e) an observed_error
// field on the next same-shape /query response.
func TestAuditEndToEnd(t *testing.T) {
	// Healthy traces must be tail-kept for the audit verdict to have a trace
	// to amend, so sample at 1.
	withServerTracing(t, obs.TracingConfig{SampleRate: 1})
	sys := trainedSystem(t)
	srv, base := startServer(t, sys, Config{
		AuditSample:  1,
		AuditWorkers: 1,
		DriftObserve: true,
	})

	tid, httpResp, resp := postTraced(t, base, approxRouteSQL, 0)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %+v", httpResp.StatusCode, resp)
	}
	if resp.Source != "approximation" {
		t.Fatalf("source %q, want approximation (fixture routed unexpectedly)", resp.Source)
	}
	// The very first answer for this shape has no audit evidence yet.
	if resp.ObservedError != nil {
		t.Errorf("first response already carries observed_error %v", *resp.ObservedError)
	}

	// The audit runs asynchronously; its last visible side effect is the
	// amendment of the original trace, so poll for that.
	var rec obs.TraceRecord
	deadline := time.Now().Add(10 * time.Second)
	for {
		var ok bool
		rec, ok = obs.KeptTrace(tid.String())
		if ok && hasEvent(rec.Root, "audit", "", nil) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("audit verdict never landed on trace %s (kept=%v, stats=%+v)",
				tid, ok, srv.aud.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (a) the original trace carries both the sampling decision and the
	// late verdict with a well-formed error and shape.
	if !hasEvent(rec.Root, "audit_sampled", "", nil) {
		t.Error("request trace missing the audit_sampled event")
	}
	var verdict *obs.SpanEvent
	for i, ev := range rec.Root.Events {
		if ev.Name == "audit" {
			verdict = &rec.Root.Events[i]
		}
	}
	if verdict == nil {
		t.Fatal("audit event vanished from the kept trace")
	}
	relErr, ok := verdict.Attrs["relative_error"].(float64)
	if !ok || relErr < 0 || relErr > 1 {
		t.Errorf("audit event relative_error = %v, want a float in [0,1]", verdict.Attrs["relative_error"])
	}
	if shape, _ := verdict.Attrs["shape"].(string); shape == "" {
		t.Error("audit event has no shape attribute")
	}

	// (b) /qualityz reports the rollup, the shape, and the drift status.
	var page audit.QualityPage
	getJSON(t, base+"/qualityz", &page)
	if !page.Audit.Enabled || page.Audit.Sampled < 1 || page.Audit.Completed < 1 {
		t.Errorf("qualityz audit rollup = %+v, want enabled with ≥1 sampled and completed", page.Audit)
	}
	if page.Audit.Coverage <= 0 || page.Audit.Coverage > 1 {
		t.Errorf("qualityz coverage = %v, want in (0,1]", page.Audit.Coverage)
	}
	if len(page.Shapes) == 0 {
		t.Fatal("qualityz reports no shapes after a completed audit")
	}
	sr := page.Shapes[0]
	if sr.Shape == "" || sr.Count < 1 {
		t.Errorf("qualityz shape report = %+v, want named shape with count ≥ 1", sr)
	}
	if sr.P50 < 0 || sr.P95 > 1 || sr.Max > 1 {
		t.Errorf("qualityz shape quantiles out of range: %+v", sr)
	}
	if page.Drift == nil || !page.Drift.Enabled {
		t.Errorf("qualityz drift block = %+v, want enabled (DriftObserve on)", page.Drift)
	}

	// (c) the registry histogram holds the exemplar with the request's trace
	// ID, and the Prometheus exposition renders both.
	found := false
	for _, ex := range obs.Default().Histogram("asqp/audit/relative_error").Exemplars() {
		if ex.TraceID == tid.String() {
			found = true
		}
	}
	if !found {
		t.Error("no exemplar with the audited request's trace ID on asqp/audit/relative_error")
	}
	debug := httptest.NewServer(obs.Handler())
	defer debug.Close()
	promResp, err := http.Get(debug.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := readAll(promResp)
	if !strings.Contains(prom, "asqp_audit_relative_error_bucket") {
		t.Error("Prometheus exposition missing asqp_audit_relative_error")
	}
	if !strings.Contains(prom, `trace_id="`+tid.String()+`"`) {
		t.Error("Prometheus exposition missing the audit exemplar's trace ID")
	}

	// (d) /stats embeds the same rollup plus the drift counter.
	var st Stats
	getJSON(t, base+"/stats", &st)
	if !st.Quality.Enabled || st.Quality.Completed < 1 {
		t.Errorf("/stats quality block = %+v, want enabled with ≥1 completed", st.Quality)
	}
	if st.DriftedQueries < 0 {
		t.Errorf("/stats drifted_queries = %d", st.DriftedQueries)
	}

	// (e) the next same-shape answer advertises the historical p95.
	_, _, resp2 := postTraced(t, base, approxRouteSQL, 0)
	if resp2.ObservedError == nil {
		t.Fatal("second same-shape response has no observed_error despite audit evidence")
	}
	if oe := *resp2.ObservedError; oe < 0 || oe > 1 {
		t.Errorf("observed_error = %v, want in [0,1]", oe)
	}
}

// TestDriftFeedFromServing covers the -drift-observe wiring: with
// observation off (the default, so synthetic and test traffic cannot poison
// fine-tuning decisions) served queries leave the detector untouched; with
// it on, out-of-distribution queries accumulate and surface in /stats and
// /qualityz.
func TestDriftFeedFromServing(t *testing.T) {
	sys := trainedSystem(t)
	d := sys.Drift()
	d.ResetDrift()
	t.Cleanup(d.ResetDrift) // shared system: leave no drift state behind

	// The fixture must actually be out-of-distribution for the detector.
	if _, conf := sys.Estimator().Estimate(mustParse(t, fullRouteSQL)); 1-conf < d.Confidence {
		t.Skipf("fixture query deviation %.2f below drift confidence %.2f", 1-conf, d.Confidence)
	}

	// Observation off (default Config): no accumulation.
	_, base := startServer(t, sys, Config{})
	postQuery(t, base, fullRouteSQL, 0, 0)
	if got := d.DriftedCount(); got != 0 {
		t.Fatalf("drift observed %d queries with -drift-observe off, want 0", got)
	}

	// Observation on: each OOD query lands in the detector, and crossing the
	// threshold flips Triggered.
	_, base2 := startServer(t, sys, Config{DriftObserve: true})
	for i := 0; i < d.Count; i++ {
		postQuery(t, base2, fullRouteSQL, 0, 0)
	}
	if got := d.DriftedCount(); got < d.Count {
		t.Fatalf("drifted count = %d after %d OOD queries, want ≥ %d", got, d.Count, d.Count)
	}

	var st Stats
	getJSON(t, base2+"/stats", &st)
	if st.DriftedQueries < d.Count {
		t.Errorf("/stats drifted_queries = %d, want ≥ %d", st.DriftedQueries, d.Count)
	}
	var page audit.QualityPage
	getJSON(t, base2+"/qualityz", &page)
	if page.Audit.Enabled {
		t.Error("audit reports enabled on a server with AuditSample 0")
	}
	if page.Drift == nil {
		t.Fatal("/qualityz has no drift block despite a loaded system")
	}
	if !page.Drift.Enabled || page.Drift.Drifted < d.Count || !page.Drift.Triggered {
		t.Errorf("/qualityz drift = %+v, want enabled, drifted ≥ %d, triggered", page.Drift, d.Count)
	}
	if page.Drift.Threshold != d.Count {
		t.Errorf("/qualityz drift threshold = %d, want %d", page.Drift.Threshold, d.Count)
	}
}

// TestChaosAuditOverloadAndDrain is the audit safety test: 4x offered load
// with auditing at full sampling must behave exactly like the same overload
// without auditing — audits hold no admission slots, so user queries are
// shed only by admission control itself, a user query always beats a
// pending audit backlog, and SIGTERM-style shutdown drains the audit
// workers cleanly with no goroutines left behind.
func TestChaosAuditOverloadAndDrain(t *testing.T) {
	sys := trainedSystem(t) // train before sampling the goroutine baseline
	before := countGoroutines()

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Default().Reset()

	srv, base := startServer(t, sys, Config{
		MaxInFlight:    4,
		QueueDepth:     4,
		DefaultTimeout: 2 * time.Second,
		DrainTimeout:   5 * time.Second,
		AuditSample:    1, // every eligible answer queues an audit
		AuditWorkers:   2,
	})

	// 32 concurrent clients against capacity 8 = 4x offered load, in
	// synchronized bursts. Every query is approximation-routed, so every
	// 200 is audit-eligible and sampled.
	const clients = 32
	const rounds = 4
	type tally struct {
		ok, shed, other int
	}
	var (
		mu    sync.Mutex
		total tally
	)
	for r := 0; r < rounds; r++ {
		var done sync.WaitGroup
		for c := 0; c < clients; c++ {
			done.Add(1)
			go func(id, r int) {
				defer done.Done()
				status, resp, err := tryPostQuery(base, approxRouteSQL, 0, 0)
				if err != nil {
					t.Errorf("client %d round %d: transport/body error: %v", id, r, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case status == http.StatusOK:
					total.ok++
				case status == http.StatusServiceUnavailable:
					total.shed++
				case resp.Error != "":
					total.other++
				default:
					t.Errorf("client %d round %d: status %d with empty error", id, r, status)
				}
			}(c, r)
		}
		done.Wait()
	}
	if got := total.ok + total.shed + total.other; got != clients*rounds {
		t.Errorf("accounted responses = %d, want %d", got, clients*rounds)
	}
	if total.ok == 0 {
		t.Fatal("no request succeeded under overload")
	}
	t.Logf("audit chaos tally: ok=%d shed=%d other=%d", total.ok, total.shed, total.other)

	// Structural no-shed guarantee: audit workers never touch admission, so
	// with all clients gone the admission controller must read completely
	// idle even while the audit backlog is still executing.
	if in, q := srv.adm.inFlight(), srv.adm.queued.Load(); in != 0 || q != 0 {
		t.Errorf("admission shows in_flight=%d queued=%d after clients left — audits are holding slots", in, q)
	}
	// And a user query arriving over a pending audit backlog is admitted
	// immediately, never shed by audit work.
	status, resp := postQuery(t, base, approxRouteSQL, 0, 0)
	if status != http.StatusOK {
		t.Errorf("user query over audit backlog: status %d (%s), want 200", status, resp.Error)
	}

	// The audit pipeline's books must balance: everything sampled is
	// completed, failed, dropped, or still pending — never lost.
	as := srv.aud.Stats()
	if as.Sampled < int64(total.ok) {
		t.Errorf("sampled %d audits for %d eligible answers at rate 1", as.Sampled, total.ok+1)
	}
	if done := as.Completed + as.Failed + as.Dropped; done > as.Sampled {
		t.Errorf("audit accounting: completed+failed+dropped = %d > sampled %d", done, as.Sampled)
	}

	// SIGTERM path: graceful drain must stop the audit pool (pending audits
	// discarded, in-flight ones aborted) and leave no goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain with audit backlog: %v", err)
	}
	if srv.aud.Consider(mustParse(t, approxRouteSQL), audit.Served{Source: "approximation"}, nil) {
		t.Error("closed auditor accepted new work")
	}
	as = srv.aud.Stats()
	if done := as.Completed + as.Failed + as.Dropped; done != as.Sampled {
		t.Errorf("after drain every sampled audit must be accounted: completed+failed+dropped = %d, sampled = %d", done, as.Sampled)
	}
	after := waitGoroutinesBelow(before+2, 5*time.Second)
	if after > before+2 {
		t.Errorf("goroutines after drain = %d, baseline %d — audit workers leaked", after, before)
	}
}
