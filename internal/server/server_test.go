package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
)

func TestQueryEndpointBasic(t *testing.T) {
	sys := trainedSystem(t)
	_, base := startServer(t, sys, Config{})

	t.Run("post", func(t *testing.T) {
		status, resp := postQuery(t, base, approxRouteSQL, 0, 0)
		if status != http.StatusOK {
			t.Fatalf("status = %d (%s), want 200", status, resp.Error)
		}
		if resp.RowCount != len(resp.Rows) || len(resp.Columns) == 0 {
			t.Errorf("inconsistent result: row_count=%d rows=%d columns=%d",
				resp.RowCount, len(resp.Rows), len(resp.Columns))
		}
		if resp.Source != "approximation" && resp.Source != "full" {
			t.Errorf("source = %q", resp.Source)
		}
	})
	t.Run("get", func(t *testing.T) {
		var resp QueryResponse
		status := getJSON(t, base+"/query?q=SELECT+*+FROM+title+WHERE+rating+%3E+7", &resp)
		if status != http.StatusOK {
			t.Fatalf("status = %d (%s), want 200", status, resp.Error)
		}
	})
	t.Run("parse error is 400", func(t *testing.T) {
		status, resp := postQuery(t, base, "SELEKT broken", 0, 0)
		if status != http.StatusBadRequest || resp.Error == "" {
			t.Fatalf("status = %d error=%q, want 400 with error", status, resp.Error)
		}
	})
	t.Run("missing sql is 400", func(t *testing.T) {
		status, resp := postQuery(t, base, "", 0, 0)
		if status != http.StatusBadRequest || resp.Error == "" {
			t.Fatalf("status = %d error=%q, want 400 with error", status, resp.Error)
		}
	})
	t.Run("max_rows degrades explicitly", func(t *testing.T) {
		status, resp := postQuery(t, base, fullRouteSQL, 0, 3)
		if status != http.StatusOK {
			t.Fatalf("status = %d (%s), want 200", status, resp.Error)
		}
		if !resp.Degraded || resp.RowCount > 3 {
			t.Errorf("degraded=%v rows=%d, want degraded with <=3 rows", resp.Degraded, resp.RowCount)
		}
	})
	t.Run("health and stats", func(t *testing.T) {
		var h map[string]string
		if status := getJSON(t, base+"/healthz", &h); status != http.StatusOK {
			t.Errorf("/healthz = %d", status)
		}
		if status := getJSON(t, base+"/readyz", &h); status != http.StatusOK {
			t.Errorf("/readyz = %d, want 200 on a loaded system", status)
		}
		var st Stats
		if status := getJSON(t, base+"/stats", &st); status != http.StatusOK || !st.Ready {
			t.Errorf("/stats = %d ready=%v", status, st.Ready)
		}
		if st.BreakerState != "closed" {
			t.Errorf("breaker state = %q, want closed", st.BreakerState)
		}
	})
}

// TestReadinessGatedOnSystem: a server without a system answers health checks
// but refuses queries with 503 until SetSystem; draining flips it back.
func TestReadinessGatedOnSystem(t *testing.T) {
	srv, base := startServer(t, nil, Config{})

	var h map[string]string
	if status := getJSON(t, base+"/readyz", &h); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetSystem = %d, want 503", status)
	}
	status, resp := postQuery(t, base, approxRouteSQL, 0, 0)
	if status != http.StatusServiceUnavailable || resp.Error == "" {
		t.Fatalf("query before SetSystem: status=%d error=%q, want 503 with error", status, resp.Error)
	}

	srv.SetSystem(trainedSystem(t))
	if status := getJSON(t, base+"/readyz", &h); status != http.StatusOK {
		t.Fatalf("/readyz after SetSystem = %d, want 200", status)
	}
	if status, resp := postQuery(t, base, approxRouteSQL, 0, 0); status != http.StatusOK {
		t.Fatalf("query after SetSystem: status=%d (%s), want 200", status, resp.Error)
	}
}

// TestAdmissionShedsAtQueueLimit floods a 1-slot, 1-queue server with slow
// queries: some must succeed, the overflow must be shed as 503 with a
// Retry-After header, and nothing may hang or return non-JSON.
func TestAdmissionShedsAtQueueLimit(t *testing.T) {
	sys := trainedSystem(t)
	_, base := startServer(t, sys, Config{
		MaxInFlight:    1,
		QueueDepth:     1,
		DefaultTimeout: 5 * time.Second,
		Retries:        -1,
	})

	// Slow every scan down so requests overlap deterministically.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:   faults.PointEngineScan,
		Kind:    faults.KindLatency,
		Latency: 100 * time.Millisecond,
	}))
	defer faults.Disable()

	const n = 8
	type outcome struct {
		status int
		err    error
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, err := tryPostQuery(base, approxRouteSQL, 0, 0)
			outcomes[i] = outcome{status, err}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("request %d: %v", i, o.err)
		}
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Errorf("request %d: unexpected status %d", i, o.status)
		}
	}
	if ok == 0 {
		t.Error("no request succeeded under overload")
	}
	if shed == 0 {
		t.Errorf("no request shed with %d clients against capacity 2", n)
	}

	// Shed responses carry Retry-After so clients back off politely.
	resp, err := testClient.Get(base + "/query?q=" + strings.ReplaceAll(approxRouteSQL, " ", "+"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestShedResponseHasRetryAfter drives the admission path directly.
func TestAdmissionUnit(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second caller queues; third is shed immediately.
	queued := make(chan error, 1)
	go func() {
		queued <- a.acquire(context.Background())
	}()
	time.Sleep(20 * time.Millisecond) // let the second caller enter the queue
	if err := a.acquire(context.Background()); err != ErrShed {
		t.Fatalf("third acquire = %v, want ErrShed", err)
	}
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.release()

	// A queued caller whose context dies gets the context error, and its
	// ticket is returned (the queue does not leak).
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := a.acquire(ctx); err != context.Canceled {
		t.Fatalf("canceled queued acquire = %v, want context.Canceled", err)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after canceled waiter should succeed: %v", err)
	}
	a.release()
}

// TestBreakerStateMachine drives every transition with a fake clock:
// closed -> open after N consecutive failures, open sheds until the cooldown,
// half-open admits exactly one probe, probe success closes, probe failure
// reopens with a doubled cooldown.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second, 8*time.Second, 42)
	b.now = func() time.Time { return now }

	// Failures below the threshold keep it closed; a success resets the run.
	for i := 0; i < 2; i++ {
		if skip, _ := b.acquire(); skip {
			t.Fatal("closed breaker must not skip")
		}
		b.record(false, true, true)
	}
	b.record(false, true, false) // success resets consecutive count
	for i := 0; i < 2; i++ {
		b.record(false, true, true)
	}
	if b.currentState() != breakerClosed {
		t.Fatalf("state = %v after reset+2 failures, want closed", b.currentState())
	}
	b.record(false, true, true) // third consecutive failure opens
	if b.currentState() != breakerOpen {
		t.Fatalf("state = %v, want open", b.currentState())
	}

	// Open: everything skips the full database until the cooldown expires.
	if skip, probe := b.acquire(); !skip || probe {
		t.Fatalf("open breaker: skip=%v probe=%v, want skip", skip, probe)
	}

	// After the cooldown (jitter is at most +20%), exactly one probe goes
	// through; followers still skip.
	now = now.Add(1300 * time.Millisecond)
	skip, probe := b.acquire()
	if skip || !probe {
		t.Fatalf("post-cooldown: skip=%v probe=%v, want probe", skip, probe)
	}
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.currentState())
	}
	if skip2, probe2 := b.acquire(); !skip2 || probe2 {
		t.Fatalf("second caller during probe: skip=%v probe=%v, want skip", skip2, probe2)
	}

	// Probe failure reopens with doubled cooldown: 1.2x the base must still
	// be open, 2.4x (past 2s + max jitter) must probe again.
	b.record(true, true, true)
	if b.currentState() != breakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.currentState())
	}
	now = now.Add(1300 * time.Millisecond)
	if skip, _ := b.acquire(); !skip {
		t.Fatal("doubled cooldown must still be open at 1.3x base")
	}
	now = now.Add(1200 * time.Millisecond)
	skip, probe = b.acquire()
	if skip || !probe {
		t.Fatalf("after doubled cooldown: skip=%v probe=%v, want probe", skip, probe)
	}

	// A probe that never reached the full rung (the approximation set
	// answered) releases the probe slot without closing the breaker.
	b.record(true, false, false)
	if b.currentState() != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open after no-op probe", b.currentState())
	}
	skip, probe = b.acquire()
	if skip || !probe {
		t.Fatal("probe slot must be reusable after a no-op probe")
	}

	// Probe success closes the breaker and resets the failure count.
	b.record(true, true, false)
	if b.currentState() != breakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.currentState())
	}
	if skip, _ := b.acquire(); skip {
		t.Fatal("closed breaker must admit")
	}
}

// TestDrainWaitsForInflight: Shutdown lets an in-flight query finish (well
// within the drain deadline), refuses new work, and closes the listener.
func TestDrainWaitsForInflight(t *testing.T) {
	sys := trainedSystem(t)
	srv, base := startServer(t, sys, Config{
		MaxInFlight:    2,
		DefaultTimeout: 5 * time.Second,
		DrainTimeout:   5 * time.Second,
		Retries:        -1,
	})

	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:    faults.PointEngineScan,
		Kind:     faults.KindLatency,
		Latency:  300 * time.Millisecond,
		MaxFires: 1,
	}))
	defer faults.Disable()

	type reply struct {
		status int
		resp   QueryResponse
		err    error
	}
	inflight := make(chan reply, 1)
	go func() {
		status, resp, err := tryPostQuery(base, approxRouteSQL, 0, 0)
		inflight <- reply{status, resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the slow query get admitted

	start := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	took := time.Since(start)

	r := <-inflight
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight query during drain: status=%d err=%v (%s), want 200", r.status, r.err, r.resp.Error)
	}
	if took > 3*time.Second {
		t.Errorf("drain took %s, should end soon after the in-flight query", took)
	}
	// The listener is gone: new requests fail at the transport level.
	if _, _, err := tryPostQuery(base, approxRouteSQL, 0, 0); err == nil {
		t.Error("request after drain should fail to connect")
	}
}

// TestDrainDeadlineCancelsStragglers: when in-flight queries outlive the
// drain deadline, Shutdown reports the overrun but still returns promptly
// and cancels the work instead of hanging.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	sys := trainedSystem(t)
	srv, base := startServer(t, sys, Config{
		MaxInFlight:    1,
		DefaultTimeout: 5 * time.Second,
		DrainTimeout:   100 * time.Millisecond,
		Retries:        -1,
	})

	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:    faults.PointEngineScan,
		Kind:     faults.KindLatency,
		Latency:  700 * time.Millisecond,
		MaxFires: 1,
	}))
	defer faults.Disable()

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = tryPostQuery(base, approxRouteSQL, 0, 0)
	}()
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	err := srv.Shutdown(context.Background())
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("shutdown took %s, must not hang on stragglers", took)
	}
	if err == nil {
		t.Error("shutdown should report the drain-deadline overrun")
	}
	<-done
}

// TestObsCountersWired: the serving counters land in the default registry.
func TestObsCountersWired(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Default().Reset()

	sys := trainedSystem(t)
	srv, base := startServer(t, sys, Config{MaxInFlight: 2})
	if status, resp := postQuery(t, base, approxRouteSQL, 0, 0); status != http.StatusOK {
		t.Fatalf("query: %d (%s)", status, resp.Error)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := obs.Default().Snapshot()
	for _, name := range []string{"server/requests", "server/admitted", "server/drains"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0 (have %v)", name, snap.Counters)
		}
	}
	if snap.Histograms["server/request_seconds"].Count == 0 {
		t.Error("server/request_seconds histogram empty")
	}
	if snap.Histograms["server/drain_seconds"].Count == 0 {
		t.Error("server/drain_seconds histogram empty")
	}
}
