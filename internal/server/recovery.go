package server

import (
	"context"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/engine"
	"asqprl/internal/obs"
	"asqprl/internal/retrain"
	"asqprl/internal/sqlparse"
	"asqprl/internal/wal"
)

// RecoveryInfo is the startup-replay report surfaced in /stats: the WAL
// scan's repair stats plus what the server rebuilt from the tail.
type RecoveryInfo struct {
	wal.RecoveryStats
	// ServedSeen counts served-statement records in the replayed tail
	// (informational: they need no state rebuild, the count proves the tail
	// was read).
	ServedSeen int `json:"served_seen"`
	// DriftRestored is how many drift observations were re-fed into the live
	// system's drift detector.
	DriftRestored int `json:"drift_restored"`
	// RetrainAttemptsRestored is the pre-crash attempt count whose backoff
	// was re-armed on the retrain controller (0 when the last batch had no
	// outstanding failures).
	RetrainAttemptsRestored int `json:"retrain_attempts_restored"`
	// ReplayWallMs is how long applying the tail took (the scan time is in
	// RecoveryStats.WallMs).
	ReplayWallMs float64 `json:"replay_wall_ms"`
	// DiagBundles counts flight-recorder bundle records in the replayed
	// tail. Non-zero means the previous process captured a diagnostic
	// bundle (an SLO fast-burn or an operator capture) after its last
	// checkpoint and then died — it crashed while alerting. LastDiagReason
	// and LastDiagBundle identify the most recent capture so the operator
	// knows which on-disk bundle to open first.
	DiagBundles    int    `json:"diag_bundles,omitempty"`
	LastDiagReason string `json:"last_diag_reason,omitempty"`
	LastDiagBundle string `json:"last_diag_bundle,omitempty"`
	// CrashedWhileAlerting is the headline flag derived from DiagBundles.
	CrashedWhileAlerting bool `json:"crashed_while_alerting,omitempty"`
}

// BeginRecovery puts the server into the recovering state: /readyz reports
// 503 "recovering" and Ready() is false until Recover completes. Call it
// before the (possibly slow) snapshot load + WAL replay so a load balancer
// never routes to a half-restored server.
func (s *Server) BeginRecovery() { s.recovering.Store(true) }

// Recover applies a WAL recovery to sys and publishes it, ending the
// recovering state. The replay is idempotent with respect to what the
// snapshot already captured — wal.Open only hands back the tail after the
// last checkpoint, and a checkpoint is only ever written when the snapshot on
// disk captured the state.
//
// Replay semantics over the tail, in log order:
//
//   - drift records accumulate as the pending evidence batch;
//   - a retrain "swapped", "rolled_back", or "gave_up" event means the batch
//     up to that point was consumed (or deliberately discarded) — the pending
//     evidence resets, as does the failure count;
//   - a retrain "failed" event keeps the evidence pending and records the
//     attempt number, so the controller's backoff can resume where the crash
//     interrupted it ("started"/"validated" change nothing: the drift batch
//     they consumed is restored from the drift records themselves);
//   - whatever evidence survives to the end of the tail is re-observed into
//     sys's drift detector with its original confidence, reproducing the
//     detector's pre-crash drifted set (modulo frames lost to corruption,
//     which are counted, never silent).
func (s *Server) Recover(sys *core.System, rec wal.Recovery) RecoveryInfo {
	start := time.Now()
	_, span := obs.StartSpan(context.Background(), "wal/recover")
	defer span.End()

	info := RecoveryInfo{RecoveryStats: rec.Stats}
	var pendingDrift []wal.Record
	attempts := 0
	for _, r := range rec.Tail {
		switch r.Type {
		case wal.TypeServed:
			info.ServedSeen++
		case wal.TypeDrift:
			pendingDrift = append(pendingDrift, r)
		case wal.TypeDiag:
			info.DiagBundles++
			info.LastDiagReason = r.Event
			info.LastDiagBundle = r.Path
		case wal.TypeRetrain:
			switch r.Event {
			case "swapped", "rolled_back", "gave_up":
				pendingDrift = nil
				attempts = 0
			case "failed":
				attempts = r.Attempt
			}
		}
	}

	if d := sys.Drift(); d != nil {
		for _, r := range pendingDrift {
			stmt, err := sqlparse.Parse(r.SQL)
			if err != nil {
				continue // a drift record that no longer parses is just lost evidence
			}
			// Mirror the serving path: drift is observed on the SPJ rewrite of
			// aggregate statements, so the restored batch fine-tunes on the
			// same statements the live path would have produced.
			if stmt.HasAggregates() {
				stmt = engine.RewriteAggregateToSPJ(stmt)
			}
			if drifted, _ := d.ObserveDetail(stmt, r.Confidence); drifted {
				info.DriftRestored++
			}
		}
	}
	if attempts > 0 && s.ret != nil {
		s.ret.Restore(attempts)
		info.RetrainAttemptsRestored = attempts
	}
	if info.DiagBundles > 0 {
		info.CrashedWhileAlerting = true
		obs.Logger().Warn("recovery: crashed while alerting — a diagnostic bundle "+
			"was captured after the last checkpoint; inspect it before trusting this restart",
			"bundles", info.DiagBundles,
			"last_reason", info.LastDiagReason,
			"last_bundle", info.LastDiagBundle)
	}

	info.ReplayWallMs = float64(time.Since(start).Microseconds()) / 1e3
	span.Annotate("frames_replayed", rec.Stats.FramesReplayed)
	span.Annotate("drift_restored", info.DriftRestored)
	s.recMu.Lock()
	ri := info
	s.recInfo = &ri
	s.recMu.Unlock()

	s.SetSystem(sys)
	s.recovering.Store(false)
	obs.Logger().Info("recovery complete",
		"frames_replayed", rec.Stats.FramesReplayed,
		"frames_dropped", rec.Stats.FramesDropped,
		"truncated_bytes", rec.Stats.TruncatedBytes,
		"drift_restored", info.DriftRestored,
		"retrain_attempts_restored", info.RetrainAttemptsRestored,
		"replay_ms", info.ReplayWallMs)
	return info
}

// RecoveryInfo returns the finished startup-replay report, or nil when the
// server never recovered from a WAL (durability off, or fresh start).
func (s *Server) RecoveryInfo() *RecoveryInfo {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.recInfo == nil {
		return nil
	}
	ri := *s.recInfo
	return &ri
}

// WAL exposes the server's write-ahead log (nil when durability is off);
// asqp-serve uses it for the initial checkpoint and tests for assertions.
func (s *Server) WAL() *wal.Log { return s.wal }

// journalRetrain is the retrain.Hooks.Journal implementation: lifecycle
// events get the durable (fsync-acknowledged) append, and a persisted swap or
// rollback checkpoints the log at the just-published generation — the
// snapshot on disk now captures the consumed drift batch, so the log's
// history before this point is dead weight.
func (s *Server) journalRetrain(ev retrain.Event) {
	_, gen := s.System()
	err := s.wal.Append(wal.Record{
		Type:       wal.TypeRetrain,
		UnixNs:     time.Now().UnixNano(),
		Event:      ev.Name,
		Queries:    ev.Queries,
		Attempt:    ev.Attempt,
		Generation: gen,
	})
	if err != nil {
		obs.Logger().Warn("retrain journal append failed", "event", ev.Name, "err", err)
		if obs.Enabled() {
			obs.Default().Counter("server/wal_append_errors").Inc()
		}
		return
	}
	if ev.Persisted && (ev.Name == "swapped" || ev.Name == "rolled_back") {
		if err := s.wal.Checkpoint(gen); err != nil {
			obs.Logger().Warn("wal checkpoint failed", "generation", gen, "err", err)
		}
	}
}
