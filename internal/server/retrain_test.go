package server

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/faults"
	"asqprl/internal/retrain"
)

// clonedSystem returns a private clone of the shared trained fixture so
// retrain tests — which mutate drift state and retire systems — never touch
// the system other tests serve.
func clonedSystem(t testing.TB) *core.System {
	t.Helper()
	sys, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatalf("cloning fixture: %v", err)
	}
	return sys
}

// primeDrift pushes n maximally-deviating statements into the drift detector
// directly (the test servers keep DriftObserve off so their own traffic
// cannot add more behind the test's back).
func primeDrift(t testing.TB, sys *core.System, n int) {
	t.Helper()
	sqls := []string{
		"SELECT * FROM name WHERE birth_year > 1950",
		"SELECT * FROM name WHERE birth_year < 1900",
		"SELECT * FROM name WHERE birth_year > 1980",
	}
	for i := 0; i < n; i++ {
		sys.Drift().Observe(mustParse(t, sqls[i%len(sqls)]), 0)
	}
}

// fastRetrain is a controller config tuned for tests: only Force drives it,
// training is tiny, the gate always passes (scores live in [0,1], margin 2),
// and the rollback window is short.
func fastRetrain() retrain.Config {
	return retrain.Config{
		Enabled:        true,
		Interval:       time.Hour,
		Timeout:        2 * time.Minute,
		ExtraEpisodes:  2,
		ValidateMargin: 2,
		RollbackWindow: 100 * time.Millisecond,
		RollbackCheck:  20 * time.Millisecond,
		MaxAttempts:    2,
		Backoff:        10 * time.Millisecond,
		Seed:           1,
	}
}

// waitRetrain polls the server's controller until cond holds.
func waitRetrain(t *testing.T, srv *Server, timeout time.Duration, cond func(retrain.Status) bool) retrain.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := srv.Retrain().Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain condition not reached; last status: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHotSwapZeroDowntimeUnderLoad proves the tentpole's serving guarantee:
// a forced retrain completing mid-traffic swaps the system with zero dropped
// requests, and every response is answered by exactly one generation — first
// only generation 1, then only generation 2, never a blend and never a dip.
func TestHotSwapZeroDowntimeUnderLoad(t *testing.T) {
	sys := clonedSystem(t)
	primeDrift(t, sys, 3)
	srv, base := startServer(t, sys, Config{
		MaxInFlight:    16,
		QueueDepth:     32,
		DefaultTimeout: 5 * time.Second,
		Retrain:        fastRetrain(),
	})

	const clients = 8
	type sample struct {
		status int
		gen    int64
	}
	stop := make(chan struct{})
	perClient := make([][]sample, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, resp, err := tryPostQuery(base, approxRouteSQL, 0, 0)
				if err != nil {
					errs[c] = err
					return
				}
				perClient[c] = append(perClient[c], sample{status: status, gen: resp.Generation})
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond) // generation-1 traffic on the record
	var page RetrainzPage
	if code := getJSON(t, base+"/retrainz?force=1", &page); code != http.StatusOK {
		t.Fatalf("/retrainz?force=1 -> %d", code)
	}
	waitRetrain(t, srv, 2*time.Minute, func(st retrain.Status) bool { return st.Swaps == 1 })
	time.Sleep(200 * time.Millisecond) // generation-2 traffic on the record
	close(stop)
	wg.Wait()

	var total, gen2 int
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d transport error (dropped request): %v", c, errs[c])
		}
		lastGen := int64(0)
		for i, s := range perClient[c] {
			total++
			if s.status != http.StatusOK {
				t.Fatalf("client %d request %d: status %d — a request was dropped across the swap", c, i, s.status)
			}
			if s.gen != 1 && s.gen != 2 {
				t.Fatalf("client %d request %d: generation %d, want 1 or 2", c, i, s.gen)
			}
			if s.gen < lastGen {
				t.Fatalf("client %d observed generation going backward: %d after %d", c, s.gen, lastGen)
			}
			lastGen = s.gen
			if s.gen == 2 {
				gen2++
			}
		}
	}
	if total == 0 {
		t.Fatal("no traffic recorded")
	}
	if gen2 == 0 {
		t.Fatal("no response was served by the swapped-in generation")
	}
	var stats Stats
	getJSON(t, base+"/stats", &stats)
	if stats.Generation != 2 {
		t.Fatalf("live generation = %d, want 2", stats.Generation)
	}
	if stats.Retrain.Swaps != 1 {
		t.Fatalf("stats retrain swaps = %d, want 1", stats.Retrain.Swaps)
	}
}

// TestRetrainFaultsLeaveIncumbentUntouched injects a failure (error or
// panic) at every retrain stage and proves the serving invariant: the
// incumbent keeps serving, its generation does not move, and its state is
// byte-identical to before the attempt.
func TestRetrainFaultsLeaveIncumbentUntouched(t *testing.T) {
	cases := []struct {
		point string
		kind  faults.Kind
	}{
		{faults.PointRetrainClone, faults.KindError},
		{faults.PointRetrainTrain, faults.KindError},
		{faults.PointRetrainTrain, faults.KindPanic},
		{faults.PointRetrainValidate, faults.KindError},
		{faults.PointRetrainSwap, faults.KindError},
	}
	for _, tc := range cases {
		t.Run(tc.point+"/"+tc.kind.String(), func(t *testing.T) {
			sys := clonedSystem(t)
			primeDrift(t, sys, 3)
			before, err := sys.SaveBytes()
			if err != nil {
				t.Fatal(err)
			}
			srv, base := startServer(t, sys, Config{
				MaxInFlight:    8,
				DefaultTimeout: 5 * time.Second,
				Retrain:        fastRetrain(),
			})
			faults.Enable(faults.NewSchedule(1, faults.Injection{Point: tc.point, Kind: tc.kind}))
			t.Cleanup(faults.Disable)

			if err := srv.Retrain().Force(); err != nil {
				t.Fatal(err)
			}
			st := waitRetrain(t, srv, 2*time.Minute, func(st retrain.Status) bool {
				return st.Failures >= 1
			})
			if st.Swaps != 0 {
				t.Fatalf("swaps = %d under injected fault, want 0", st.Swaps)
			}

			live, gen := srv.System()
			if live != sys {
				t.Fatal("live system pointer changed under a failed retrain")
			}
			if gen != 1 {
				t.Fatalf("generation = %d after failed retrain, want 1", gen)
			}
			after, err := sys.SaveBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Fatalf("incumbent bytes changed across a failed retrain at %s", tc.point)
			}
			status, resp, err := tryPostQuery(base, approxRouteSQL, 0, 0)
			if err != nil || status != http.StatusOK {
				t.Fatalf("incumbent stopped serving after failed retrain: status %d err %v", status, err)
			}
			if resp.Generation != 1 {
				t.Fatalf("response generation = %d, want 1", resp.Generation)
			}
		})
	}
}

// TestRetrainChaosUnderOverload runs the same synchronized 4x-overload burst
// pattern twice — once quiet, once with a retrain (train through swap)
// running concurrently — and proves retraining steals no serving capacity:
// the shed rate does not move beyond noise, every response is a well-formed
// 200 or 503, and the retrain itself finishes in a terminal state (swapped,
// or a clean give-up).
func TestRetrainChaosUnderOverload(t *testing.T) {
	sys := clonedSystem(t)
	primeDrift(t, sys, 3)
	// 15ms scan latency makes service time IO-shaped, as in the chaos and
	// load-benchmark tests: offered load turns into admission-gate pressure
	// instead of CPU starvation, so shedding is structural and comparable
	// across the two phases.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:   faults.PointEngineScan,
		Kind:    faults.KindLatency,
		Latency: 15 * time.Millisecond,
	}))
	t.Cleanup(faults.Disable)

	srv, base := startServer(t, sys, Config{
		MaxInFlight:    4,
		QueueDepth:     4,
		DefaultTimeout: 5 * time.Second,
		Retrain:        fastRetrain(),
	})

	const clientsN = 32 // 4x the 8-request capacity
	const rounds = 6
	burst := func() (ok, shed int) {
		var mu sync.Mutex
		for r := 0; r < rounds; r++ {
			var start, done sync.WaitGroup
			start.Add(1)
			done.Add(clientsN)
			for c := 0; c < clientsN; c++ {
				go func() {
					defer done.Done()
					start.Wait()
					status, _, err := tryPostQuery(base, approxRouteSQL, 0, 0)
					mu.Lock()
					defer mu.Unlock()
					switch {
					case err != nil:
						t.Errorf("transport error under overload: %v", err)
					case status == http.StatusOK:
						ok++
					case status == http.StatusServiceUnavailable:
						shed++
					default:
						t.Errorf("unexpected status %d under overload", status)
					}
				}()
			}
			start.Done()
			done.Wait()
		}
		return ok, shed
	}

	okQuiet, shedQuiet := burst()
	if okQuiet+shedQuiet != clientsN*rounds {
		t.Fatalf("quiet phase accounting: ok %d + shed %d != %d", okQuiet, shedQuiet, clientsN*rounds)
	}

	if err := srv.Retrain().Force(); err != nil {
		t.Fatal(err)
	}
	okBusy, shedBusy := burst()
	if okBusy+shedBusy != clientsN*rounds {
		t.Fatalf("retrain phase accounting: ok %d + shed %d != %d", okBusy, shedBusy, clientsN*rounds)
	}

	st := waitRetrain(t, srv, 2*time.Minute, func(st retrain.Status) bool {
		return st.Swaps == 1 || st.LastOutcome == "gave_up"
	})
	if st.Swaps == 0 {
		t.Fatalf("retrain did not complete under overload: %+v", st)
	}

	quietRate := float64(shedQuiet) / float64(clientsN*rounds)
	busyRate := float64(shedBusy) / float64(clientsN*rounds)
	if busyRate > quietRate+0.15 {
		t.Fatalf("retraining shed extra traffic: shed rate %.3f while retraining vs %.3f quiet", busyRate, quietRate)
	}
}
