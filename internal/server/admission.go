package server

import (
	"context"
	"errors"
	"sync/atomic"

	"asqprl/internal/obs"
)

// ErrShed reports that admission control rejected a request outright: every
// execution slot was busy and the wait queue was full. Shedding immediately
// (instead of letting requests pile up) keeps queue delay bounded and gives
// clients an honest signal to back off.
var ErrShed = errors.New("server: overloaded, request shed")

// admission is the front door's concurrency limiter: a semaphore of
// MaxInFlight execution slots plus a bounded wait queue of QueueDepth
// requests. A request either gets a slot, waits in the queue for one, or is
// shed immediately — there is no unbounded pileup, so the server's memory and
// queue delay stay bounded no matter the offered load.
type admission struct {
	slots   chan struct{} // execution permits; cap = max in-flight
	tickets chan struct{} // admitted-or-waiting permits; cap = in-flight + queue
	queued  atomic.Int64
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		tickets: make(chan struct{}, maxInFlight+queueDepth),
	}
}

// acquire admits the request or fails fast. It returns ErrShed when the wait
// queue is full, or the context's error if the caller gives up while queued.
// On success the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.tickets <- struct{}{}:
	default:
		if obs.Enabled() {
			obs.Default().Counter("server/shed").Inc()
		}
		return ErrShed
	}
	// Ticket held: wait for an execution slot.
	select {
	case a.slots <- struct{}{}:
		if obs.Enabled() {
			reg := obs.Default()
			reg.Counter("server/admitted").Inc()
			reg.Gauge("server/inflight").Set(float64(len(a.slots)))
		}
		return nil
	default:
	}
	a.queued.Add(1)
	if obs.Enabled() {
		obs.Default().Gauge("server/queued").Set(float64(a.queued.Load()))
	}
	defer func() {
		a.queued.Add(-1)
		if obs.Enabled() {
			obs.Default().Gauge("server/queued").Set(float64(a.queued.Load()))
		}
	}()
	select {
	case a.slots <- struct{}{}:
		if obs.Enabled() {
			reg := obs.Default()
			reg.Counter("server/admitted").Inc()
			reg.Gauge("server/inflight").Set(float64(len(a.slots)))
		}
		return nil
	case <-ctx.Done():
		<-a.tickets
		if obs.Enabled() {
			obs.Default().Counter("server/abandoned").Inc()
		}
		return ctx.Err()
	}
}

// release returns the request's slot and ticket.
func (a *admission) release() {
	<-a.slots
	<-a.tickets
	if obs.Enabled() {
		obs.Default().Gauge("server/inflight").Set(float64(len(a.slots)))
	}
}

// inFlight returns the number of requests currently holding execution slots.
func (a *admission) inFlight() int { return len(a.slots) }
