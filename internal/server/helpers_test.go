package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"asqprl/internal/core"
	"asqprl/internal/datagen"
	"asqprl/internal/sqlparse"
	"asqprl/internal/workload"
)

// mustParse parses sql or fails the test.
func mustParse(t testing.TB, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// fullRouteSQL is an out-of-distribution query the estimator routes past the
// approximation set, forcing the full-database rung (same fixture as the core
// ladder tests).
const fullRouteSQL = "SELECT * FROM name WHERE birth_year > 1800"

// approxRouteSQL is drawn from the training workload, so the estimator
// answers it from the approximation set.
const approxRouteSQL = "SELECT * FROM title WHERE rating > 7"

var (
	trainedOnce sync.Once
	trainedSys  *core.System
	trainedErr  error
)

// trainedSystem trains one small system and caches it across the package's
// tests and benchmarks (training dominates wall-clock otherwise).
func trainedSystem(t testing.TB) *core.System {
	t.Helper()
	trainedOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.K = 150
		cfg.F = 25
		cfg.NumRepresentatives = 8
		cfg.ActionSpaceSize = 64
		cfg.MaxTrackedPerQuery = 60
		cfg.Episodes = 24
		cfg.RL.Workers = 4
		cfg.Seed = 1
		trainedSys, trainedErr = core.Train(datagen.IMDB(0.02, 7), workload.IMDB(18, 11), cfg)
	})
	if trainedErr != nil {
		t.Fatalf("training shared test system: %v", trainedErr)
	}
	return trainedSys
}

// startServer builds and starts a server on a free port, returning it plus
// its base URL. The server is shut down at test cleanup.
func startServer(t *testing.T, sys *core.System, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "localhost:0"
	srv := New(sys, cfg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, "http://" + addr
}

// postQuery sends one query and returns the status code and decoded body.
// Any transport failure or non-JSON body fails the test.
func postQuery(t *testing.T, base, sql string, timeoutMs, maxRows int) (int, QueryResponse) {
	t.Helper()
	status, resp, err := tryPostQuery(base, sql, timeoutMs, maxRows)
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	return status, resp
}

// testClient disables keep-alives so burst tests leave no pooled or spare
// (StateNew) connections behind: http.Server.Shutdown treats a fresh StateNew
// connection as non-idle for ~5s, which would turn every drain after a burst
// into a 5s stall and flake the drain-deadline assertions.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// tryPostQuery is postQuery without the test dependency, for concurrent use.
func tryPostQuery(base, sql string, timeoutMs, maxRows int) (int, QueryResponse, error) {
	return tryPostQueryWith(testClient, base, sql, timeoutMs, maxRows)
}

// tryPostQueryWith is tryPostQuery on an explicit client (the load benchmark
// needs warm keep-alive connections; the drain tests need none left behind).
func tryPostQueryWith(client *http.Client, base, sql string, timeoutMs, maxRows int) (int, QueryResponse, error) {
	body, _ := json.Marshal(QueryRequest{SQL: sql, TimeoutMs: timeoutMs, MaxRows: maxRows})
	httpResp, err := client.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, QueryResponse{}, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return 0, QueryResponse{}, err
	}
	var resp QueryResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return httpResp.StatusCode, resp, fmt.Errorf("malformed response body %q: %v", raw, err)
	}
	return httpResp.StatusCode, resp, nil
}

// getJSON fetches a URL and decodes its JSON body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := testClient.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// countGoroutines samples the goroutine count after a settle period so
// finished-but-not-yet-reaped goroutines do not count as leaks.
func countGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(5 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m <= n {
			return m
		}
		n = m
	}
	return n
}

// waitGoroutinesBelow polls until the goroutine count drops to at most want,
// returning the final count.
func waitGoroutinesBelow(want int, patience time.Duration) int {
	deadline := time.Now().Add(patience)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
	return n
}
