package server

import (
	"testing"
	"time"

	"asqprl/internal/retrain"
	"asqprl/internal/wal"
)

// driftedSQL deviates maximally from the training workload when logged with
// confidence 0; replay must restore it into the detector's drifted set.
const driftedSQL = "SELECT * FROM name WHERE birth_year > 1950"

// TestServerWALRecovery is the end-to-end kill-and-restart proof at the
// server layer: a first server life serves traffic into a WAL and dies
// without closing it; a second life replays the tail, holds /readyz down
// until the replay lands, restores the drift detector and the retrain
// backoff, and reports the whole recovery in /stats.
func TestServerWALRecovery(t *testing.T) {
	dir := t.TempDir()

	// --- First life: serve with durability on. ---
	sys1, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	wlog1, rec1, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Stats.FramesReplayed != 0 {
		t.Fatalf("fresh directory replayed %d frames", rec1.Stats.FramesReplayed)
	}
	_, base1 := startServer(t, sys1, Config{WAL: wlog1})
	for i := 0; i < 3; i++ {
		if status, _ := postQuery(t, base1, approxRouteSQL, 0, 0); status != 200 {
			t.Fatalf("query status %d", status)
		}
	}
	// The request path appends served frames asynchronously. Drift evidence
	// and a mid-flight retrain failure are logged durably here (the durable
	// append also group-syncs the buffered served frames, so everything below
	// is on disk when it returns).
	for i := 0; i < 3; i++ {
		if err := wlog1.Append(wal.Record{Type: wal.TypeDrift, SQL: driftedSQL, Confidence: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := wlog1.Append(wal.Record{Type: wal.TypeRetrain, Event: "failed", Attempt: 2}); err != nil {
		t.Fatal(err)
	}
	if st := wlog1.Stats(); st.Appended < 7 {
		t.Fatalf("first life appended %d frames, want >= 7 (3 served + 3 drift + 1 retrain)", st.Appended)
	}
	// Crash: the process dies without closing the log. (The test must not
	// Close — that would fsync the tail and defeat the point.)

	// --- Second life: recover. ---
	wlog2, rec2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	if rec2.Stats.FramesReplayed < 7 {
		t.Fatalf("replayed %d frames, want >= 7 (stats %+v)", rec2.Stats.FramesReplayed, rec2.Stats)
	}

	sys2, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{WAL: wlog2, Retrain: retrainTestConfig()}
	srv, base2 := startServer(t, sys2, cfg)
	srv.BeginRecovery()

	// Readiness is gated on recovery: traffic must not land on a server whose
	// drift state is still mid-replay.
	var ready struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, base2+"/readyz", &ready); code != 503 || ready.Status != "recovering" {
		t.Fatalf("/readyz during recovery = %d %+v, want 503 recovering", code, ready)
	}

	info := srv.Recover(sys2, rec2)

	if code := getJSON(t, base2+"/readyz", &ready); code != 200 {
		t.Fatalf("/readyz after recovery = %d %+v", code, ready)
	}
	if info.ServedSeen < 3 {
		t.Errorf("ServedSeen = %d, want >= 3", info.ServedSeen)
	}
	if info.DriftRestored != 3 {
		t.Errorf("DriftRestored = %d, want 3", info.DriftRestored)
	}
	if info.RetrainAttemptsRestored != 2 {
		t.Errorf("RetrainAttemptsRestored = %d, want 2", info.RetrainAttemptsRestored)
	}
	if got := sys2.Drift().DriftedCount(); got != 3 {
		t.Errorf("drift detector holds %d drifted observations after replay, want 3", got)
	}

	// The recovery report and the live WAL are surfaced in /stats.
	var stats Stats
	if code := getJSON(t, base2+"/stats", &stats); code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	if stats.WAL == nil || stats.WAL.Dir != dir {
		t.Fatalf("/stats wal block = %+v, want dir %s", stats.WAL, dir)
	}
	if stats.Recovery == nil {
		t.Fatal("/stats recovery block missing")
	}
	if stats.Recovery.FramesReplayed != rec2.Stats.FramesReplayed ||
		stats.Recovery.DriftRestored != 3 {
		t.Fatalf("/stats recovery block = %+v", stats.Recovery)
	}

	// The recovered server keeps logging: new traffic lands in the new log.
	before := wlog2.Stats().Appended
	if status, _ := postQuery(t, base2, fullRouteSQL, 0, 0); status != 200 {
		t.Fatalf("post-recovery query status %d", status)
	}
	deadline := time.Now().Add(2 * time.Second)
	for wlog2.Stats().Appended == before {
		if time.Now().After(deadline) {
			t.Fatal("post-recovery query was not appended to the WAL")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerWALRecoveryConsumedBatch checks the replay semantics around
// retrain lifecycle events: drift evidence logged before a swapped event was
// consumed by that retrain and must NOT be re-observed; evidence after it
// must be.
func TestServerWALRecoveryConsumedBatch(t *testing.T) {
	dir := t.TempDir()
	wlog1, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendRec := func(r wal.Record) {
		t.Helper()
		if err := wlog1.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(wal.Record{Type: wal.TypeDrift, SQL: driftedSQL, Confidence: 0})
	appendRec(wal.Record{Type: wal.TypeDrift, SQL: driftedSQL, Confidence: 0})
	appendRec(wal.Record{Type: wal.TypeRetrain, Event: "swapped", Generation: 2})
	appendRec(wal.Record{Type: wal.TypeDrift, SQL: driftedSQL, Confidence: 0})
	// Crash without Close.

	wlog2, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()

	sys, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	srv, _ := startServer(t, sys, Config{WAL: wlog2})
	srv.BeginRecovery()
	info := srv.Recover(sys, rec)
	if info.DriftRestored != 1 {
		t.Errorf("DriftRestored = %d, want 1 (pre-swap evidence was consumed)", info.DriftRestored)
	}
	if got := sys.Drift().DriftedCount(); got != 1 {
		t.Errorf("drift detector holds %d observations, want 1", got)
	}
}

// retrainTestConfig is a controller config that never fires on its own (the
// recovery test only needs the controller to exist so Restore has something
// to re-arm).
func retrainTestConfig() (c retrain.Config) {
	c.Enabled = true
	c.Interval = time.Hour
	return c
}
