package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"asqprl/internal/obs"
)

// withServerTracing installs a tail-sampling config exporting to a temp dir
// and restores all trace state afterwards. Returns the export directory.
func withServerTracing(t *testing.T, cfg obs.TracingConfig) string {
	t.Helper()
	dir := t.TempDir()
	exp, err := obs.NewJSONLExporter(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exporter = exp
	wasEnabled := obs.Enabled()
	obs.ConfigureTracing(cfg)
	obs.ResetTraces()
	t.Cleanup(func() {
		obs.DisableTracing()
		_ = exp.Close()
		obs.ResetTraces()
		obs.SetEnabled(wasEnabled)
	})
	return dir
}

// postTraced posts a query with a caller-generated traceparent and returns
// the sent trace ID, the HTTP response, and the decoded body.
func postTraced(t *testing.T, base, sql string, maxRows int) (obs.TraceID, *http.Response, QueryResponse) {
	t.Helper()
	tid := obs.NewTraceID()
	traceparent := obs.FormatTraceparent(tid, obs.NewSpanID(), true)
	body, _ := json.Marshal(QueryRequest{SQL: sql, MaxRows: maxRows})
	req, err := http.NewRequest(http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", traceparent)
	httpResp, err := testClient.Do(req)
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer httpResp.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("malformed response: %v", err)
	}
	return tid, httpResp, resp
}

// findSnap returns the first span named name in the tree.
func findSnap(snap obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	if snap.Name == name {
		return &snap
	}
	for _, c := range snap.Children {
		if got := findSnap(c, name); got != nil {
			return got
		}
	}
	return nil
}

// hasEvent reports whether any span in the tree carries an event with the
// given name and (optional) attribute value.
func hasEvent(snap obs.SpanSnapshot, name, attrKey string, attrVal any) bool {
	for _, ev := range snap.Events {
		if ev.Name != name {
			continue
		}
		if attrKey == "" || ev.Attrs[attrKey] == attrVal {
			return true
		}
	}
	for _, c := range snap.Children {
		if hasEvent(c, name, attrKey, attrVal) {
			return true
		}
	}
	return false
}

// readExportedTrace scans the JSONL export directory for a record with the
// given trace ID.
func readExportedTrace(t *testing.T, dir, traceID string) (obs.TraceRecord, bool) {
	t.Helper()
	files, _ := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var rec obs.TraceRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("%s: bad JSONL line: %v", f, err)
			}
			if rec.TraceID == traceID {
				return rec, true
			}
		}
	}
	return obs.TraceRecord{}, false
}

// TestTraceEndToEndDegradedQuery is the PR's acceptance test: a request with
// a W3C traceparent that takes the degraded path must yield (a) the same
// trace ID in the JSON response and response header, (b) a /tracez span tree
// spanning server → core → engine naming the degradation cause, (c) a
// matching JSONL export line, and (d) an exemplar on the server latency
// histogram carrying the trace ID.
func TestTraceEndToEndDegradedQuery(t *testing.T) {
	dir := withServerTracing(t, obs.TracingConfig{SampleRate: 0})
	sys := trainedSystem(t)
	_, base := startServer(t, sys, Config{})

	// max_rows=1 on the full-database route trips the engine's row budget;
	// core returns the partial rows tagged degraded("rows").
	tid, httpResp, resp := postTraced(t, base, fullRouteSQL, 1)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %+v", httpResp.StatusCode, resp)
	}
	if !resp.Degraded || resp.DegradedReason != "rows" {
		t.Fatalf("want degraded(rows) response, got %+v", resp)
	}

	// (a) trace identity echoed on both channels.
	if resp.TraceID != tid.String() {
		t.Errorf("response trace_id %q, want %q", resp.TraceID, tid)
	}
	header := httpResp.Header.Get("traceparent")
	if !strings.Contains(header, tid.String()) {
		t.Errorf("response traceparent %q does not carry trace ID %s", header, tid)
	}

	// (b) /tracez serves the full tree: server → core → engine, with the
	// degradation cause recorded as a span event.
	debug := httptest.NewServer(obs.Handler())
	defer debug.Close()
	tzResp, err := http.Get(debug.URL + "/tracez?trace=" + tid.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tzResp.Body.Close()
	if tzResp.StatusCode != http.StatusOK {
		t.Fatalf("/tracez?trace=%s: status %d", tid, tzResp.StatusCode)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(tzResp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Verdict != "degraded" {
		t.Errorf("verdict %q, want degraded", rec.Verdict)
	}
	if rec.Root.Name != "server/query" {
		t.Errorf("root span %q, want server/query", rec.Root.Name)
	}
	for _, name := range []string{"core/query", "core/rung/full", "engine/execute", "engine/scan", "engine/project"} {
		if findSnap(rec.Root, name) == nil {
			t.Errorf("trace tree missing %s span", name)
		}
	}
	if !hasEvent(rec.Root, "degraded", "reason", "rows") {
		t.Error("trace has no degraded(reason=rows) event")
	}
	if !hasEvent(rec.Root, "guard_trip", "kind", "rows") {
		t.Error("trace has no guard_trip(kind=rows) event")
	}
	if core := findSnap(rec.Root, "core/query"); core != nil {
		if core.Degraded != "rows" {
			t.Errorf("core/query degraded = %q, want rows", core.Degraded)
		}
		if sql, _ := core.Attrs["sql"].(string); sql == "" {
			t.Error("core/query missing canonical sql attribute")
		}
	}
	// Every span in the tree shares the trace ID (single connected tree).
	var walk func(s obs.SpanSnapshot)
	walk = func(s obs.SpanSnapshot) {
		if s.TraceID != tid.String() {
			t.Errorf("span %s has trace ID %s, want %s", s.Name, s.TraceID, tid)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(rec.Root)

	// (c) the same trace landed in the JSONL export.
	exported, ok := readExportedTrace(t, dir, tid.String())
	if !ok {
		t.Fatalf("trace %s not found in JSONL export dir %s", tid, dir)
	}
	if exported.Verdict != "degraded" || exported.Root.Name != "server/query" {
		t.Errorf("exported record mismatch: %+v", exported)
	}

	// (d) the server latency histogram carries an exemplar with the trace ID.
	found := false
	for _, ex := range obs.Default().Histogram("server/request_seconds").Exemplars() {
		if ex.TraceID == tid.String() {
			found = true
		}
	}
	if !found {
		t.Error("no exemplar with the request's trace ID on server/request_seconds")
	}
	// And the Prometheus exposition renders it.
	promResp, err := http.Get(debug.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := readAll(promResp)
	if !strings.Contains(prom, `trace_id="`+tid.String()+`"`) {
		t.Error("Prometheus exposition missing the trace exemplar")
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.String(), err
}

// TestShedRequestProducesTrace verifies trace propagation through the
// admission path: a request shed with 503 still yields a kept trace whose
// span events name the cause.
func TestShedRequestProducesTrace(t *testing.T) {
	withServerTracing(t, obs.TracingConfig{SampleRate: 0})
	sys := trainedSystem(t)
	// QueueDepth -1 means a zero-length queue (0 would default to MaxInFlight).
	srv, base := startServer(t, sys, Config{MaxInFlight: 1, QueueDepth: -1})

	// Occupy the only execution slot so the next request is shed.
	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.adm.release()

	tid, httpResp, resp := postTraced(t, base, approxRouteSQL, 0)
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", httpResp.StatusCode)
	}
	if resp.TraceID != tid.String() {
		t.Errorf("shed response trace_id %q, want %q", resp.TraceID, tid)
	}
	rec, ok := obs.KeptTrace(tid.String())
	if !ok {
		t.Fatal("shed request left no kept trace")
	}
	if rec.Verdict != "error" {
		t.Errorf("verdict %q, want error (shed marks the span errored)", rec.Verdict)
	}
	if !hasEvent(rec.Root, "shed", "cause", "admission") {
		t.Errorf("trace missing shed(cause=admission) event: %+v", rec.Root.Events)
	}
}

// TestBreakerOpenProducesDegradedTrace verifies trace propagation through the
// breaker path: with the breaker open, the degraded answer's trace names the
// breaker at both the server (breaker_open) and core (breaker_skip) layers.
func TestBreakerOpenProducesDegradedTrace(t *testing.T) {
	withServerTracing(t, obs.TracingConfig{SampleRate: 0})
	sys := trainedSystem(t)
	srv, base := startServer(t, sys, Config{BreakerTrips: 1})

	// One recorded full-rung failure opens the breaker (threshold 1).
	srv.brk.record(false, true, true)
	if got := srv.brk.currentState().String(); got != "open" {
		t.Fatalf("breaker state %q after trip, want open", got)
	}

	tid, httpResp, resp := postTraced(t, base, fullRouteSQL, 0)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %+v", httpResp.StatusCode, resp)
	}
	if !resp.Degraded || resp.DegradedReason != "breaker" {
		t.Fatalf("want degraded(breaker), got %+v", resp)
	}
	if resp.TraceID != tid.String() {
		t.Errorf("response trace_id %q, want %q", resp.TraceID, tid)
	}
	rec, ok := obs.KeptTrace(tid.String())
	if !ok {
		t.Fatal("breaker-degraded request left no kept trace")
	}
	if rec.Verdict != "degraded" {
		t.Errorf("verdict %q, want degraded", rec.Verdict)
	}
	if !hasEvent(rec.Root, "breaker_open", "", nil) {
		t.Error("trace missing server-side breaker_open event")
	}
	if !hasEvent(rec.Root, "breaker_skip", "rung", "full") {
		t.Error("trace missing core-side breaker_skip event")
	}
	if !hasEvent(rec.Root, "degraded", "reason", "breaker") {
		t.Error("trace missing degraded(reason=breaker) event")
	}
}

// TestInvalidTraceparentIgnored: a garbage traceparent must not fail the
// request — the server falls back to a fresh trace ID.
func TestInvalidTraceparentIgnored(t *testing.T) {
	withServerTracing(t, obs.TracingConfig{SampleRate: 1})
	sys := trainedSystem(t)
	_, base := startServer(t, sys, Config{})

	body, _ := json.Marshal(QueryRequest{SQL: approxRouteSQL})
	req, _ := http.NewRequest(http.MethodPost, base+"/query", bytes.NewReader(body))
	req.Header.Set("traceparent", "zz-not-a-traceparent")
	httpResp, err := testClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with bad traceparent, want 200", httpResp.StatusCode)
	}
	if resp.TraceID == "" {
		t.Error("no fresh trace ID assigned when traceparent is invalid")
	}
}

// TestDrainLeavesNoTraceGoroutines: serving traced queries, exporting them,
// and draining must not leak goroutines (the exporter is synchronous; the
// sampler owns no goroutines).
func TestDrainLeavesNoTraceGoroutines(t *testing.T) {
	withServerTracing(t, obs.TracingConfig{SampleRate: 1})
	sys := trainedSystem(t)
	before := countGoroutines()
	srv, base := startServer(t, sys, Config{})
	for i := 0; i < 8; i++ {
		postTraced(t, base, approxRouteSQL, 0)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if after := waitGoroutinesBelow(before, 5*time.Second); after > before {
		t.Errorf("goroutines after traced drain: %d, want ≤ %d", after, before)
	}
}
