package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
)

// TestChaosOverloadWithFaults is the serving layer's headline safety test:
// concurrent clients offer ≥4x the admission capacity while fault injection
// corrupts scans with errors, latency, and panics. Every request must get a
// well-formed JSON response (success, degraded, shed, or typed error — never
// a hang, crash, or truncated body), and after drain the goroutine count
// must return to baseline.
func TestChaosOverloadWithFaults(t *testing.T) {
	sys := trainedSystem(t) // train before sampling the goroutine baseline
	before := countGoroutines()

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Default().Reset()

	srv, base := startServer(t, sys, Config{
		MaxInFlight:    4,
		QueueDepth:     4,
		DefaultTimeout: 2 * time.Second,
		DrainTimeout:   5 * time.Second,
		Retries:        -1,
		Backoff:        time.Millisecond,
		BreakerTrips:   3,
	})

	// Persistent probabilistic chaos: errors, latency, and panics on the
	// scan path, plus join errors. The same seed replays the same pattern.
	// The unconditional 15ms scan latency keeps every handler holding its
	// admission slot long enough that a 32-client burst reliably overruns the
	// 8 tickets, however slowly the clients get scheduled (the suite shares
	// CPU with other packages under `go test ./...`).
	faults.Enable(faults.NewSchedule(7,
		faults.Injection{Point: faults.PointEngineScan, Kind: faults.KindLatency, Latency: 15 * time.Millisecond},
		faults.Injection{Point: faults.PointEngineScan, Kind: faults.KindError, Prob: 0.25},
		faults.Injection{Point: faults.PointEngineScan, Kind: faults.KindPanic, Prob: 0.05},
		faults.Injection{Point: faults.PointEngineJoin, Kind: faults.KindError, Prob: 0.2},
	))
	defer faults.Disable()

	// 32 concurrent clients against capacity 8 (4 slots + 4 queue) = 4x
	// offered load, several rounds each.
	const clients = 32
	const rounds = 6
	queries := []string{
		approxRouteSQL,
		fullRouteSQL,
		"SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id WHERE t.rating > 8",
	}
	type tally struct {
		ok, degraded, shed, errored int
	}
	var (
		mu    sync.Mutex
		total tally
	)
	// Each round is a synchronized 32-way burst: all clients fire at once so
	// the instantaneous offered load really is 4x capacity every round, not
	// just on average.
	for r := 0; r < rounds; r++ {
		var done sync.WaitGroup
		for c := 0; c < clients; c++ {
			done.Add(1)
			go func(id, r int) {
				defer done.Done()
				sql := queries[(id+r)%len(queries)]
				status, resp, err := tryPostQuery(base, sql, 0, 0)
				if err != nil {
					t.Errorf("client %d round %d: transport/body error: %v", id, r, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				switch {
				case status == http.StatusOK && resp.Degraded:
					total.degraded++
				case status == http.StatusOK:
					total.ok++
				case status == http.StatusServiceUnavailable:
					total.shed++
				case resp.Error != "":
					total.errored++ // typed failure: every rung tripped
				default:
					t.Errorf("client %d round %d: status %d with empty error", id, r, status)
				}
			}(c, r)
		}
		done.Wait()
	}

	want := clients * rounds
	if got := total.ok + total.degraded + total.shed + total.errored; got != want {
		t.Errorf("accounted responses = %d, want %d", got, want)
	}
	if total.ok+total.degraded == 0 {
		t.Error("no request succeeded under chaos")
	}
	if total.shed == 0 {
		t.Error("4x offered load shed nothing — admission control not engaging")
	}
	t.Logf("chaos tally: ok=%d degraded=%d shed=%d errored=%d",
		total.ok, total.degraded, total.shed, total.errored)

	faults.Disable()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after chaos: %v", err)
	}

	snap := obs.Default().Snapshot()
	if snap.Counters["server/shed"] == 0 {
		t.Error("server/shed counter = 0 despite observed 503s")
	}
	if snap.Counters["server/admitted"] == 0 {
		t.Error("server/admitted counter = 0")
	}

	// No goroutine leaks: everything spawned by the server, admission queue,
	// and in-flight queries must be gone after drain.
	after := waitGoroutinesBelow(before+2, 5*time.Second)
	if after > before+2 {
		t.Errorf("goroutines after drain = %d, baseline %d — leak", after, before)
	}
}

// TestBreakerOpensAndRecovers drives the breaker end to end over HTTP:
// persistent full-rung faults open it (full database no longer attempted),
// queries keep getting answers from the approximation set tagged
// "breaker", and once the fault clears a half-open probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	sys := trainedSystem(t)
	if pred, _ := sys.Estimator().Estimate(mustParse(t, fullRouteSQL)); pred >= sys.Config().EstimatorThreshold {
		t.Skip("fixture query unexpectedly routed to the approximation set")
	}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Default().Reset()

	srv, base := startServer(t, sys, Config{
		MaxInFlight:     2,
		DefaultTimeout:  2 * time.Second,
		Retries:         -1,
		BreakerTrips:    2,
		BreakerCooldown: 300 * time.Millisecond,
	})

	// Fail the first scan of each query (the full-database attempt for a
	// full-routed query); the rung-3 approximation fallback's scan stays
	// clean because each query makes exactly two scans: full, then approx.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point: faults.PointEngineScan,
		Kind:  faults.KindError,
		Prob:  0, // always
		After: 0,
	}))

	// Phase 1: two consecutive full-rung failures open the breaker. The
	// injection fails every scan, so these queries fail all rungs (500) or
	// degrade — either way the responses stay well-formed JSON.
	for i := 0; i < 2; i++ {
		status, resp, err := tryPostQuery(base, fullRouteSQL, 0, 0)
		if err != nil {
			t.Fatalf("phase 1 query %d: %v", i, err)
		}
		if status != http.StatusOK && resp.Error == "" {
			t.Fatalf("phase 1 query %d: status %d without error body", i, status)
		}
	}
	var st Stats
	getJSON(t, base+"/stats", &st)
	if st.BreakerState != "open" {
		t.Fatalf("breaker state after consecutive failures = %q, want open", st.BreakerState)
	}

	// Phase 2: faults cleared, breaker still open — queries are answered
	// from the approximation set, tagged Degraded with reason "breaker",
	// and the full database is not touched.
	faults.Disable()
	skippedBefore := obs.Default().Counter("core/query/full_skipped").Value()
	status, resp := postQuery(t, base, fullRouteSQL, 0, 0)
	if status != http.StatusOK {
		t.Fatalf("open-breaker query: status %d (%s), want 200 degraded", status, resp.Error)
	}
	if !resp.Degraded || resp.DegradedReason != "breaker" || resp.Source != "approximation" {
		t.Fatalf("open-breaker answer = degraded=%v reason=%q source=%q, want breaker-degraded approximation",
			resp.Degraded, resp.DegradedReason, resp.Source)
	}
	if got := obs.Default().Counter("core/query/full_skipped").Value(); got <= skippedBefore {
		t.Error("full-database rung was not skipped while the breaker was open")
	}

	// Phase 3: after the cooldown a half-open probe reaches the healthy full
	// database, closes the breaker, and full answers resume.
	time.Sleep(500 * time.Millisecond) // cooldown 300ms + 20% jitter < 500ms
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, resp = postQuery(t, base, fullRouteSQL, 0, 0)
		getJSON(t, base+"/stats", &st)
		if st.BreakerState == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed; state=%q last status=%d resp=%+v", st.BreakerState, status, resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if status != http.StatusOK || resp.Degraded || resp.Source != "full" {
		t.Errorf("post-recovery answer = status=%d degraded=%v source=%q, want clean full answer",
			status, resp.Degraded, resp.Source)
	}
	if opened := obs.Default().Counter("server/breaker/opened").Value(); opened == 0 {
		t.Error("server/breaker/opened counter = 0")
	}
	if closed := obs.Default().Counter("server/breaker/closed").Value(); closed == 0 {
		t.Error("server/breaker/closed counter = 0")
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
