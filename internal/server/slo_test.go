package server

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"asqprl/internal/obs"
	"asqprl/internal/slo"
	"asqprl/internal/wal"
)

// sloClock is a mutex-guarded fake clock injected via Config.SLOClock so the
// burn-rate window math is exact and the tests never sleep for real windows.
type sloClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSLOClock() *sloClock {
	// A fixed epoch keeps since-timestamps and bundle names deterministic.
	return &sloClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *sloClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *sloClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// sloStatus extracts one SLO's status from a page.
func sloStatus(t *testing.T, page SlozPage, name string) slo.Status {
	t.Helper()
	for _, s := range page.SLOs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("SLO %q missing from page: %+v", name, page)
	return slo.Status{}
}

// TestSLOFastBurnFlightRecorderEndToEnd is the chaos/e2e acceptance test for
// the observability stack: a latency regression under a deterministic fake
// clock must (1) trip the latency SLO to fast_burn with the multi-window math
// exactly right — one bad interval confirms the short window but NOT the long
// one, (2) capture exactly one rate-limited flight-recorder bundle holding
// the metric series, the trace ring, and a goroutine profile, (3) stamp a
// durable diag/bundle WAL record that a kill-without-close replay surfaces as
// "crashed while alerting", and (4) feed the quality SLO state to the
// retrain rollback hook (srv.qualityAlarm).
func TestSLOFastBurnFlightRecorderEndToEnd(t *testing.T) {
	defer obs.SetEnabled(false)
	clk := newSLOClock()
	walDir := t.TempDir()
	diagDir := filepath.Join(t.TempDir(), "diag")

	wlog1, rec0, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec0.Stats.FramesReplayed != 0 {
		t.Fatalf("fresh WAL replayed %d frames", rec0.Stats.FramesReplayed)
	}

	sys, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		WAL:           wlog1,
		SLOLatencyP99: 50 * time.Millisecond,
		SLOQualityP95: 0.1,
		SLOWindows: slo.Windows{
			FastShort: 4 * time.Second,
			FastLong:  12 * time.Second,
			SlowShort: 40 * time.Second,
			SlowLong:  2 * time.Minute,
		},
		SLOInterval:     time.Second,
		SLOClock:        clk.now,
		DiagDir:         diagDir,
		DiagMinInterval: time.Hour, // only ONE unforced bundle can ever fit
	}
	srv, base := startServer(t, sys, cfg)
	ts, eng, rec := srv.TimeSeries(), srv.SLOEngine(), srv.Recorder()
	if ts == nil || eng == nil || rec == nil {
		t.Fatalf("SLO wiring incomplete: ts=%v eng=%v rec=%v", ts, eng, rec)
	}

	// The SLI source is the request-latency histogram handleQuery feeds; the
	// test writes it directly so every window count is exact. Good requests
	// land at 1ms (whole buckets below the 50ms target), bad at 1s (whole
	// buckets above), so FractionBelow needs no interpolation and the window
	// error rates are exact ratios.
	lat := obs.Default().Histogram(metricRequestSeconds)
	tick := func(observe func()) {
		if observe != nil {
			observe()
		}
		clk.advance(time.Second)
		ts.SampleNow() // runs the SLO evaluation via OnSample
	}
	good := func() {
		for i := 0; i < 10; i++ {
			lat.Observe(0.001)
		}
	}
	bad := func() {
		for i := 0; i < 10; i++ {
			lat.Observe(1.0)
		}
	}

	// --- Healthy phase: 8 intervals of fast traffic → state ok. ---
	for i := 0; i < 8; i++ {
		tick(good)
	}
	if st, ok := eng.Status("latency"); !ok || st.State != slo.StateOK {
		t.Fatalf("after healthy phase: latency status = %+v ok=%v, want ok state", st, ok)
	}

	// --- One bad interval: the 4s confirmation window fires but the 12s
	// window must hold the line (30 good + 10 bad in 4s → burn 25; 70 good +
	// 10 bad in 12s → burn 12.5 < 14.4). This is the multi-window property:
	// a single bad interval never pages as fast_burn. The slow pair (40s/2m,
	// both falling back to process start) sees the same 12.5× burn, which IS
	// over the 6× slow threshold — so the state is exactly slow_burn: ticket,
	// not page, and no flight-recorder capture. ---
	tick(bad)
	st, ok := eng.Status("latency")
	if !ok {
		t.Fatal("latency SLO has no status")
	}
	if st.State != slo.StateSlowBurn {
		t.Fatalf("after 1 bad interval: state = %s, want slow_burn (fast_long not confirmed)", st.State)
	}
	if st.Burns[0].Burn < 14.4 {
		t.Errorf("fast_short burn = %v, want >= 14.4 (short window confirms first)", st.Burns[0].Burn)
	}
	if st.Burns[1].Burn >= 14.4 {
		t.Errorf("fast_long burn = %v, want < 14.4 after one bad interval", st.Burns[1].Burn)
	}

	// --- Second bad interval: 20 bad / 90 events in the 12s window → burn
	// 22.2; both windows over threshold → fast_burn. ---
	tick(bad)
	burnAt := clk.now()
	if st, _ := eng.Status("latency"); st.State != slo.StateFastBurn {
		t.Fatalf("after 2 bad intervals: state = %s, want fast_burn", st.State)
	} else if !st.Since.Equal(burnAt) {
		t.Errorf("fast_burn since = %v, want the transition tick %v", st.Since, burnAt)
	}

	// The /sloz page must agree, with exact window math.
	var page SlozPage
	if code := getJSON(t, base+"/sloz", &page); code != 200 {
		t.Fatalf("/sloz = %d", code)
	}
	if !page.Enabled {
		t.Fatal("/sloz reports disabled")
	}
	if w := page.Windows; w.FastShort != "4s" || w.FastLong != "12s" || w.SlowShort != "40s" || w.SlowLong != "2m0s" {
		t.Fatalf("/sloz windows = %+v", w)
	}
	latSt := sloStatus(t, page, "latency")
	if latSt.State != slo.StateFastBurn {
		t.Fatalf("/sloz latency state = %s, want fast_burn", latSt.State)
	}
	if len(latSt.Burns) != 4 {
		t.Fatalf("latency has %d burn windows, want 4: %+v", len(latSt.Burns), latSt.Burns)
	}
	fl := latSt.Burns[1] // fast_long
	if fl.Window != "12s" || fl.Events != 90 {
		t.Fatalf("fast_long window = %+v, want 12s over exactly 90 events", fl)
	}
	if wantRate := 20.0 / 90.0; math.Abs(fl.ErrorRate-wantRate) > 1e-9 {
		t.Errorf("fast_long error_rate = %v, want exactly %v", fl.ErrorRate, wantRate)
	}
	if wantBurn := (20.0 / 90.0) / 0.01; math.Abs(fl.Burn-wantBurn) > 1e-6 {
		t.Errorf("fast_long burn = %v, want %v (error rate over the 1%% budget)", fl.Burn, wantBurn)
	}
	if len(page.FastBurning) != 1 || page.FastBurning[0] != "latency" {
		t.Fatalf("fast_burning = %v, want [latency]", page.FastBurning)
	}

	// Human view renders the same state.
	resp, err := testClient.Get(base + "/sloz?view=human")
	if err != nil {
		t.Fatal(err)
	}
	human := make([]byte, 1<<16)
	n, _ := resp.Body.Read(human)
	resp.Body.Close()
	if !strings.Contains(string(human[:n]), "fast_burn") || !strings.Contains(string(human[:n]), "latency") {
		t.Errorf("/sloz?view=human missing burn state:\n%s", human[:n])
	}

	// /stats carries the SLO page and recorder status.
	var stats Stats
	if code := getJSON(t, base+"/stats", &stats); code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	if stats.SLO == nil || !stats.SLO.Enabled {
		t.Fatal("/stats slo block missing or disabled")
	}
	if stats.Diag == nil || stats.Diag.Dir != diagDir {
		t.Fatalf("/stats diag block = %+v, want dir %s", stats.Diag, diagDir)
	}

	// --- The fast-burn transition captured a bundle (async goroutine: poll
	// in real time) and journaled it durably to the WAL. ---
	deadline := time.Now().Add(10 * time.Second)
	for rec.Status().Captures < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no bundle captured; recorder status %+v", rec.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for wlog1.Stats().Appended < 1 {
		if time.Now().After(deadline) {
			t.Fatal("diag/bundle record never appended to the WAL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	bundles := listBundles(t, diagDir)
	if len(bundles) != 1 {
		t.Fatalf("bundle dirs = %v, want exactly 1", bundles)
	}
	bundleName := bundles[0]
	if !strings.Contains(bundleName, "slo-fast-burn-latency") {
		t.Errorf("bundle name %q does not carry the trigger reason", bundleName)
	}
	bundleDir := filepath.Join(diagDir, bundleName)
	for _, f := range []string{
		"meta.json", "metrics.json", "series.json", "slo.json",
		"traces.json", "slow_queries.json", "stats.json",
		"goroutines.txt", "heap.pprof",
	} {
		fi, err := os.Stat(filepath.Join(bundleDir, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Errorf("bundle file %s is empty", f)
		}
	}
	gor, err := os.ReadFile(filepath.Join(bundleDir, "goroutines.txt"))
	if err != nil || !strings.Contains(string(gor), "goroutine") {
		t.Errorf("goroutines.txt is not a goroutine dump (err=%v)", err)
	}
	var dump obs.SeriesDump
	raw, err := os.ReadFile(filepath.Join(bundleDir, "series.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("series.json does not parse: %v", err)
	}
	if len(dump.Histograms[metricRequestSeconds]) == 0 {
		t.Errorf("series.json has no %s points; histograms: %v", metricRequestSeconds, len(dump.Histograms))
	}
	meta, err := os.ReadFile(filepath.Join(bundleDir, "meta.json"))
	if err != nil || !strings.Contains(string(meta), "slo-fast-burn-latency") {
		t.Errorf("meta.json missing trigger reason (err=%v): %s", err, meta)
	}

	// --- A second SLO tripping inside MinInterval must be suppressed by the
	// recorder's rate limit: drive the quality SLO (audit relative-error
	// histogram) into fast_burn one tick later. ---
	rel := obs.Default().Histogram(metricAuditRelError)
	tick(func() {
		for i := 0; i < 10; i++ {
			rel.Observe(1.0) // relative error 1.0 >> the 0.1 target
		}
	})
	qualityAt := clk.now()
	if st, _ := eng.Status("quality"); st.State != slo.StateFastBurn {
		t.Fatalf("quality state = %s, want fast_burn (all audited errors over target)", st.State)
	}
	for rec.Status().Suppressed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("quality fast-burn capture was not suppressed; status %+v", rec.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := rec.Status(); st.Captures != 1 {
		t.Fatalf("captures = %d after suppressed second trigger, want still 1 (%+v)", st.Captures, st)
	}
	if got := listBundles(t, diagDir); len(got) != 1 {
		t.Fatalf("bundle dirs after suppression = %v, want exactly 1", got)
	}

	// The retrain rollback hook sees the burning quality SLO with the
	// transition timestamp (so a swap that predates the burn rolls back).
	burning, since, desc := srv.qualityAlarm()
	if !burning || !since.Equal(qualityAt) || !strings.Contains(desc, "relative-error") {
		t.Fatalf("qualityAlarm = (%v, %v, %q), want burning since %v", burning, since, desc, qualityAt)
	}

	// --- Crash: the process dies without closing the WAL. The replayed tail
	// must carry the diag/bundle record and recovery must say "crashed while
	// alerting". ---
	wlog2, rec2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	var diagRec *wal.Record
	for i := range rec2.Tail {
		if rec2.Tail[i].Type == wal.TypeDiag {
			diagRec = &rec2.Tail[i]
		}
	}
	if diagRec == nil {
		t.Fatalf("no diag record in replayed tail (%d records)", len(rec2.Tail))
	}
	if diagRec.Event != "slo-fast-burn-latency" || diagRec.Path != bundleName {
		t.Fatalf("replayed diag record = %+v, want reason slo-fast-burn-latency bundle %s", diagRec, bundleName)
	}

	sys2, err := trainedSystem(t).Clone()
	if err != nil {
		t.Fatal(err)
	}
	srv2, base2 := startServer(t, sys2, Config{WAL: wlog2})
	srv2.BeginRecovery()
	info := srv2.Recover(sys2, rec2)
	if info.DiagBundles != 1 || !info.CrashedWhileAlerting {
		t.Fatalf("recovery info = %+v, want 1 diag bundle and crashed_while_alerting", info)
	}
	if info.LastDiagReason != "slo-fast-burn-latency" || info.LastDiagBundle != bundleName {
		t.Fatalf("recovery diag pointer = (%q, %q), want (slo-fast-burn-latency, %s)",
			info.LastDiagReason, info.LastDiagBundle, bundleName)
	}
	var stats2 Stats
	if code := getJSON(t, base2+"/stats", &stats2); code != 200 {
		t.Fatalf("/stats after recovery = %d", code)
	}
	if stats2.Recovery == nil || !stats2.Recovery.CrashedWhileAlerting {
		t.Fatalf("/stats recovery block = %+v, want crashed_while_alerting", stats2.Recovery)
	}
}

// listBundles returns the bundle-* directory names under dir (empty when the
// directory does not exist yet).
func listBundles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestSlozDebugzDisabled: with no objectives and no diag dir the whole SLO
// layer stays nil — /sloz reports disabled, /debugz?capture=1 is a 409, and
// the accessors confirm nothing was wired into the request path.
func TestSlozDebugzDisabled(t *testing.T) {
	srv, base := startServer(t, trainedSystem(t), Config{})
	if srv.TimeSeries() != nil || srv.SLOEngine() != nil || srv.Recorder() != nil {
		t.Fatal("SLO layer built without any objectives or diag dir")
	}
	var page SlozPage
	if code := getJSON(t, base+"/sloz", &page); code != 200 || page.Enabled {
		t.Fatalf("/sloz = %d enabled=%v, want 200 disabled", code, page.Enabled)
	}
	var dbg DebugzPage
	if code := getJSON(t, base+"/debugz", &dbg); code != 200 || dbg.Enabled {
		t.Fatalf("/debugz = %d enabled=%v, want 200 disabled", code, dbg.Enabled)
	}
	if code := getJSON(t, base+"/debugz?capture=1", &dbg); code != 409 {
		t.Fatalf("/debugz?capture=1 without a recorder = %d, want 409", code)
	}
	if !strings.Contains(dbg.Error, "-diag-dir") {
		t.Errorf("capture error %q should point at -diag-dir", dbg.Error)
	}
}

// TestDebugzManualCapture: an operator's ?capture=1 bypasses the rate limit
// and produces bundles even with no SLOs configured (diag dir alone arms the
// recorder).
func TestDebugzManualCapture(t *testing.T) {
	defer obs.SetEnabled(false)
	diagDir := filepath.Join(t.TempDir(), "diag")
	srv, base := startServer(t, trainedSystem(t), Config{DiagDir: diagDir})
	if srv.Recorder() == nil {
		t.Fatal("recorder not armed by DiagDir alone")
	}
	if srv.SLOEngine() != nil {
		t.Fatal("SLO engine built without objectives")
	}
	var dbg DebugzPage
	for i := 1; i <= 2; i++ {
		if code := getJSON(t, base+"/debugz?capture=1", &dbg); code != 200 {
			t.Fatalf("/debugz?capture=1 #%d = %d (%+v)", i, code, dbg)
		}
		if dbg.Captured == "" || dbg.Status.Captures != int64(i) {
			t.Fatalf("capture #%d: %+v, want forced capture (rate limit bypassed)", i, dbg)
		}
	}
	if got := listBundles(t, diagDir); len(got) != 2 {
		t.Fatalf("bundles = %v, want 2 forced captures", got)
	}
	if _, err := os.Stat(filepath.Join(diagDir, dbg.Status.LastBundle, "meta.json")); err != nil {
		t.Fatalf("last bundle incomplete: %v", err)
	}
}

// sloHotPathInstrumentation is exactly the block the SLO layer added to
// handleQuery's success path, factored here so the zero-alloc test and the
// overhead benchmark measure the real thing.
func sloHotPathInstrumentation(fromApprox bool) {
	if !obs.Enabled() {
		return
	}
	reg := obs.Default()
	elapsed := time.Millisecond
	reg.Histogram(metricRequestSeconds).ObserveDurationExemplar(elapsed, obs.TraceID{})
	if fromApprox {
		reg.Histogram(metricRungApprox).ObserveDuration(elapsed)
	} else {
		reg.Histogram(metricRungFull).ObserveDuration(elapsed)
	}
}

// TestSLOHotPathZeroAlloc is the acceptance bar: the request-path
// instrumentation the SLO layer added allocates nothing — disabled (the
// default) AND enabled (const metric names, registry hit path, untraced
// exemplar skip are all allocation-free).
func TestSLOHotPathZeroAlloc(t *testing.T) {
	obs.SetEnabled(false)
	if allocs := testing.AllocsPerRun(1000, func() { sloHotPathInstrumentation(true) }); allocs != 0 {
		t.Errorf("disabled path allocates %.1f per request, want 0", allocs)
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	sloHotPathInstrumentation(true) // warm the registry entries
	sloHotPathInstrumentation(false)
	if allocs := testing.AllocsPerRun(1000, func() { sloHotPathInstrumentation(true) }); allocs != 0 {
		t.Errorf("enabled path (approximation rung) allocates %.1f per request, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { sloHotPathInstrumentation(false) }); allocs != 0 {
		t.Errorf("enabled path (full rung) allocates %.1f per request, want 0", allocs)
	}
}

// BenchmarkSLODisabledOverhead records what the SLO instrumentation costs the
// request hot path with recording off (the shipped default: one atomic load)
// and on (three histogram observations). Recorded into the BENCH history by
// scripts/check.sh; the hard 0-alloc assertion lives in
// TestSLOHotPathZeroAlloc.
func BenchmarkSLODisabledOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		obs.SetEnabled(false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sloHotPathInstrumentation(i%2 == 0)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		obs.SetEnabled(true)
		defer obs.SetEnabled(false)
		sloHotPathInstrumentation(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sloHotPathInstrumentation(i%2 == 0)
		}
	})
}
