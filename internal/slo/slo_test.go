package slo

import (
	"strings"
	"testing"
	"time"

	"asqprl/internal/obs"
)

// harness bundles a registry, a manually advanced clock, a time series, and
// an engine so tests drive window math deterministically.
type harness struct {
	reg *obs.Registry
	ts  *obs.TimeSeries
	eng *Engine
	now time.Time
}

// testWindows are scaled-down burn windows: 4s/12s/30s/120s at a 1s sample
// interval, so a test tick is one second.
func testWindows() Windows {
	return Windows{
		FastShort: 4 * time.Second,
		FastLong:  12 * time.Second,
		SlowShort: 30 * time.Second,
		SlowLong:  120 * time.Second,
	}
}

func newHarness(t *testing.T, defs []Def, mutate func(*Options)) *harness {
	t.Helper()
	h := &harness{
		reg: obs.NewRegistry(),
		now: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC),
	}
	clock := func() time.Time { return h.now }
	h.ts = obs.NewTimeSeries(h.reg, obs.TimeSeriesOptions{
		Interval:    time.Second,
		FineSlots:   64,
		CoarseEvery: 8,
		CoarseSlots: 64,
		Now:         clock,
	})
	opts := Options{Windows: testWindows(), Now: clock, Registry: h.reg}
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := New(h.ts, defs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h.eng = eng
	return h
}

// tick advances one second, samples, and evaluates, returning the statuses.
func (h *harness) tick() []Status {
	h.now = h.now.Add(time.Second)
	h.ts.SampleNow()
	return h.eng.Evaluate()
}

func availDef() Def {
	return Def{
		Name:         "availability",
		Kind:         Availability,
		Objective:    0.9, // budget 0.1
		TotalCounter: "req/total",
		BadCounters:  []string{"req/degraded", "req/errors"},
	}
}

func latencyDef() Def {
	return Def{
		Name:      "latency",
		Kind:      Latency,
		Objective: 0.99,
		Threshold: 0.1, // 100ms
		Metric:    "req/seconds",
	}
}

func one(t *testing.T, sts []Status, name string) Status {
	t.Helper()
	for _, s := range sts {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no status named %q in %+v", name, sts)
	return Status{}
}

func TestAvailabilityBurnMath(t *testing.T) {
	h := newHarness(t, []Def{availDef()}, nil)
	total := h.reg.Counter("req/total")
	bad := h.reg.Counter("req/degraded")

	// Before any events: no data.
	st := one(t, h.tick(), "availability")
	if st.State != StateNoData {
		t.Fatalf("state = %s, want no_data", st.State)
	}

	// Healthy traffic: 100 req/s, all good → error rate 0, burn 0, state ok.
	for i := 0; i < 15; i++ {
		total.Add(100)
		st = one(t, h.tick(), "availability")
	}
	if st.State != StateOK {
		t.Fatalf("state = %s, want ok", st.State)
	}
	for _, wb := range st.Burns {
		if wb.Burn != 0 {
			t.Fatalf("healthy burn = %+v, want 0", wb)
		}
	}

	// Full outage: every request degraded. Error rate 1, budget 0.1 →
	// burn 10 < 14.4 default? Use the window math: with FastBurn default
	// 14.4 a budget of 0.1 can never fast-burn on errRate ≤ 1 (max burn
	// 10), so this harness uses the default engine but asserts exact burn
	// values, then a slow burn.
	for i := 0; i < 40; i++ {
		total.Add(100)
		bad.Add(100)
		st = one(t, h.tick(), "availability")
	}
	// fast_short window (4s) is now all-bad: errRate 1, burn 10.
	fs := st.Burns[0]
	if fs.ErrorRate < 0.99 || fs.Burn < 9.9 || fs.Burn > 10.1 {
		t.Fatalf("outage fast_short = %+v, want errRate~1 burn~10", fs)
	}
	// burn 10 ≥ slow threshold 6 on both slow windows → slow_burn.
	if st.State != StateSlowBurn {
		t.Fatalf("state = %s, want slow_burn (burn 10 vs slow threshold 6)", st.State)
	}
}

func TestLatencyFastBurnAndHysteresis(t *testing.T) {
	h := newHarness(t, []Def{latencyDef()}, nil)
	hist := h.reg.Histogram("req/seconds")

	// Healthy: all requests at 1ms, well under the 100ms threshold.
	var st Status
	for i := 0; i < 15; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(0.001)
		}
		st = one(t, h.tick(), "latency")
	}
	if st.State != StateOK {
		t.Fatalf("state = %s, want ok", st.State)
	}

	// Outage: every request at 1s. Error rate 1, budget 0.01 → burn 100,
	// over the fast threshold once both fast windows (4s, 12s) fill.
	transitioned := -1
	for i := 0; i < 20; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(1.0)
		}
		st = one(t, h.tick(), "latency")
		if st.State == StateFastBurn {
			transitioned = i
			break
		}
	}
	if transitioned < 0 {
		t.Fatalf("never entered fast_burn; final %+v", st)
	}
	// The fast_long window (12s) must actually exceed the threshold at the
	// transition — it still holds healthy samples early on, so the
	// transition cannot be instant.
	if transitioned < 1 {
		t.Fatalf("fast_burn after %d ticks — window math ignored the long window", transitioned+1)
	}
	fl := st.Burns[1]
	if fl.Burn < 14.4 {
		t.Fatalf("fast_long burn at transition = %v, want >= 14.4", fl.Burn)
	}
	if st.ExemplarTraceID != "" {
		t.Fatalf("exemplar = %q, want none (untraced observations)", st.ExemplarTraceID)
	}

	// Recovery: traffic healthy again. The state must hold through the
	// hold-down (default = FastShort = 4s) and then step down one level at
	// a time rather than snapping to ok.
	sawFast, sawIntermediate := 0, false
	for i := 0; i < 300 && st.State != StateOK; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(0.001)
		}
		st = one(t, h.tick(), "latency")
		if st.State == StateFastBurn {
			sawFast++
		}
		if st.State == StateSlowBurn {
			sawIntermediate = true
		}
	}
	if st.State != StateOK {
		t.Fatalf("never recovered to ok; stuck at %+v", st)
	}
	if sawFast < 3 {
		t.Fatalf("fast_burn held for %d post-recovery ticks, want >= 3 (hysteresis)", sawFast)
	}
	if !sawIntermediate {
		t.Fatal("state snapped fast_burn → ok without passing slow_burn")
	}
}

func TestQualitySLOWorstShapeAnnotation(t *testing.T) {
	def := Def{
		Name:      "quality",
		Kind:      Quality,
		Objective: 0.95,
		Threshold: 0.1,
		Metric:    "audit/relative_error",
	}
	h := newHarness(t, []Def{def}, func(o *Options) {
		o.WorstShape = func() (float64, int64, bool) { return 0.42, 17, true }
	})
	hist := h.reg.Histogram("audit/relative_error")
	for i := 0; i < 3; i++ {
		hist.Observe(0.01)
		h.tick()
	}
	st := one(t, h.eng.Evaluate(), "quality")
	if st.WorstShapeP95 != 0.42 || st.AuditsCompleted != 17 {
		t.Fatalf("worst shape annotation = %+v", st)
	}
}

func TestExemplarTraceIDSurfaced(t *testing.T) {
	h := newHarness(t, []Def{latencyDef()}, nil)
	hist := h.reg.Histogram("req/seconds")
	tid := obs.TraceID{0xab, 0xcd, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	hist.ObserveExemplar(1.5, tid) // above the 100ms threshold
	h.tick()
	st := one(t, h.eng.Evaluate(), "latency")
	if st.ExemplarTraceID != tid.String() {
		t.Fatalf("exemplar trace = %q, want %q", st.ExemplarTraceID, tid.String())
	}
}

func TestEngineGaugesPublished(t *testing.T) {
	h := newHarness(t, []Def{availDef()}, nil)
	h.reg.Counter("req/total").Add(10)
	h.tick()
	snap := h.reg.Snapshot()
	for _, g := range []string{
		"slo/availability/burn_fast",
		"slo/availability/burn_slow",
		"slo/availability/budget_consumed",
		"slo/availability/state",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %q not published; have %v", g, snap.Gauges)
		}
	}
}

func TestTransitionCallback(t *testing.T) {
	h := newHarness(t, []Def{latencyDef()}, nil)
	hist := h.reg.Histogram("req/seconds")
	var got []Transition
	h.eng.OnTransition(func(tr Transition) { got = append(got, tr) })
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			hist.Observe(1.0)
		}
		h.tick()
	}
	if len(got) == 0 {
		t.Fatal("no transitions delivered")
	}
	last := got[len(got)-1]
	if last.To != StateFastBurn {
		t.Fatalf("last transition = %+v, want → fast_burn", last)
	}
	// Staying in fast_burn must not re-fire.
	n := len(got)
	for i := 0; i < 5; i++ {
		for j := 0; j < 20; j++ {
			hist.Observe(1.0)
		}
		h.tick()
	}
	if len(got) != n {
		t.Fatalf("transitions re-fired while steady: %d → %d", n, len(got))
	}
}

func TestPageAndHumanView(t *testing.T) {
	h := newHarness(t, []Def{availDef(), latencyDef()}, nil)
	h.reg.Counter("req/total").Add(5)
	h.tick()
	p := h.eng.Page()
	if !p.Enabled || len(p.SLOs) != 2 {
		t.Fatalf("page = %+v", p)
	}
	if p.Windows.FastShort != "4s" || p.Windows.SlowLong != "2m0s" {
		t.Fatalf("windows view = %+v", p.Windows)
	}
	var b strings.Builder
	p.WriteHuman(&b)
	text := b.String()
	for _, want := range []string{"availability", "latency", "budget="} {
		if !strings.Contains(text, want) {
			t.Fatalf("human view missing %q:\n%s", want, text)
		}
	}

	var nilEng *Engine
	np := nilEng.Page()
	if np.Enabled {
		t.Fatal("nil engine page must be disabled")
	}
	b.Reset()
	np.WriteHuman(&b)
	if !strings.Contains(b.String(), "disabled") {
		t.Fatalf("nil human view: %q", b.String())
	}
}

func TestNilEngineNoOps(t *testing.T) {
	var e *Engine
	if sts := e.Evaluate(); sts != nil {
		t.Fatal("nil Evaluate must return nil")
	}
	if _, ok := e.Status("x"); ok {
		t.Fatal("nil Status must report not-found")
	}
	e.OnTransition(func(Transition) {})
}

func TestDefValidation(t *testing.T) {
	ts := obs.NewTimeSeries(obs.NewRegistry(), obs.TimeSeriesOptions{})
	cases := []Def{
		{Name: "bad-obj", Kind: Latency, Objective: 1.5, Threshold: 1, Metric: "m"},
		{Name: "bad-avail", Kind: Availability, Objective: 0.9},
		{Name: "bad-lat", Kind: Latency, Objective: 0.9},
		{Name: "bad-kind", Kind: "weird", Objective: 0.9},
	}
	for _, d := range cases {
		if _, err := New(ts, []Def{d}, Options{}); err == nil {
			t.Fatalf("def %+v accepted, want error", d)
		}
	}
}
