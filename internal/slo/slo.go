// Package slo evaluates declarative service-level objectives as multi-window
// burn rates over the windowed telemetry in internal/obs.
//
// Every SLO is reduced to one ratio SLI — the fraction of "good" events over
// a trailing window:
//
//   - availability: good = request answered without degradation or error
//     (counter deltas: bad counters over a total counter);
//   - latency: good = request latency ≤ the target threshold (histogram
//     bucket interpolation, so a p99 target becomes "≥ 99% of requests under
//     the target");
//   - quality: good = audited relative error ≤ the target threshold (same
//     mechanism over the audit error histogram).
//
// The error budget is 1 − objective. The burn rate over a window is
// (observed error rate) / budget: burn 1 means the budget exactly lasts the
// SLO period; burn 14.4 exhausts a 30-day budget in 2 days. Following the
// multi-window practice from the SRE literature, an SLO enters fast_burn
// when both a short confirmation window and a longer fast window exceed the
// fast threshold (default 14.4), and slow_burn when both slow windows exceed
// the slow threshold (default 6). Downward transitions are hysteretic: the
// state only relaxes after the condition has stayed clear for a hold-down
// period, so a burn that flaps around the threshold does not flap the state
// (or re-trigger the flight recorder).
package slo

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"asqprl/internal/obs"
)

// Kind classifies what an SLO protects.
type Kind string

const (
	Availability Kind = "availability"
	Latency      Kind = "latency"
	Quality      Kind = "quality"
)

// States, ordered by severity.
const (
	StateNoData   = "no_data"
	StateOK       = "ok"
	StateSlowBurn = "slow_burn"
	StateFastBurn = "fast_burn"
)

// stateLevel orders states for hysteresis (higher = worse).
func stateLevel(s string) int {
	switch s {
	case StateFastBurn:
		return 2
	case StateSlowBurn:
		return 1
	default:
		return 0
	}
}

// Def declares one SLO.
type Def struct {
	// Name identifies the SLO in /sloz, /stats, metrics, and bundles.
	Name string
	// Kind is availability, latency, or quality.
	Kind Kind
	// Objective is the target good-event ratio in (0, 1), e.g. 0.99 for a
	// p99 latency target or 0.95 for an error-p95 quality target.
	Objective float64
	// Threshold is the per-event good/bad cut: seconds for latency,
	// relative error for quality. Unused for availability.
	Threshold float64
	// Metric is the histogram the SLI reads (latency, quality).
	Metric string
	// TotalCounter / BadCounters define the availability ratio.
	TotalCounter string
	BadCounters  []string
}

// Windows are the four burn-rate evaluation windows.
type Windows struct {
	FastShort time.Duration // fast-burn confirmation window (default 1m)
	FastLong  time.Duration // fast-burn window (default 5m)
	SlowShort time.Duration // slow-burn confirmation window (default 30m)
	SlowLong  time.Duration // slow-burn window (default 6h)
}

// DefaultWindows returns the standard 1m/5m/30m/6h window set.
func DefaultWindows() Windows {
	return Windows{
		FastShort: time.Minute,
		FastLong:  5 * time.Minute,
		SlowShort: 30 * time.Minute,
		SlowLong:  6 * time.Hour,
	}
}

// Normalize fills zero fields with the defaults. Exported so callers that
// derive values from the effective windows (e.g. the server picking a sample
// interval from FastShort) see exactly what the engine will use.
func (w *Windows) Normalize() {
	d := DefaultWindows()
	if w.FastShort <= 0 {
		w.FastShort = d.FastShort
	}
	if w.FastLong <= 0 {
		w.FastLong = d.FastLong
	}
	if w.SlowShort <= 0 {
		w.SlowShort = d.SlowShort
	}
	if w.SlowLong <= 0 {
		w.SlowLong = d.SlowLong
	}
}

// WindowsView is the JSON rendering of a window set.
type WindowsView struct {
	FastShort string `json:"fast_short"`
	FastLong  string `json:"fast_long"`
	SlowShort string `json:"slow_short"`
	SlowLong  string `json:"slow_long"`
}

func (w Windows) view() WindowsView {
	return WindowsView{
		FastShort: w.FastShort.String(),
		FastLong:  w.FastLong.String(),
		SlowShort: w.SlowShort.String(),
		SlowLong:  w.SlowLong.String(),
	}
}

// Options configures the engine.
type Options struct {
	Windows Windows
	// FastBurn / SlowBurn are the burn-rate thresholds (defaults 14.4, 6).
	FastBurn float64
	SlowBurn float64
	// HoldDown is how long the burn condition must stay clear before the
	// state relaxes (default = FastShort).
	HoldDown time.Duration
	// Now is the clock; defaults to time.Now (injectable for tests).
	Now func() time.Time
	// WorstShape, when set, annotates the quality SLO status with the
	// worst-audited plan shape (from the shadow auditor).
	WorstShape func() (p95 float64, completed int64, ok bool)
	// Registry receives per-SLO burn/state gauges on every evaluation so
	// the SLO series are scrapeable at /metrics?format=prom. Nil disables.
	Registry *obs.Registry
}

// WindowBurn is one window's contribution to a status.
type WindowBurn struct {
	Window    string  `json:"window"`
	ErrorRate float64 `json:"error_rate"`
	Burn      float64 `json:"burn"`
	Events    int64   `json:"events"`
}

// Status is the evaluated state of one SLO.
type Status struct {
	Name            string       `json:"name"`
	Kind            string       `json:"kind"`
	Objective       float64      `json:"objective"`
	Threshold       float64      `json:"threshold,omitempty"`
	State           string       `json:"state"`
	Since           time.Time    `json:"since"`
	Burns           []WindowBurn `json:"burns"`
	BudgetConsumed  float64      `json:"budget_consumed"`
	ExemplarTraceID string       `json:"exemplar_trace_id,omitempty"`
	WorstShapeP95   float64      `json:"worst_shape_p95,omitempty"`
	AuditsCompleted int64        `json:"audits_completed,omitempty"`
}

// Page is the /sloz payload.
type Page struct {
	Enabled     bool        `json:"enabled"`
	Windows     WindowsView `json:"windows"`
	FastBurn    float64     `json:"fast_burn_threshold"`
	SlowBurn    float64     `json:"slow_burn_threshold"`
	SLOs        []Status    `json:"slos,omitempty"`
	FastBurning []string    `json:"fast_burning,omitempty"`
	EvaluatedAt time.Time   `json:"evaluated_at"`
}

// Transition describes one state change, delivered to OnTransition.
type Transition struct {
	SLO      Status
	From, To string
}

// sloState is the engine's per-SLO mutable state.
type sloState struct {
	def   Def
	state string
	since time.Time
	// lastAtOrAbove[level] is the last evaluation time at which the raw
	// (hysteresis-free) level was ≥ level; downward transitions wait until
	// HoldDown has passed since then.
	lastAtOrAbove [3]time.Time
	last          Status
}

// Engine evaluates a fixed set of SLOs against a TimeSeries.
type Engine struct {
	ts   *obs.TimeSeries
	opts Options

	mu       sync.Mutex
	states   []*sloState
	lastEval time.Time
	onTrans  func(Transition)
}

// New builds an engine over ts. Defs with out-of-range objectives are
// rejected. A nil *Engine is a valid no-op (Page reports disabled).
func New(ts *obs.TimeSeries, defs []Def, opts Options) (*Engine, error) {
	opts.Windows.Normalize()
	if opts.FastBurn <= 0 {
		opts.FastBurn = 14.4
	}
	if opts.SlowBurn <= 0 {
		opts.SlowBurn = 6
	}
	if opts.HoldDown <= 0 {
		opts.HoldDown = opts.Windows.FastShort
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	e := &Engine{ts: ts, opts: opts}
	for _, d := range defs {
		if d.Objective <= 0 || d.Objective >= 1 {
			return nil, fmt.Errorf("slo %q: objective %v outside (0,1)", d.Name, d.Objective)
		}
		switch d.Kind {
		case Availability:
			if d.TotalCounter == "" || len(d.BadCounters) == 0 {
				return nil, fmt.Errorf("slo %q: availability needs total and bad counters", d.Name)
			}
		case Latency, Quality:
			if d.Metric == "" || d.Threshold <= 0 {
				return nil, fmt.Errorf("slo %q: %s needs a metric and a positive threshold", d.Name, d.Kind)
			}
		default:
			return nil, fmt.Errorf("slo %q: unknown kind %q", d.Name, d.Kind)
		}
		e.states = append(e.states, &sloState{def: d, state: StateNoData})
	}
	return e, nil
}

// OnTransition registers fn to receive state changes (called synchronously
// from Evaluate, outside the engine lock). The flight recorder hooks here.
func (e *Engine) OnTransition(fn func(Transition)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.onTrans = fn
	e.mu.Unlock()
}

// windowSLI evaluates one SLO's error rate over one window.
func (e *Engine) windowSLI(def Def, window time.Duration) (errRate float64, events int64, ok bool) {
	switch def.Kind {
	case Availability:
		total, _, tok := e.ts.CounterWindow(def.TotalCounter, window)
		if !tok || total == 0 {
			return 0, 0, tok
		}
		var bad int64
		for _, name := range def.BadCounters {
			d, _, _ := e.ts.CounterWindow(name, window)
			bad += d
		}
		if bad > total {
			bad = total
		}
		return float64(bad) / float64(total), total, true
	default: // Latency, Quality
		hw, _, hok := e.ts.HistogramWindow(def.Metric, window)
		if !hok || hw.Count == 0 {
			return 0, 0, hok
		}
		return 1 - hw.FractionBelow(def.Threshold), hw.Count, true
	}
}

// Evaluate re-computes every SLO's burn rates and state at the current
// clock, returning the statuses. Transitions fire the OnTransition hook.
func (e *Engine) Evaluate() []Status {
	if e == nil {
		return nil
	}
	now := e.opts.Now()
	w := e.opts.Windows
	specs := []struct {
		label string
		dur   time.Duration
	}{
		{"fast_short", w.FastShort},
		{"fast_long", w.FastLong},
		{"slow_short", w.SlowShort},
		{"slow_long", w.SlowLong},
	}

	e.mu.Lock()
	var trans []Transition
	out := make([]Status, 0, len(e.states))
	for _, st := range e.states {
		def := st.def
		budget := 1 - def.Objective
		burns := make([]WindowBurn, 0, len(specs))
		rawBurn := make(map[string]float64, len(specs))
		rawEvents := make(map[string]int64, len(specs))
		anyData := false
		for _, sp := range specs {
			errRate, events, ok := e.windowSLI(def, sp.dur)
			burn := 0.0
			if ok && events > 0 {
				burn = errRate / budget
				anyData = true
			}
			rawBurn[sp.label] = burn
			rawEvents[sp.label] = events
			burns = append(burns, WindowBurn{
				Window:    sp.dur.String(),
				ErrorRate: errRate,
				Burn:      burn,
				Events:    events,
			})
		}

		// Raw level from the multi-window rule: both windows of a pair must
		// have evidence and exceed the threshold.
		rawLevel := 0
		if rawEvents["slow_short"] > 0 && rawEvents["slow_long"] > 0 &&
			rawBurn["slow_short"] >= e.opts.SlowBurn && rawBurn["slow_long"] >= e.opts.SlowBurn {
			rawLevel = 1
		}
		if rawEvents["fast_short"] > 0 && rawEvents["fast_long"] > 0 &&
			rawBurn["fast_short"] >= e.opts.FastBurn && rawBurn["fast_long"] >= e.opts.FastBurn {
			rawLevel = 2
		}
		for l := 0; l <= rawLevel; l++ {
			st.lastAtOrAbove[l] = now
		}

		prev := st.state
		next := prev
		switch {
		case !anyData && stateLevel(prev) == 0:
			next = StateNoData
		case rawLevel > stateLevel(prev):
			next = levelState(rawLevel)
		case rawLevel < stateLevel(prev):
			// Hysteresis: relax one level at a time, only after the level
			// has stayed clear for HoldDown.
			cur := stateLevel(prev)
			if now.Sub(st.lastAtOrAbove[cur]) >= e.opts.HoldDown {
				next = levelState(cur - 1)
				if next == StateOK && !anyData {
					next = StateNoData
				}
			}
		case prev == StateNoData && anyData:
			next = StateOK
		}
		if next != prev {
			st.since = now
			st.state = next
		}
		if st.since.IsZero() {
			st.since = now
		}

		status := Status{
			Name:      def.Name,
			Kind:      string(def.Kind),
			Objective: def.Objective,
			Threshold: def.Threshold,
			State:     st.state,
			Since:     st.since,
			Burns:     burns,
			// With the budget defined over the slow-long period, the
			// fraction consumed equals that window's burn rate, capped at 1.
			BudgetConsumed: clamp01(rawBurn["slow_long"]),
		}
		if def.Kind != Availability && e.opts.Registry != nil {
			if ex, ok := e.opts.Registry.Histogram(def.Metric).ExemplarAbove(def.Threshold); ok {
				status.ExemplarTraceID = ex.TraceID
			}
		}
		if def.Kind == Quality && e.opts.WorstShape != nil {
			if p95, completed, ok := e.opts.WorstShape(); ok {
				status.WorstShapeP95 = p95
				status.AuditsCompleted = completed
			}
		}
		st.last = status
		out = append(out, status)
		if st.state != prev {
			trans = append(trans, Transition{SLO: status, From: prev, To: st.state})
		}

		if reg := e.opts.Registry; reg != nil {
			base := "slo/" + def.Name + "/"
			reg.Gauge(base + "burn_fast").Set(rawBurn["fast_long"])
			reg.Gauge(base + "burn_slow").Set(rawBurn["slow_long"])
			reg.Gauge(base + "budget_consumed").Set(status.BudgetConsumed)
			reg.Gauge(base + "state").Set(float64(stateLevel(st.state)))
		}
	}
	e.lastEval = now
	cb := e.onTrans
	e.mu.Unlock()

	if cb != nil {
		for _, tr := range trans {
			cb(tr)
		}
	}
	return out
}

func levelState(l int) string {
	switch l {
	case 2:
		return StateFastBurn
	case 1:
		return StateSlowBurn
	default:
		return StateOK
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Status returns the last evaluated status of the named SLO.
func (e *Engine) Status(name string) (Status, bool) {
	if e == nil {
		return Status{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.states {
		if st.def.Name == name && !st.last.Since.IsZero() {
			return st.last, true
		}
	}
	return Status{}, false
}

// Page renders the last evaluation (evaluating once if none has happened
// yet). Safe on a nil engine: reports disabled.
func (e *Engine) Page() Page {
	if e == nil {
		return Page{Enabled: false}
	}
	e.mu.Lock()
	evaluated := !e.lastEval.IsZero()
	e.mu.Unlock()
	if !evaluated {
		e.Evaluate()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	p := Page{
		Enabled:     true,
		Windows:     e.opts.Windows.view(),
		FastBurn:    e.opts.FastBurn,
		SlowBurn:    e.opts.SlowBurn,
		EvaluatedAt: e.lastEval,
	}
	for _, st := range e.states {
		p.SLOs = append(p.SLOs, st.last)
		if st.state == StateFastBurn {
			p.FastBurning = append(p.FastBurning, st.def.Name)
		}
	}
	sort.Strings(p.FastBurning)
	return p
}

// WriteHuman renders the page as a plaintext table for /sloz?view=human.
func (p Page) WriteHuman(b *strings.Builder) {
	if !p.Enabled {
		b.WriteString("SLOs: disabled (no objectives configured)\n")
		return
	}
	fmt.Fprintf(b, "SLOs  evaluated %s  windows %s/%s/%s/%s  fast>=%.1f slow>=%.1f\n\n",
		p.EvaluatedAt.Format(time.RFC3339),
		p.Windows.FastShort, p.Windows.FastLong, p.Windows.SlowShort, p.Windows.SlowLong,
		p.FastBurn, p.SlowBurn)
	for _, s := range p.SLOs {
		marker := " "
		switch s.State {
		case StateFastBurn:
			marker = "!"
		case StateSlowBurn:
			marker = "~"
		}
		fmt.Fprintf(b, "%s %-12s %-13s obj=%.4g", marker, s.Name, s.Kind, s.Objective)
		if s.Threshold > 0 {
			fmt.Fprintf(b, " thr=%.4g", s.Threshold)
		}
		fmt.Fprintf(b, "  state=%s since %s  budget=%.1f%%\n",
			s.State, s.Since.Format(time.RFC3339), 100*s.BudgetConsumed)
		for _, wb := range s.Burns {
			fmt.Fprintf(b, "    %-8s err=%.4f burn=%8.2f events=%d\n",
				wb.Window, wb.ErrorRate, wb.Burn, wb.Events)
		}
		if s.ExemplarTraceID != "" {
			fmt.Fprintf(b, "    exemplar trace %s\n", s.ExemplarTraceID)
		}
		if s.WorstShapeP95 > 0 {
			fmt.Fprintf(b, "    worst shape p95 %.4f over %d audits\n", s.WorstShapeP95, s.AuditsCompleted)
		}
	}
}
