package datagen

import (
	"testing"

	"asqprl/internal/engine"
	"asqprl/internal/table"
)

func TestIMDBShape(t *testing.T) {
	db := IMDB(0.02, 1)
	for _, name := range []string{"title", "name", "cast_info", "movie_info"} {
		if db.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
		if db.Table(name).NumRows() == 0 {
			t.Errorf("table %s is empty", name)
		}
	}
	// Foreign keys resolve: every cast_info.title_id exists in title.
	titles := db.Table("title").NumRows()
	ci := db.Table("cast_info")
	col := ci.ColumnIndex("title_id")
	for _, r := range ci.Rows {
		if id := r[col].Int; id < 0 || id >= int64(titles) {
			t.Fatalf("dangling title_id %d", id)
		}
	}
}

func TestIMDBJoinsProduceRows(t *testing.T) {
	db := IMDB(0.02, 1)
	res, err := engine.ExecuteSQL(db,
		"SELECT t.title, n.name FROM title t JOIN cast_info c ON t.id = c.title_id JOIN name n ON c.name_id = n.id WHERE t.genre = 'drama'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Error("three-way join over generated data returned nothing")
	}
}

func TestIMDBSkew(t *testing.T) {
	db := IMDB(0.05, 2)
	// Genre distribution should be skewed: most popular genre well above
	// uniform share.
	counts := map[string]int{}
	gi := db.Table("title").ColumnIndex("genre")
	for _, r := range db.Table("title").Rows {
		counts[r[gi].Str]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	uniform := total / len(counts)
	if max < uniform*2 {
		t.Errorf("genre skew too weak: max %d vs uniform %d", max, uniform)
	}
}

func TestMASShape(t *testing.T) {
	db := MAS(0.02, 1)
	for _, name := range []string{"author", "publication", "writes", "conference"} {
		if db.Table(name) == nil || db.Table(name).NumRows() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
	res, err := engine.ExecuteSQL(db,
		"SELECT a.name FROM author a JOIN writes w ON a.id = w.author_id JOIN publication p ON w.publication_id = p.id WHERE p.year > 2000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Error("MAS join returned nothing")
	}
}

func TestFlightsShape(t *testing.T) {
	db := Flights(0.02, 1)
	f := db.Table("flights")
	if f == nil || f.NumRows() == 0 {
		t.Fatal("flights missing")
	}
	// origin != dest invariant.
	oi, di := f.ColumnIndex("origin"), f.ColumnIndex("dest")
	for _, r := range f.Rows {
		if r[oi].Str == r[di].Str {
			t.Fatal("origin == dest")
		}
	}
	res, err := engine.ExecuteSQL(db, "SELECT carrier, AVG(dep_delay) FROM flights GROUP BY carrier")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() < 4 {
		t.Errorf("only %d carriers", res.Table.NumRows())
	}
}

func TestDeterminism(t *testing.T) {
	a := IMDB(0.01, 5)
	b := IMDB(0.01, 5)
	at, bt := a.Table("title"), b.Table("title")
	if at.NumRows() != bt.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := range at.Rows {
		if at.Rows[i].Key() != bt.Rows[i].Key() {
			t.Fatal("same seed produced different data")
		}
	}
	c := IMDB(0.01, 6)
	if c.Table("title").Rows[0].Key() == at.Rows[0].Key() && c.Table("title").Rows[1].Key() == at.Rows[1].Key() {
		t.Error("different seeds produced identical data")
	}
}

func TestScaleGrowsData(t *testing.T) {
	small := IMDB(0.01, 1)
	big := IMDB(0.05, 1)
	if big.TotalRows() <= small.TotalRows() {
		t.Errorf("scale 0.05 (%d rows) should exceed 0.01 (%d rows)",
			big.TotalRows(), small.TotalRows())
	}
}

func TestBlowup(t *testing.T) {
	db := Flights(0.01, 1)
	n := db.TotalRows()
	big := Blowup(db, 3)
	if big.TotalRows() != 3*n {
		t.Errorf("blowup x3: %d rows, want %d", big.TotalRows(), 3*n)
	}
	// IDs stay unique.
	f := big.Table("flights")
	idc := f.ColumnIndex("id")
	seen := map[int64]bool{}
	for _, r := range f.Rows {
		if seen[r[idc].Int] {
			t.Fatal("duplicate id after blowup")
		}
		seen[r[idc].Int] = true
	}
	// Factor 1 returns the same database.
	if Blowup(db, 1) != db {
		t.Error("factor 1 should be identity")
	}
}

func TestZipfPickBounds(t *testing.T) {
	rngDB := IMDB(0.01, 3) // just to touch generation paths
	_ = rngDB
	var _ = table.NewDatabase()
}
