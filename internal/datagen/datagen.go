// Package datagen generates the three synthetic datasets used throughout the
// evaluation, shaped after the paper's benchmarks (Section 6.1):
//
//   - IMDB: a multi-table movie database in the style of IMDB-JOB — titles,
//     people, cast facts and per-movie info with foreign keys, Zipf-skewed
//     genres/roles and correlated numeric columns.
//   - MAS: a researcher/publication database in the style of the Microsoft
//     Academic Search dataset — authors, publications, a writes relation and
//     conferences.
//   - Flights: a single wide flight-delay fact table in the style of the
//     IDEBench FLIGHTS dataset.
//
// All generators are deterministic given (scale, seed). scale 1.0 produces
// roughly 100k tuples for IMDB, 40k for MAS, and 50k for Flights — large
// enough that exact query execution is visibly slower than approximation-set
// execution, small enough for laptop-scale experiments. The real datasets
// (34M tuples for IMDB) are substituted per DESIGN.md.
package datagen

import (
	"fmt"
	"math/rand"

	"asqprl/internal/table"
)

// zipfPick draws an index in [0, n) with a Zipf-like skew (rank 1 most
// popular), using a simple inverse-CDF approximation that avoids the state
// of rand.Zipf so draws stay cheap and deterministic.
func zipfPick(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse transform over p(k) ∝ 1/k^s using the integral approximation.
	u := rng.Float64()
	k := int(float64(n) * (uIntoZipf(u, s)))
	if k >= n {
		k = n - 1
	}
	return k
}

// uIntoZipf maps a uniform u into a skewed fraction in [0,1).
func uIntoZipf(u, s float64) float64 {
	// Square the uniform a couple of times: cheap heavy-head skew whose
	// strength grows with s.
	f := u
	for i := 0.0; i < s; i++ {
		f *= u
	}
	return f
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 10 {
		n = 10
	}
	return n
}

// firstNames and lastNames feed person-name generation.
var firstNames = []string{
	"Ann", "Bob", "Carla", "Dan", "Eve", "Frank", "Grace", "Hugo", "Ida",
	"Jack", "Kira", "Liam", "Mona", "Nils", "Olga", "Paul", "Quinn", "Rosa",
	"Sam", "Tara", "Uri", "Vera", "Walt", "Xena", "Yuri", "Zoe",
}

var lastNames = []string{
	"Adams", "Brown", "Chen", "Diaz", "Evans", "Fischer", "Garcia", "Haas",
	"Ito", "Jones", "Kumar", "Lee", "Moretti", "Novak", "Okafor", "Park",
	"Quist", "Rossi", "Smith", "Tanaka", "Ueda", "Varga", "Wong", "Xu",
	"Yang", "Ziegler",
}

func personName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

// movie title word pools.
var titleAdjectives = []string{
	"Dark", "Silent", "Golden", "Lost", "Hidden", "Broken", "Eternal",
	"Crimson", "Frozen", "Burning", "Quiet", "Savage", "Gentle", "Final",
}

var titleNouns = []string{
	"Horizon", "Empire", "Garden", "River", "Shadow", "Citadel", "Voyage",
	"Reckoning", "Harvest", "Covenant", "Symphony", "Labyrinth", "Monsoon",
	"Meridian",
}

func movieTitle(rng *rand.Rand, id int) string {
	return fmt.Sprintf("%s %s %d",
		titleAdjectives[rng.Intn(len(titleAdjectives))],
		titleNouns[rng.Intn(len(titleNouns))], id%97)
}

var genres = []string{
	"drama", "comedy", "action", "thriller", "documentary", "horror",
	"romance", "scifi", "animation", "western",
}

var kinds = []string{"movie", "tv series", "video", "short"}

var roles = []string{"actor", "actress", "director", "producer", "writer", "composer", "editor"}

var infoTypes = []string{"budget", "gross", "runtime", "country", "language"}

// IMDB generates the IMDB-JOB-shaped database. At scale 1.0:
// title ≈ 20k, name ≈ 12k, cast_info ≈ 50k, movie_info ≈ 25k.
func IMDB(scale float64, seed int64) *table.Database {
	rng := rand.New(rand.NewSource(seed))
	nTitles := scaled(20000, scale)
	nNames := scaled(12000, scale)
	nCast := scaled(50000, scale)
	nInfo := scaled(25000, scale)

	title := table.New("title", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title", Kind: table.KindString},
		{Name: "kind", Kind: table.KindString},
		{Name: "production_year", Kind: table.KindInt},
		{Name: "genre", Kind: table.KindString},
		{Name: "rating", Kind: table.KindFloat},
		{Name: "votes", Kind: table.KindInt},
	})
	for i := 0; i < nTitles; i++ {
		year := 1930 + zipfPick(rng, 95, 1) // skewed toward recent via reversal below
		year = 1930 + (95 - 1 - (year - 1930))
		genre := genres[zipfPick(rng, len(genres), 1)]
		rating := 4 + rng.Float64()*6
		if genre == "documentary" {
			rating += 0.5 // mild correlation
		}
		if rating > 10 {
			rating = 10
		}
		votes := int64(10 + zipfPick(rng, 200000, 2))
		title.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(movieTitle(rng, i)),
			table.NewString(kinds[zipfPick(rng, len(kinds), 1.5)]),
			table.NewInt(int64(year)),
			table.NewString(genre),
			table.NewFloat(float64(int(rating*10)) / 10),
			table.NewInt(votes),
		})
	}

	name := table.New("name", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "name", Kind: table.KindString},
		{Name: "gender", Kind: table.KindString},
		{Name: "birth_year", Kind: table.KindInt},
	})
	for i := 0; i < nNames; i++ {
		g := "m"
		if rng.Intn(2) == 0 {
			g = "f"
		}
		name.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(personName(rng)),
			table.NewString(g),
			table.NewInt(int64(1920 + rng.Intn(85))),
		})
	}

	castInfo := table.New("cast_info", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title_id", Kind: table.KindInt},
		{Name: "name_id", Kind: table.KindInt},
		{Name: "role", Kind: table.KindString},
		{Name: "position", Kind: table.KindInt},
	})
	for i := 0; i < nCast; i++ {
		castInfo.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewInt(int64(zipfPick(rng, nTitles, 1))), // popular titles get more cast rows
			table.NewInt(int64(zipfPick(rng, nNames, 1))),  // stars appear more
			table.NewString(roles[zipfPick(rng, len(roles), 1)]),
			table.NewInt(int64(1 + rng.Intn(30))),
		})
	}

	movieInfo := table.New("movie_info", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title_id", Kind: table.KindInt},
		{Name: "info_type", Kind: table.KindString},
		{Name: "value", Kind: table.KindFloat},
	})
	for i := 0; i < nInfo; i++ {
		it := infoTypes[rng.Intn(len(infoTypes))]
		var v float64
		switch it {
		case "budget":
			v = float64(100000 * (1 + zipfPick(rng, 2000, 1.5)))
		case "gross":
			v = float64(50000 * (1 + zipfPick(rng, 8000, 1.5)))
		case "runtime":
			v = float64(60 + rng.Intn(120))
		default:
			v = float64(rng.Intn(50))
		}
		movieInfo.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewInt(int64(zipfPick(rng, nTitles, 1))),
			table.NewString(it),
			table.NewFloat(v),
		})
	}

	db := table.NewDatabase()
	db.Add(title)
	db.Add(name)
	db.Add(castInfo)
	db.Add(movieInfo)
	return db
}

var areas = []string{
	"databases", "machine learning", "systems", "theory", "vision",
	"networks", "security", "hci",
}

var affiliations = []string{
	"MIT", "Stanford", "Berkeley", "CMU", "Tel Aviv University",
	"University of Pennsylvania", "ETH Zurich", "Oxford", "Tsinghua",
	"Technion", "EPFL", "Max Planck",
}

var paperWords = []string{
	"Learning", "Scalable", "Adaptive", "Efficient", "Approximate",
	"Distributed", "Neural", "Robust", "Interactive", "Incremental",
	"Query", "Index", "Graph", "Stream", "Transaction", "Storage",
	"Optimization", "Processing", "Exploration", "Sampling",
}

// MAS generates the MAS-shaped database. At scale 1.0:
// author ≈ 8k, publication ≈ 15k, writes ≈ 30k, conference ≈ 60.
func MAS(scale float64, seed int64) *table.Database {
	rng := rand.New(rand.NewSource(seed))
	nAuthors := scaled(8000, scale)
	nPubs := scaled(15000, scale)
	nWrites := scaled(30000, scale)
	nConfs := 60

	conference := table.New("conference", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "name", Kind: table.KindString},
		{Name: "area", Kind: table.KindString},
		{Name: "rank", Kind: table.KindInt},
	})
	for i := 0; i < nConfs; i++ {
		conference.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(fmt.Sprintf("CONF-%02d", i)),
			table.NewString(areas[i%len(areas)]),
			table.NewInt(int64(1 + i%4)),
		})
	}

	author := table.New("author", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "name", Kind: table.KindString},
		{Name: "affiliation", Kind: table.KindString},
		{Name: "pub_count", Kind: table.KindInt},
	})
	for i := 0; i < nAuthors; i++ {
		author.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(personName(rng)),
			table.NewString(affiliations[zipfPick(rng, len(affiliations), 1)]),
			table.NewInt(int64(1 + zipfPick(rng, 200, 1.5))),
		})
	}

	publication := table.New("publication", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "title", Kind: table.KindString},
		{Name: "year", Kind: table.KindInt},
		{Name: "conference_id", Kind: table.KindInt},
		{Name: "citations", Kind: table.KindInt},
	})
	for i := 0; i < nPubs; i++ {
		w1 := paperWords[rng.Intn(len(paperWords))]
		w2 := paperWords[rng.Intn(len(paperWords))]
		publication.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(fmt.Sprintf("%s %s for %s", w1, w2, areas[rng.Intn(len(areas))])),
			table.NewInt(int64(1990 + zipfPick(rng, 34, 0.5))),
			table.NewInt(int64(zipfPick(rng, nConfs, 1))),
			table.NewInt(int64(zipfPick(rng, 5000, 2))),
		})
	}

	writes := table.New("writes", table.Schema{
		{Name: "author_id", Kind: table.KindInt},
		{Name: "publication_id", Kind: table.KindInt},
		{Name: "position", Kind: table.KindInt},
	})
	for i := 0; i < nWrites; i++ {
		writes.AppendRow(table.Row{
			table.NewInt(int64(zipfPick(rng, nAuthors, 1))),
			table.NewInt(int64(rng.Intn(nPubs))),
			table.NewInt(int64(1 + rng.Intn(6))),
		})
	}

	db := table.NewDatabase()
	db.Add(author)
	db.Add(publication)
	db.Add(writes)
	db.Add(conference)
	return db
}

var carriers = []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9"}

var airports = []string{
	"ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO",
	"EWR", "CLT", "PHX", "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL",
}

// Flights generates the FLIGHTS-shaped fact table. At scale 1.0 ≈ 50k rows.
func Flights(scale float64, seed int64) *table.Database {
	rng := rand.New(rand.NewSource(seed))
	n := scaled(50000, scale)

	flights := table.New("flights", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "carrier", Kind: table.KindString},
		{Name: "origin", Kind: table.KindString},
		{Name: "dest", Kind: table.KindString},
		{Name: "month", Kind: table.KindInt},
		{Name: "day_of_week", Kind: table.KindInt},
		{Name: "dep_delay", Kind: table.KindFloat},
		{Name: "arr_delay", Kind: table.KindFloat},
		{Name: "distance", Kind: table.KindInt},
		{Name: "cancelled", Kind: table.KindBool},
	})
	for i := 0; i < n; i++ {
		carrier := carriers[zipfPick(rng, len(carriers), 1)]
		origin := airports[zipfPick(rng, len(airports), 1)]
		dest := airports[zipfPick(rng, len(airports), 1)]
		for dest == origin {
			dest = airports[rng.Intn(len(airports))]
		}
		month := 1 + rng.Intn(12)
		// Delays: mostly small, heavy tail, worse in summer/winter.
		base := rng.NormFloat64() * 12
		if month == 7 || month == 12 {
			base += 8
		}
		dep := base + float64(zipfPick(rng, 300, 2))
		arr := dep + rng.NormFloat64()*10
		flights.AppendRow(table.Row{
			table.NewInt(int64(i)),
			table.NewString(carrier),
			table.NewString(origin),
			table.NewString(dest),
			table.NewInt(int64(month)),
			table.NewInt(int64(1 + rng.Intn(7))),
			table.NewFloat(float64(int(dep*10)) / 10),
			table.NewFloat(float64(int(arr*10)) / 10),
			table.NewInt(int64(200 + zipfPick(rng, 2800, 1))),
			table.NewBool(rng.Float64() < 0.02),
		})
	}

	db := table.NewDatabase()
	db.Add(flights)
	return db
}

// Blowup duplicates every table's rows by the given integer factor, used by
// the Figure 4 "problem justification" experiment that grows the database.
// Duplicated rows get fresh values in any column named "id" to keep keys
// unique.
func Blowup(db *table.Database, factor int) *table.Database {
	if factor <= 1 {
		return db
	}
	out := table.NewDatabase()
	for _, t := range db.Tables() {
		nt := table.New(t.Name, t.Schema)
		idCol := t.ColumnIndex("id")
		nextID := int64(t.NumRows())
		for f := 0; f < factor; f++ {
			for _, r := range t.Rows {
				row := r.Clone()
				if f > 0 && idCol >= 0 {
					row[idCol] = table.NewInt(nextID)
					nextID++
				}
				nt.AppendRow(row)
			}
		}
		out.Add(nt)
	}
	return out
}
