package core

import (
	"math"
	"math/rand"

	"asqprl/internal/rl"
	"asqprl/internal/table"
)

// coverTracker maintains, incrementally, how much of each representative
// query's tracked result set is covered by the currently chosen candidates.
// It is the reward engine shared by every environment: adding or removing a
// candidate updates per-tuple missing-row counts in time proportional to the
// number of affected tuples, so rewards never require re-executing SQL.
type coverTracker struct {
	pre        *Preprocessed
	frameSize  int
	relaxW     float64 // reward share of relaxed-result coverage
	rowRef     map[table.RowID]int
	missing    [][]int
	covered    []int
	missingRel [][]int
	coveredRel []int
	size       int
}

func newCoverTracker(pre *Preprocessed, frameSize int) *coverTracker {
	return newCoverTrackerWeighted(pre, frameSize, 0.2)
}

func newCoverTrackerWeighted(pre *Preprocessed, frameSize int, relaxW float64) *coverTracker {
	t := &coverTracker{
		pre:        pre,
		frameSize:  frameSize,
		relaxW:     relaxW,
		rowRef:     make(map[table.RowID]int),
		missing:    make([][]int, len(pre.Reps)),
		covered:    make([]int, len(pre.Reps)),
		missingRel: make([][]int, len(pre.Reps)),
		coveredRel: make([]int, len(pre.Reps)),
	}
	for q := range pre.Reps {
		m := make([]int, len(pre.Reps[q].Tuples))
		for ti, tup := range pre.Reps[q].Tuples {
			m[ti] = len(tup.Rows)
		}
		t.missing[q] = m
		mr := make([]int, len(pre.Reps[q].RelaxedTuples))
		for ti, tup := range pre.Reps[q].RelaxedTuples {
			mr[ti] = len(tup.Rows)
		}
		t.missingRel[q] = mr
	}
	return t
}

// addCandidate includes candidate i's rows; returns the number of rows newly
// added to the set.
func (t *coverTracker) addCandidate(c Candidate) int {
	added := 0
	for _, id := range c.Rows {
		t.rowRef[id]++
		if t.rowRef[id] > 1 {
			continue
		}
		added++
		for _, ref := range t.pre.RowToTuples[id] {
			if ref.relaxed {
				t.missingRel[ref.q][ref.t]--
				if t.missingRel[ref.q][ref.t] == 0 {
					t.coveredRel[ref.q]++
				}
				continue
			}
			t.missing[ref.q][ref.t]--
			if t.missing[ref.q][ref.t] == 0 {
				t.covered[ref.q]++
			}
		}
	}
	t.size += added
	return added
}

// removeCandidate withdraws candidate i's rows; rows still referenced by
// another chosen candidate stay in the set.
func (t *coverTracker) removeCandidate(c Candidate) int {
	removed := 0
	for _, id := range c.Rows {
		t.rowRef[id]--
		if t.rowRef[id] > 0 {
			continue
		}
		delete(t.rowRef, id)
		removed++
		for _, ref := range t.pre.RowToTuples[id] {
			if ref.relaxed {
				if t.missingRel[ref.q][ref.t] == 0 {
					t.coveredRel[ref.q]--
				}
				t.missingRel[ref.q][ref.t]++
				continue
			}
			if t.missing[ref.q][ref.t] == 0 {
				t.covered[ref.q]--
			}
			t.missing[ref.q][ref.t]++
		}
	}
	t.size -= removed
	return removed
}

// queryScore returns the blended coverage score of rep q: the original
// query's Equation-1 term weighted (1 − relaxW) plus the relaxed variant's
// term weighted relaxW (training on generalized queries, Section 4.2).
func (t *coverTracker) queryScore(q int) float64 {
	rep := &t.pre.Reps[q]
	orig := coverageTerm(t.covered[q], len(rep.Tuples), rep.Total, t.frameSize)
	if len(rep.RelaxedTuples) == 0 || t.relaxW <= 0 {
		return orig
	}
	rel := coverageTerm(t.coveredRel[q], len(rep.RelaxedTuples), rep.RelaxedTotal, t.frameSize)
	return (1-t.relaxW)*orig + t.relaxW*rel
}

// coverageTerm is min(1, coveredEstimate / min(F, total)). When tracked
// tuples are a sample of a larger result, coverage is scaled by
// total/tracked. Empty true answers are trivially covered.
func coverageTerm(covered, tracked, total, frameSize int) float64 {
	need := total
	if frameSize < need {
		need = frameSize
	}
	if need == 0 || tracked == 0 {
		return 1
	}
	est := float64(covered) * float64(total) / float64(tracked)
	return math.Min(1, est/float64(need))
}

// score returns the weighted Equation-1 score over the representatives.
func (t *coverTracker) score() float64 {
	var s float64
	for q := range t.pre.Reps {
		s += t.pre.Reps[q].Weight * t.queryScore(q)
	}
	return s
}

// stateInto writes the per-representative coverage fractions into dst
// (padded with zeros beyond the live representatives).
func (t *coverTracker) stateInto(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for q := range t.pre.Reps {
		if q < len(dst) {
			dst[q] = t.queryScore(q)
		}
	}
}

// subset materializes the current row set.
func (t *coverTracker) subset() *table.Subset {
	s := table.NewSubset()
	for id := range t.rowRef {
		s.Add(id)
	}
	return s
}

// SetEnvironment is an rl.Environment that also exposes the approximation
// set built during the episode.
type SetEnvironment interface {
	rl.Environment
	// Subset returns the set of rows chosen so far in the current episode.
	Subset() *table.Subset
	// Score returns the tracker's current blended Equation-1 score.
	Score() float64
}

// NewEnvironment constructs the environment selected by cfg.Environment over
// a preprocessed pipeline output. budget overrides cfg.K when positive
// (used by Algorithm 2's req_size).
func NewEnvironment(pre *Preprocessed, cfg Config, budget int) SetEnvironment {
	cfg = cfg.normalize()
	if budget <= 0 {
		budget = cfg.K
	}
	switch cfg.Environment {
	case EnvDRP:
		return newDRPEnv(pre, cfg, budget)
	case EnvHybrid:
		return newHybridEnv(pre, cfg, budget)
	default:
		return newGSLEnv(pre, cfg, budget)
	}
}

// envShape computes the fixed state/action dimensions from the config, so
// fine-tuned models stay weight-compatible across preprocessing runs.
func envShape(cfg Config) (stateDim, actions int) {
	return cfg.NumRepresentatives + 2, cfg.ActionSpaceSize
}

// --- GSL: gradual-set-learning (Section 5.2) ---

// gslEnv starts from the empty set; every action adds one candidate tuple
// group. The reward is the score delta, and an episode ends when the memory
// budget k is reached or every candidate has been chosen.
type gslEnv struct {
	pre       *Preprocessed
	cfg       Config
	budget    int
	tracker   *coverTracker
	chosen    []bool
	remaining int
	lastScore float64
	state     []float64
}

func newGSLEnv(pre *Preprocessed, cfg Config, budget int) *gslEnv {
	e := &gslEnv{pre: pre, cfg: cfg, budget: budget}
	stateDim, _ := envShape(cfg)
	e.state = make([]float64, stateDim)
	return e
}

func (e *gslEnv) Reset() ([]float64, []bool) {
	e.tracker = newCoverTrackerWeighted(e.pre, e.cfg.F, e.cfg.RelaxRewardWeight)
	e.chosen = make([]bool, len(e.pre.Candidates))
	e.remaining = len(e.pre.Candidates)
	e.lastScore = e.tracker.score()
	return e.observe(), e.mask()
}

func (e *gslEnv) observe() []float64 {
	n := len(e.state)
	e.tracker.stateInto(e.state[:n-2])
	e.state[n-2] = math.Min(1, float64(e.tracker.size)/float64(e.budget))
	e.state[n-1] = 0 // phase slot, unused by GSL
	return append([]float64(nil), e.state...)
}

// mask marks the valid actions: unchosen candidates that would add at least
// one new row. Action masking "constrains the RL algorithm to valid tuple
// selections" (Section 4.2) — a candidate fully subsumed by the current set
// is not a valid selection.
func (e *gslEnv) mask() []bool {
	_, actions := envShape(e.cfg)
	m := make([]bool, actions)
	for i := range e.pre.Candidates {
		if i >= actions || e.chosen[i] {
			continue
		}
		for _, id := range e.pre.Candidates[i].Rows {
			if e.tracker.rowRef[id] == 0 {
				m[i] = true
				break
			}
		}
	}
	return m
}

func (e *gslEnv) Step(action int) ([]float64, []bool, float64, bool) {
	if action >= 0 && action < len(e.pre.Candidates) && !e.chosen[action] {
		e.chosen[action] = true
		e.remaining--
		e.tracker.addCandidate(e.pre.Candidates[action])
	}
	score := e.tracker.score()
	reward := score - e.lastScore
	e.lastScore = score
	done := e.tracker.size >= e.budget || e.remaining == 0
	return e.observe(), e.mask(), reward, done
}

func (e *gslEnv) StateDim() int {
	d, _ := envShape(e.cfg)
	return d
}

func (e *gslEnv) NumActions() int {
	_, a := envShape(e.cfg)
	return a
}

func (e *gslEnv) Clone() rl.Environment { return newGSLEnv(e.pre, e.cfg, e.budget) }

// Score implements SetEnvironment.
func (e *gslEnv) Score() float64 {
	if e.tracker == nil {
		return 0
	}
	return e.tracker.score()
}

func (e *gslEnv) Subset() *table.Subset {
	if e.tracker == nil {
		return table.NewSubset()
	}
	return e.tracker.subset()
}

// --- DRP: drop-one (Section 5.2) ---

// drpEnv starts from a random budget-filling set. Steps alternate between a
// removal phase (pick a chosen candidate to drop, or no-op) and an addition
// phase (pick a new candidate, or no-op). The reward, granted after the
// addition phase, is the score delta over the swap. Episodes run for a fixed
// horizon. The paper reports this environment is prone to poor local optima
// and unstable initialization — reproduced in the Figure 3 ablation.
type drpEnv struct {
	pre       *Preprocessed
	cfg       Config
	budget    int
	seed      int64
	resets    int64
	tracker   *coverTracker
	chosen    []bool
	phase     int // 0 remove, 1 add
	stepsLeft int
	preSwap   float64
	state     []float64
}

func newDRPEnv(pre *Preprocessed, cfg Config, budget int) *drpEnv {
	e := &drpEnv{pre: pre, cfg: cfg, budget: budget, seed: cfg.Seed}
	stateDim, _ := envShape(cfg)
	e.state = make([]float64, stateDim)
	return e
}

// noopAction is the extra action index meaning "leave the set unchanged".
// It is mapped onto the last candidate slot when the candidate list is
// shorter than the action space, or sacrificed otherwise.
func (e *drpEnv) noopAction() int {
	_, actions := envShape(e.cfg)
	return actions - 1
}

func (e *drpEnv) Reset() ([]float64, []bool) {
	e.resets++
	rng := rand.New(rand.NewSource(e.seed + e.resets*7919))
	e.tracker = newCoverTrackerWeighted(e.pre, e.cfg.F, e.cfg.RelaxRewardWeight)
	e.chosen = make([]bool, len(e.pre.Candidates))
	// Random initialization up to the budget.
	for _, i := range rng.Perm(len(e.pre.Candidates)) {
		if e.tracker.size >= e.budget {
			break
		}
		if i == e.noopAction() {
			continue
		}
		e.chosen[i] = true
		e.tracker.addCandidate(e.pre.Candidates[i])
	}
	e.phase = 0
	e.stepsLeft = e.cfg.DRPHorizon
	e.preSwap = e.tracker.score()
	return e.observe(), e.mask()
}

func (e *drpEnv) observe() []float64 {
	n := len(e.state)
	e.tracker.stateInto(e.state[:n-2])
	e.state[n-2] = math.Min(1, float64(e.tracker.size)/float64(e.budget))
	e.state[n-1] = float64(e.phase)
	return append([]float64(nil), e.state...)
}

func (e *drpEnv) mask() []bool {
	_, actions := envShape(e.cfg)
	m := make([]bool, actions)
	noop := e.noopAction()
	for i := range e.pre.Candidates {
		if i >= actions || i == noop {
			continue
		}
		if e.phase == 0 {
			m[i] = e.chosen[i]
		} else {
			m[i] = !e.chosen[i] && e.tracker.size < e.budget+len(e.pre.Candidates[i].Rows)
		}
	}
	m[noop] = true
	return m
}

func (e *drpEnv) Step(action int) ([]float64, []bool, float64, bool) {
	noop := e.noopAction()
	if action != noop && action >= 0 && action < len(e.pre.Candidates) {
		if e.phase == 0 && e.chosen[action] {
			e.chosen[action] = false
			e.tracker.removeCandidate(e.pre.Candidates[action])
		} else if e.phase == 1 && !e.chosen[action] {
			e.chosen[action] = true
			e.tracker.addCandidate(e.pre.Candidates[action])
		}
	}
	var reward float64
	if e.phase == 1 {
		score := e.tracker.score()
		reward = score - e.preSwap
		e.preSwap = score
	}
	e.phase = 1 - e.phase
	e.stepsLeft--
	done := e.stepsLeft <= 0
	return e.observe(), e.mask(), reward, done
}

func (e *drpEnv) StateDim() int {
	d, _ := envShape(e.cfg)
	return d
}

func (e *drpEnv) NumActions() int {
	_, a := envShape(e.cfg)
	return a
}

func (e *drpEnv) Clone() rl.Environment {
	c := newDRPEnv(e.pre, e.cfg, e.budget)
	c.seed = e.seed + 104729
	return c
}

// Score implements SetEnvironment.
func (e *drpEnv) Score() float64 {
	if e.tracker == nil {
		return 0
	}
	return e.tracker.score()
}

func (e *drpEnv) Subset() *table.Subset {
	if e.tracker == nil {
		return table.NewSubset()
	}
	return e.tracker.subset()
}

// --- Hybrid: GSL fill followed by DRP refinement ---

// hybridEnv first behaves like GSL until the budget is filled, then switches
// to DRP-style swap refinement for the remaining horizon.
type hybridEnv struct {
	*drpEnv
	filling bool
}

func newHybridEnv(pre *Preprocessed, cfg Config, budget int) *hybridEnv {
	return &hybridEnv{drpEnv: newDRPEnv(pre, cfg, budget)}
}

func (e *hybridEnv) Reset() ([]float64, []bool) {
	e.resets++
	e.tracker = newCoverTrackerWeighted(e.pre, e.cfg.F, e.cfg.RelaxRewardWeight)
	e.chosen = make([]bool, len(e.pre.Candidates))
	e.filling = true
	e.phase = 1 // additions only while filling
	e.stepsLeft = e.cfg.DRPHorizon
	e.preSwap = e.tracker.score()
	return e.observe(), e.mask()
}

func (e *hybridEnv) Step(action int) ([]float64, []bool, float64, bool) {
	if e.filling {
		noop := e.noopAction()
		if action != noop && action >= 0 && action < len(e.pre.Candidates) && !e.chosen[action] {
			e.chosen[action] = true
			e.tracker.addCandidate(e.pre.Candidates[action])
		}
		score := e.tracker.score()
		reward := score - e.preSwap
		e.preSwap = score
		e.stepsLeft--
		if e.tracker.size >= e.budget {
			e.filling = false
			e.phase = 0
		}
		done := e.stepsLeft <= 0 || (e.filling && e.allChosen())
		return e.observe(), e.mask(), reward, done
	}
	return e.drpEnv.Step(action)
}

func (e *hybridEnv) allChosen() bool {
	for i := range e.pre.Candidates {
		if !e.chosen[i] && i != e.noopAction() {
			return false
		}
	}
	return true
}

func (e *hybridEnv) Clone() rl.Environment {
	c := newHybridEnv(e.pre, e.cfg, e.budget)
	c.seed = e.seed + 104729
	return c
}
