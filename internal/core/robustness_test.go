package core

import (
	"strings"
	"testing"

	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// TestTrainSingleTableDatabase: the pipeline must work without joins.
func TestTrainSingleTableDatabase(t *testing.T) {
	tb := table.New("nums", table.Schema{
		{Name: "v", Kind: table.KindInt},
		{Name: "cat", Kind: table.KindString},
	})
	cats := []string{"a", "b", "c"}
	for i := 0; i < 500; i++ {
		tb.AppendRow(table.Row{table.NewInt(int64(i)), table.NewString(cats[i%3])})
	}
	db := table.NewDatabase()
	db.Add(tb)
	w := workload.MustNew(
		"SELECT * FROM nums WHERE v > 100 AND v < 200",
		"SELECT * FROM nums WHERE cat = 'a' AND v < 50",
		"SELECT * FROM nums WHERE v BETWEEN 300 AND 400",
		"SELECT v FROM nums WHERE cat = 'b'",
	)
	cfg := testConfig()
	cfg.K = 80
	cfg.Episodes = 8
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score, err := sys.ScoreOn(w)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Errorf("single-table score = %v, want > 0", score)
	}
}

// TestTrainBudgetLargerThanData: K exceeding the database size must still
// produce a working (complete-ish) set.
func TestTrainBudgetLargerThanData(t *testing.T) {
	tb := table.New("tiny", table.Schema{{Name: "v", Kind: table.KindInt}})
	for i := 0; i < 40; i++ {
		tb.AppendRow(table.Row{table.NewInt(int64(i))})
	}
	db := table.NewDatabase()
	db.Add(tb)
	w := workload.MustNew(
		"SELECT * FROM tiny WHERE v > 10",
		"SELECT * FROM tiny WHERE v < 30",
	)
	cfg := testConfig()
	cfg.K = 10000
	cfg.Episodes = 6
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	score, err := sys.ScoreOn(w)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.99 {
		t.Errorf("huge budget should cover everything, score = %v", score)
	}
}

// TestTrainWorkloadWithFailingQueries: queries over missing tables make
// preprocessing fail with a clear error rather than panicking.
func TestTrainWorkloadWithFailingQueries(t *testing.T) {
	db := testIMDB()
	w := workload.MustNew(
		"SELECT * FROM ghost_table WHERE x > 1",
		"SELECT * FROM title WHERE genre = 'drama'",
	)
	// The failing query may or may not be selected as a representative; if
	// it is, Train must surface an error mentioning the query.
	_, err := Train(db, w, testConfig())
	if err != nil && !strings.Contains(err.Error(), "ghost_table") {
		t.Errorf("error should name the failing query, got: %v", err)
	}
}

// TestTrainAllEmptyResults: a workload whose queries return nothing cannot
// build an action space; Train must fail gracefully.
func TestTrainAllEmptyResults(t *testing.T) {
	db := testIMDB()
	w := workload.MustNew(
		"SELECT * FROM title WHERE production_year > 99999",
		"SELECT * FROM title WHERE rating > 1000",
	)
	if _, err := Train(db, w, testConfig()); err == nil {
		t.Error("all-empty workload should fail with a clear error")
	}
}

// TestTrainWithAggregateWorkload: aggregates are rewritten to SPJ before
// preprocessing; training must succeed.
func TestTrainWithAggregateWorkload(t *testing.T) {
	db := testIMDB()
	w := workload.MustNew(
		"SELECT genre, COUNT(*) FROM title WHERE production_year > 1990 GROUP BY genre",
		"SELECT AVG(rating) FROM title WHERE genre = 'drama'",
		"SELECT genre, MAX(votes) FROM title GROUP BY genre",
	)
	cfg := testConfig()
	cfg.Episodes = 8
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate queries route through the estimator via their SPJ rewrite.
	res, err := sys.Query("SELECT genre, COUNT(*) FROM title WHERE production_year > 1995 GROUP BY genre")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Error("aggregate over approximation set returned nothing")
	}
}

// TestQueryWithLimitRespectedOnApproxSet: LIMIT applies to approximate
// answers too.
func TestQueryWithLimitRespectedOnApproxSet(t *testing.T) {
	db := testIMDB()
	sys, err := Train(db, testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT * FROM title WHERE production_year > 1950 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() > 3 {
		t.Errorf("LIMIT ignored: %d rows", res.Table.NumRows())
	}
}

// TestFineTuneShapeStability: repeated fine-tuning must keep network shapes
// compatible (the invariant that makes weight reuse possible).
func TestFineTuneShapeStability(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	cfg.Episodes = 6
	sys, err := Train(db, w[:8], cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		extra := workload.Workload{w[8+round]}
		extra.Normalize()
		if err := sys.FineTune(extra, 4); err != nil {
			t.Fatalf("fine-tune round %d: %v", round, err)
		}
	}
	if sys.Stats().FineTunes != 3 {
		t.Errorf("FineTunes = %d, want 3", sys.Stats().FineTunes)
	}
}

// TestEstimatorDegeneracies: the estimator handles empty inputs gracefully.
func TestEstimatorDegeneracies(t *testing.T) {
	est := NewEstimator(embedderForTest(), nil, nil, 5, 0.5)
	pred, conf := est.Estimate(testWorkload()[0].Stmt)
	if pred != 0 || conf != 0 {
		t.Errorf("empty estimator should predict (0,0), got (%v,%v)", pred, conf)
	}
	if est.Answerable(testWorkload()[0].Stmt) {
		t.Error("empty estimator should never say answerable")
	}
}

// TestDriftDetectorExactThreshold verifies the trigger count boundary.
func TestDriftDetectorExactThreshold(t *testing.T) {
	d := &DriftDetector{Confidence: 0.5, Count: 2}
	stmt := testWorkload()[0].Stmt
	if d.Observe(stmt, 0.9) { // similarity 0.9 → deviation 0.1 < 0.5
		t.Error("non-deviating query should not count")
	}
	if d.Observe(stmt, 0.3) { // deviation 0.7: first drifted
		t.Error("one drifted query should not trigger with Count=2")
	}
	if !d.Observe(stmt, 0.2) { // second drifted: trigger
		t.Error("second drifted query should trigger")
	}
	if len(d.Drifted()) != 2 {
		t.Errorf("drifted = %d, want 2", len(d.Drifted()))
	}
	d.ResetDrift()
	if len(d.Drifted()) != 0 {
		t.Error("reset should clear")
	}
}
