package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asqprl/internal/faults"
)

// TestSaveFileLoadFileRoundtrip checks the on-disk snapshot restores to a
// system with the same approximation set and estimator verdicts.
func TestSaveFileLoadFileRoundtrip(t *testing.T) {
	sys := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(testIMDB(), path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got, want := loaded.Set().Size(), sys.Set().Size(); got != want {
		t.Errorf("restored set size = %d, want %d", got, want)
	}
	stmt := mustParseCore(t, "SELECT * FROM title WHERE rating > 7")
	origPred, _ := sys.Estimator().Estimate(stmt)
	loadPred, _ := loaded.Estimator().Estimate(stmt)
	if origPred != loadPred {
		t.Errorf("restored estimator predicts %v, original %v", loadPred, origPred)
	}
}

// TestLoadFileRejectsTornSnapshot truncates a valid snapshot at several
// offsets and checks the CRC framing rejects every torn prefix rather than
// loading a silently corrupt system.
func TestLoadFileRejectsTornSnapshot(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		n := int(float64(len(full)) * frac)
		torn := filepath.Join(dir, "torn.asqp")
		if err := os.WriteFile(torn, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(testIMDB(), torn); err == nil {
			t.Errorf("LoadFile accepted a snapshot truncated to %d/%d bytes", n, len(full))
		}
	}
	// Bit flip in the payload must also be caught.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	bad := filepath.Join(dir, "flipped.asqp")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(testIMDB(), bad); err == nil {
		t.Error("LoadFile accepted a snapshot with a flipped payload bit")
	}
}

// TestSaveFileCrashLeavesPreviousSnapshot simulates a crash mid-save — a
// stray temp file next to a good snapshot — and checks the previous snapshot
// still loads and a subsequent SaveFile replaces it atomically.
func TestSaveFileCrashLeavesPreviousSnapshot(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	// A crashed writer leaves a half-written temp file; it must never shadow
	// or corrupt the committed snapshot.
	stray := path + ".tmp-crashed"
	if err := os.WriteFile(stray, []byte("ASQPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("previous snapshot unreadable after simulated crash: %v", err)
	}

	// The next save commits over the old snapshot via rename, ignoring the
	// stray temp file.
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile over existing snapshot: %v", err)
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("snapshot unreadable after re-save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) && e.Name() != filepath.Base(stray) &&
			strings.HasPrefix(e.Name(), filepath.Base(path)+".tmp-") {
			t.Errorf("SaveFile left its own temp file behind: %s", e.Name())
		}
	}
}

// TestSaveFileKilledBeforeRename arms the snapshot-swap kill point: SaveFile
// dies after the temp file is complete and fsynced but before the rename
// publishes it. The committed snapshot must be untouched, and the failed save
// must not leave the directory corrupted for the next one.
func TestSaveFileKilledBeforeRename(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point: faults.PointSnapshotRename, Kind: faults.KindError, MaxFires: 1,
	}))
	t.Cleanup(faults.Disable)
	if err := sys.SaveFile(path); err == nil {
		t.Fatal("SaveFile succeeded through an armed snapshot-rename kill point")
	}
	faults.Disable()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed snapshot unreadable after killed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("killed save modified the committed snapshot")
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("committed snapshot unloadable after killed save: %v", err)
	}
	// With the kill point disarmed the next save publishes normally.
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile after recovery: %v", err)
	}
}

// TestCleanSnapshotTemps checks startup hygiene removes orphaned temp files —
// what a real SIGKILL between temp-write and rename leaves, since no deferred
// cleanup runs in a dead process — without touching the live snapshot or
// unrelated files.
func TestCleanSnapshotTemps(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	orphans := []string{path + ".tmp-123456", path + ".tmp-crashed"}
	for _, o := range orphans {
		if err := os.WriteFile(o, []byte("half-written snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	unrelated := filepath.Join(dir, "other.txt")
	if err := os.WriteFile(unrelated, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := CleanSnapshotTemps(path); got != len(orphans) {
		t.Fatalf("CleanSnapshotTemps removed %d files, want %d", got, len(orphans))
	}
	for _, o := range orphans {
		if _, err := os.Stat(o); !os.IsNotExist(err) {
			t.Errorf("orphan %s still present", o)
		}
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("live snapshot damaged by hygiene: %v", err)
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Errorf("unrelated file removed by hygiene: %v", err)
	}
	if got := CleanSnapshotTemps(path); got != 0 {
		t.Errorf("second pass removed %d files, want 0", got)
	}
}
