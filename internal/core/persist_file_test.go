package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveFileLoadFileRoundtrip checks the on-disk snapshot restores to a
// system with the same approximation set and estimator verdicts.
func TestSaveFileLoadFileRoundtrip(t *testing.T) {
	sys := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(testIMDB(), path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got, want := loaded.Set().Size(), sys.Set().Size(); got != want {
		t.Errorf("restored set size = %d, want %d", got, want)
	}
	stmt := mustParseCore(t, "SELECT * FROM title WHERE rating > 7")
	origPred, _ := sys.Estimator().Estimate(stmt)
	loadPred, _ := loaded.Estimator().Estimate(stmt)
	if origPred != loadPred {
		t.Errorf("restored estimator predicts %v, original %v", loadPred, origPred)
	}
}

// TestLoadFileRejectsTornSnapshot truncates a valid snapshot at several
// offsets and checks the CRC framing rejects every torn prefix rather than
// loading a silently corrupt system.
func TestLoadFileRejectsTornSnapshot(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		n := int(float64(len(full)) * frac)
		torn := filepath.Join(dir, "torn.asqp")
		if err := os.WriteFile(torn, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(testIMDB(), torn); err == nil {
			t.Errorf("LoadFile accepted a snapshot truncated to %d/%d bytes", n, len(full))
		}
	}
	// Bit flip in the payload must also be caught.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	bad := filepath.Join(dir, "flipped.asqp")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(testIMDB(), bad); err == nil {
		t.Error("LoadFile accepted a snapshot with a flipped payload bit")
	}
}

// TestSaveFileCrashLeavesPreviousSnapshot simulates a crash mid-save — a
// stray temp file next to a good snapshot — and checks the previous snapshot
// still loads and a subsequent SaveFile replaces it atomically.
func TestSaveFileCrashLeavesPreviousSnapshot(t *testing.T) {
	sys := trainedSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	// A crashed writer leaves a half-written temp file; it must never shadow
	// or corrupt the committed snapshot.
	stray := path + ".tmp-crashed"
	if err := os.WriteFile(stray, []byte("ASQPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("previous snapshot unreadable after simulated crash: %v", err)
	}

	// The next save commits over the old snapshot via rename, ignoring the
	// stray temp file.
	if err := sys.SaveFile(path); err != nil {
		t.Fatalf("SaveFile over existing snapshot: %v", err)
	}
	if _, err := LoadFile(testIMDB(), path); err != nil {
		t.Fatalf("snapshot unreadable after re-save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) && e.Name() != filepath.Base(stray) &&
			strings.HasPrefix(e.Name(), filepath.Base(path)+".tmp-") {
			t.Errorf("SaveFile left its own temp file behind: %s", e.Name())
		}
	}
}
