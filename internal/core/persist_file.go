package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"asqprl/internal/faults"
	"asqprl/internal/table"
)

// SaveFile atomically writes the system snapshot to path: the frame is first
// written to a temporary file in the destination directory, fsynced, and then
// renamed over path. A crash or SIGKILL at any point leaves either the old
// snapshot or the new one — never a torn file (and a torn write that somehow
// survived would still be rejected by Load's CRC frame).
func (s *System) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriter(tmp)
	if err = s.Save(w); err != nil {
		return err
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	// Kill point for the crash matrix: dying here leaves a complete, fsynced
	// temp file but no rename — the exact state CleanSnapshotTemps exists for.
	if err = faults.Inject(faults.PointSnapshotRename); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save %s: %w", path, err)
	}
	// Persist the rename itself; without the directory fsync a crash can
	// still lose the new directory entry (though never tear the file).
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// CleanSnapshotTemps removes orphaned SaveFile temp files next to path: a
// crash between temp-write and rename leaves `<base>.tmp-*` files that are
// never the live snapshot (the rename is what publishes one) and only waste
// disk. Startup hygiene calls this before loading. Returns how many were
// removed; removal errors are skipped (best effort).
func CleanSnapshotTemps(path string) int {
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(path), filepath.Base(path)+".tmp-*"))
	if err != nil {
		return 0
	}
	removed := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			removed++
		}
	}
	if removed > 0 {
		if d, derr := os.Open(filepath.Dir(path)); derr == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return removed
}

// LoadFile restores a system from a snapshot file written by SaveFile (or any
// writer of the framed Save format), attaching it to db.
func LoadFile(db *table.Database, path string) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: load %s: %w", path, err)
	}
	return LoadBytes(db, data)
}
