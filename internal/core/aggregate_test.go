package core

import (
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/metrics"
	"asqprl/internal/sqlparse"
	"asqprl/internal/workload"
)

func aggregateSystem(t *testing.T) *System {
	t.Helper()
	db := datagen.Flights(0.05, 3)
	w := workload.FlightsAggregates(16, 5)
	cfg := testConfig()
	cfg.K = db.Table("flights").NumRows() / 20 // 5% memory
	cfg.Episodes = 12
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQueryAggregateCountScaling(t *testing.T) {
	sys := aggregateSystem(t)
	q := "SELECT COUNT(*) FROM flights WHERE dep_delay > 20"
	res, err := sys.QueryAggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sys.ExactAggregate(sqlparse.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if res.FromApproximation && res.ScaleFactor <= 1 {
		t.Errorf("COUNT from a 5%% sample should scale up, factor = %v", res.ScaleFactor)
	}
	relErr := metrics.RelativeError(res.Values[""], truth[""])
	t.Logf("count: est %.0f true %.0f (err %.3f, scale %.1f, approx=%v)",
		res.Values[""], truth[""], relErr, res.ScaleFactor, res.FromApproximation)
	if relErr > 0.8 {
		t.Errorf("scaled count error %.3f too high", relErr)
	}
}

func TestQueryAggregateAvgNotScaled(t *testing.T) {
	sys := aggregateSystem(t)
	res, err := sys.QueryAggregate("SELECT AVG(dep_delay) FROM flights WHERE carrier = 'AA'")
	if err != nil {
		t.Fatal(err)
	}
	if res.ScaleFactor != 1 {
		t.Errorf("AVG must not be scaled, factor = %v", res.ScaleFactor)
	}
}

func TestQueryAggregateGrouped(t *testing.T) {
	sys := aggregateSystem(t)
	q := "SELECT carrier, COUNT(*) FROM flights WHERE dep_delay > 10 GROUP BY carrier"
	res, err := sys.QueryAggregate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 {
		t.Fatal("no groups returned")
	}
	truth, err := sys.ExactAggregate(sqlparse.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	gre := metrics.GroupRelativeError(res.Values, truth)
	t.Logf("grouped count error: %.3f (%d/%d groups)", gre, len(res.Values), len(truth))
	if gre > 0.9 {
		t.Errorf("grouped error %.3f too high", gre)
	}
}

func TestQueryAggregateErrors(t *testing.T) {
	sys := aggregateSystem(t)
	if _, err := sys.QueryAggregate("SELECT carrier FROM flights"); err == nil {
		t.Error("non-aggregate should error")
	}
	if _, err := sys.QueryAggregate("SELECT carrier, origin, COUNT(*) FROM flights GROUP BY carrier, origin"); err == nil {
		t.Error("two group columns should error")
	}
	if _, err := sys.QueryAggregate("NOT SQL"); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestAggregateCategory(t *testing.T) {
	cases := map[string]string{
		"SELECT COUNT(*) FROM flights":                             "CNT",
		"SELECT carrier, COUNT(*) FROM flights GROUP BY carrier":   "G+CNT",
		"SELECT SUM(distance) FROM flights":                        "SUM",
		"SELECT month, AVG(dep_delay) FROM flights GROUP BY month": "G+AVG",
		"SELECT carrier FROM flights":                              "",
	}
	for sql, want := range cases {
		if got := AggregateCategory(sqlparse.MustParse(sql)); got != want {
			t.Errorf("%s: category %q, want %q", sql, got, want)
		}
	}
}
