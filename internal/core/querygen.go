package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// GenOptions configures the statistics-driven workload generator used when no
// query workload is provided (Section 4.5).
type GenOptions struct {
	// N is the number of queries to generate.
	N int
	// MaxPredicates bounds the WHERE conjuncts per query (default 2).
	MaxPredicates int
	// JoinProb is the probability of generating a two-table join when a
	// joinable pair exists (default 0.35).
	JoinProb float64
	// AggregateProb is the probability of wrapping a query in GROUP BY +
	// aggregate (default 0; the ASQP pipeline rewrites them away anyway).
	AggregateProb float64
	// Seed drives generation.
	Seed int64
}

func (o GenOptions) normalize() GenOptions {
	if o.N <= 0 {
		o.N = 20
	}
	if o.MaxPredicates <= 0 {
		o.MaxPredicates = 2
	}
	if o.JoinProb < 0 {
		o.JoinProb = 0
	}
	if o.JoinProb == 0 {
		o.JoinProb = 0.35
	}
	return o
}

// columnStats summarizes one column for generation.
type columnStats struct {
	name    string
	kind    table.Kind
	numMin  float64
	numMax  float64
	samples []table.Value // with repetition → popular values drawn more often
	card    int           // distinct count (capped)
}

// tableStats summarizes one table.
type tableStats struct {
	name string
	cols []columnStats
}

// fkEdge is a detected joinable pair.
type fkEdge struct {
	fromTable, fromCol string
	toTable, toCol     string
}

// GenerateWorkload synthesizes an SPJ workload from database statistics:
// numeric ranges from observed min/max, categorical equality from sampled
// values (with repetition, so popular values dominate), and joins over
// detected foreign keys ("x_id" → table "x"/"xs" with column "id").
func GenerateWorkload(db *table.Database, opts GenOptions) (workload.Workload, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))

	var stats []tableStats
	for _, t := range db.Tables() {
		if t.NumRows() == 0 {
			continue
		}
		stats = append(stats, collectStats(t, rng))
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("core: cannot generate workload over an empty database")
	}
	edges := detectForeignKeys(db)

	var sqls []string
	seen := map[string]bool{}
	for attempts := 0; len(sqls) < opts.N && attempts < opts.N*20; attempts++ {
		sql := generateOne(stats, edges, opts, rng)
		if sql == "" || seen[sql] {
			continue
		}
		if _, err := sqlparse.Parse(sql); err != nil {
			continue
		}
		seen[sql] = true
		sqls = append(sqls, sql)
	}
	if len(sqls) == 0 {
		return nil, fmt.Errorf("core: workload generation produced no queries")
	}
	return workload.New(sqls...)
}

func collectStats(t *table.Table, rng *rand.Rand) tableStats {
	const maxSamples = 64
	ts := tableStats{name: t.Name}
	for ci, col := range t.Schema {
		cs := columnStats{name: col.Name, kind: col.Kind}
		distinct := map[string]bool{}
		first := true
		for _, r := range t.Rows {
			v := r[ci]
			if v.IsNull() {
				continue
			}
			if v.IsNumeric() {
				f := v.AsFloat()
				if first || f < cs.numMin {
					cs.numMin = f
				}
				if first || f > cs.numMax {
					cs.numMax = f
				}
				first = false
			}
			if len(distinct) < 256 {
				distinct[v.Key()] = true
			}
		}
		cs.card = len(distinct)
		// Sample values with repetition (popularity-weighted).
		n := t.NumRows()
		for s := 0; s < maxSamples && s < n; s++ {
			v := t.Rows[rng.Intn(n)][ci]
			if !v.IsNull() {
				cs.samples = append(cs.samples, v)
			}
		}
		ts.cols = append(ts.cols, cs)
	}
	return ts
}

// detectForeignKeys finds "x_id"-style join edges by name convention.
func detectForeignKeys(db *table.Database) []fkEdge {
	var edges []fkEdge
	names := db.TableNames()
	find := func(base string) string {
		for _, n := range names {
			if n == base || n == base+"s" || n+"s" == base {
				return n
			}
		}
		return ""
	}
	for _, t := range db.Tables() {
		for _, col := range t.Schema {
			lower := strings.ToLower(col.Name)
			if !strings.HasSuffix(lower, "_id") {
				continue
			}
			base := strings.TrimSuffix(lower, "_id")
			target := find(base)
			if target == "" || strings.EqualFold(target, t.Name) {
				continue
			}
			tt := db.Table(target)
			if tt == nil || tt.ColumnIndex("id") < 0 {
				continue
			}
			edges = append(edges, fkEdge{
				fromTable: strings.ToLower(t.Name), fromCol: col.Name,
				toTable: target, toCol: "id",
			})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].fromTable != edges[b].fromTable {
			return edges[a].fromTable < edges[b].fromTable
		}
		return edges[a].fromCol < edges[b].fromCol
	})
	return edges
}

func generateOne(stats []tableStats, edges []fkEdge, opts GenOptions, rng *rand.Rand) string {
	ts := stats[rng.Intn(len(stats))]
	var b strings.Builder

	join := ""
	var joinStats *tableStats
	if len(edges) > 0 && rng.Float64() < opts.JoinProb {
		// Pick an edge involving ts if any.
		var candidates []fkEdge
		for _, e := range edges {
			if strings.EqualFold(e.fromTable, ts.name) {
				candidates = append(candidates, e)
			}
		}
		if len(candidates) > 0 {
			e := candidates[rng.Intn(len(candidates))]
			join = fmt.Sprintf(" JOIN %s ON %s.%s = %s.%s", e.toTable, e.fromTable, e.fromCol, e.toTable, e.toCol)
			for i := range stats {
				if strings.EqualFold(stats[i].name, e.toTable) {
					joinStats = &stats[i]
				}
			}
		}
	}

	var preds []string
	nPreds := 1 + rng.Intn(opts.MaxPredicates)
	for p := 0; p < nPreds; p++ {
		src := ts
		if joinStats != nil && rng.Float64() < 0.5 {
			src = *joinStats
		}
		pred := generatePredicate(src, rng, join != "")
		if pred != "" {
			preds = append(preds, pred)
		}
	}
	if len(preds) == 0 {
		return ""
	}

	agg := rng.Float64() < opts.AggregateProb
	if agg {
		gcol := pickCategorical(ts, rng)
		ncol := pickNumeric(ts, rng)
		if gcol == "" || ncol == "" {
			agg = false
		} else {
			fn := []string{"COUNT(*)", "SUM(%s)", "AVG(%s)"}[rng.Intn(3)]
			expr := fn
			if strings.Contains(fn, "%s") {
				expr = fmt.Sprintf(fn, qualify(ts.name, ncol, join != ""))
			}
			fmt.Fprintf(&b, "SELECT %s, %s FROM %s%s WHERE %s GROUP BY %s",
				qualify(ts.name, gcol, join != ""), expr, ts.name, join,
				strings.Join(preds, " AND "), qualify(ts.name, gcol, join != ""))
			return b.String()
		}
	}
	fmt.Fprintf(&b, "SELECT * FROM %s%s WHERE %s", ts.name, join, strings.Join(preds, " AND "))
	return b.String()
}

func qualify(tableName, col string, joined bool) string {
	if joined {
		return tableName + "." + col
	}
	return col
}

func pickCategorical(ts tableStats, rng *rand.Rand) string {
	var opts []string
	for _, c := range ts.cols {
		if c.kind == table.KindString && c.card > 1 && c.card <= 64 {
			opts = append(opts, c.name)
		}
	}
	if len(opts) == 0 {
		return ""
	}
	return opts[rng.Intn(len(opts))]
}

func pickNumeric(ts tableStats, rng *rand.Rand) string {
	var opts []string
	for _, c := range ts.cols {
		if (c.kind == table.KindInt || c.kind == table.KindFloat) && !strings.HasSuffix(strings.ToLower(c.name), "id") {
			opts = append(opts, c.name)
		}
	}
	if len(opts) == 0 {
		return ""
	}
	return opts[rng.Intn(len(opts))]
}

func generatePredicate(ts tableStats, rng *rand.Rand, joined bool) string {
	if len(ts.cols) == 0 {
		return ""
	}
	for attempt := 0; attempt < 8; attempt++ {
		c := ts.cols[rng.Intn(len(ts.cols))]
		if len(c.samples) == 0 {
			continue
		}
		col := qualify(ts.name, c.name, joined)
		switch c.kind {
		case table.KindInt, table.KindFloat:
			if strings.HasSuffix(strings.ToLower(c.name), "id") {
				continue // ids make degenerate predicates
			}
			a := c.samples[rng.Intn(len(c.samples))]
			switch rng.Intn(3) {
			case 0:
				return fmt.Sprintf("%s > %s", col, a.String())
			case 1:
				return fmt.Sprintf("%s < %s", col, a.String())
			default:
				bv := c.samples[rng.Intn(len(c.samples))]
				lo, hi := a, bv
				if lo.AsFloat() > hi.AsFloat() {
					lo, hi = hi, lo
				}
				return fmt.Sprintf("%s BETWEEN %s AND %s", col, lo.String(), hi.String())
			}
		case table.KindString:
			if c.card > 200 {
				continue // near-unique text columns make point lookups
			}
			v := c.samples[rng.Intn(len(c.samples))]
			if rng.Intn(3) == 0 && c.card > 3 {
				v2 := c.samples[rng.Intn(len(c.samples))]
				return fmt.Sprintf("%s IN ('%s', '%s')", col, escape(v.Str), escape(v2.Str))
			}
			return fmt.Sprintf("%s = '%s'", col, escape(v.Str))
		case table.KindBool:
			return fmt.Sprintf("%s = %s", col, strings.ToUpper(c.samples[rng.Intn(len(c.samples))].String()))
		}
	}
	return ""
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
