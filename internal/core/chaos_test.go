package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"asqprl/internal/engine"
	"asqprl/internal/faults"
)

// chaosSeeds is how many randomized fault schedules the chaos test sweeps.
// Each seed deterministically arms a different subset of injection points
// with errors, latency, or panics (see faults.RandomSchedule).
const chaosSeeds = 50

// acceptableChaosError reports whether err is a typed, expected failure mode
// under fault injection: an injected fault, a recovered panic, a guard trip,
// or a pipeline-level consequence of one (e.g. preprocessing losing all its
// candidates to injected executor errors).
func acceptableChaosError(err error) bool {
	if errors.Is(err, faults.ErrInjected) ||
		errors.Is(err, engine.ErrDeadline) ||
		errors.Is(err, engine.ErrRowBudget) ||
		errors.Is(err, engine.ErrCanceled) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "panic recovered") ||
		strings.Contains(msg, "core: executing representative") ||
		strings.Contains(msg, "core: executing relaxed representative") ||
		strings.Contains(msg, "no candidate actions")
}

// TestChaosTrainAndQuery runs training and querying under chaosSeeds
// randomized fault schedules. Whatever the schedule does — inject errors,
// latency, panics, at any combination of points — every outcome must be one
// of: clean success, a result explicitly tagged Degraded, or a typed error.
// Never a panic (the test binary would crash), never a hang (the per-seed
// deadline), and never a silently-wrong answer (full-database non-degraded
// results are checked against fault-free ground truth).
func TestChaosTrainAndQuery(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	defer faults.Disable()

	// Probe queries and their fault-free ground truth. The first routes to
	// the full database (out of distribution); the rest come from the
	// training workload.
	probes := []string{
		"SELECT * FROM name WHERE birth_year > 1800",
		w[0].SQL,
		w[1].SQL,
	}
	truth := make([]int, len(probes))
	for i, sql := range probes {
		res, err := engine.Execute(db, mustParseCore(t, sql))
		if err != nil {
			t.Fatalf("ground truth for %q: %v", sql, err)
		}
		truth[i] = res.Table.NumRows()
	}

	var trained, degraded, erred int
	for seed := int64(1); seed <= chaosSeeds; seed++ {
		sched := faults.RandomSchedule(seed)
		faults.Enable(sched)

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		sys, err := TrainContext(ctx, db, w, cfg)
		cancel()
		if err != nil {
			if !acceptableChaosError(err) {
				t.Fatalf("seed %d: train failed with untyped error: %v", seed, err)
			}
			erred++
			faults.Disable()
			continue
		}
		trained++
		if sys.Set().Size() == 0 {
			t.Fatalf("seed %d: train succeeded with an empty set", seed)
		}

		for i, sql := range probes {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := sys.QueryContext(ctx, sql, QueryOptions{Backoff: time.Microsecond})
			cancel()
			if err != nil {
				if !acceptableChaosError(err) {
					t.Fatalf("seed %d: query %d failed with untyped error: %v", seed, i, err)
				}
				erred++
				continue
			}
			if res.Table == nil {
				t.Fatalf("seed %d: query %d returned nil table without error", seed, i)
			}
			if res.Degraded {
				if res.DegradedReason == "" {
					t.Fatalf("seed %d: query %d degraded without a reason", seed, i)
				}
				degraded++
				continue
			}
			// Non-degraded full-database answers must be exactly right even
			// under injection — a silently-wrong result is the one forbidden
			// outcome.
			if !res.FromApproximation && res.Table.NumRows() != truth[i] {
				t.Fatalf("seed %d: query %d silently wrong: %d rows, want %d",
					seed, i, res.Table.NumRows(), truth[i])
			}
		}
		faults.Disable()
	}
	t.Logf("chaos sweep: %d/%d trains succeeded, %d degraded results, %d typed errors",
		trained, chaosSeeds, degraded, erred)
	if trained == 0 {
		t.Error("no schedule allowed training to succeed — injection rates are miscalibrated")
	}
}

// TestChaosDeterminism: the same seed yields the same firing pattern, which
// is what makes a chaos failure reproducible from its log line.
func TestChaosDeterminism(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()

	run := func(seed int64) ([]faults.Event, bool) {
		sched := faults.RandomSchedule(seed)
		faults.Enable(sched)
		defer faults.Disable()
		_, err := Train(db, w, cfg)
		return sched.Events(), err == nil
	}
	for _, seed := range []int64{3, 17} {
		ev1, ok1 := run(seed)
		ev2, ok2 := run(seed)
		if ok1 != ok2 || len(ev1) != len(ev2) {
			t.Fatalf("seed %d not deterministic: %v/%d vs %v/%d", seed, ok1, len(ev1), ok2, len(ev2))
		}
		for i := range ev1 {
			if ev1[i] != ev2[i] {
				t.Fatalf("seed %d event %d differs: %+v vs %+v", seed, i, ev1[i], ev2[i])
			}
		}
	}
}
