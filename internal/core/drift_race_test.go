package core

import (
	"sync"
	"testing"
)

// TestDriftTakeObserveRace hammers Observe and Take concurrently under -race
// and proves the snapshot-and-reset is lossless: every drifted statement
// lands in exactly one Take batch — none is dropped by a reset racing a
// concurrent Observe (the bug the old read-Drifted-then-ResetDrift sequence
// allowed), none double-counted.
func TestDriftTakeObserveRace(t *testing.T) {
	d := &DriftDetector{Confidence: 0.5, Count: 3}
	stmt := mustParseCore(t, "SELECT * FROM title WHERE rating > 7")

	const writers = 8
	const perWriter = 500

	var writerWg sync.WaitGroup
	writerWg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				d.Observe(stmt, 0) // deviation 1.0 >= Confidence: always drifts
			}
		}()
	}
	writersDone := make(chan struct{})
	go func() { writerWg.Wait(); close(writersDone) }()

	taken := 0
	takerDone := make(chan struct{})
	go func() {
		defer close(takerDone)
		for {
			if batch := d.Take(d.Count); batch != nil {
				taken += len(batch)
			}
			select {
			case <-writersDone:
				// Writers finished: one final drain picks up any remainder,
				// including a tail shorter than the trigger threshold.
				if batch := d.Take(1); batch != nil {
					taken += len(batch)
				}
				return
			default:
			}
		}
	}()
	<-takerDone

	if want := writers * perWriter; taken != want {
		t.Fatalf("lost or duplicated drifted statements: took %d, observed %d", taken, want)
	}
	if n := d.DriftedCount(); n != 0 {
		t.Fatalf("detector should be drained, still holds %d", n)
	}
}

// TestDriftTakeBelowThreshold checks Take's threshold contract: below min it
// returns nil and clears nothing.
func TestDriftTakeBelowThreshold(t *testing.T) {
	d := &DriftDetector{Confidence: 0.5, Count: 3}
	stmt := mustParseCore(t, "SELECT * FROM title WHERE rating > 7")
	d.Observe(stmt, 0)
	d.Observe(stmt, 0)
	if got := d.Take(3); got != nil {
		t.Fatalf("Take below threshold returned %d statements, want nil", len(got))
	}
	if n := d.DriftedCount(); n != 2 {
		t.Fatalf("Take below threshold must not clear: have %d, want 2", n)
	}
	if got := d.Take(0); len(got) != 2 {
		t.Fatalf("Take(0) should drain with min 1: got %d", len(got))
	}
	if n := d.DriftedCount(); n != 0 {
		t.Fatalf("detector should be empty after drain, holds %d", n)
	}
}
