package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"asqprl/internal/engine"
	"asqprl/internal/faults"
	"asqprl/internal/rl"
)

// countGoroutines samples the goroutine count after a settle period so
// finished-but-not-yet-reaped goroutines do not count as leaks.
func countGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(5 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m <= n {
			return m
		}
		n = m
	}
	return n
}

// TestPreprocessCancellationPerStage cancels the context at the entry of each
// named preprocessing stage (via a hook fault armed at the stage's injection
// point) and asserts PreprocessContext returns promptly with context.Canceled
// and leaks no goroutines.
func TestPreprocessCancellationPerStage(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()

	stages := []struct {
		name  string
		point string
	}{
		{"relax", faults.PointPreRelax},
		{"embed", faults.PointPreEmbed},
		{"select", faults.PointPreSelect},
		{"execute", faults.PointPreExecute},
		{"subsample", faults.PointPreSubsample},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			before := countGoroutines()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			faults.Enable(faults.NewSchedule(1, faults.Injection{
				Point:     st.point,
				Kind:      faults.KindHook,
				OnTrigger: cancel,
			}))
			defer faults.Disable()

			start := time.Now()
			pre, err := PreprocessContext(ctx, db, w, cfg)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("stage %s: expected cancellation error, got %d reps", st.name, len(pre.Reps))
			}
			if !errors.Is(err, context.Canceled) && !errors.Is(err, engine.ErrCanceled) {
				t.Fatalf("stage %s: want context.Canceled, got %v", st.name, err)
			}
			if !strings.Contains(err.Error(), st.name) && st.point != faults.PointPreExecute {
				// the execute stage may surface through a representative's
				// engine error rather than the stage-entry check
				t.Errorf("stage %s: error %q does not name the stage", st.name, err)
			}
			if elapsed > 5*time.Second {
				t.Errorf("stage %s: cancellation took %v, not prompt", st.name, elapsed)
			}
			if after := countGoroutines(); after > before+2 {
				t.Errorf("stage %s: goroutines grew %d -> %d (leak)", st.name, before, after)
			}
		})
	}
}

// TestTrainContextCanceledMidRL cancels training after the first RL iteration
// and asserts Train still returns a usable (if weaker) system with the
// interruption recorded in its stats.
func TestTrainContextCanceledMidRL(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	cfg.Episodes = 200 // enough that cancellation lands mid-training
	cfg.EarlyStopPatience = 0

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A hook fault at the rl/update point fires once early in training and
	// cancels the context; the next iteration boundary must observe it.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:     faults.PointRLUpdate,
		Kind:      faults.KindHook,
		After:     1,
		MaxFires:  1,
		OnTrigger: cancel,
	}))
	defer faults.Disable()

	sys, err := TrainContext(ctx, db, w, cfg)
	faults.Disable()
	if err != nil {
		t.Fatalf("canceled training should still yield a system, got %v", err)
	}
	if !sys.Stats().RL.Canceled {
		t.Error("Stats().RL.Canceled not set after mid-training cancellation")
	}
	if sys.Stats().RL.Iterations >= 200 {
		t.Errorf("training ran %d iterations despite cancellation", sys.Stats().RL.Iterations)
	}
	if sys.Set().Size() == 0 {
		t.Fatal("partial system has an empty approximation set")
	}
	// The partial system must answer queries.
	res, err := sys.Query(w[0].SQL)
	if err != nil {
		t.Fatalf("partial system query: %v", err)
	}
	if res.Table == nil {
		t.Fatal("partial system returned nil table")
	}
}

// TestQueryDeadline: a query whose 1ms deadline has expired returns
// engine.ErrDeadline — the ladder must not retry or degrade past a deadline.
func TestQueryDeadline(t *testing.T) {
	sys := trainedSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // guarantee expiry regardless of machine speed
	_, err := sys.QueryContext(ctx,
		"SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id", QueryOptions{})
	if !errors.Is(err, engine.ErrDeadline) {
		t.Fatalf("want engine.ErrDeadline, got %v", err)
	}
}

// TestQueryMaxRowsDegrades: tripping the output-row budget on the full
// database serves the partial rows tagged Degraded, never silently.
func TestQueryMaxRowsDegrades(t *testing.T) {
	sys := trainedSystem(t)
	// An out-of-distribution query routes to the full database.
	sql := "SELECT * FROM name WHERE birth_year > 1800"
	res, err := sys.QueryContext(context.Background(), sql, QueryOptions{MaxRows: 3})
	if err != nil {
		t.Fatalf("row-budget trip should degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("row-budget-limited result not tagged Degraded")
	}
	if res.DegradedReason != "rows" {
		t.Errorf("DegradedReason = %q, want rows", res.DegradedReason)
	}
	if res.Table.NumRows() != 3 {
		t.Errorf("partial result has %d rows, want 3", res.Table.NumRows())
	}
}

// TestQueryFaultFallsBackToApprox: when every full-database attempt fails
// with an injected fault, the ladder serves the approximation set's answer
// tagged Degraded.
func TestQueryFaultFallsBackToApprox(t *testing.T) {
	sys := trainedSystem(t)
	sql := "SELECT * FROM name WHERE birth_year > 1800" // routes to full DB
	pred, _ := sys.Estimator().Estimate(mustParseCore(t, sql))
	if pred >= sys.Config().EstimatorThreshold {
		t.Skip("query unexpectedly routed to the approximation set")
	}
	// Fail the full-DB scans persistently, but only after the scans the
	// approximation-set fallback will itself perform remain unarmed: arm
	// enough fires for the retries, then let the fallback through.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:    faults.PointEngineScan,
		Kind:     faults.KindError,
		MaxFires: 3, // initial attempt + 2 retries, one scan each (single table)
	}))
	defer faults.Disable()
	res, err := sys.QueryContext(context.Background(), sql, QueryOptions{Backoff: time.Microsecond})
	if err != nil {
		t.Fatalf("expected degraded approx answer, got error %v", err)
	}
	if !res.Degraded || !res.FromApproximation {
		t.Fatalf("want Degraded approx answer, got degraded=%v approx=%v", res.Degraded, res.FromApproximation)
	}
	if res.DegradedReason != "fault" {
		t.Errorf("DegradedReason = %q, want fault", res.DegradedReason)
	}
}

// TestQueryPanicRecovered: an injected panic in the engine surfaces as an
// error (or a degraded answer), never as a crash.
func TestQueryPanicRecovered(t *testing.T) {
	sys := trainedSystem(t)
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point: faults.PointEngineScan,
		Kind:  faults.KindPanic,
	}))
	defer faults.Disable()
	res, err := sys.QueryContext(context.Background(),
		"SELECT * FROM name WHERE birth_year > 1800", QueryOptions{Backoff: time.Microsecond})
	if err == nil && !res.Degraded {
		t.Fatal("persistent panics should yield an error or a degraded result")
	}
}

// TestTrainRecoversFromInjectedNaN arms the rl/update corruption point so one
// PPO update poisons the actor with NaN, and asserts the divergence watchdog
// rolled back (visible in TrainStats.History), halved the learning rate, and
// that the final system still beats the random baseline.
func TestTrainRecoversFromInjectedNaN(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()

	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:    faults.PointRLUpdate,
		Kind:     faults.KindError,
		After:    2, // let two clean updates land first
		MaxFires: 1,
	}))
	defer faults.Disable()

	sys, err := Train(db, w, cfg)
	faults.Disable()
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.Stats().RL
	if stats.Recoveries < 1 {
		t.Fatalf("watchdog recorded %d recoveries, want >= 1", stats.Recoveries)
	}
	found := false
	for _, it := range stats.History {
		if it.Recovered {
			found = true
			if it.RecoveryReason == "" {
				t.Error("recovered iteration has empty RecoveryReason")
			}
			break
		}
	}
	if !found {
		t.Fatal("no History entry marked Recovered")
	}
	if lr := sys.agent.LR(); lr >= cfg.RL.LR && cfg.RL.LR > 0 {
		t.Errorf("learning rate %v not reduced from %v after recovery", lr, cfg.RL.LR)
	}

	// The recovered agent must still beat the random baseline (Equation 1).
	asqp, err := sys.ScoreOn(w)
	if err != nil {
		t.Fatal(err)
	}
	random := randomBaseline(t, db, w, sys.Set().Size(), sys.Config().F, 3)
	t.Logf("recovered score: asqp=%.3f random=%.3f (recoveries=%d)", asqp, random, stats.Recoveries)
	if asqp <= random {
		t.Errorf("recovered ASQP score %.3f should beat random %.3f", asqp, random)
	}
}

// TestAgentCancellationBetweenIterations asserts rl.TrainContext honors a
// pre-armed cancellation promptly, returning partial stats with Canceled set.
func TestAgentCancellationBetweenIterations(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	pre, err := Preprocess(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stateDim, actions := envShape(cfg)
	agent, err := rl.NewAgent(cfg.RL, stateDim, actions)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := NewEnvironment(pre, cfg, 0)
	stats := agent.TrainContext(ctx, env, 1000, nil)
	if !stats.Canceled {
		t.Error("pre-canceled TrainContext did not set Canceled")
	}
	if stats.Iterations != 0 {
		t.Errorf("pre-canceled TrainContext ran %d iterations", stats.Iterations)
	}
}
