package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"asqprl/internal/engine"
)

// TestQueryContextConcurrent runs the full ladder from many goroutines at
// once — approximation-routed queries, full-database fallbacks, row-budget
// degradations, and short deadlines all mixed — because the serving layer
// makes concurrent access the default path. Under -race this proves the
// System's inference state (estimator, drift detector, reference cache,
// metrics) is memory-safe; the assertions prove each answer is still
// individually correct.
func TestQueryContextConcurrent(t *testing.T) {
	sys := trainedSystem(t)
	type probe struct {
		sql     string
		opts    QueryOptions
		check   func(*QueryResult, error) error
		comment string
	}
	probes := []probe{
		{
			sql:  "SELECT * FROM title WHERE rating > 7",
			opts: QueryOptions{},
			check: func(res *QueryResult, err error) error {
				if err != nil {
					return err
				}
				if res.Table == nil {
					return errors.New("nil table")
				}
				return nil
			},
			comment: "in-distribution",
		},
		{
			sql:  "SELECT * FROM name WHERE birth_year > 1800",
			opts: QueryOptions{},
			check: func(res *QueryResult, err error) error {
				if err != nil {
					return err
				}
				if res.Table == nil {
					return errors.New("nil table")
				}
				return nil
			},
			comment: "full-database fallback",
		},
		{
			sql:  "SELECT * FROM name WHERE birth_year > 1800",
			opts: QueryOptions{MaxRows: 3},
			check: func(res *QueryResult, err error) error {
				if err != nil {
					return err
				}
				if res.Degraded && res.Table.NumRows() > 3 {
					return fmt.Errorf("degraded result has %d rows, budget 3", res.Table.NumRows())
				}
				return nil
			},
			comment: "row-budget degradation",
		},
		{
			sql:  "SELECT * FROM title t JOIN cast_info c ON t.id = c.title_id",
			opts: QueryOptions{Timeout: time.Nanosecond},
			check: func(res *QueryResult, err error) error {
				if err == nil {
					return nil // fast machines can beat even a tiny deadline
				}
				if !errors.Is(err, engine.ErrDeadline) && !errors.Is(err, engine.ErrCanceled) {
					return fmt.Errorf("expired deadline returned %v", err)
				}
				return nil
			},
			comment: "expired deadline",
		},
		{
			sql:  "SELECT * FROM title WHERE rating > 9",
			opts: QueryOptions{SkipFull: true},
			check: func(res *QueryResult, err error) error {
				if err != nil {
					return err
				}
				if res.FullAttempted {
					return errors.New("SkipFull query attempted the full database")
				}
				return nil
			},
			comment: "breaker routing",
		},
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := probes[(g+i)%len(probes)]
				res, err := sys.QueryContext(context.Background(), p.sql, p.opts)
				if cerr := p.check(res, err); cerr != nil {
					errs <- fmt.Errorf("goroutine %d (%s): %w", g, p.comment, cerr)
					return
				}
			}
		}(g)
	}
	// Concurrent scoring exercises the shared reference cache alongside the
	// query path.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.ScoreOn(testWorkload()); err != nil {
				errs <- fmt.Errorf("concurrent ScoreOn: %w", err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
