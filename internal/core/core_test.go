package core

import (
	"math/rand"
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/metrics"
	"asqprl/internal/sample"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// testConfig returns a configuration small enough for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 150
	cfg.F = 25
	cfg.NumRepresentatives = 8
	cfg.ActionSpaceSize = 64
	cfg.MaxTrackedPerQuery = 60
	cfg.Episodes = 24
	cfg.RL.Workers = 4
	cfg.Seed = 1
	return cfg
}

func testIMDB() *table.Database { return datagen.IMDB(0.02, 7) }

func testWorkload() workload.Workload { return workload.IMDB(18, 11) }

// randomSubset picks k rows uniformly across all tables, the RAN baseline.
func randomSubset(db *table.Database, k int, rng *rand.Rand) *table.Subset {
	s := table.NewSubset()
	total := db.TotalRows()
	if total == 0 {
		return s
	}
	type span struct {
		name  string
		start int
	}
	var spans []span
	offset := 0
	for _, t := range db.Tables() {
		spans = append(spans, span{name: t.Name, start: offset})
		offset += t.NumRows()
	}
	for _, g := range sample.Uniform(total, k, rng) {
		for i := len(spans) - 1; i >= 0; i-- {
			if g >= spans[i].start {
				s.Add(table.RowID{Table: spans[i].name, Row: g - spans[i].start})
				break
			}
		}
	}
	return s
}

func TestPreprocessInvariants(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	pre, err := Preprocess(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Reps) == 0 || len(pre.Reps) > cfg.NumRepresentatives {
		t.Fatalf("reps = %d, want 1..%d", len(pre.Reps), cfg.NumRepresentatives)
	}
	if len(pre.Candidates) == 0 || len(pre.Candidates) > cfg.ActionSpaceSize {
		t.Fatalf("candidates = %d, want 1..%d", len(pre.Candidates), cfg.ActionSpaceSize)
	}
	// Representative weights are normalized.
	var wsum float64
	for _, r := range pre.Reps {
		wsum += r.Weight
		if len(r.Tuples) > cfg.MaxTrackedPerQuery {
			t.Errorf("rep tracks %d tuples > cap %d", len(r.Tuples), cfg.MaxTrackedPerQuery)
		}
		if r.Total < len(r.Tuples) {
			t.Errorf("rep Total %d < tracked %d", r.Total, len(r.Tuples))
		}
	}
	if wsum < 0.999 || wsum > 1.001 {
		t.Errorf("rep weights sum to %v, want 1", wsum)
	}
	// Every candidate's rows reference real rows.
	for _, c := range pre.Candidates {
		if len(c.Rows) == 0 {
			t.Error("empty candidate")
		}
		for _, id := range c.Rows {
			tab := db.Table(id.Table)
			if tab == nil || id.Row < 0 || id.Row >= tab.NumRows() {
				t.Errorf("candidate references invalid row %v", id)
			}
		}
	}
	// RowToTuples index is consistent with the tuples (original and relaxed).
	for id, refs := range pre.RowToTuples {
		for _, ref := range refs {
			tuples := pre.Reps[ref.q].Tuples
			if ref.relaxed {
				tuples = pre.Reps[ref.q].RelaxedTuples
			}
			if ref.t >= len(tuples) {
				t.Fatalf("RowToTuples ref out of range for %v (relaxed=%v)", id, ref.relaxed)
			}
			found := false
			for _, row := range tuples[ref.t].Rows {
				if row == id {
					found = true
				}
			}
			if !found {
				t.Errorf("RowToTuples inconsistency for %v (relaxed=%v)", id, ref.relaxed)
			}
		}
	}
}

func TestPreprocessEmptyWorkloadFails(t *testing.T) {
	if _, err := Preprocess(testIMDB(), nil, testConfig()); err == nil {
		t.Error("empty workload should error")
	}
}

func TestPreprocessTrainFraction(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	cfg.TrainFraction = 0.25
	pre, err := Preprocess(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := testConfig()
	preFull, err := Preprocess(db, w, full)
	if err != nil {
		t.Fatal(err)
	}
	if pre.ExecutedQueries >= preFull.ExecutedQueries {
		t.Errorf("fraction 0.25 executed %d queries, full executed %d",
			pre.ExecutedQueries, preFull.ExecutedQueries)
	}
}

func TestCoverTrackerAddRemoveInverse(t *testing.T) {
	db := testIMDB()
	pre, err := Preprocess(db, testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := newCoverTracker(pre, 25)
	base := tr.score()
	if base != 0 {
		t.Fatalf("empty tracker score = %v, want 0 (non-empty reps)", base)
	}
	rng := rand.New(rand.NewSource(3))
	// Add a random sequence, remember scores, remove in reverse: state must
	// return exactly.
	var added []int
	var scores []float64
	for i := 0; i < 20 && i < len(pre.Candidates); i++ {
		ci := rng.Intn(len(pre.Candidates))
		added = append(added, ci)
		tr.addCandidate(pre.Candidates[ci])
		scores = append(scores, tr.score())
	}
	for i := len(added) - 1; i >= 0; i-- {
		if got := tr.score(); got != scores[i] {
			t.Fatalf("score before removing step %d = %v, want %v", i, got, scores[i])
		}
		tr.removeCandidate(pre.Candidates[added[i]])
	}
	if got := tr.score(); got != base {
		t.Errorf("score after full removal = %v, want %v", got, base)
	}
	if tr.size != 0 {
		t.Errorf("size after full removal = %d, want 0", tr.size)
	}
}

func TestCoverTrackerScoreMonotoneUnderAdds(t *testing.T) {
	pre, err := Preprocess(testIMDB(), testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := newCoverTracker(pre, 25)
	last := tr.score()
	for i := range pre.Candidates {
		tr.addCandidate(pre.Candidates[i])
		s := tr.score()
		if s < last-1e-12 {
			t.Fatalf("score decreased on add: %v -> %v", last, s)
		}
		last = s
	}
	if last <= 0 {
		t.Error("adding all candidates should give positive score")
	}
}

func TestGSLEnvMechanics(t *testing.T) {
	pre, err := Preprocess(testIMDB(), testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	env := NewEnvironment(pre, cfg, 0)
	state, mask := env.Reset()
	if len(state) != env.StateDim() {
		t.Fatalf("state dim %d != %d", len(state), env.StateDim())
	}
	if len(mask) != env.NumActions() {
		t.Fatalf("mask len %d != %d", len(mask), env.NumActions())
	}
	// Rewards telescope to the final score.
	var total float64
	rng := rand.New(rand.NewSource(5))
	done := false
	steps := 0
	for !done {
		var valid []int
		for i, ok := range mask {
			if ok {
				valid = append(valid, i)
			}
		}
		if len(valid) == 0 {
			break
		}
		var r float64
		_, mask, r, done = env.Step(valid[rng.Intn(len(valid))])
		total += r
		steps++
		if steps > 10000 {
			t.Fatal("episode did not terminate")
		}
	}
	sub := env.Subset()
	if sub.Size() == 0 {
		t.Error("episode built empty subset")
	}
	if sub.Size() > cfg.K+20 {
		// Budget may overshoot by at most one candidate's rows.
		t.Errorf("subset size %d far exceeds budget %d", sub.Size(), cfg.K)
	}
	if total <= 0 {
		t.Errorf("total reward = %v, want > 0", total)
	}
}

func TestDRPAndHybridEnvsRun(t *testing.T) {
	pre, err := Preprocess(testIMDB(), testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EnvironmentKind{EnvDRP, EnvHybrid} {
		cfg := testConfig()
		cfg.Environment = kind
		cfg.DRPHorizon = 40
		env := NewEnvironment(pre, cfg, 0)
		_, mask := env.Reset()
		rng := rand.New(rand.NewSource(6))
		done := false
		steps := 0
		for !done && steps < 500 {
			var valid []int
			for i, ok := range mask {
				if ok {
					valid = append(valid, i)
				}
			}
			if len(valid) == 0 {
				t.Fatalf("%v: no valid action at step %d", kind, steps)
			}
			_, mask, _, done = env.Step(valid[rng.Intn(len(valid))])
			steps++
		}
		if !done {
			t.Errorf("%v: did not terminate within 500 steps", kind)
		}
		if env.Subset().Size() == 0 {
			t.Errorf("%v: empty subset", kind)
		}
	}
}

// TestTrainBeatsRandom is the headline integration test: ASQP-RL's
// approximation set must outscore a random subset of the same size on the
// training workload, and be competitive on held-out queries.
func TestTrainBeatsRandom(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	rng := rand.New(rand.NewSource(13))
	train, test := w.Split(0.7, rng)
	cfg := testConfig()

	sys, err := Train(db, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Set().Size() == 0 {
		t.Fatal("empty approximation set")
	}
	if sys.Set().Size() > cfg.K+20 {
		t.Errorf("set size %d exceeds budget %d", sys.Set().Size(), cfg.K)
	}

	asqpTrain, err := sys.ScoreOn(train)
	if err != nil {
		t.Fatalf("scoring train: %v", err)
	}
	// Random baseline, averaged over 3 draws.
	var randomTrain float64
	for i := 0; i < 3; i++ {
		rs := randomSubset(db, sys.Set().Size(), rng)
		s, err := metrics.Score(db, rs.Materialize(db), train, cfg.F)
		if err != nil {
			t.Fatal(err)
		}
		randomTrain += s
	}
	randomTrain /= 3

	t.Logf("train score: asqp=%.3f random=%.3f (set size %d)", asqpTrain, randomTrain, sys.Set().Size())
	if asqpTrain <= randomTrain {
		t.Errorf("ASQP-RL train score %.3f should beat random %.3f", asqpTrain, randomTrain)
	}

	asqpTest, err := sys.ScoreOn(test)
	if err != nil {
		t.Fatalf("scoring test: %v", err)
	}
	t.Logf("test score: asqp=%.3f", asqpTest)
	if asqpTest < 0.05 {
		t.Errorf("test score %.3f suspiciously low — no generalization at all", asqpTest)
	}
}

func TestSystemQueryRouting(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A training query should route to the approximation set with a decent
	// predicted score.
	res, err := sys.Query(w[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil {
		t.Fatal("nil result table")
	}
	// A wildly different query should route to the full database.
	weird, err := sys.Query("SELECT * FROM name WHERE birth_year BETWEEN 1921 AND 1922 AND gender = 'f' AND name LIKE 'Q%'")
	if err != nil {
		t.Fatal(err)
	}
	if weird.FromApproximation && weird.PredictedScore > 0.9 {
		t.Errorf("out-of-distribution query got high confidence %v", weird.PredictedScore)
	}
	// Bad SQL errors.
	if _, err := sys.Query("NOT SQL AT ALL ((("); err == nil {
		t.Error("invalid SQL should error")
	}
}

func TestBuildSetRespectsRequestedSize(t *testing.T) {
	db := testIMDB()
	cfg := testConfig()
	sys, err := Train(db, testWorkload(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	small, err := sys.BuildSet(40)
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() == 0 || small.Size() > 40+20 {
		t.Errorf("requested 40, got %d", small.Size())
	}
}

func TestEstimatorSeparatesKnownFromUnknown(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := sys.Estimator()
	// Estimates for training queries should correlate with actual scores.
	scores, _ := metrics.PerQueryScores(db, sys.SetDB(), w, cfg.F)
	var predHigh, predLow, nHigh, nLow float64
	for i, q := range w {
		pred, conf := est.Estimate(q.Stmt)
		if conf < 0.99 {
			t.Errorf("training query %d should have confidence ~1, got %v", i, conf)
		}
		if scores[i] >= 0.5 {
			predHigh += pred
			nHigh++
		} else {
			predLow += pred
			nLow++
		}
	}
	if nHigh > 0 && nLow > 0 && predHigh/nHigh <= predLow/nLow {
		t.Errorf("estimator does not separate: high-mean %.3f <= low-mean %.3f",
			predHigh/nHigh, predLow/nLow)
	}
}

func TestDriftDetectionTriggersFineTune(t *testing.T) {
	db := testIMDB()
	// Train only on title-table queries.
	train := workload.MustNew(
		"SELECT * FROM title WHERE genre = 'drama' AND production_year > 1990",
		"SELECT * FROM title WHERE genre = 'comedy' AND rating > 6",
		"SELECT * FROM title WHERE votes > 500 AND rating > 7",
		"SELECT title, rating FROM title WHERE genre = 'action' AND production_year > 1980",
	)
	cfg := testConfig()
	cfg.Episodes = 12
	sys, err := Train(db, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Issue clearly different queries (different table entirely).
	drifting := []string{
		"SELECT * FROM name WHERE gender = 'f' AND birth_year > 1990",
		"SELECT * FROM name WHERE gender = 'm' AND birth_year < 1940",
		"SELECT name, birth_year FROM name WHERE birth_year BETWEEN 1950 AND 1960",
		"SELECT * FROM name WHERE birth_year = 1975",
	}
	triggered := false
	for _, q := range drifting {
		res, err := sys.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.DriftTriggered {
			triggered = true
			break
		}
	}
	if !triggered {
		t.Fatal("drift was not detected after 4 out-of-distribution queries")
	}
	ok, err := sys.FineTuneFromDrift(8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fine-tune should have run")
	}
	if sys.Stats().FineTunes != 1 {
		t.Errorf("FineTunes = %d, want 1", sys.Stats().FineTunes)
	}
	// After fine-tuning, the drifted queries should score better than before.
	driftW := workload.MustNew(drifting...)
	after, err := sys.ScoreOn(driftW)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("post-fine-tune drift score: %.3f", after)
	if after == 0 {
		t.Error("fine-tuned system still scores 0 on drifted queries")
	}
}

func TestFineTuneRequiresQueries(t *testing.T) {
	sys, err := Train(testIMDB(), testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FineTune(nil, 4); err == nil {
		t.Error("FineTune with no queries should error")
	}
}

func TestGenerateWorkloadValidAndExecutable(t *testing.T) {
	db := testIMDB()
	w, err := GenerateWorkload(db, GenOptions{N: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) < 5 {
		t.Fatalf("generated only %d queries", len(w))
	}
	nonEmpty := 0
	for _, q := range w {
		res, err := sysCount(db, q)
		if err != nil {
			t.Errorf("generated query %q fails: %v", q.SQL, err)
			continue
		}
		if res > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(w)/3 {
		t.Errorf("only %d/%d generated queries are non-empty", nonEmpty, len(w))
	}
	// Join queries should appear given the FK-rich schema.
	joins := 0
	for _, q := range w {
		if len(q.Stmt.Joins) > 0 {
			joins++
		}
	}
	if joins == 0 {
		t.Error("no join queries generated despite detectable FKs")
	}
}

func TestGenerateWorkloadEmptyDB(t *testing.T) {
	if _, err := GenerateWorkload(table.NewDatabase(), GenOptions{N: 5, Seed: 1}); err == nil {
		t.Error("empty database should error")
	}
}

func TestConfigNormalization(t *testing.T) {
	var c Config
	n := c.normalize()
	d := DefaultConfig()
	if n.K != d.K || n.F != d.F || n.ActionSpaceSize != d.ActionSpaceSize {
		t.Errorf("zero config should normalize to defaults: %+v", n)
	}
	if n.TrainFraction != 1 {
		t.Errorf("TrainFraction = %v, want 1", n.TrainFraction)
	}
}

func TestLightAndAdaptiveConfigs(t *testing.T) {
	light := LightConfig()
	full := DefaultConfig()
	if light.TrainFraction >= full.TrainFraction {
		t.Error("light should execute fewer queries")
	}
	if light.RL.LR <= full.RL.LR {
		t.Error("light should raise the learning rate")
	}
	if light.EarlyStopPatience == 0 {
		t.Error("light should early-stop")
	}
	adaptive := AdaptiveConfig(1, 2) // half the budget
	if adaptive.Episodes <= light.Episodes || adaptive.Episodes > full.Episodes {
		t.Errorf("adaptive episodes %d should interpolate (%d..%d]",
			adaptive.Episodes, light.Episodes, full.Episodes)
	}
	if got := AdaptiveConfig(5, 2); got.Episodes != full.Episodes {
		t.Error("budget >= full should give full config")
	}
}

func TestEnvironmentKindString(t *testing.T) {
	if EnvGSL.String() != "GSL" || EnvDRP.String() != "DRP" || EnvHybrid.String() != "DRP+GSL" {
		t.Error("environment names wrong")
	}
	if EnvironmentKind(99).String() != "unknown" {
		t.Error("unknown kind")
	}
}

// sysCount executes q's statement and returns the row count.
func sysCount(db *table.Database, q workload.Query) (int, error) {
	scores, err := metrics.PerQueryScores(db, db, workload.Workload{q}, 1<<30)
	if err != nil {
		return 0, err
	}
	// score 1 means non-empty or trivially satisfied; use direct execution
	// count via the engine instead for precision.
	_ = scores
	n, err := countRows(db, q)
	return n, err
}
