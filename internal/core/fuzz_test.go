package core

import (
	"strings"
	"testing"
)

// savedBytes trains the shared test system once and serializes it.
func savedBytes(t testing.TB) []byte {
	sys, err := Train(testIMDB(), testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadTruncated: every prefix-truncation of a valid snapshot must fail
// with a descriptive error, never a panic or a half-restored system.
func TestLoadTruncated(t *testing.T) {
	db := testIMDB()
	data := savedBytes(t)
	cuts := []int{0, 1, 3, 4, 5, snapHeaderLen - 1, snapHeaderLen, snapHeaderLen + 1,
		len(data) / 4, len(data) / 2, len(data) - 1}
	for _, n := range cuts {
		if n >= len(data) {
			continue
		}
		if _, err := LoadBytes(db, data[:n]); err == nil {
			t.Errorf("truncation to %d bytes loaded without error", n)
		}
	}
}

// TestLoadBitFlips: flipping any byte of the frame or payload must be caught
// (by the magic, version, length, or CRC checks) with an error.
func TestLoadBitFlips(t *testing.T) {
	db := testIMDB()
	data := savedBytes(t)
	// Sample positions across the frame and the payload.
	positions := []int{4, 5, 9, 13, 14, snapHeaderLen, snapHeaderLen + 7, len(data) - 1}
	for _, pos := range positions {
		if pos >= len(data) {
			continue
		}
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xFF
		if _, err := LoadBytes(db, corrupt); err == nil {
			t.Errorf("bit flip at %d loaded without error", pos)
		}
	}
}

// TestLoadImplausibleLength: a length prefix larger than the data (or than
// any sane payload) is rejected by the bounds check before decoding.
func TestLoadImplausibleLength(t *testing.T) {
	db := testIMDB()
	data := savedBytes(t)
	corrupt := append([]byte(nil), data...)
	for i := 5; i < 13; i++ {
		corrupt[i] = 0xFF // length = 2^64-1
	}
	_, err := LoadBytes(db, corrupt)
	if err == nil {
		t.Fatal("implausible length prefix loaded without error")
	}
	if !strings.Contains(err.Error(), "length") && !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error %q does not describe the length problem", err)
	}
}

// TestLoadLegacyFrameless: input without the frame magic still decodes via
// the legacy path (snapshots written before the frame existed are raw gob).
func TestLoadLegacyFrameless(t *testing.T) {
	db := testIMDB()
	data := savedBytes(t)
	legacy := data[snapHeaderLen:] // strip the frame: raw gob payload
	sys, err := LoadBytes(db, legacy)
	if err != nil {
		t.Fatalf("legacy frameless snapshot should load: %v", err)
	}
	if sys.Set().Size() == 0 {
		t.Error("legacy-loaded system has an empty set")
	}
}

// FuzzLoad drives LoadBytes with mutated snapshots. The property under test:
// whatever the bytes, LoadBytes returns (system, nil) or (nil, error) — it
// never panics and never returns a nil system without an error.
func FuzzLoad(f *testing.F) {
	db := testIMDB()
	valid := savedBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[snapHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte("ASQP"))
	f.Add([]byte("ASQP\x02\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := LoadBytes(db, data)
		if err == nil && sys == nil {
			t.Fatal("LoadBytes returned nil system and nil error")
		}
	})
}
