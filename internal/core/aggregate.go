package core

import (
	"fmt"
	"strings"

	"asqprl/internal/engine"
	"asqprl/internal/sqlparse"
)

// AggregateResult is the outcome of answering an aggregate query from the
// approximation set (Section 6.4): per-group estimated values, with COUNT
// and SUM scaled up by the per-table sampling ratio (AVG/MIN/MAX are
// scale-free). Global aggregates use the empty-string group key.
type AggregateResult struct {
	// Values maps group key (Value.String() of the group column; "" for
	// global aggregates) to the estimated value of the first aggregate.
	Values map[string]float64
	// ScaleFactor is the COUNT/SUM scale-up that was applied (1 when the
	// aggregate is scale-free).
	ScaleFactor float64
	// FromApproximation is false when the estimator routed the query to the
	// full database (exact answer).
	FromApproximation bool
}

// QueryAggregate answers an aggregate SQL query approximately from the
// approximation set, applying the standard AQP scale-up for COUNT and SUM.
// The answerability estimator may route the query to the full database, in
// which case the answer is exact. Only single-aggregate SELECTs with at most
// one GROUP BY column are supported.
func (s *System) QueryAggregate(sql string) (*AggregateResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.QueryAggregateStmt(stmt)
}

// QueryAggregateStmt is QueryAggregate over a parsed statement.
func (s *System) QueryAggregateStmt(stmt *sqlparse.Select) (*AggregateResult, error) {
	call := firstAggregateCall(stmt)
	if call == nil {
		return nil, fmt.Errorf("core: QueryAggregate requires an aggregate in the SELECT list")
	}
	if len(stmt.GroupBy) > 1 {
		return nil, fmt.Errorf("core: QueryAggregate supports at most one GROUP BY column")
	}

	// Route via the estimator using the SPJ rewrite, as in Section 4.4.
	spj := engine.RewriteAggregateToSPJ(stmt)
	pred, conf := s.est.Estimate(spj)
	s.drift.Observe(spj, conf)

	target := s.setDB
	fromApprox := pred >= s.cfg.EstimatorThreshold
	if !fromApprox {
		target = s.db
	}
	res, err := engine.ExecuteWith(target, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	out := &AggregateResult{
		Values:            map[string]float64{},
		ScaleFactor:       1,
		FromApproximation: fromApprox,
	}
	grouped := len(stmt.GroupBy) > 0
	for _, r := range res.Table.Rows {
		if grouped {
			if len(r) >= 2 {
				out.Values[r[0].String()] = r[1].AsFloat()
			}
		} else if len(r) >= 1 {
			out.Values[""] = r[0].AsFloat()
		}
	}

	// Scale COUNT/SUM by the sampling ratio of the queried table when
	// answering from the approximation set.
	if fromApprox && (call.Name == "COUNT" || call.Name == "SUM") && len(stmt.From) > 0 {
		out.ScaleFactor = s.tableScaleFactor(stmt.From[0].Table)
		for g := range out.Values {
			out.Values[g] *= out.ScaleFactor
		}
	}
	return out, nil
}

// tableScaleFactor returns |T| / |S_T| for the named table (1 when the
// approximation set holds the whole table or the table is unknown).
func (s *System) tableScaleFactor(tableName string) float64 {
	full := s.db.Table(tableName)
	approx := s.setDB.Table(tableName)
	if full == nil || approx == nil || approx.NumRows() == 0 {
		return 1
	}
	f := float64(full.NumRows()) / float64(approx.NumRows())
	if f < 1 {
		return 1
	}
	return f
}

// firstAggregateCall returns the first aggregate call in the SELECT list.
func firstAggregateCall(stmt *sqlparse.Select) *sqlparse.Call {
	for _, it := range stmt.Items {
		var found *sqlparse.Call
		sqlparse.Walk(it.Expr, func(e sqlparse.Expr) {
			if c, ok := e.(*sqlparse.Call); ok && found == nil {
				found = c
			}
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// ExactAggregate computes the same group → value map on the full database,
// for error measurement (used by the Figure 12 experiment and tests).
func (s *System) ExactAggregate(stmt *sqlparse.Select) (map[string]float64, error) {
	res, err := engine.ExecuteWith(s.db, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	grouped := len(stmt.GroupBy) > 0
	for _, r := range res.Table.Rows {
		if grouped {
			if len(r) >= 2 {
				out[r[0].String()] = r[1].AsFloat()
			}
		} else if len(r) >= 1 {
			out[""] = r[0].AsFloat()
		}
	}
	return out, nil
}

// AggregateCategory buckets an aggregate query the way Figure 12 does:
// "G+SUM", "SUM", "G+AVG", "AVG", "G+CNT", "CNT".
func AggregateCategory(stmt *sqlparse.Select) string {
	call := firstAggregateCall(stmt)
	if call == nil {
		return ""
	}
	short := map[string]string{"COUNT": "CNT", "SUM": "SUM", "AVG": "AVG", "MIN": "MIN", "MAX": "MAX"}[strings.ToUpper(call.Name)]
	if len(stmt.GroupBy) > 0 {
		return "G+" + short
	}
	return short
}
