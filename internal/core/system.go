package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"asqprl/internal/embed"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/obs"
	"asqprl/internal/rl"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Stats reports what a training run did and how long it took.
type Stats struct {
	SetupTime       time.Duration
	PreprocessTime  time.Duration
	TrainTime       time.Duration
	RL              rl.TrainStats
	Representatives int
	Candidates      int
	SetSize         int
	FineTunes       int
}

// System is a trained ASQP-RL instance: it owns the approximation set, the
// trained agent, and the inference-time estimator, and it answers queries by
// routing them to the approximation set or the full database.
type System struct {
	cfg   Config
	db    *table.Database
	train workload.Workload
	pre   *Preprocessed
	agent *rl.Agent
	set   *table.Subset
	setDB *table.Database
	est   *Estimator
	drift *DriftDetector
	stats Stats
}

// Train runs the full ASQP-RL pipeline of Algorithm 1 — preprocessing, RL
// training, set construction (Algorithm 2), and estimator fitting — and
// returns a queryable System.
func Train(db *table.Database, w workload.Workload, cfg Config) (*System, error) {
	cfg = cfg.normalize()
	start := time.Now()
	ctx, span := obs.StartSpan(context.Background(), "train")
	defer span.End()
	obs.Logger().Info("training started",
		"k", cfg.K, "f", cfg.F, "seed", cfg.Seed,
		"episodes", cfg.Episodes, "workload", len(w))

	pre, err := PreprocessContext(ctx, db, w, cfg)
	if err != nil {
		obs.Logger().Error("preprocessing failed", "seed", cfg.Seed, "err", err)
		return nil, err
	}
	preDone := time.Now()

	s := &System{cfg: cfg, db: db, train: w, pre: pre}
	stateDim, actions := envShape(cfg)
	s.agent = rl.NewAgent(cfg.RL, stateDim, actions)
	_, rlSpan := obs.StartSpan(ctx, "train/rl")
	s.trainAgent()
	rlSpan.Annotate("iterations", s.stats.RL.Iterations)
	rlSpan.Annotate("episodes", s.stats.RL.Episodes)
	rlSpan.End()
	s.stats.TrainTime = time.Since(preDone)

	_, buildSpan := obs.StartSpan(ctx, "train/buildset")
	err = s.rebuildSet(0)
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	_, estSpan := obs.StartSpan(ctx, "train/estimator")
	s.fitEstimator()
	estSpan.End()
	s.drift = &DriftDetector{Confidence: cfg.DriftConfidence, Count: cfg.DriftCount}

	s.stats.PreprocessTime = preDone.Sub(start)
	s.stats.SetupTime = time.Since(start)
	s.stats.Representatives = len(pre.Reps)
	s.stats.Candidates = len(pre.Candidates)
	if obs.Enabled() {
		reg := obs.Default()
		reg.Counter("core/train/runs").Inc()
		reg.Gauge("core/train/set_size").Set(float64(s.stats.SetSize))
		reg.Histogram("core/train/preprocess_seconds").ObserveDuration(s.stats.PreprocessTime)
		reg.Histogram("core/train/rl_seconds").ObserveDuration(s.stats.TrainTime)
		reg.Histogram("core/train/setup_seconds").ObserveDuration(s.stats.SetupTime)
	}
	obs.Logger().Info("training finished",
		"k", cfg.K, "f", cfg.F, "seed", cfg.Seed,
		"setup", s.stats.SetupTime, "preprocess", s.stats.PreprocessTime,
		"rl", s.stats.TrainTime, "set_size", s.stats.SetSize,
		"representatives", s.stats.Representatives, "candidates", s.stats.Candidates,
		"final_return", s.stats.RL.FinalReturn, "iterations", s.stats.RL.Iterations)
	return s, nil
}

// trainAgent runs RL training with optional early stopping on return
// plateau (ASQP-Light).
func (s *System) trainAgent() {
	env := NewEnvironment(s.pre, s.cfg, 0)
	best := math.Inf(-1)
	sinceBest := 0
	progress := func(iter, episodes int, meanReturn float64) bool {
		if s.cfg.EarlyStopPatience <= 0 {
			return true
		}
		if meanReturn > best+1e-6 {
			best = meanReturn
			sinceBest = 0
			return true
		}
		sinceBest++
		return sinceBest < s.cfg.EarlyStopPatience
	}
	s.stats.RL = s.agent.Train(env, s.cfg.Episodes, progress)
}

// rebuildSet runs Algorithm 2: rollouts of the learned policy until the
// requested size is reached. Following the algorithm's "action sampled based
// on p(a|s,θ)", it performs one deterministic (argmax) rollout plus several
// stochastic ones and keeps the best-scoring set. reqSize <= 0 uses cfg.K.
func (s *System) rebuildSet(reqSize int) error {
	const stochasticRollouts = 7
	rng := rand.New(rand.NewSource(s.cfg.Seed + 31337))

	var bestSet *table.Subset
	best := math.Inf(-1)
	try := func(greedy bool, rolloutRng *rand.Rand) {
		env := NewEnvironment(s.pre, s.cfg, reqSize)
		state, mask := env.Reset()
		for {
			action := s.agent.SelectAction(state, mask, greedy, rolloutRng)
			if action < 0 {
				break
			}
			next, nextMask, _, done := env.Step(action)
			state, mask = next, nextMask
			if done {
				break
			}
		}
		if score := env.Score(); score > best {
			best = score
			bestSet = env.Subset()
		}
	}
	try(true, nil)
	for i := 0; i < stochasticRollouts; i++ {
		try(false, rng)
	}

	s.set = bestSet
	s.setDB = s.set.Materialize(s.db)
	s.stats.SetSize = s.set.Size()
	return nil
}

// fitEstimator measures per-query scores of the training workload on the
// built set and fits the answerability estimator on them.
func (s *System) fitEstimator() {
	emb := embed.Embedder{Dim: s.cfg.EmbedDim}
	scores, _ := metrics.PerQueryScores(s.db, s.setDB, s.train, s.cfg.F)
	s.est = NewEstimator(emb, s.train.Statements(), scores, s.cfg.EstimatorNeighbors, s.cfg.EstimatorThreshold)
}

// Set returns the approximation set (row references into the full database).
func (s *System) Set() *table.Subset { return s.set }

// SetDB returns the materialized approximation set as a database.
func (s *System) SetDB() *table.Database { return s.setDB }

// Config returns the system's normalized configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns training statistics.
func (s *System) Stats() Stats { return s.stats }

// Estimator exposes the answerability estimator.
func (s *System) Estimator() *Estimator { return s.est }

// BuildSet re-runs inference (Algorithm 2) for a different requested size
// without retraining, replacing the system's approximation set.
func (s *System) BuildSet(reqSize int) (*table.Subset, error) {
	if err := s.ensurePreprocessed(); err != nil {
		return nil, err
	}
	if err := s.rebuildSet(reqSize); err != nil {
		return nil, err
	}
	s.fitEstimator()
	return s.set, nil
}

// QueryResult is the outcome of answering one user query.
type QueryResult struct {
	// Table holds the result rows.
	Table *table.Table
	// FromApproximation is true when the approximation set answered the
	// query; false when the system fell back to the full database.
	FromApproximation bool
	// PredictedScore is the estimator's score prediction for the query.
	PredictedScore float64
	// Confidence is the estimator's similarity confidence.
	Confidence float64
	// DriftTriggered is true when this query tipped the drift detector over
	// its threshold; callers should fine-tune (see FineTuneFromDrift).
	DriftTriggered bool
}

// Query answers sql following the inference flow of Figure 1(b): the
// estimator predicts whether the approximation set can answer it; if so, the
// query runs on the approximation set, otherwise on the full database.
func (s *System) Query(sql string) (*QueryResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.QueryStmt(stmt)
}

// QueryStmt is Query over a parsed statement.
func (s *System) QueryStmt(stmt *sqlparse.Select) (*QueryResult, error) {
	start := time.Now()
	// Aggregates are estimated through their SPJ rewrite (Section 4.4).
	estStmt := stmt
	if stmt.HasAggregates() {
		estStmt = engine.RewriteAggregateToSPJ(stmt)
	}
	pred, conf := s.est.Estimate(estStmt)
	out := &QueryResult{PredictedScore: pred, Confidence: conf}
	out.DriftTriggered = s.drift.Observe(estStmt, conf)

	target := s.setDB
	if pred < s.cfg.EstimatorThreshold {
		target = s.db
	} else {
		out.FromApproximation = true
	}
	res, err := engine.ExecuteWith(target, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	out.Table = res.Table
	if obs.Enabled() {
		reg := obs.Default()
		if out.FromApproximation {
			reg.Counter("core/query/approx").Inc()
		} else {
			reg.Counter("core/query/fallback").Inc()
		}
		if out.DriftTriggered {
			reg.Counter("core/query/drift_triggered").Inc()
		}
		reg.Histogram("core/query/seconds").ObserveDuration(time.Since(start))
	}
	return out, nil
}

// QueryApprox always answers from the approximation set, regardless of the
// estimator (used by experiments that measure raw set quality).
func (s *System) QueryApprox(stmt *sqlparse.Select) (*table.Table, error) {
	res, err := engine.ExecuteWith(s.setDB, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ScoreOn evaluates the approximation set against a workload using
// Equation 1 with the system's frame size.
func (s *System) ScoreOn(w workload.Workload) (float64, error) {
	return metrics.Score(s.db, s.setDB, w, s.cfg.F)
}

// FineTune merges new queries into the training workload, re-runs
// preprocessing, and continues training the existing agent for extraEpisodes
// (the network shapes are fixed by the config, so the learned weights carry
// over). The approximation set and estimator are rebuilt.
func (s *System) FineTune(newQueries workload.Workload, extraEpisodes int) error {
	if len(newQueries) == 0 {
		return fmt.Errorf("core: FineTune requires at least one query")
	}
	ctx, span := obs.StartSpan(context.Background(), "finetune")
	defer span.End()
	obs.Logger().Info("fine-tuning started",
		"k", s.cfg.K, "f", s.cfg.F, "seed", s.cfg.Seed,
		"new_queries", len(newQueries), "extra_episodes", extraEpisodes)
	s.train = workload.Merge(s.train, newQueries)
	pre, err := PreprocessContext(ctx, s.db, s.train, s.cfg)
	if err != nil {
		return err
	}
	s.pre = pre
	if extraEpisodes <= 0 {
		extraEpisodes = s.cfg.Episodes / 2
	}
	env := NewEnvironment(s.pre, s.cfg, 0)
	_, rlSpan := obs.StartSpan(ctx, "finetune/rl")
	s.stats.RL = s.agent.Train(env, extraEpisodes, nil)
	rlSpan.End()
	s.stats.FineTunes++
	if err := s.rebuildSet(0); err != nil {
		return err
	}
	s.fitEstimator()
	s.drift.ResetDrift()
	if obs.Enabled() {
		obs.Default().Counter("core/finetune/runs").Inc()
	}
	obs.Logger().Info("fine-tuning finished",
		"k", s.cfg.K, "f", s.cfg.F, "seed", s.cfg.Seed,
		"set_size", s.stats.SetSize, "fine_tunes", s.stats.FineTunes)
	return nil
}

// FineTuneFromDrift fine-tunes on the drift detector's accumulated queries.
// It is a no-op returning false when no drift has been detected.
func (s *System) FineTuneFromDrift(extraEpisodes int) (bool, error) {
	drifted := s.drift.Drifted()
	if len(drifted) < s.drift.Count {
		return false, nil
	}
	if err := s.FineTune(workload.FromStatements(drifted), extraEpisodes); err != nil {
		return false, err
	}
	return true, nil
}
