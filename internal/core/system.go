package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"asqprl/internal/embed"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/obs"
	"asqprl/internal/rl"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Stats reports what a training run did and how long it took.
type Stats struct {
	SetupTime       time.Duration
	PreprocessTime  time.Duration
	TrainTime       time.Duration
	RL              rl.TrainStats
	Representatives int
	Candidates      int
	SetSize         int
	FineTunes       int
}

// System is a trained ASQP-RL instance: it owns the approximation set, the
// trained agent, and the inference-time estimator, and it answers queries by
// routing them to the approximation set or the full database.
type System struct {
	cfg   Config
	db    *table.Database
	train workload.Workload
	pre   *Preprocessed
	agent *rl.Agent
	set   *table.Subset
	setDB *table.Database
	est   *Estimator
	drift *DriftDetector
	ref   *metrics.ReferenceCache
	stats Stats
}

// scoreOpts returns the system's scoring options: the shared full-database
// reference cache plus the configured parallelism.
func (s *System) scoreOpts() metrics.ScoreOptions {
	return metrics.ScoreOptions{Parallelism: s.cfg.Parallelism, Cache: s.ref}
}

// Train runs the full ASQP-RL pipeline of Algorithm 1 — preprocessing, RL
// training, set construction (Algorithm 2), and estimator fitting — and
// returns a queryable System.
func Train(db *table.Database, w workload.Workload, cfg Config) (*System, error) {
	return TrainContext(context.Background(), db, w, cfg)
}

// TrainContext is Train with cooperative cancellation and panic containment.
// Cancellation during preprocessing aborts with the context's error; once RL
// training has started, cancellation stops training between iterations and
// the partially-trained agent still yields a usable (if weaker) system —
// Stats().RL.Canceled records the interruption. Panics anywhere in the
// training pipeline (including injected ones) are recovered into errors.
func TrainContext(ctx context.Context, db *table.Database, w workload.Workload, cfg Config) (sys *System, err error) {
	defer func() {
		if r := recover(); r != nil {
			sys = nil
			err = fmt.Errorf("core: train panic recovered: %v", r)
			obs.Logger().Error("train panic recovered", "panic", r)
			if obs.Enabled() {
				obs.Default().Counter("core/train/panics_recovered").Inc()
			}
		}
	}()
	cfg = cfg.normalize()
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "train")
	defer span.End()
	obs.Logger().Info("training started",
		"k", cfg.K, "f", cfg.F, "seed", cfg.Seed,
		"episodes", cfg.Episodes, "workload", len(w))

	pre, err := PreprocessContext(ctx, db, w, cfg)
	if err != nil {
		obs.Logger().Error("preprocessing failed", "seed", cfg.Seed, "err", err)
		return nil, err
	}
	preDone := time.Now()

	s := &System{cfg: cfg, db: db, train: w, pre: pre, ref: metrics.NewReferenceCache(db)}
	stateDim, actions := envShape(cfg)
	s.agent, err = rl.NewAgent(cfg.RL, stateDim, actions)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	_, rlSpan := obs.StartSpan(ctx, "train/rl")
	s.trainAgent(ctx)
	rlSpan.Annotate("iterations", s.stats.RL.Iterations)
	rlSpan.Annotate("episodes", s.stats.RL.Episodes)
	rlSpan.End()
	if s.stats.RL.Canceled {
		obs.Logger().Warn("training canceled mid-RL; building set from partial agent",
			"iterations", s.stats.RL.Iterations, "episodes", s.stats.RL.Episodes)
		if obs.Enabled() {
			obs.Default().Counter("core/train/canceled").Inc()
		}
	}
	s.stats.TrainTime = time.Since(preDone)

	_, buildSpan := obs.StartSpan(ctx, "train/buildset")
	err = s.rebuildSet(0)
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	_, estSpan := obs.StartSpan(ctx, "train/estimator")
	s.fitEstimator()
	estSpan.End()
	s.drift = &DriftDetector{Confidence: cfg.DriftConfidence, Count: cfg.DriftCount}

	s.stats.PreprocessTime = preDone.Sub(start)
	s.stats.SetupTime = time.Since(start)
	s.stats.Representatives = len(pre.Reps)
	s.stats.Candidates = len(pre.Candidates)
	if obs.Enabled() {
		reg := obs.Default()
		reg.Counter("core/train/runs").Inc()
		reg.Gauge("core/train/set_size").Set(float64(s.stats.SetSize))
		reg.Histogram("core/train/preprocess_seconds").ObserveDuration(s.stats.PreprocessTime)
		reg.Histogram("core/train/rl_seconds").ObserveDuration(s.stats.TrainTime)
		reg.Histogram("core/train/setup_seconds").ObserveDuration(s.stats.SetupTime)
	}
	obs.Logger().Info("training finished",
		"k", cfg.K, "f", cfg.F, "seed", cfg.Seed,
		"setup", s.stats.SetupTime, "preprocess", s.stats.PreprocessTime,
		"rl", s.stats.TrainTime, "set_size", s.stats.SetSize,
		"representatives", s.stats.Representatives, "candidates", s.stats.Candidates,
		"final_return", s.stats.RL.FinalReturn, "iterations", s.stats.RL.Iterations)
	return s, nil
}

// trainAgent runs RL training with optional early stopping on return
// plateau (ASQP-Light), honoring ctx between iterations.
func (s *System) trainAgent(ctx context.Context) {
	env := NewEnvironment(s.pre, s.cfg, 0)
	best := math.Inf(-1)
	sinceBest := 0
	progress := func(iter, episodes int, meanReturn float64) bool {
		if s.cfg.EarlyStopPatience <= 0 {
			return true
		}
		if meanReturn > best+1e-6 {
			best = meanReturn
			sinceBest = 0
			return true
		}
		sinceBest++
		return sinceBest < s.cfg.EarlyStopPatience
	}
	s.stats.RL = s.agent.TrainContext(ctx, env, s.cfg.Episodes, progress)
}

// rebuildSet runs Algorithm 2: rollouts of the learned policy until the
// requested size is reached. Following the algorithm's "action sampled based
// on p(a|s,θ)", it performs one deterministic (argmax) rollout plus several
// stochastic ones and keeps the best-scoring set. reqSize <= 0 uses cfg.K.
func (s *System) rebuildSet(reqSize int) error {
	const stochasticRollouts = 7
	rng := rand.New(rand.NewSource(s.cfg.Seed + 31337))

	var bestSet *table.Subset
	best := math.Inf(-1)
	try := func(greedy bool, rolloutRng *rand.Rand) {
		env := NewEnvironment(s.pre, s.cfg, reqSize)
		state, mask := env.Reset()
		for {
			action := s.agent.SelectAction(state, mask, greedy, rolloutRng)
			if action < 0 {
				break
			}
			next, nextMask, _, done := env.Step(action)
			state, mask = next, nextMask
			if done {
				break
			}
		}
		if score := env.Score(); score > best {
			best = score
			bestSet = env.Subset()
		}
	}
	try(true, nil)
	for i := 0; i < stochasticRollouts; i++ {
		try(false, rng)
	}

	s.set = bestSet
	s.setDB = s.set.Materialize(s.db)
	s.stats.SetSize = s.set.Size()
	return nil
}

// fitEstimator measures per-query scores of the training workload on the
// built set and fits the answerability estimator on them.
func (s *System) fitEstimator() {
	emb := embed.Embedder{Dim: s.cfg.EmbedDim}
	scores, _ := metrics.PerQueryScoresWith(s.db, s.setDB, s.train, s.cfg.F, s.scoreOpts())
	s.est = NewEstimator(emb, s.train.Statements(), scores, s.cfg.EstimatorNeighbors, s.cfg.EstimatorThreshold)
}

// Set returns the approximation set (row references into the full database).
func (s *System) Set() *table.Subset { return s.set }

// SetDB returns the materialized approximation set as a database.
func (s *System) SetDB() *table.Database { return s.setDB }

// Config returns the system's normalized configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns training statistics.
func (s *System) Stats() Stats { return s.stats }

// Estimator exposes the answerability estimator.
func (s *System) Estimator() *Estimator { return s.est }

// DB returns the full database 𝒯. Shadow auditors use it as the ground
// truth for verifying approximation-set answers.
func (s *System) DB() *table.Database { return s.db }

// Drift exposes the interest-drift detector (Section 4.4).
func (s *System) Drift() *DriftDetector { return s.drift }

// BuildSet re-runs inference (Algorithm 2) for a different requested size
// without retraining, replacing the system's approximation set.
func (s *System) BuildSet(reqSize int) (*table.Subset, error) {
	if err := s.ensurePreprocessed(); err != nil {
		return nil, err
	}
	if err := s.rebuildSet(reqSize); err != nil {
		return nil, err
	}
	s.fitEstimator()
	return s.set, nil
}

// QueryResult is the outcome of answering one user query.
type QueryResult struct {
	// Table holds the result rows.
	Table *table.Table
	// FromApproximation is true when the approximation set answered the
	// query; false when the system fell back to the full database.
	FromApproximation bool
	// PredictedScore is the estimator's score prediction for the query.
	PredictedScore float64
	// Confidence is the estimator's similarity confidence.
	Confidence float64
	// DriftTriggered is true when this query tipped the drift detector over
	// its threshold; callers should fine-tune (see FineTuneFromDrift).
	DriftTriggered bool
	// Drifted is true when this query itself was added to the drift batch
	// (its deviation cleared the detector's confidence bar). The serving
	// layer logs exactly these observations to the WAL so recovery can
	// rebuild the detector state after a crash.
	Drifted bool
	// Degraded is true when the full answer could not be produced and the
	// result is a best-effort substitute (approximation-set answer after a
	// full-DB failure, or the partial rows before a row-budget trip). A
	// degraded result is never silently returned as exact.
	Degraded bool
	// DegradedReason names the guard or fault behind the degradation:
	// "deadline", "rows", "canceled", "fault", or "breaker" (the caller
	// routed around the full database via QueryOptions.SkipFull).
	DegradedReason string
	// FullAttempted is true when the full-database rung actually executed
	// (successfully or not). Serving-layer circuit breakers use it to
	// attribute failures to the expensive path rather than the set.
	FullAttempted bool
	// FullFailure names the guard behind the last full-database failure
	// ("deadline", "rows", "canceled", or "fault"); empty when the full
	// database answered or was never attempted.
	FullFailure string
}

// QueryOptions bounds one query's execution and tunes the fallback ladder of
// QueryContext.
type QueryOptions struct {
	// Timeout is the per-query wall-clock deadline (0 = none). It combines
	// with any deadline already carried by the context; the earlier wins.
	Timeout time.Duration
	// MaxRows bounds the number of result rows (0 = unlimited). When the
	// budget trips, the rows produced so far may be served tagged Degraded.
	MaxRows int
	// MaxIntermediateRows bounds join intermediates (0 = engine default).
	MaxIntermediateRows int
	// Retries is how many extra full-database attempts the fallback makes
	// after a transient failure (negative disables retries; 0 = default 2).
	Retries int
	// Backoff is the initial delay between fallback retries, doubling each
	// attempt (0 = default 5ms).
	Backoff time.Duration
	// SkipFull routes around the full-database rung entirely: queries the
	// estimator would send to the full database are answered from the
	// approximation set, tagged Degraded with reason "breaker". Serving
	// layers set it while their circuit breaker is open, so a sick full
	// database is never hit with more doomed work.
	SkipFull bool
	// SkipDrift keeps this query out of the drift detector. Serving layers
	// set it when live-traffic drift observation is disabled by operator
	// flag, so synthetic traffic (health probes, load tests) cannot poison
	// the fine-tuning signal.
	SkipDrift bool
}

func (o QueryOptions) normalize() QueryOptions {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Backoff <= 0 {
		o.Backoff = 5 * time.Millisecond
	}
	return o
}

// Query answers sql following the inference flow of Figure 1(b): the
// estimator predicts whether the approximation set can answer it; if so, the
// query runs on the approximation set, otherwise on the full database.
func (s *System) Query(sql string) (*QueryResult, error) {
	return s.QueryContext(context.Background(), sql, QueryOptions{})
}

// QueryContext is Query with a context, per-query resource guards, and a
// graceful-degradation ladder (see QueryStmtContext).
func (s *System) QueryContext(ctx context.Context, sql string, opts QueryOptions) (*QueryResult, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.QueryStmtContext(ctx, stmt, opts)
}

// QueryStmt is Query over a parsed statement.
func (s *System) QueryStmt(stmt *sqlparse.Select) (*QueryResult, error) {
	return s.QueryStmtContext(context.Background(), stmt, QueryOptions{})
}

// QueryStmtContext answers stmt under ctx and opts, degrading gracefully
// instead of failing hard. The ladder:
//
//  1. If the estimator predicts the approximation set answers the query, run
//     there first (the normal fast path).
//  2. On failure — or when the estimator routes past the set — run on the
//     full database, retrying transient failures with exponential backoff.
//  3. If the full database cannot answer either, serve a best-effort
//     substitute tagged Degraded with the guard that fired: the partial rows
//     a row-budget trip produced, or the approximation set's answer.
//
// Deadline expiry and cancellation abort the ladder immediately — the caller
// is gone, so retrying or degrading would only waste cycles; the returned
// error wraps engine.ErrDeadline / engine.ErrCanceled. Panics anywhere in
// the serve path (including injected ones) are recovered into errors, never
// crashing the serving process.
func (s *System) QueryStmtContext(ctx context.Context, stmt *sqlparse.Select, opts QueryOptions) (*QueryResult, error) {
	start := time.Now()
	opts = opts.normalize()
	// Trace the ladder: the span joins the caller's trace (the serving
	// layer's request span) or opens one for direct core callers. Every
	// degradation decision below lands on it as a span event, so a tail
	// trace explains *why* a query was slow or degraded, not just that it
	// was.
	ctx, span := obs.StartSpan(ctx, "core/query")
	defer span.End()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	// Aggregates are estimated through their SPJ rewrite (Section 4.4).
	estStmt := stmt
	if stmt.HasAggregates() {
		estStmt = engine.RewriteAggregateToSPJ(stmt)
	}
	pred, conf := s.est.Estimate(estStmt)
	out := &QueryResult{PredictedScore: pred, Confidence: conf}
	if !opts.SkipDrift {
		out.Drifted, out.DriftTriggered = s.drift.ObserveDetail(estStmt, conf)
	}

	eopts := engine.Options{
		MaxOutputRows:       opts.MaxRows,
		MaxIntermediateRows: opts.MaxIntermediateRows,
		Parallelism:         s.cfg.Parallelism,
		UseRowEngine:        s.cfg.RowEngine,
	}
	useApprox := pred >= s.cfg.EstimatorThreshold
	if span != nil {
		span.Annotate("sql", stmt.String())
		span.Annotate("predicted_score", pred)
		span.Annotate("confidence", conf)
		span.Annotate("route", map[bool]string{true: "approximation", false: "full"}[useApprox])
	}

	// Rung 1: approximation set, when the estimator trusts it.
	var approxErr error
	if useApprox {
		res, err := s.runGuarded(ctx, s.setDB, stmt, eopts, "approx")
		if err == nil {
			out.FromApproximation = true
			out.Table = res.Table
			s.recordQuery(out, start, nil)
			return out, nil
		}
		if terminal(err) {
			span.MarkError(err.Error())
			s.recordQuery(nil, start, err)
			return out, err
		}
		approxErr = err
		s.noteGuardTrip(err)
		span.Event("guard_trip", "rung", "approx", "kind", guardKindOrFault(err))
	}

	// Rung 2: full database, with retry/backoff for transient failures.
	// With SkipFull set (circuit breaker open) the rung is skipped wholesale
	// and the ladder drops straight to the degraded substitute.
	var fullErr error
	var partial *engine.Result
	if opts.SkipFull {
		if obs.Enabled() {
			obs.Default().Counter("core/query/full_skipped").Inc()
		}
		span.Event("breaker_skip", "rung", "full")
	} else {
		backoff := opts.Backoff
		for attempt := 0; attempt <= opts.Retries; attempt++ {
			if attempt > 0 {
				span.Event("retry", "attempt", attempt, "backoff", backoff.String())
				select {
				case <-ctx.Done():
					err := fmt.Errorf("%w: %v", engine.ErrCanceled, ctx.Err())
					if errors.Is(ctx.Err(), context.DeadlineExceeded) {
						err = fmt.Errorf("%w: %v", engine.ErrDeadline, ctx.Err())
					}
					span.MarkError(err.Error())
					s.recordQuery(nil, start, err)
					return out, err
				case <-time.After(backoff):
				}
				backoff *= 2
				if obs.Enabled() {
					obs.Default().Counter("core/query/retries").Inc()
				}
			}
			out.FullAttempted = true
			res, err := s.runGuarded(ctx, s.db, stmt, eopts, "full")
			if err == nil {
				out.FullFailure = ""
				out.FromApproximation = false
				out.Table = res.Table
				s.recordQuery(out, start, nil)
				return out, nil
			}
			fullErr = err
			if kind := engine.GuardKind(err); kind != "" {
				out.FullFailure = kind
			} else {
				out.FullFailure = "fault"
			}
			if terminal(err) {
				span.MarkError(err.Error())
				s.recordQuery(nil, start, err)
				return out, err
			}
			s.noteGuardTrip(err)
			span.Event("guard_trip", "rung", "full", "kind", out.FullFailure, "attempt", attempt)
			if res != nil && res.Table != nil {
				partial = res // row-budget trip carried partial rows
			}
			if errors.Is(err, engine.ErrRowBudget) {
				break // a budget trip repeats deterministically; don't retry
			}
		}
	}

	// Rung 3: tagged degraded substitute.
	reason := engine.GuardKind(fullErr)
	if reason == "" {
		reason = "fault"
	}
	if opts.SkipFull {
		reason = "breaker"
	}
	if partial != nil {
		out.Degraded = true
		out.DegradedReason = reason
		out.FromApproximation = false
		out.Table = partial.Table
		span.MarkDegraded(reason)
		span.Event("degraded", "reason", reason, "substitute", "partial_rows")
		s.recordQuery(out, start, nil)
		return out, nil
	}
	// Serve the approximation set's answer: first try when the estimator
	// routed past it, or a second chance after a transient rung-1 fault when
	// the full database is off-limits anyway.
	if !useApprox || opts.SkipFull {
		if res, err := s.runGuarded(ctx, s.setDB, stmt, eopts, "approx"); err == nil {
			out.Degraded = true
			out.DegradedReason = reason
			out.FromApproximation = true
			out.Table = res.Table
			span.MarkDegraded(reason)
			span.Event("degraded", "reason", reason, "substitute", "approximation")
			s.recordQuery(out, start, nil)
			return out, nil
		} else if approxErr == nil {
			approxErr = err
		}
	}
	if fullErr == nil {
		fullErr = approxErr
	}
	if fullErr == nil {
		fullErr = fmt.Errorf("core: query failed on every rung")
	}
	span.MarkError(fullErr.Error())
	s.recordQuery(nil, start, fullErr)
	return out, fullErr
}

// guardKindOrFault is GuardKind with "" mapped to "fault" for labeling.
func guardKindOrFault(err error) string {
	if kind := engine.GuardKind(err); kind != "" {
		return kind
	}
	return "fault"
}

// runGuarded executes stmt on db under ctx, converting panics into errors so
// a malformed plan or injected fault cannot crash the serving process. Each
// rung runs under its own child span ("core/rung/approx" or
// "core/rung/full"), which the engine's operator spans attach to; panic
// recoveries land on it as events.
func (s *System) runGuarded(ctx context.Context, db *table.Database, stmt *sqlparse.Select, eopts engine.Options, rung string) (res *engine.Result, err error) {
	ctx, rspan := obs.StartSpan(ctx, "core/rung/"+rung)
	defer rspan.End()
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: query panic recovered: %v", r)
			rspan.Event("panic_recovered", "panic", fmt.Sprint(r))
			rspan.MarkError(fmt.Sprintf("panic: %v", r))
			obs.LoggerCtx(ctx).Error("query panic recovered", "panic", r)
			if obs.Enabled() {
				obs.Default().Counter("core/query/panics_recovered").Inc()
			}
		}
	}()
	return engine.ExecuteWithContext(ctx, db, stmt, eopts)
}

// terminal reports whether err ends the ladder immediately: the caller's
// deadline expired or the query was canceled.
func terminal(err error) bool {
	return errors.Is(err, engine.ErrDeadline) || errors.Is(err, engine.ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// noteGuardTrip counts a non-terminal guard trip by kind.
func (s *System) noteGuardTrip(err error) {
	if !obs.Enabled() {
		return
	}
	kind := engine.GuardKind(err)
	if kind == "" {
		kind = "fault"
	}
	obs.Default().Counter("core/query/guard_trips/" + kind).Inc()
}

// recordQuery publishes one query's outcome to observability.
func (s *System) recordQuery(out *QueryResult, start time.Time, err error) {
	if !obs.Enabled() {
		return
	}
	reg := obs.Default()
	if err != nil {
		if kind := engine.GuardKind(err); kind != "" {
			reg.Counter("core/query/guard_trips/" + kind).Inc()
			if kind == "canceled" {
				reg.Counter("core/query/canceled").Inc()
			}
		}
		reg.Counter("core/query/errors").Inc()
		return
	}
	if out.Degraded {
		reg.Counter("core/query/degraded").Inc()
	}
	if out.FromApproximation {
		reg.Counter("core/query/approx").Inc()
	} else {
		reg.Counter("core/query/fallback").Inc()
	}
	if out.DriftTriggered {
		reg.Counter("core/query/drift_triggered").Inc()
	}
	reg.Histogram("core/query/seconds").ObserveDuration(time.Since(start))
}

// QueryApprox always answers from the approximation set, regardless of the
// estimator (used by experiments that measure raw set quality).
func (s *System) QueryApprox(stmt *sqlparse.Select) (*table.Table, error) {
	res, err := engine.ExecuteWith(s.setDB, stmt, engine.Options{})
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// ScoreOn evaluates the approximation set against a workload using
// Equation 1 with the system's frame size.
func (s *System) ScoreOn(w workload.Workload) (float64, error) {
	return metrics.ScoreWith(s.db, s.setDB, w, s.cfg.F, s.scoreOpts())
}

// FineTune merges new queries into the training workload, re-runs
// preprocessing, and continues training the existing agent for extraEpisodes
// (the network shapes are fixed by the config, so the learned weights carry
// over). The approximation set and estimator are rebuilt.
func (s *System) FineTune(newQueries workload.Workload, extraEpisodes int) error {
	return s.FineTuneContext(context.Background(), newQueries, extraEpisodes)
}

// FineTuneContext is FineTune with cooperative cancellation: preprocessing
// stops at stage boundaries and RL training stops between iterations.
func (s *System) FineTuneContext(ctx context.Context, newQueries workload.Workload, extraEpisodes int) error {
	if len(newQueries) == 0 {
		return fmt.Errorf("core: FineTune requires at least one query")
	}
	ctx, span := obs.StartSpan(ctx, "finetune")
	defer span.End()
	obs.Logger().Info("fine-tuning started",
		"k", s.cfg.K, "f", s.cfg.F, "seed", s.cfg.Seed,
		"new_queries", len(newQueries), "extra_episodes", extraEpisodes)
	s.train = workload.Merge(s.train, newQueries)
	pre, err := PreprocessContext(ctx, s.db, s.train, s.cfg)
	if err != nil {
		return err
	}
	s.pre = pre
	if extraEpisodes <= 0 {
		extraEpisodes = s.cfg.Episodes / 2
	}
	env := NewEnvironment(s.pre, s.cfg, 0)
	_, rlSpan := obs.StartSpan(ctx, "finetune/rl")
	s.stats.RL = s.agent.TrainContext(ctx, env, extraEpisodes, nil)
	rlSpan.End()
	s.stats.FineTunes++
	if err := s.rebuildSet(0); err != nil {
		return err
	}
	s.fitEstimator()
	s.drift.ResetDrift()
	if obs.Enabled() {
		obs.Default().Counter("core/finetune/runs").Inc()
	}
	obs.Logger().Info("fine-tuning finished",
		"k", s.cfg.K, "f", s.cfg.F, "seed", s.cfg.Seed,
		"set_size", s.stats.SetSize, "fine_tunes", s.stats.FineTunes)
	return nil
}

// FineTuneFromDrift fine-tunes on the drift detector's accumulated queries.
// It is a no-op returning false when no drift has been detected.
func (s *System) FineTuneFromDrift(extraEpisodes int) (bool, error) {
	return s.FineTuneFromDriftContext(context.Background(), extraEpisodes)
}

// FineTuneFromDriftContext is FineTuneFromDrift with cooperative cancellation
// (matching the FineTune/FineTuneContext convention). The drifted statements
// are snapshotted and cleared in one atomic detector operation, so concurrent
// QueryContext calls observing into the same detector can never have a
// statement both consumed here and dropped by a later reset. When the
// fine-tune fails the taken statements are not restored — the caller decides
// whether to retry on the same batch (see internal/retrain) or wait for
// fresh drift to accumulate.
func (s *System) FineTuneFromDriftContext(ctx context.Context, extraEpisodes int) (bool, error) {
	drifted := s.drift.Take(s.drift.Count)
	if drifted == nil {
		return false, nil
	}
	if err := s.FineTuneContext(ctx, workload.FromStatements(drifted), extraEpisodes); err != nil {
		return false, err
	}
	return true, nil
}

// TrainingWorkload returns a copy of the system's current training workload
// (the original workload plus everything merged in by fine-tuning).
// Validation gates sample held-back slices of it to check a retrained
// candidate for catastrophic forgetting.
func (s *System) TrainingWorkload() workload.Workload {
	return append(workload.Workload(nil), s.train...)
}

// Clone returns an independent copy of the system built through the CRC-framed
// snapshot path (SaveBytes -> LoadBytes): the clone shares only the immutable
// full database with the receiver — training workload, approximation set,
// agent networks, estimator, drift detector, and reference cache are all its
// own. A clone can therefore be fine-tuned, rebuilt, and discarded while the
// original keeps serving queries; this is the isolation primitive behind
// background retraining. Preprocessing artifacts are not copied (the snapshot
// does not carry them) and are rebuilt lazily on the clone when fine-tuning
// needs them.
func (s *System) Clone() (*System, error) {
	data, err := s.SaveBytes()
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	clone, err := LoadBytes(s.db, data)
	if err != nil {
		return nil, fmt.Errorf("core: clone: %w", err)
	}
	return clone, nil
}
