package core

import (
	"math/rand"
	"sync"
	"testing"

	"asqprl/internal/embed"
	"asqprl/internal/engine"
	"asqprl/internal/metrics"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// countRows executes a workload query and returns its result row count.
func countRows(db *table.Database, q workload.Query) (int, error) {
	return engine.Count(db, q.Stmt)
}

// embedderForTest returns the embedder used by estimator tests.
func embedderForTest() embed.Embedder { return embed.Embedder{Dim: 64} }

// mustParseCore parses sql or fails the test.
func mustParseCore(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

var (
	trainedOnce sync.Once
	trainedSys  *System
	trainedErr  error
)

// trainedSystem trains one small system and caches it for the tests that only
// need some trained system to query against.
func trainedSystem(t *testing.T) *System {
	t.Helper()
	trainedOnce.Do(func() {
		trainedSys, trainedErr = Train(testIMDB(), testWorkload(), testConfig())
	})
	if trainedErr != nil {
		t.Fatalf("training shared test system: %v", trainedErr)
	}
	return trainedSys
}

// randomBaseline averages the Equation-1 score of draws random subsets of
// size k, the RAN baseline of the paper's experiments.
func randomBaseline(t *testing.T, db *table.Database, w workload.Workload, k, f, draws int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var sum float64
	for i := 0; i < draws; i++ {
		rs := randomSubset(db, k, rng)
		s, err := metrics.Score(db, rs.Materialize(db), w, f)
		if err != nil {
			t.Fatal(err)
		}
		sum += s
	}
	return sum / float64(draws)
}
