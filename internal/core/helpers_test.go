package core

import (
	"asqprl/internal/embed"
	"asqprl/internal/engine"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// countRows executes a workload query and returns its result row count.
func countRows(db *table.Database, q workload.Query) (int, error) {
	return engine.Count(db, q.Stmt)
}

// embedderForTest returns the embedder used by estimator tests.
func embedderForTest() embed.Embedder { return embed.Embedder{Dim: 64} }
