package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"asqprl/internal/embed"
	"asqprl/internal/nn"
	"asqprl/internal/rl"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// snapshot is the serialized form of a trained System. The database itself
// is not serialized — a snapshot is restored against the same (or a
// compatible) database, mirroring how the paper's offline-trained model is
// attached to the live database at exploration time.
type snapshot struct {
	Config       Config
	TrainSQLs    []string
	QueryWeights []float64
	SetIDs       []table.RowID
	Actor        []byte
	Critic       []byte
	EstScores    []float64
	FineTunes    int
}

// Save serializes the trained system (configuration, training workload,
// approximation set, actor/critic weights, estimator scores) to w. The
// database is not included; pass the same database to Load.
func (s *System) Save(w io.Writer) error {
	actor, err := s.agent.ActorParams().Marshal()
	if err != nil {
		return fmt.Errorf("core: save actor: %w", err)
	}
	critic, err := s.agent.CriticParams().Marshal()
	if err != nil {
		return fmt.Errorf("core: save critic: %w", err)
	}
	snap := snapshot{
		Config:    s.cfg,
		SetIDs:    s.set.IDs(),
		Actor:     actor,
		Critic:    critic,
		EstScores: s.est.scores,
		FineTunes: s.stats.FineTunes,
	}
	for _, q := range s.train {
		snap.TrainSQLs = append(snap.TrainSQLs, q.SQL)
		snap.QueryWeights = append(snap.QueryWeights, q.Weight)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// SaveBytes serializes the system to a byte slice.
func (s *System) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores a system previously written by Save, attaching it to db.
// The database must contain the tables (with at least as many rows) that the
// approximation set references.
func Load(db *table.Database, r io.Reader) (*System, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if len(snap.TrainSQLs) == 0 {
		return nil, fmt.Errorf("core: load: snapshot has no training workload")
	}
	w, err := workload.New(snap.TrainSQLs...)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	for i := range w {
		if i < len(snap.QueryWeights) {
			w[i].Weight = snap.QueryWeights[i]
		}
	}

	cfg := snap.Config.normalize()
	s := &System{cfg: cfg, db: db, train: w}

	// Validate and restore the approximation set.
	s.set = table.NewSubset()
	for _, id := range snap.SetIDs {
		t := db.Table(id.Table)
		if t == nil || id.Row < 0 || id.Row >= t.NumRows() {
			return nil, fmt.Errorf("core: load: set references %v, absent from this database", id)
		}
		s.set.Add(id)
	}
	s.setDB = s.set.Materialize(db)
	s.stats.SetSize = s.set.Size()
	s.stats.FineTunes = snap.FineTunes

	// Restore networks into a fresh agent of the right shape.
	stateDim, actions := envShape(cfg)
	s.agent = restoreAgent(cfg, stateDim, actions, snap.Actor, snap.Critic)
	if s.agent == nil {
		return nil, fmt.Errorf("core: load: network shapes do not match configuration")
	}

	// Restore the estimator from the recorded per-query scores (or refit if
	// the snapshot predates them).
	emb := embed.Embedder{Dim: cfg.EmbedDim}
	if len(snap.EstScores) == len(w) {
		s.est = NewEstimator(emb, w.Statements(), snap.EstScores, cfg.EstimatorNeighbors, cfg.EstimatorThreshold)
	} else {
		s.fitEstimator()
	}
	s.drift = &DriftDetector{Confidence: cfg.DriftConfidence, Count: cfg.DriftCount}

	// Preprocessing artifacts are not serialized; rebuild them lazily when
	// fine-tuning is requested.
	return s, nil
}

// LoadBytes restores a system from bytes produced by SaveBytes.
func LoadBytes(db *table.Database, data []byte) (*System, error) {
	return Load(db, bytes.NewReader(data))
}

// restoreAgent reconstructs an agent and overwrites its networks with the
// serialized parameters; it returns nil on shape mismatch.
func restoreAgent(cfg Config, stateDim, actions int, actorBytes, criticBytes []byte) *rl.Agent {
	actor, err := nn.Unmarshal(actorBytes)
	if err != nil {
		return nil
	}
	critic, err := nn.Unmarshal(criticBytes)
	if err != nil {
		return nil
	}
	if actor.InputDim() != stateDim || actor.OutputDim() != actions ||
		critic.InputDim() != stateDim || critic.OutputDim() != 1 {
		return nil
	}
	agent := rl.NewAgent(cfg.RL, stateDim, actions)
	agent.ActorParams().CopyFrom(actor)
	agent.CriticParams().CopyFrom(critic)
	return agent
}

// ensurePreprocessed rebuilds the preprocessing artifacts, which are not
// serialized by Save and are needed again for BuildSet on a loaded system.
func (s *System) ensurePreprocessed() error {
	if s.pre != nil {
		return nil
	}
	pre, err := Preprocess(s.db, s.train, s.cfg)
	if err != nil {
		return err
	}
	s.pre = pre
	return nil
}
