package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"asqprl/internal/embed"
	"asqprl/internal/metrics"
	"asqprl/internal/nn"
	"asqprl/internal/rl"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Snapshot framing: a fixed magic, a format version, a payload length, and a
// CRC-32 of the payload, followed by the gob-encoded snapshot. The frame lets
// Load reject truncated or bit-flipped files with a descriptive error instead
// of feeding garbage to the gob decoder. Frameless input (written before the
// frame existed) is still accepted via a legacy fallback.
var snapMagic = [4]byte{'A', 'S', 'Q', 'P'}

const (
	snapVersion    = 2
	snapHeaderLen  = 4 + 1 + 8 + 4 // magic + version + length + crc
	snapMaxPayload = 1 << 31       // sanity cap against absurd length prefixes
)

// snapshot is the serialized form of a trained System. The database itself
// is not serialized — a snapshot is restored against the same (or a
// compatible) database, mirroring how the paper's offline-trained model is
// attached to the live database at exploration time.
type snapshot struct {
	Config       Config
	TrainSQLs    []string
	QueryWeights []float64
	SetIDs       []table.RowID
	Actor        []byte
	Critic       []byte
	EstScores    []float64
	FineTunes    int
}

// Save serializes the trained system (configuration, training workload,
// approximation set, actor/critic weights, estimator scores) to w. The
// database is not included; pass the same database to Load.
func (s *System) Save(w io.Writer) error {
	actor, err := s.agent.ActorParams().Marshal()
	if err != nil {
		return fmt.Errorf("core: save actor: %w", err)
	}
	critic, err := s.agent.CriticParams().Marshal()
	if err != nil {
		return fmt.Errorf("core: save critic: %w", err)
	}
	snap := snapshot{
		Config:    s.cfg,
		SetIDs:    s.set.IDs(),
		Actor:     actor,
		Critic:    critic,
		EstScores: s.est.scores,
		FineTunes: s.stats.FineTunes,
	}
	for _, q := range s.train {
		snap.TrainSQLs = append(snap.TrainSQLs, q.SQL)
		snap.QueryWeights = append(snap.QueryWeights, q.Weight)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	var header [snapHeaderLen]byte
	copy(header[:4], snapMagic[:])
	header[4] = snapVersion
	binary.LittleEndian.PutUint64(header[5:13], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[13:17], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// SaveBytes serializes the system to a byte slice.
func (s *System) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Load restores a system previously written by Save, attaching it to db.
// The database must contain the tables (with at least as many rows) that the
// approximation set references. Truncated or corrupted input is rejected
// with a descriptive error — the frame's length and checksum are verified
// before any decoding happens.
func Load(db *table.Database, r io.Reader) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	return LoadBytes(db, data)
}

// decodeFrame validates the snapshot frame around data and returns the gob
// payload. Frameless (legacy) input is returned as-is.
func decodeFrame(data []byte) ([]byte, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], snapMagic[:]) {
		return data, nil // legacy frameless snapshot
	}
	if len(data) < snapHeaderLen {
		return nil, fmt.Errorf("core: load: truncated header: %d of %d bytes", len(data), snapHeaderLen)
	}
	if v := data[4]; v != snapVersion {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d (want %d)", v, snapVersion)
	}
	n := binary.LittleEndian.Uint64(data[5:13])
	if n > snapMaxPayload {
		return nil, fmt.Errorf("core: load: implausible payload length %d", n)
	}
	payload := data[snapHeaderLen:]
	if uint64(len(payload)) < n {
		return nil, fmt.Errorf("core: load: truncated payload: %d of %d bytes", len(payload), n)
	}
	payload = payload[:n]
	want := binary.LittleEndian.Uint32(data[13:17])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("core: load: checksum mismatch: %08x != %08x (corrupt snapshot)", got, want)
	}
	return payload, nil
}

// decodeSnapshot gob-decodes payload with a panic guard: gob panics on some
// malformed inputs, and a corrupt file must surface as an error, not a crash.
func decodeSnapshot(payload []byte) (snap snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: load: malformed snapshot: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("core: load: decode: %w", err)
	}
	return snap, nil
}

func loadBytes(db *table.Database, data []byte) (*System, error) {
	payload, err := decodeFrame(data)
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	if len(snap.TrainSQLs) == 0 {
		return nil, fmt.Errorf("core: load: snapshot has no training workload")
	}
	w, err := workload.New(snap.TrainSQLs...)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	for i := range w {
		if i < len(snap.QueryWeights) {
			w[i].Weight = snap.QueryWeights[i]
		}
	}

	cfg := snap.Config.normalize()
	s := &System{cfg: cfg, db: db, train: w, ref: metrics.NewReferenceCache(db)}

	// Validate and restore the approximation set.
	s.set = table.NewSubset()
	for _, id := range snap.SetIDs {
		t := db.Table(id.Table)
		if t == nil || id.Row < 0 || id.Row >= t.NumRows() {
			return nil, fmt.Errorf("core: load: set references %v, absent from this database", id)
		}
		s.set.Add(id)
	}
	s.setDB = s.set.Materialize(db)
	s.stats.SetSize = s.set.Size()
	s.stats.FineTunes = snap.FineTunes

	// Restore networks into a fresh agent of the right shape.
	stateDim, actions := envShape(cfg)
	agent, err := restoreAgent(cfg, stateDim, actions, snap.Actor, snap.Critic)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	s.agent = agent

	// Restore the estimator from the recorded per-query scores (or refit if
	// the snapshot predates them).
	emb := embed.Embedder{Dim: cfg.EmbedDim}
	if len(snap.EstScores) == len(w) {
		s.est = NewEstimator(emb, w.Statements(), snap.EstScores, cfg.EstimatorNeighbors, cfg.EstimatorThreshold)
	} else {
		s.fitEstimator()
	}
	s.drift = &DriftDetector{Confidence: cfg.DriftConfidence, Count: cfg.DriftCount}

	// Preprocessing artifacts are not serialized; rebuild them lazily when
	// fine-tuning is requested.
	return s, nil
}

// LoadBytes restores a system from bytes produced by SaveBytes.
func LoadBytes(db *table.Database, data []byte) (*System, error) {
	return loadBytes(db, data)
}

// restoreAgent reconstructs an agent and overwrites its networks with the
// serialized parameters.
func restoreAgent(cfg Config, stateDim, actions int, actorBytes, criticBytes []byte) (agent *rl.Agent, err error) {
	defer func() {
		if r := recover(); r != nil {
			agent, err = nil, fmt.Errorf("restore agent: malformed network bytes: %v", r)
		}
	}()
	actor, err := nn.Unmarshal(actorBytes)
	if err != nil {
		return nil, fmt.Errorf("restore actor: %w", err)
	}
	critic, err := nn.Unmarshal(criticBytes)
	if err != nil {
		return nil, fmt.Errorf("restore critic: %w", err)
	}
	if actor.InputDim() != stateDim || actor.OutputDim() != actions ||
		critic.InputDim() != stateDim || critic.OutputDim() != 1 {
		return nil, fmt.Errorf("network shapes (%dx%d, %dx%d) do not match configuration (%dx%d, %dx1)",
			actor.InputDim(), actor.OutputDim(), critic.InputDim(), critic.OutputDim(),
			stateDim, actions, stateDim)
	}
	agent, err = rl.NewAgent(cfg.RL, stateDim, actions)
	if err != nil {
		return nil, fmt.Errorf("restore agent: %w", err)
	}
	agent.ActorParams().CopyFrom(actor)
	agent.CriticParams().CopyFrom(critic)
	return agent, nil
}

// ensurePreprocessed rebuilds the preprocessing artifacts, which are not
// serialized by Save and are needed again for BuildSet on a loaded system.
func (s *System) ensurePreprocessed() error {
	if s.pre != nil {
		return nil
	}
	pre, err := Preprocess(s.db, s.train, s.cfg)
	if err != nil {
		return err
	}
	s.pre = pre
	return nil
}
