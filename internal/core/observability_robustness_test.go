package core

import (
	"context"
	"testing"
	"time"

	"asqprl/internal/faults"
	"asqprl/internal/obs"
)

// TestRobustnessMetricsInSnapshot exercises the three robustness paths —
// a degraded query, a guard trip, and a watchdog recovery — with
// observability enabled, and asserts the counters the /metrics endpoint
// exposes for them are present in the registry snapshot.
func TestRobustnessMetricsInSnapshot(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.Default().Reset()
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.Default().Reset()
	})

	// A NaN-poisoning fault during training drives rl/recoveries.
	faults.Enable(faults.NewSchedule(1, faults.Injection{
		Point:    faults.PointRLUpdate,
		Kind:     faults.KindError,
		After:    1,
		MaxFires: 1,
	}))
	sys, err := Train(testIMDB(), testWorkload(), testConfig())
	faults.Disable()
	if err != nil {
		t.Fatal(err)
	}

	// A row-budget trip on a full-database query drives the degraded and
	// guard-trip counters.
	res, err := sys.QueryContext(context.Background(),
		"SELECT * FROM name WHERE birth_year > 1800", QueryOptions{MaxRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected a degraded result")
	}

	// An expired deadline drives the deadline guard-trip counter.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := sys.QueryContext(ctx, "SELECT * FROM title WHERE rating > 1", QueryOptions{}); err == nil {
		t.Fatal("expected a deadline error")
	}

	snap := obs.Default().Snapshot()
	for _, name := range []string{
		"core/query/degraded",
		"core/query/guard_trips/rows",
		"core/query/guard_trips/deadline",
		"rl/recoveries",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q absent from /metrics snapshot (counters: %v)", name, snap.Counters)
		}
	}
	if snap.Counters["rl/recoveries"] != int64(sys.Stats().RL.Recoveries) {
		t.Errorf("rl/recoveries = %d, want %d", snap.Counters["rl/recoveries"], sys.Stats().RL.Recoveries)
	}
}
