package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"asqprl/internal/cluster"
	"asqprl/internal/embed"
	"asqprl/internal/engine"
	"asqprl/internal/faults"
	"asqprl/internal/obs"
	"asqprl/internal/relax"
	"asqprl/internal/sample"
	"asqprl/internal/sqlparse"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// ResultTuple is one tracked result row of a representative query: the set of
// distinct base-table rows that must all be present in the approximation set
// for the tuple to appear in the query's answer.
type ResultTuple struct {
	Rows []table.RowID
}

// RepQuery is one query representative after clustering (Section 4.2).
type RepQuery struct {
	// Stmt is the original (SPJ-rewritten) medoid statement; its results
	// define the training reward.
	Stmt *sqlparse.Select
	// Relaxed is the relaxed variant executed to enlarge the action space.
	Relaxed *sqlparse.Select
	// Weight aggregates the workload weights of the cluster's members.
	Weight float64
	// Total is |q(𝒯)|: the full result size of the original representative.
	Total int
	// Tuples are the tracked result tuples (all of them when Total is small,
	// a uniform sample capped at MaxTrackedPerQuery otherwise).
	Tuples []ResultTuple
	// RelaxedTotal and RelaxedTuples track the relaxed variant's results;
	// covering them is rewarded at Config.RelaxRewardWeight, implementing
	// the paper's training on generalized queries (challenge C4) without
	// unanchoring the reward from the real workload.
	RelaxedTotal  int
	RelaxedTuples []ResultTuple
}

// Need returns min(F, Total), the number of result tuples worth covering.
func (r *RepQuery) Need(frameSize int) int {
	if r.Total < frameSize {
		return r.Total
	}
	return frameSize
}

// Candidate is one action of the RL action space: a group of base rows
// originating from one (or more coinciding) joined result rows.
type Candidate struct {
	Rows []table.RowID
}

// tupleRef addresses a tracked result tuple of a representative query.
// relaxed marks tuples of the relaxed variant.
type tupleRef struct {
	q, t    int
	relaxed bool
}

// Preprocessed is the output of the data and query pre-processing phase:
// the inputs the RL environments train on.
type Preprocessed struct {
	DB         *table.Database
	Reps       []RepQuery
	Candidates []Candidate
	// RowToTuples indexes, for every base row appearing in a tracked tuple,
	// the tuples that require it.
	RowToTuples map[table.RowID][]tupleRef
	// Aggregate workload statistics for reporting.
	ExecutedQueries int
	TotalCandidates int // before subsampling
}

// Preprocess runs the full pipeline of Figure 1(a): relaxation, query
// embedding, representative selection, execution, variational subsampling,
// and action-space construction. Aggregate queries in the workload are
// rewritten to SPJ form first (Section 3).
func Preprocess(db *table.Database, w workload.Workload, cfg Config) (*Preprocessed, error) {
	return PreprocessContext(context.Background(), db, w, cfg)
}

// stageCheck gates entry into one named preprocessing stage: it fires any
// fault armed at core/preprocess/<name> and then honors cancellation, so a
// canceled pipeline stops at the next stage boundary instead of running the
// remaining (possibly expensive) stages to completion.
func stageCheck(ctx context.Context, name string) error {
	if faults.Active() {
		if err := faults.Inject("core/preprocess/" + name); err != nil {
			return fmt.Errorf("core: preprocess %s: %w", name, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: preprocess %s: %w", name, err)
	}
	return nil
}

// PreprocessContext is Preprocess with an explicit context: the preprocessing
// span tree nests under any span already carried by ctx (the training
// pipeline passes its "train" span here), each named stage — relax, embed,
// select, execute, subsample — checks for cancellation at entry, and
// representative executions run under ctx so a cancellation interrupts even a
// long join mid-scan.
func PreprocessContext(ctx context.Context, db *table.Database, w workload.Workload, cfg Config) (*Preprocessed, error) {
	cfg = cfg.normalize()
	if len(w) == 0 {
		return nil, fmt.Errorf("core: empty workload (use GenerateWorkload for the no-workload mode)")
	}
	ctx, root := obs.StartSpan(ctx, "preprocess")
	defer root.End()
	root.Annotate("workload", len(w))
	root.Annotate("k", cfg.K)
	root.Annotate("f", cfg.F)
	rng := rand.New(rand.NewSource(cfg.Seed))
	emb := embed.Embedder{Dim: cfg.EmbedDim}

	// 1. Rewrite aggregates to SPJ and relax (lines 1-2 of Algorithm 1).
	if err := stageCheck(ctx, "relax"); err != nil {
		return nil, err
	}
	_, relaxSpan := obs.StartSpan(ctx, "preprocess/relax")
	originals := make([]*sqlparse.Select, len(w))
	relaxed := make([]*sqlparse.Select, len(w))
	for i, q := range w {
		spj := engine.RewriteAggregateToSPJ(q.Stmt)
		spj.Limit = -1 // cover full results, not a page
		originals[i] = spj
		relaxed[i] = relax.Relax(spj, relax.Options{Factor: cfg.RelaxFactor, DropConjunct: cfg.RelaxDrop})
	}
	relaxSpan.End()

	// Embed the relaxed queries for clustering.
	if err := stageCheck(ctx, "embed"); err != nil {
		return nil, err
	}
	_, embedSpan := obs.StartSpan(ctx, "preprocess/embed")
	vecs := make([][]float64, len(w))
	for i := range w {
		vecs[i] = emb.Query(relaxed[i])
	}
	embedSpan.End()

	// 2. Representative selection by clustering the embedded queries.
	if err := stageCheck(ctx, "select"); err != nil {
		return nil, err
	}
	_, selectSpan := obs.StartSpan(ctx, "preprocess/select")
	numReps := cfg.NumRepresentatives
	if numReps > len(w) {
		numReps = len(w)
	}
	executed := int(float64(numReps) * cfg.TrainFraction)
	if executed < 1 {
		executed = 1
	}
	assign := cluster.KMeans(vecs, numReps, 30, rng)
	medoids := medoidsOf(vecs, assign)

	// Cluster weights: sum of member weights.
	clusterWeight := make([]float64, len(medoids))
	for i := range w {
		ci := assign.Assignments[i]
		if ci < len(clusterWeight) {
			clusterWeight[ci] += w[i].Weight
		}
	}
	// Order representatives by weight and keep the executed fraction
	// (ASQP-Light / Figure 10: the most important queries run first).
	order := make([]int, len(medoids))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return clusterWeight[order[a]] > clusterWeight[order[b]] })
	if executed < len(order) {
		order = order[:executed]
	}
	selectSpan.Annotate("representatives", len(order))
	selectSpan.End()

	pre := &Preprocessed{
		DB:          db,
		RowToTuples: make(map[table.RowID][]tupleRef),
	}

	// 3. Execute representatives with lineage. The original medoid query's
	// result tuples define the reward (what the approximation set must
	// cover); the relaxed query's result tuples enlarge the candidate
	// action space beyond the known workload (challenge C4).
	if err := stageCheck(ctx, "execute"); err != nil {
		return nil, err
	}
	execCtx, execSpan := obs.StartSpan(ctx, "preprocess/execute")
	type candInfo struct {
		rows []table.RowID
		key  string
		sig  []int // representative indices that reference it
	}
	candByKey := map[string]*candInfo{}
	var candOrder []string
	addCandidate := func(rows []table.RowID, qIdx int) *candInfo {
		key := rowsKey(rows)
		info := candByKey[key]
		if info == nil {
			info = &candInfo{rows: rows, key: key}
			candByKey[key] = info
			candOrder = append(candOrder, key)
		}
		info.sig = append(info.sig, qIdx)
		return info
	}

	for _, ci := range order {
		orig := originals[medoids[ci]]
		_, repSpan := obs.StartSpan(execCtx, "preprocess/execute/representative")
		res, err := engine.ExecuteWithContext(ctx, db, orig, engine.Options{TrackLineage: true})
		if err != nil {
			repSpan.End()
			execSpan.End()
			return nil, fmt.Errorf("core: executing representative %q: %w", orig, err)
		}
		rep := RepQuery{
			Stmt:    orig,
			Relaxed: relaxed[medoids[ci]],
			Weight:  clusterWeight[ci],
			Total:   res.Table.NumRows(),
		}
		qIdx := len(pre.Reps)

		// Deduplicate lineage row-sets, then sample down to the cap.
		lineages := dedupeLineages(res.Lineage)
		tracked := lineages
		if len(lineages) > cfg.MaxTrackedPerQuery {
			idx := sample.Uniform(len(lineages), cfg.MaxTrackedPerQuery, rng)
			tracked = make([][]table.RowID, len(idx))
			for i, j := range idx {
				tracked[i] = lineages[j]
			}
		}
		for _, rows := range tracked {
			tIdx := len(rep.Tuples)
			rep.Tuples = append(rep.Tuples, ResultTuple{Rows: rows})
			for _, id := range rows {
				pre.RowToTuples[id] = append(pre.RowToTuples[id], tupleRef{q: qIdx, t: tIdx})
			}
		}
		// Bundle the representative's result tuples into group actions.
		for _, group := range chunkRowSets(tracked, cfg.ActionGroupSize, rng) {
			addCandidate(group, qIdx)
		}

		// Relaxed execution: extra candidates and weakly-rewarded tracked
		// tuples (generalization beyond the workload). Cap the lineage to
		// keep preprocessing bounded.
		relRes, err := engine.ExecuteWithContext(ctx, db, rep.Relaxed, engine.Options{TrackLineage: true})
		if err != nil && terminal(err) {
			repSpan.End()
			execSpan.End()
			return nil, fmt.Errorf("core: executing relaxed representative: %w", err)
		}
		if err == nil {
			rep.RelaxedTotal = relRes.Table.NumRows()
			relLineages := dedupeLineages(relRes.Lineage)
			if len(relLineages) > cfg.MaxTrackedPerQuery {
				idx := sample.Uniform(len(relLineages), cfg.MaxTrackedPerQuery, rng)
				sampled := make([][]table.RowID, len(idx))
				for i, j := range idx {
					sampled[i] = relLineages[j]
				}
				relLineages = sampled
			}
			for _, rows := range relLineages {
				tIdx := len(rep.RelaxedTuples)
				rep.RelaxedTuples = append(rep.RelaxedTuples, ResultTuple{Rows: rows})
				for _, id := range rows {
					pre.RowToTuples[id] = append(pre.RowToTuples[id], tupleRef{q: qIdx, t: tIdx, relaxed: true})
				}
			}
			for _, group := range chunkRowSets(relLineages, cfg.ActionGroupSize, rng) {
				addCandidate(group, qIdx)
			}
		}
		repSpan.Annotate("rows", rep.Total)
		repSpan.End()
		pre.Reps = append(pre.Reps, rep)
		pre.ExecutedQueries++
	}
	execSpan.Annotate("executed", pre.ExecutedQueries)
	execSpan.End()

	// Normalize representative weights.
	var wTotal float64
	for i := range pre.Reps {
		wTotal += pre.Reps[i].Weight
	}
	if wTotal > 0 {
		for i := range pre.Reps {
			pre.Reps[i].Weight /= wTotal
		}
	}

	// 4. Variational subsampling of the candidate space (Section 4.2): the
	// stratification signature is the set of representatives referencing the
	// candidate, so candidates serving rare queries survive.
	if err := stageCheck(ctx, "subsample"); err != nil {
		return nil, err
	}
	_, subsampleSpan := obs.StartSpan(ctx, "preprocess/subsample")
	pre.TotalCandidates = len(candOrder)
	sigs := make([]string, len(candOrder))
	for i, key := range candOrder {
		sig := candByKey[key].sig
		parts := make([]string, len(sig))
		for j, q := range sig {
			parts[j] = strconv.Itoa(q)
		}
		sigs[i] = strings.Join(parts, ",")
	}
	keep := sample.Variational(sigs, cfg.ActionSpaceSize, rng)
	for _, i := range keep {
		pre.Candidates = append(pre.Candidates, Candidate{Rows: candByKey[candOrder[i]].rows})
	}
	subsampleSpan.Annotate("candidates_in", pre.TotalCandidates)
	subsampleSpan.Annotate("candidates_out", len(pre.Candidates))
	subsampleSpan.End()
	if len(pre.Candidates) == 0 {
		return nil, fmt.Errorf("core: preprocessing produced no candidate actions (all representative queries returned empty results)")
	}
	if obs.Enabled() {
		reg := obs.Default()
		reg.Counter("core/preprocess/runs").Inc()
		reg.Counter("core/preprocess/executed_queries").Add(int64(pre.ExecutedQueries))
		reg.Gauge("core/preprocess/representatives").Set(float64(len(pre.Reps)))
		reg.Gauge("core/preprocess/candidates").Set(float64(len(pre.Candidates)))
		reg.Gauge("core/preprocess/total_candidates").Set(float64(pre.TotalCandidates))
	}
	return pre, nil
}

// medoidsOf picks, per cluster, the member closest to the centroid.
func medoidsOf(vecs [][]float64, res cluster.Result) []int {
	medoids := make([]int, 0, len(res.Centroids))
	for ci := range res.Centroids {
		best, bestD := -1, -1.0
		for i, v := range vecs {
			if res.Assignments[i] != ci {
				continue
			}
			d := 0.0
			for j := range v {
				diff := v[j] - res.Centroids[ci][j]
				d += diff * diff
			}
			if best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			medoids = append(medoids, best)
		} else {
			medoids = append(medoids, 0)
		}
	}
	return medoids
}

// chunkRowSets bundles result-tuple row-sets into groups of up to groupSize
// tuples, unioning their rows. The input order is shuffled so each group
// mixes tuples from across the result rather than consecutive runs.
func chunkRowSets(rowSets [][]table.RowID, groupSize int, rng *rand.Rand) [][]table.RowID {
	if groupSize <= 1 {
		return rowSets
	}
	idx := rng.Perm(len(rowSets))
	var out [][]table.RowID
	for start := 0; start < len(idx); start += groupSize {
		end := start + groupSize
		if end > len(idx) {
			end = len(idx)
		}
		var union []table.RowID
		for _, i := range idx[start:end] {
			union = append(union, rowSets[i]...)
		}
		out = append(out, normalizeRows(union))
	}
	return out
}

// dedupeLineages removes duplicate row-sets and normalizes each set (sorted,
// distinct rows).
func dedupeLineages(lineage [][]table.RowID) [][]table.RowID {
	seen := map[string]bool{}
	var out [][]table.RowID
	for _, rows := range lineage {
		norm := normalizeRows(rows)
		key := rowsKey(norm)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, norm)
	}
	return out
}

// normalizeRows sorts and dedupes a row-set.
func normalizeRows(rows []table.RowID) []table.RowID {
	cp := append([]table.RowID(nil), rows...)
	sort.Slice(cp, func(a, b int) bool {
		if cp[a].Table != cp[b].Table {
			return cp[a].Table < cp[b].Table
		}
		return cp[a].Row < cp[b].Row
	})
	out := cp[:0]
	for i, r := range cp {
		if i > 0 && r == cp[i-1] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// rowsKey builds a canonical key for a normalized row-set.
func rowsKey(rows []table.RowID) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.Table)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(r.Row))
		b.WriteByte('|')
	}
	return b.String()
}
