package core

import (
	"testing"

	"asqprl/internal/obs"
)

// TestTrainProducesSpansAndSeries runs a small end-to-end training with
// observability enabled and checks the acceptance surface: a per-stage
// preprocessing span tree nested under the train span, and non-empty
// per-iteration learning-curve series in the registry.
func TestTrainProducesSpansAndSeries(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	obs.Default().Reset()
	obs.ResetSpans()
	t.Cleanup(func() {
		obs.SetEnabled(prev)
		obs.Default().Reset()
		obs.ResetSpans()
	})

	cfg := testConfig()
	cfg.Episodes = 8
	sys, err := Train(testIMDB(), testWorkload(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Stats().RL.Iterations == 0 {
		t.Fatal("no RL iterations ran")
	}

	var train *obs.SpanSnapshot
	for _, s := range obs.RecentSpans() {
		if s.Name == "train" {
			snap := s
			train = &snap
		}
	}
	if train == nil {
		t.Fatal("no train span recorded")
	}
	var pre *obs.SpanSnapshot
	for i := range train.Children {
		if train.Children[i].Name == "preprocess" {
			pre = &train.Children[i]
		}
	}
	if pre == nil {
		t.Fatalf("train span has no preprocess child: %+v", train.Children)
	}
	stages := map[string]bool{}
	for _, c := range pre.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{
		"preprocess/relax", "preprocess/embed", "preprocess/select",
		"preprocess/execute", "preprocess/subsample",
	} {
		if !stages[want] {
			t.Errorf("preprocess span missing stage %q (have %v)", want, stages)
		}
	}

	snap := obs.Default().Snapshot()
	for _, name := range []string{"rl/mean_return", "rl/policy_loss", "rl/entropy"} {
		if got := len(snap.Series[name]); got != sys.Stats().RL.Iterations {
			t.Errorf("series %q has %d points, want %d", name, got, sys.Stats().RL.Iterations)
		}
	}
	if snap.Counters["engine/queries"] == 0 {
		t.Error("preprocessing should have recorded engine query metrics")
	}
	if snap.Gauges["core/train/set_size"] != float64(sys.Stats().SetSize) {
		t.Errorf("core/train/set_size = %f, want %d", snap.Gauges["core/train/set_size"], sys.Stats().SetSize)
	}
}
