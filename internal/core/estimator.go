package core

import (
	"math"
	"sort"
	"sync"

	"asqprl/internal/embed"
	"asqprl/internal/sqlparse"
)

// Estimator predicts, for an incoming query, the score the current
// approximation set would achieve on it — without executing the query. It
// implements the inference-time answerability check of Section 4.4: the
// prediction combines the query's embedding-space proximity to the training
// workload with the model's measured performance on those training queries.
type Estimator struct {
	emb       embed.Embedder
	vecs      [][]float64 // training-query embeddings
	scores    []float64   // achieved per-query scores on the built set
	neighbors int
	threshold float64
}

// NewEstimator builds an estimator from the training queries and their
// measured per-query scores over the approximation set.
func NewEstimator(emb embed.Embedder, stmts []*sqlparse.Select, scores []float64, neighbors int, threshold float64) *Estimator {
	e := &Estimator{
		emb:       emb,
		scores:    append([]float64(nil), scores...),
		neighbors: neighbors,
		threshold: threshold,
	}
	for _, s := range stmts {
		e.vecs = append(e.vecs, emb.Query(s))
	}
	return e
}

// Estimate returns the predicted score for stmt and a confidence in [0, 1].
// The prediction is a similarity-weighted vote of the nearest training
// queries; the confidence is the similarity to the closest one (low
// confidence means the query deviates from the training workload, the signal
// used for interest-drift detection).
func (e *Estimator) Estimate(stmt *sqlparse.Select) (pred, confidence float64) {
	if len(e.vecs) == 0 {
		return 0, 0
	}
	// Aggregates are judged by their SPJ skeleton, as in Section 4.4.
	v := e.emb.Query(stmt)
	type neighbor struct {
		sim   float64
		score float64
	}
	ns := make([]neighbor, 0, len(e.vecs))
	for i, tv := range e.vecs {
		sim := embed.Cosine(v, tv)
		if sim < 0 {
			sim = 0
		}
		ns = append(ns, neighbor{sim: sim, score: e.scores[i]})
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].sim > ns[b].sim })
	k := e.neighbors
	if k > len(ns) {
		k = len(ns)
	}
	var wsum, ssum float64
	for _, n := range ns[:k] {
		// Sharpen similarities so near-duplicates dominate the vote.
		w := n.sim * n.sim * n.sim
		wsum += w
		ssum += w * n.score
	}
	confidence = ns[0].sim
	if wsum <= 0 {
		return 0, confidence
	}
	// Far queries should predict low regardless of neighbor quality:
	// attenuate by the confidence itself.
	return math.Min(1, ssum/wsum) * attenuation(confidence), confidence
}

// attenuation maps the nearest-neighbor similarity to a multiplier that
// decays predictions for out-of-distribution queries.
func attenuation(conf float64) float64 {
	switch {
	case conf >= 0.8:
		return 1
	case conf <= 0.2:
		return conf
	default:
		// Linear ramp between (0.2, 0.2) and (0.8, 1.0).
		return 0.2 + (conf-0.2)*(0.8/0.6)
	}
}

// Answerable reports whether the predicted score clears the threshold.
func (e *Estimator) Answerable(stmt *sqlparse.Select) bool {
	pred, _ := e.Estimate(stmt)
	return pred >= e.threshold
}

// Threshold returns the answerability threshold.
func (e *Estimator) Threshold() float64 { return e.threshold }

// DriftDetector accumulates queries that deviate from the training workload
// and signals when fine-tuning should run (Section 4.4): after Count queries
// whose deviation confidence exceeds Confidence. It is safe for concurrent
// use — the serving layer observes queries from many requests at once.
type DriftDetector struct {
	// Confidence is the minimum deviation confidence (1 − similarity to the
	// nearest training query) for a query to count as drifted.
	Confidence float64
	// Count is how many drifted queries trigger fine-tuning.
	Count int

	mu      sync.Mutex
	drifted []*sqlparse.Select
}

// Observe records a query along with the estimator confidence produced for
// it. It returns true when enough drifted queries have accumulated that
// fine-tuning should be triggered.
func (d *DriftDetector) Observe(stmt *sqlparse.Select, similarityConfidence float64) bool {
	_, triggered := d.ObserveDetail(stmt, similarityConfidence)
	return triggered
}

// ObserveDetail is Observe with the per-statement outcome exposed: drifted
// reports whether this statement was added to the drift batch, triggered
// whether the batch has reached the fine-tune threshold. The WAL uses drifted
// to log exactly the observations that replay must re-feed after a crash.
func (d *DriftDetector) ObserveDetail(stmt *sqlparse.Select, similarityConfidence float64) (drifted, triggered bool) {
	deviation := 1 - similarityConfidence
	d.mu.Lock()
	defer d.mu.Unlock()
	if deviation >= d.Confidence {
		d.drifted = append(d.drifted, stmt)
		drifted = true
	}
	return drifted, len(d.drifted) >= d.Count
}

// Drifted returns the accumulated deviating queries.
func (d *DriftDetector) Drifted() []*sqlparse.Select {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*sqlparse.Select(nil), d.drifted...)
}

// DriftedCount returns how many deviating queries have accumulated since the
// last reset, without copying them. Serving layers expose it in /stats and
// /qualityz.
func (d *DriftDetector) DriftedCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.drifted)
}

// Triggered reports whether the accumulated drifted queries have reached the
// fine-tuning threshold.
func (d *DriftDetector) Triggered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.drifted) >= d.Count
}

// Take atomically snapshots and clears the accumulated drifted statements,
// provided at least min of them have accumulated (min <= 0 asks for 1). It
// returns nil — and clears nothing — below the threshold. Snapshot and reset
// happen under one mutex hold, so statements observed concurrently by serving
// traffic land either in this batch or in the next one, never in both and
// never lost: the read/mutate race of reading Drifted() and resetting later
// cannot drop an Observe that slipped in between.
func (d *DriftDetector) Take(min int) []*sqlparse.Select {
	if min <= 0 {
		min = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.drifted) < min {
		return nil
	}
	out := d.drifted
	d.drifted = nil
	return out
}

// ResetDrift clears the accumulated queries (called after fine-tuning).
func (d *DriftDetector) ResetDrift() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drifted = nil
}
