// Package core implements ASQP-RL itself: the preprocessing pipeline that
// turns a database and query workload into an RL action space (Section 4.2),
// the GSL/DRP/hybrid tabular environments (Section 5.2), training
// (Algorithm 1) and inference (Algorithm 2), the answerability estimator and
// interest-drift detection (Section 4.4), the statistics-driven query
// generator for unknown workloads (Section 4.5), and the ASQP-Light /
// adaptive configurations.
package core

import (
	"time"

	"asqprl/internal/rl"
)

// EnvironmentKind selects the tabular RL environment (Section 5.2).
type EnvironmentKind uint8

const (
	// EnvGSL is gradual-set-learning: start empty, add tuple groups.
	EnvGSL EnvironmentKind = iota
	// EnvDRP is drop-one: start full, swap tuple groups.
	EnvDRP
	// EnvHybrid fills with GSL and then refines with DRP swaps.
	EnvHybrid
)

// String names the environment kind as in the paper's Figure 3.
func (k EnvironmentKind) String() string {
	switch k {
	case EnvGSL:
		return "GSL"
	case EnvDRP:
		return "DRP"
	case EnvHybrid:
		return "DRP+GSL"
	default:
		return "unknown"
	}
}

// Config holds every tunable of the ASQP-RL pipeline. Zero values are filled
// with the paper's defaults (Section 6.1) by normalize.
type Config struct {
	// K is the memory budget: the maximum number of tuples in the
	// approximation set (paper default 1000).
	K int
	// F is the frame size: the number of result rows a user inspects
	// (paper default 50).
	F int
	// NumRepresentatives is the number of query representatives selected by
	// clustering the embedded, relaxed workload. It also fixes the state
	// dimension, so it stays constant across fine-tuning.
	NumRepresentatives int
	// TrainFraction is the portion of representatives whose queries are
	// actually executed during preprocessing (Figure 10's sweep); ASQP-Light
	// uses 0.25.
	TrainFraction float64
	// ActionSpaceSize is the number of candidate tuple groups after
	// variational subsampling; it fixes the action dimension.
	ActionSpaceSize int
	// ActionGroupSize is how many result tuples of one representative are
	// bundled into a single action ("an action encompasses multiple tuples
	// sourced from different tables", Section 4.3). Larger groups shorten
	// episodes and make the coverage state more informative per action.
	ActionGroupSize int
	// MaxTrackedPerQuery caps the result tuples tracked per representative
	// for reward computation; larger results are sampled (coverage is then
	// estimated by scaling).
	MaxTrackedPerQuery int
	// RelaxFactor is the numeric widening factor for query relaxation.
	RelaxFactor float64
	// RelaxDrop also drops the most selective conjunct during relaxation.
	RelaxDrop bool
	// RelaxRewardWeight is the share of each representative's reward given
	// to covering its relaxed variant's results (the rest rewards the
	// original results). It implements training on generalized queries.
	RelaxRewardWeight float64
	// Environment selects GSL (default), DRP or the hybrid.
	Environment EnvironmentKind
	// DRPHorizon is the episode length for the DRP environment.
	DRPHorizon int
	// Episodes is the RL training budget in episodes.
	Episodes int
	// EarlyStopPatience stops training after this many iterations without
	// improvement in mean return (0 disables; ASQP-Light enables it).
	EarlyStopPatience int
	// RL configures the agent (clip/KL/entropy coefficients, workers, ...).
	RL rl.Config
	// EmbedDim is the embedding dimensionality.
	EmbedDim int
	// EstimatorThreshold is the predicted-score threshold above which a
	// query is considered answerable from the approximation set.
	EstimatorThreshold float64
	// EstimatorNeighbors is how many nearest training queries vote in the
	// answerability estimate.
	EstimatorNeighbors int
	// DriftConfidence and DriftCount configure interest-drift detection:
	// fine-tuning triggers after DriftCount queries deviate from the
	// training workload with confidence above DriftConfidence.
	DriftConfidence float64
	// DriftCount is the number of deviating queries that triggers
	// fine-tuning.
	DriftCount int
	// Parallelism is the worker count for data-parallel query execution and
	// workload scoring (0 = one worker per CPU, <0 = serial). It does not
	// change any result — engine operators merge in input order and scoring
	// is per-query independent — only wall-clock.
	Parallelism int
	// RowEngine forces query serving onto the legacy row-at-a-time execution
	// engine instead of the default columnar (vectorized) one. Results are
	// byte-identical either way — the columnar engine is a pure performance
	// change — so this exists only as an escape hatch and for A/B
	// measurement.
	RowEngine bool
	// Seed drives every random choice for reproducibility.
	Seed int64
}

// DefaultConfig returns the paper-default configuration (Section 6.1),
// scaled to the laptop-size synthetic datasets of this reproduction.
func DefaultConfig() Config {
	return Config{
		K:                  1000,
		F:                  50,
		NumRepresentatives: 24,
		TrainFraction:      1.0,
		ActionSpaceSize:    512,
		ActionGroupSize:    8,
		MaxTrackedPerQuery: 200,
		RelaxFactor:        0.25,
		RelaxDrop:          true,
		RelaxRewardWeight:  0.3,
		Environment:        EnvGSL,
		DRPHorizon:         160,
		Episodes:           96,
		RL: rl.Config{
			Hidden:      []int{64, 64},
			LR:          5e-3,
			Gamma:       0.995,
			ClipEpsilon: 0.2,
			EntropyCoef: 0.001,
			KLCoef:      0.2,
			ValueCoef:   0.5,
			UseCritic:   true,
			Epochs:      4,
			Workers:     4,
		},
		EmbedDim:           64,
		EstimatorThreshold: 0.5,
		EstimatorNeighbors: 5,
		// The paper uses 0.8 with sentence-BERT embeddings; our hash
		// embeddings put in-distribution queries near similarity 0.95 and
		// out-of-distribution ones below 0.5, so deviation 0.5 separates
		// the same populations.
		DriftConfidence: 0.5,
		DriftCount:      3,
		Seed:            1,
	}
}

// LightConfig returns ASQP-Light (Section 4.5): a reduced training workload
// fraction, a higher learning rate, and aggressive early stopping. It trades
// roughly 10% of quality for about half the setup time.
func LightConfig() Config {
	c := DefaultConfig()
	c.TrainFraction = 0.25
	c.Episodes = c.Episodes / 2
	c.EarlyStopPatience = 4
	c.RL.LR = 1e-2
	return c
}

// AdaptiveConfig interpolates between LightConfig and DefaultConfig based on
// the user's time budget relative to fullBudget (the time a full-quality run
// is expected to take). This implements the "Adaptive Configuration" knob of
// Section 4.5.
func AdaptiveConfig(timeBudget, fullBudget time.Duration) Config {
	if fullBudget <= 0 || timeBudget >= fullBudget {
		return DefaultConfig()
	}
	frac := float64(timeBudget) / float64(fullBudget)
	if frac < 0.1 {
		frac = 0.1
	}
	full := DefaultConfig()
	light := LightConfig()
	lerp := func(a, b float64) float64 { return a + (b-a)*frac }
	c := full
	c.TrainFraction = lerp(light.TrainFraction, full.TrainFraction)
	c.Episodes = int(lerp(float64(light.Episodes), float64(full.Episodes)))
	c.RL.LR = lerp(light.RL.LR, full.RL.LR)
	if frac < 0.6 {
		c.EarlyStopPatience = light.EarlyStopPatience
	}
	return c
}

// normalize fills zero fields with defaults and clamps invalid values.
func (c Config) normalize() Config {
	d := DefaultConfig()
	if c.K <= 0 {
		c.K = d.K
	}
	if c.F <= 0 {
		c.F = d.F
	}
	if c.NumRepresentatives <= 0 {
		c.NumRepresentatives = d.NumRepresentatives
	}
	if c.TrainFraction <= 0 || c.TrainFraction > 1 {
		c.TrainFraction = 1
	}
	if c.ActionSpaceSize <= 0 {
		c.ActionSpaceSize = d.ActionSpaceSize
	}
	if c.ActionGroupSize <= 0 {
		c.ActionGroupSize = d.ActionGroupSize
	}
	if c.MaxTrackedPerQuery <= 0 {
		c.MaxTrackedPerQuery = d.MaxTrackedPerQuery
	}
	if c.RelaxFactor <= 0 {
		c.RelaxFactor = d.RelaxFactor
	}
	// Zero means default; use a tiny positive value to effectively disable.
	if c.RelaxRewardWeight <= 0 || c.RelaxRewardWeight >= 1 {
		c.RelaxRewardWeight = d.RelaxRewardWeight
	}
	if c.DRPHorizon <= 0 {
		c.DRPHorizon = d.DRPHorizon
	}
	if c.Episodes <= 0 {
		c.Episodes = d.Episodes
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = d.EmbedDim
	}
	if c.EstimatorThreshold <= 0 {
		c.EstimatorThreshold = d.EstimatorThreshold
	}
	if c.EstimatorNeighbors <= 0 {
		c.EstimatorNeighbors = d.EstimatorNeighbors
	}
	if c.DriftConfidence <= 0 {
		c.DriftConfidence = d.DriftConfidence
	}
	if c.DriftCount <= 0 {
		c.DriftCount = d.DriftCount
	}
	if c.RL.Seed == 0 {
		c.RL.Seed = c.Seed
	}
	return c
}
