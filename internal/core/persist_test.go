package core

import (
	"bytes"
	"strings"
	"testing"

	"asqprl/internal/table"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	cfg := testConfig()
	sys, err := Train(db, w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	data, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBytes(db, data)
	if err != nil {
		t.Fatal(err)
	}

	// Same approximation set.
	if loaded.Set().Size() != sys.Set().Size() {
		t.Fatalf("set size %d != %d", loaded.Set().Size(), sys.Set().Size())
	}
	for _, id := range sys.Set().IDs() {
		if !loaded.Set().Contains(id) {
			t.Fatalf("loaded set missing %v", id)
		}
	}

	// Same scores on the training workload.
	a, err := sys.ScoreOn(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.ScoreOn(w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("scores differ after load: %v vs %v", a, b)
	}

	// Same estimator behaviour.
	for _, q := range w[:3] {
		p1, c1 := sys.Estimator().Estimate(q.Stmt)
		p2, c2 := loaded.Estimator().Estimate(q.Stmt)
		if p1 != p2 || c1 != c2 {
			t.Errorf("estimator differs for %q: (%v,%v) vs (%v,%v)", q.SQL, p1, c1, p2, c2)
		}
	}

	// Same policy outputs (networks restored exactly).
	state := make([]float64, loaded.agent.ActorParams().InputDim())
	state[0] = 0.5
	pa := sys.agent.Policy(state, nil)
	pb := loaded.agent.Policy(state, nil)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("restored actor differs from saved one")
		}
	}

	// Queries still route.
	res, err := loaded.Query(w[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil {
		t.Error("loaded system returned nil result")
	}
}

func TestLoadedSystemCanBuildSetAndFineTune(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	sys, err := Train(db, w, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBytes(db, data)
	if err != nil {
		t.Fatal(err)
	}
	// BuildSet triggers lazy re-preprocessing.
	sub, err := loaded.BuildSet(60)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() == 0 {
		t.Error("rebuilt set empty")
	}
	// Fine-tuning also works on a loaded system.
	extra := testWorkload()[:2]
	if err := loaded.FineTune(extra, 4); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAgainstWrongDatabase(t *testing.T) {
	db := testIMDB()
	sys, err := Train(db, testWorkload(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := sys.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	// A database missing the referenced rows must be rejected.
	tiny := table.NewDatabase()
	tiny.Add(table.New("title", db.Table("title").Schema))
	if _, err := LoadBytes(tiny, data); err == nil {
		t.Error("loading against an incompatible database should fail")
	}
	if !strings.Contains(errString(LoadBytes(tiny, data)), "absent") &&
		!strings.Contains(errString(LoadBytes(tiny, data)), "load") {
		t.Error("error should explain the mismatch")
	}
}

func errString(_ *System, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(testIMDB(), bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage snapshot should fail")
	}
}
