package core

import (
	"path/filepath"
	"testing"

	"asqprl/internal/workload"
)

// TestFineTuneSnapshotRoundTrip proves fine-tune state survives the file
// snapshot path: after FineTune, SaveFile→LoadFile preserves the FineTunes
// counter, the merged training workload, and the exact approximation set —
// so a retrained server that crashes recovers the retrained state, not the
// original one.
func TestFineTuneSnapshotRoundTrip(t *testing.T) {
	db := testIMDB()
	w := testWorkload()
	sys, err := Train(db, w, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseTrain := len(sys.TrainingWorkload())

	extra := workloadForDrift(t)
	if err := sys.FineTune(extra, 4); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().FineTunes; got != 1 {
		t.Fatalf("FineTunes = %d, want 1", got)
	}
	wantTrain := len(sys.TrainingWorkload())
	if wantTrain <= baseTrain {
		t.Fatalf("fine-tune did not grow the training workload: %d -> %d", baseTrain, wantTrain)
	}

	path := filepath.Join(t.TempDir(), "finetuned.asqp")
	if err := sys.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(db, path)
	if err != nil {
		t.Fatal(err)
	}

	if got := loaded.Stats().FineTunes; got != 1 {
		t.Errorf("loaded FineTunes = %d, want 1", got)
	}
	if got := len(loaded.TrainingWorkload()); got != wantTrain {
		t.Errorf("loaded training workload = %d queries, want %d", got, wantTrain)
	}
	if loaded.Set().Size() != sys.Set().Size() {
		t.Fatalf("loaded set size %d != %d", loaded.Set().Size(), sys.Set().Size())
	}
	for _, id := range sys.Set().IDs() {
		if !loaded.Set().Contains(id) {
			t.Fatalf("loaded set missing %v", id)
		}
	}
}

// workloadForDrift builds a small workload disjoint enough from testWorkload
// to exercise the merge path.
func workloadForDrift(t *testing.T) workload.Workload {
	t.Helper()
	w, err := workload.New(
		"SELECT * FROM name WHERE birth_year > 1950",
		"SELECT * FROM name WHERE birth_year < 1900",
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
