package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"asqprl/internal/table"
	"asqprl/internal/workload"
)

func numsDB(n int) *table.Database {
	t := table.New("nums", table.Schema{
		{Name: "v", Kind: table.KindInt},
	})
	for i := 0; i < n; i++ {
		t.AppendRow(table.Row{table.NewInt(int64(i))})
	}
	db := table.NewDatabase()
	db.Add(t)
	return db
}

func subsetDB(full *table.Database, rows []int) *table.Database {
	s := table.NewSubset()
	for _, r := range rows {
		s.Add(table.RowID{Table: "nums", Row: r})
	}
	return s.Materialize(full)
}

func TestScoreFullSubsetIsOne(t *testing.T) {
	db := numsDB(100)
	w := workload.MustNew(
		"SELECT * FROM nums WHERE v < 10",
		"SELECT * FROM nums WHERE v >= 90",
	)
	all := make([]int, 100)
	for i := range all {
		all[i] = i
	}
	s, err := Score(db, subsetDB(db, all), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("score of full subset = %v, want 1", s)
	}
}

func TestScoreEmptySubsetIsZero(t *testing.T) {
	db := numsDB(100)
	w := workload.MustNew("SELECT * FROM nums WHERE v < 10")
	s, err := Score(db, subsetDB(db, nil), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("score of empty subset = %v, want 0", s)
	}
}

func TestScoreFrameSizeCapping(t *testing.T) {
	db := numsDB(1000)
	// Query returns 500 rows; with F=50, covering any 50 gives full score.
	w := workload.MustNew("SELECT * FROM nums WHERE v < 500")
	rows := make([]int, 50)
	for i := range rows {
		rows[i] = i
	}
	s, err := Score(db, subsetDB(db, rows), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("50 covered rows with F=50 should score 1, got %v", s)
	}
	// With F=100, the same subset scores 0.5.
	s, err = Score(db, subsetDB(db, rows), w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-9 {
		t.Errorf("50 covered rows with F=100 should score 0.5, got %v", s)
	}
}

func TestScoreSmallResultDominatedByEachTuple(t *testing.T) {
	db := numsDB(100)
	// Query returns 4 rows; F=50 → denominator is 4.
	w := workload.MustNew("SELECT * FROM nums WHERE v < 4")
	s, err := Score(db, subsetDB(db, []int{0, 1}), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-9 {
		t.Errorf("2 of 4 tuples should score 0.5, got %v", s)
	}
}

func TestScoreEmptyTrueAnswerIsPerfect(t *testing.T) {
	db := numsDB(10)
	w := workload.MustNew("SELECT * FROM nums WHERE v > 1000")
	s, err := Score(db, subsetDB(db, nil), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("empty true answer should score 1, got %v", s)
	}
}

func TestScoreWeightsRespected(t *testing.T) {
	db := numsDB(100)
	w := workload.MustNew(
		"SELECT * FROM nums WHERE v < 10",  // covered below
		"SELECT * FROM nums WHERE v >= 90", // not covered
	)
	w[0].Weight = 0.9
	w[1].Weight = 0.1
	rows := make([]int, 10)
	for i := range rows {
		rows[i] = i
	}
	s, err := Score(db, subsetDB(db, rows), w, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.9) > 1e-9 {
		t.Errorf("weighted score = %v, want 0.9", s)
	}
}

func TestScoreInvalidFrameSize(t *testing.T) {
	db := numsDB(10)
	w := workload.MustNew("SELECT * FROM nums")
	if _, err := Score(db, db, w, 0); err == nil {
		t.Error("zero frame size should error")
	}
}

func TestScoreBadQueryContributesZero(t *testing.T) {
	db := numsDB(10)
	w := workload.MustNew(
		"SELECT * FROM ghost",
		"SELECT * FROM nums WHERE v < 5",
	)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s, err := Score(db, subsetDB(db, all), w, 50)
	if err == nil {
		t.Error("bad query should surface an error")
	}
	if math.Abs(s-0.5) > 1e-9 {
		t.Errorf("score = %v, want 0.5 (good query full, bad query zero)", s)
	}
}

// TestScoreCollectsAllErrors: every failed query is reported, not just the
// first — the joined error mentions each broken query by its SQL.
func TestScoreCollectsAllErrors(t *testing.T) {
	db := numsDB(10)
	w := workload.MustNew(
		"SELECT * FROM ghost",
		"SELECT * FROM nums WHERE v < 5",
		"SELECT * FROM phantom",
	)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	scores, err := PerQueryScores(db, subsetDB(db, all), w, 50)
	if err == nil {
		t.Fatal("two bad queries should surface an error")
	}
	for _, frag := range []string{"ghost", "phantom"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("joined error should mention %q, got: %v", frag, err)
		}
	}
	if len(scores) != 3 {
		t.Fatalf("scores length = %d, want 3", len(scores))
	}
	if scores[0] != 0 || scores[2] != 0 {
		t.Errorf("failed queries should score 0, got %v", scores)
	}
	if math.Abs(scores[1]-1) > 1e-9 {
		t.Errorf("good query should score 1, got %v", scores[1])
	}

	// Score still returns the partial weighted total with the same error.
	s, err := Score(db, subsetDB(db, all), w, 50)
	if err == nil {
		t.Error("Score should propagate the joined error")
	}
	if math.Abs(s-1.0/3) > 1e-9 {
		t.Errorf("partial score = %v, want 1/3", s)
	}
}

// TestScoreMonotoneProperty: adding rows to a subset never lowers the score.
func TestScoreMonotoneProperty(t *testing.T) {
	db := numsDB(60)
	w := workload.MustNew(
		"SELECT * FROM nums WHERE v < 30",
		"SELECT * FROM nums WHERE v % 2 = 0",
	)
	rng := rand.New(rand.NewSource(1))
	f := func(seedRaw uint8) bool {
		n1 := int(seedRaw) % 30
		rows := rng.Perm(60)[:n1]
		s1, _ := Score(db, subsetDB(db, rows), w, 10)
		more := append(append([]int(nil), rows...), rng.Perm(60)[:10]...)
		s2, _ := Score(db, subsetDB(db, dedupe(more)), w, 10)
		return s2 >= s1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestRelativeError(t *testing.T) {
	cases := []struct {
		pred, truth, want float64
	}{
		{100, 100, 0},
		{110, 100, 0.1},
		{90, 100, 0.1},
		{0, 0, 0},
		{5, 0, 1},
		{-50, 100, 1.5},
	}
	for _, c := range cases {
		if got := RelativeError(c.pred, c.truth); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RelativeError(%v, %v) = %v, want %v", c.pred, c.truth, got, c.want)
		}
	}
}

func TestGroupRelativeError(t *testing.T) {
	truth := map[string]float64{"a": 100, "b": 200}
	perfect := GroupRelativeError(map[string]float64{"a": 100, "b": 200}, truth)
	if perfect != 0 {
		t.Errorf("perfect prediction error = %v", perfect)
	}
	// Missing group contributes 1.
	missing := GroupRelativeError(map[string]float64{"a": 100}, truth)
	if math.Abs(missing-0.5) > 1e-9 {
		t.Errorf("one missing of two groups = %v, want 0.5", missing)
	}
	// Per-group errors capped at 1.
	wild := GroupRelativeError(map[string]float64{"a": 1e9, "b": 200}, truth)
	if math.Abs(wild-0.5) > 1e-9 {
		t.Errorf("capped error = %v, want 0.5", wild)
	}
	if GroupRelativeError(nil, nil) != 0 {
		t.Error("empty truth should be 0")
	}
	// Extra predicted groups are ignored.
	extra := GroupRelativeError(map[string]float64{"a": 100, "b": 200, "z": 5}, truth)
	if extra != 0 {
		t.Errorf("extra groups should not count, got %v", extra)
	}
}

func TestCoverageError(t *testing.T) {
	cases := []struct {
		served, truth, frame int
		want                 float64
	}{
		{3, 3, 25, 0},       // full coverage
		{2, 3, 25, 1.0 / 3}, // 2 of 3 true rows served
		{0, 3, 25, 1},       // nothing served
		{0, 0, 25, 0},       // empty truth, empty answer: perfect
		{2, 0, 25, 1},       // rows invented against an empty truth
		{10, 100, 25, 0.6},  // frame caps the denominator: 1 - 10/25
		{30, 100, 25, 0},    // beyond the frame counts as full coverage
		{5, 3, 25, 0},       // over-delivery clamps to score 1
		{2, 3, 0, 1.0 / 3},  // frame 0 disables the cap
		{2, 3, -1, 1.0 / 3}, // negative frame likewise
		{10, 100, 200, 0.9}, // frame larger than truth: truth wins
	}
	for _, c := range cases {
		if got := CoverageError(c.served, c.truth, c.frame); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CoverageError(%d, %d, %d) = %v, want %v", c.served, c.truth, c.frame, got, c.want)
		}
	}
}

func TestJaccardDiversity(t *testing.T) {
	// Identical results → 0 diversity.
	same := [][]string{{"a", "b"}, {"a", "b"}}
	if d := JaccardDiversity(same); d != 0 {
		t.Errorf("identical results diversity = %v", d)
	}
	// Disjoint results → 1.
	disjoint := [][]string{{"a"}, {"b"}, {"c"}}
	if d := JaccardDiversity(disjoint); math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint diversity = %v, want 1", d)
	}
	// Single result → 0.
	if d := JaccardDiversity([][]string{{"a"}}); d != 0 {
		t.Errorf("single result diversity = %v", d)
	}
	// Half overlap.
	half := [][]string{{"a", "b"}, {"b", "c"}}
	if d := JaccardDiversity(half); math.Abs(d-(1-1.0/3)) > 1e-9 {
		t.Errorf("half-overlap diversity = %v, want 2/3", d)
	}
	// Empty results count as identical.
	if d := JaccardDiversity([][]string{{}, {}}); d != 0 {
		t.Errorf("two empty results = %v, want 0", d)
	}
}

func TestRowKeys(t *testing.T) {
	tab := table.New("t", table.Schema{{Name: "a", Kind: table.KindInt}})
	tab.AppendRow(table.Row{table.NewInt(1)})
	tab.AppendRow(table.Row{table.NewInt(2)})
	keys := RowKeys(tab)
	if len(keys) != 2 || keys[0] == keys[1] {
		t.Errorf("RowKeys = %v", keys)
	}
}

func TestPrecisionRecall(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	act := []bool{true, false, false, true, true}
	p, r := PrecisionRecall(pred, act)
	if math.Abs(p-2.0/3) > 1e-9 {
		t.Errorf("precision = %v, want 2/3", p)
	}
	if math.Abs(r-2.0/3) > 1e-9 {
		t.Errorf("recall = %v, want 2/3", r)
	}
	p, r = PrecisionRecall([]bool{false}, []bool{false})
	if p != 0 || r != 0 {
		t.Errorf("degenerate P/R = %v/%v", p, r)
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single stddev")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestIntraResultDiversity(t *testing.T) {
	// Identical rows → 0 diversity.
	same := table.New("t", table.Schema{{Name: "a", Kind: table.KindInt}, {Name: "b", Kind: table.KindInt}})
	same.AppendRow(table.Row{table.NewInt(1), table.NewInt(2)})
	same.AppendRow(table.Row{table.NewInt(1), table.NewInt(2)})
	if d := IntraResultDiversity(same, 0); d != 0 {
		t.Errorf("identical rows diversity = %v", d)
	}
	// Fully distinct rows → 1.
	diff := table.New("t", table.Schema{{Name: "a", Kind: table.KindInt}, {Name: "b", Kind: table.KindInt}})
	diff.AppendRow(table.Row{table.NewInt(1), table.NewInt(2)})
	diff.AppendRow(table.Row{table.NewInt(3), table.NewInt(4)})
	if d := IntraResultDiversity(diff, 0); math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint rows diversity = %v, want 1", d)
	}
	// Single row → 0.
	one := table.New("t", table.Schema{{Name: "a", Kind: table.KindInt}})
	one.AppendRow(table.Row{table.NewInt(1)})
	if d := IntraResultDiversity(one, 0); d != 0 {
		t.Errorf("single-row diversity = %v", d)
	}
	// maxRows caps the comparison.
	big := table.New("t", table.Schema{{Name: "a", Kind: table.KindInt}})
	for i := 0; i < 500; i++ {
		big.AppendRow(table.Row{table.NewInt(int64(i))})
	}
	if d := IntraResultDiversity(big, 10); math.Abs(d-1) > 1e-9 {
		t.Errorf("capped diversity = %v", d)
	}
}
