// Package metrics implements the evaluation measures of the paper: the
// approximation-set quality metric score(𝒮) (Equation 1), the relative error
// used for aggregate queries (Equation 2), pairwise-Jaccard result diversity
// (Section 6.2), and precision/recall for the answerability estimator.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"asqprl/internal/engine"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// ScoreOptions tunes workload scoring.
type ScoreOptions struct {
	// Parallelism is the number of workers evaluating queries concurrently.
	// Zero means one worker per CPU; values below 1 force serial evaluation.
	// Scores are computed independently per query, so the results are
	// identical for every setting.
	Parallelism int
	// Cache, when non-nil, memoizes full-database result counts across calls
	// (see ReferenceCache). The cache is consulted only when it is bound to
	// the same full database being scored against.
	Cache *ReferenceCache
}

func (o ScoreOptions) workers(n int) int {
	w := o.Parallelism
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// Score computes Equation 1 of the paper:
//
//	score(𝒮) = (1/|Q|) Σ_q w(q) · min(1, |q(𝒮)| / min(F, |q(𝒯)|))
//
// full is the complete database 𝒯 and approx the materialized approximation
// set 𝒮. Queries that fail on either database contribute zero; every failure
// is collected and returned as a joined error alongside the partial score,
// so callers see all broken queries rather than just the first one.
//
// Note the paper normalizes by |Q| while also using weights that sum to 1;
// with uniform weights this makes the maximum attainable score 1/|Q|. Like
// the paper's own evaluation (which reports scores near 1), we interpret the
// leading 1/|Q| as already folded into the normalized weights.
func Score(full, approx *table.Database, w workload.Workload, frameSize int) (float64, error) {
	return ScoreWith(full, approx, w, frameSize, ScoreOptions{})
}

// ScoreWith is Score with explicit parallelism and reference-count caching.
func ScoreWith(full, approx *table.Database, w workload.Workload, frameSize int, opts ScoreOptions) (float64, error) {
	scores, err := PerQueryScoresWith(full, approx, w, frameSize, opts)
	if scores == nil {
		return 0, err
	}
	var total float64
	for i, q := range w {
		total += q.Weight * scores[i]
	}
	return total, err
}

// PerQueryScores returns each query's unweighted score component
// min(1, |q(S)| / min(F, |q(T)|)). Failed queries score 0; all failures are
// joined (errors.Join) into the returned error, with the scores slice still
// valid. scores is nil only when frameSize is invalid.
func PerQueryScores(full, approx *table.Database, w workload.Workload, frameSize int) ([]float64, error) {
	return PerQueryScoresWith(full, approx, w, frameSize, ScoreOptions{})
}

// PerQueryScoresWith is PerQueryScores with explicit parallelism and
// reference-count caching. Queries fan out across a worker pool; each query's
// score is computed independently, and failures are joined in workload order,
// so the output (scores and error) is identical for every parallelism
// setting.
func PerQueryScoresWith(full, approx *table.Database, w workload.Workload, frameSize int, opts ScoreOptions) ([]float64, error) {
	if frameSize <= 0 {
		return nil, fmt.Errorf("metrics: frame size must be positive, got %d", frameSize)
	}
	scores := make([]float64, len(w))
	qerrs := make([]error, len(w))
	scoreOne := func(i int) {
		q := w[i]
		fullCount, err := opts.Cache.FullCount(full, q)
		if err != nil {
			qerrs[i] = fmt.Errorf("metrics: query %q on full db: %w", q.SQL, err)
			return
		}
		if fullCount == 0 {
			// A query with an empty true answer is trivially answered.
			scores[i] = 1
			return
		}
		approxCount, err := engine.Count(approx, q.Stmt)
		if err != nil {
			qerrs[i] = fmt.Errorf("metrics: query %q on approximation set: %w", q.SQL, err)
			return
		}
		denom := frameSize
		if fullCount < denom {
			denom = fullCount
		}
		scores[i] = math.Min(1, float64(approxCount)/float64(denom))
	}
	if workers := opts.workers(len(w)); workers > 1 {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < workers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(w) {
						return
					}
					scoreOne(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range w {
			scoreOne(i)
		}
	}
	return scores, errors.Join(qerrs...)
}

// RelativeError computes |pred − truth| / |truth| (Equation 2). When truth
// is zero, it returns 0 for an exact match and 1 otherwise, matching the
// paper's convention for missing groups.
func RelativeError(pred, truth float64) float64 {
	if truth == 0 {
		if pred == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(pred-truth) / math.Abs(truth)
}

// GroupRelativeError compares two aggregate results keyed by group. Groups
// missing from pred contribute an error of 1 (complete mismatch), matching
// Section 6.4. Extra groups in pred are ignored, as the paper's metric is
// defined over the true groups.
func GroupRelativeError(pred, truth map[string]float64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var total float64
	for g, tv := range truth {
		pv, ok := pred[g]
		if !ok {
			total += 1
			continue
		}
		e := RelativeError(pv, tv)
		if e > 1 {
			e = 1
		}
		total += e
	}
	return total / float64(len(truth))
}

// CoverageError turns Equation 1's per-query coverage score into an error
// for SPJ answers served from an approximation set:
//
//	error = 1 − min(1, served / min(F, truth))
//
// served is the number of rows the system answered with, truth the full-
// database cardinality, and frameSize the exploratory frame F (≤ 0 disables
// the frame cap). Because the approximation set is a subset of the full
// database, cardinalities alone measure coverage — a served answer can miss
// true rows but never invent them. A truth of zero is a perfect answer
// (nothing to cover) unless rows were served anyway, which counts as a
// complete mismatch.
func CoverageError(served, truth, frameSize int) float64 {
	if truth <= 0 {
		if served == 0 {
			return 0
		}
		return 1
	}
	denom := truth
	if frameSize > 0 && frameSize < denom {
		denom = frameSize
	}
	score := float64(served) / float64(denom)
	if score > 1 {
		score = 1
	}
	return 1 - score
}

// JaccardDiversity measures result diversity as the mean pairwise Jaccard
// distance between the row sets of consecutive query answers, following the
// diversity comparison of Section 6.2. Each result is represented by its set
// of row keys. Returns 0 for fewer than two results.
func JaccardDiversity(results [][]string) float64 {
	if len(results) < 2 {
		return 0
	}
	sets := make([]map[string]bool, len(results))
	for i, r := range results {
		s := make(map[string]bool, len(r))
		for _, k := range r {
			s[k] = true
		}
		sets[i] = s
	}
	var total float64
	pairs := 0
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			total += jaccardDistance(sets[i], sets[j])
			pairs++
		}
	}
	return total / float64(pairs)
}

func jaccardDistance(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// RowKeys extracts the row keys of a result table, for JaccardDiversity.
func RowKeys(t *table.Table) []string {
	out := make([]string, t.NumRows())
	for i, r := range t.Rows {
		out[i] = r.Key()
	}
	return out
}

// IntraResultDiversity measures how diverse the rows *within* one query
// answer are: the mean pairwise Jaccard distance between the rows' value
// sets, as in the paper's Section 6.2 diversity comparison (a full-database
// answer has a fixed intrinsic diversity; a good approximation set should
// preserve it rather than collapse onto near-duplicate tuples). Returns 0
// for fewer than two rows. At most maxRows rows are compared (0 = all).
func IntraResultDiversity(t *table.Table, maxRows int) float64 {
	n := t.NumRows()
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	if n < 2 {
		return 0
	}
	sets := make([]map[string]bool, n)
	for i := 0; i < n; i++ {
		s := make(map[string]bool, len(t.Rows[i]))
		for _, v := range t.Rows[i] {
			s[v.Key()] = true
		}
		sets[i] = s
	}
	var total float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total += jaccardDistance(sets[i], sets[j])
			pairs++
		}
	}
	return total / float64(pairs)
}

// PrecisionRecall compares boolean predictions against truth.
func PrecisionRecall(predicted, actual []bool) (precision, recall float64) {
	var tp, fp, fn int
	for i := range predicted {
		switch {
		case predicted[i] && actual[i]:
			tp++
		case predicted[i] && !actual[i]:
			fp++
		case !predicted[i] && actual[i]:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}
