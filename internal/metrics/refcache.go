package metrics

import (
	"sync"
	"sync/atomic"

	"asqprl/internal/engine"
	"asqprl/internal/obs"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// ReferenceCache memoizes full-database query results — the |q(𝒯)| counts of
// Equation 1 — keyed by canonical SQL. Every baseline comparison scores
// different approximation sets against the *same* full database, so without
// the cache the 11-baseline experiment harness executes each reference query
// once per baseline instead of once overall; the full-database side is by far
// the most expensive part of scoring.
//
// Invalidation rules: a cache is bound to the exact *table.Database it was
// constructed for. Scoring against any other database bypasses the cache
// entirely (no stale reads, no pollution), and callers that mutate the
// underlying database must call Invalidate. Only successful counts are
// cached; failures are recomputed so transient errors cannot stick.
//
// All methods are safe for concurrent use by the scoring worker pool.
type ReferenceCache struct {
	full   *table.Database
	mu     sync.RWMutex
	counts map[string]int
	hits   atomic.Int64
	misses atomic.Int64
}

// NewReferenceCache returns an empty cache bound to the given full database.
func NewReferenceCache(full *table.Database) *ReferenceCache {
	return &ReferenceCache{full: full, counts: make(map[string]int)}
}

// FullCount returns |q(full)| for the query, serving it from the memo when
// full is the cache's bound database. Cache hits and misses are counted both
// locally and, when observability is enabled, on the default registry as
// metrics/refcache/hits and metrics/refcache/misses.
func (c *ReferenceCache) FullCount(full *table.Database, q workload.Query) (int, error) {
	if c == nil || full != c.full {
		return engine.Count(full, q.Stmt)
	}
	key := q.Stmt.String()
	c.mu.RLock()
	n, ok := c.counts[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		if obs.Enabled() {
			obs.Default().Counter("metrics/refcache/hits").Inc()
		}
		return n, nil
	}
	c.misses.Add(1)
	if obs.Enabled() {
		obs.Default().Counter("metrics/refcache/misses").Inc()
	}
	n, err := engine.Count(full, q.Stmt)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.counts[key] = n
	c.mu.Unlock()
	return n, nil
}

// Invalidate drops every memoized count. Required after mutating the bound
// database.
func (c *ReferenceCache) Invalidate() {
	c.mu.Lock()
	c.counts = make(map[string]int)
	c.mu.Unlock()
}

// Len returns the number of memoized reference counts.
func (c *ReferenceCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.counts)
}

// Hits returns the number of cache hits served.
func (c *ReferenceCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses (reference executions).
func (c *ReferenceCache) Misses() int64 { return c.misses.Load() }
