package metrics

import (
	"fmt"
	"sync"
	"testing"

	"asqprl/internal/workload"
)

func sweepWorkload(n int) workload.Workload {
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT * FROM nums WHERE v < %d", (i+1)*3)
	}
	return workload.MustNew(sqls...)
}

// TestPerQueryScoresParallelMatchesSerial checks that every parallelism
// setting yields identical per-query scores and the identical joined error.
func TestPerQueryScoresParallelMatchesSerial(t *testing.T) {
	db := numsDB(200)
	approx := subsetDB(db, []int{0, 1, 2, 3, 4, 50, 51, 52, 150})
	w := sweepWorkload(40)
	// One broken query exercises error-order determinism.
	w = append(w, workload.MustNew("SELECT * FROM missing_table")...)

	serialScores, serialErr := PerQueryScoresWith(db, approx, w, 10, ScoreOptions{Parallelism: -1})
	for _, par := range []int{0, 2, 8} {
		scores, err := PerQueryScoresWith(db, approx, w, 10, ScoreOptions{Parallelism: par})
		if len(scores) != len(serialScores) {
			t.Fatalf("parallelism %d: %d scores, want %d", par, len(scores), len(serialScores))
		}
		for i := range scores {
			if scores[i] != serialScores[i] {
				t.Errorf("parallelism %d: score[%d] = %v, serial %v", par, i, scores[i], serialScores[i])
			}
		}
		if (err == nil) != (serialErr == nil) || (err != nil && err.Error() != serialErr.Error()) {
			t.Errorf("parallelism %d: err = %v, serial %v", par, err, serialErr)
		}
	}
}

// TestReferenceCacheHitsAndInvalidate checks the memoization contract: the
// first pass misses per distinct query, repeat passes hit, and Invalidate
// drops everything.
func TestReferenceCacheHitsAndInvalidate(t *testing.T) {
	db := numsDB(100)
	approx := subsetDB(db, []int{0, 1, 2})
	w := sweepWorkload(12)
	cache := NewReferenceCache(db)
	opts := ScoreOptions{Parallelism: -1, Cache: cache}

	base, err := ScoreWith(db, approx, w, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 12 || cache.Hits() != 0 {
		t.Fatalf("after first pass: hits=%d misses=%d, want 0/12", cache.Hits(), cache.Misses())
	}
	cached, err := ScoreWith(db, approx, w, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached != base {
		t.Errorf("cached score %v != uncached %v", cached, base)
	}
	if cache.Hits() != 12 || cache.Misses() != 12 {
		t.Fatalf("after second pass: hits=%d misses=%d, want 12/12", cache.Hits(), cache.Misses())
	}
	if cache.Len() != 12 {
		t.Fatalf("cache len = %d, want 12", cache.Len())
	}
	cache.Invalidate()
	if cache.Len() != 0 {
		t.Fatalf("after Invalidate: len = %d, want 0", cache.Len())
	}
	if _, err := ScoreWith(db, approx, w, 10, opts); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != 24 {
		t.Fatalf("after invalidated pass: misses = %d, want 24", cache.Misses())
	}
}

// TestReferenceCacheBypassesOtherDatabases checks a cache bound to one
// database never serves counts when scoring against another.
func TestReferenceCacheBypassesOtherDatabases(t *testing.T) {
	bound := numsDB(100)
	other := numsDB(7) // same schema, different contents
	approx := subsetDB(other, []int{0, 1})
	w := sweepWorkload(4)
	cache := NewReferenceCache(bound)
	opts := ScoreOptions{Parallelism: -1, Cache: cache}

	// Warm the cache on the bound database.
	if _, err := ScoreWith(bound, subsetDB(bound, []int{0}), w, 10, opts); err != nil {
		t.Fatal(err)
	}
	misses := cache.Misses()

	// Scoring against the other database must not touch the memo.
	got, err := ScoreWith(other, approx, w, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Score(other, approx, w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("bypassed score %v != direct score %v", got, want)
	}
	if cache.Misses() != misses || cache.Len() != 4 {
		t.Errorf("cache touched by foreign database: misses=%d len=%d", cache.Misses(), cache.Len())
	}
}

// TestReferenceCacheConcurrent hammers one cache from many goroutines with a
// mix of hits, misses, and Invalidate calls. Every returned count must be
// correct regardless of interleaving (the serving layer makes concurrent
// scoring the default path); run under -race this also proves memory safety.
func TestReferenceCacheConcurrent(t *testing.T) {
	db := numsDB(200)
	w := sweepWorkload(16)
	cache := NewReferenceCache(db)

	// Ground truth, computed serially without the cache.
	want := make([]int, len(w))
	for i, q := range w {
		n, err := (*ReferenceCache)(nil).FullCount(db, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}

	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g*7 + i) % len(w)
				n, err := cache.FullCount(db, w[qi])
				if err != nil {
					errs <- err
					return
				}
				if n != want[qi] {
					errs <- fmt.Errorf("goroutine %d: count[%d] = %d, want %d", g, qi, n, want[qi])
					return
				}
				// Every goroutine occasionally invalidates mid-flight.
				if i%17 == g%17 {
					cache.Invalidate()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cache.Hits()+cache.Misses() == 0 {
		t.Error("cache never consulted")
	}
}

// TestReferenceCacheNilReceiver checks a nil cache is a transparent no-op.
func TestReferenceCacheNilReceiver(t *testing.T) {
	db := numsDB(50)
	var cache *ReferenceCache
	n, err := cache.FullCount(db, sweepWorkload(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("nil-cache count = %d, want 3", n)
	}
}
