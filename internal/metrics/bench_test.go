package metrics

import (
	"testing"

	"asqprl/internal/datagen"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Fig2-style scoring workload: every baseline comparison evaluates a test
// workload against the full IMDB database, so this is the harness's hot loop.
// The sub-benchmarks isolate the two optimizations of the scoring path: the
// per-query worker-pool fan-out and the reference-count cache shared across
// baselines.

func benchScoringFixture(b *testing.B) (*table.Database, *table.Database, workload.Workload) {
	b.Helper()
	db := datagen.IMDB(0.15, 1)
	w := workload.IMDB(36, 101)
	sub := table.NewSubset()
	for _, t := range db.Tables() {
		for i := 0; i < t.NumRows(); i += 25 { // keep 4%
			sub.Add(table.RowID{Table: t.Name, Row: i})
		}
	}
	return db, sub.Materialize(db), w
}

func benchScore(b *testing.B, opts ScoreOptions) {
	db, approx, w := benchScoringFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScoreWith(db, approx, w, 50, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2WorkloadScoringSerial is the pre-change baseline: one query at
// a time, every reference count recomputed.
func BenchmarkFig2WorkloadScoringSerial(b *testing.B) {
	benchScore(b, ScoreOptions{Parallelism: -1})
}

// BenchmarkFig2WorkloadScoringParallel4 fans queries out over 4 workers.
func BenchmarkFig2WorkloadScoringParallel4(b *testing.B) {
	benchScore(b, ScoreOptions{Parallelism: 4})
}

// BenchmarkFig2WorkloadScoringCached scores with a pre-warmed reference
// cache, the steady state of the 11-baseline harness where every baseline
// after the first reuses the full-database counts.
func BenchmarkFig2WorkloadScoringCached(b *testing.B) {
	db, approx, w := benchScoringFixture(b)
	cache := NewReferenceCache(db)
	opts := ScoreOptions{Parallelism: 4, Cache: cache}
	if _, err := ScoreWith(db, approx, w, 50, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScoreWith(db, approx, w, 50, opts); err != nil {
			b.Fatal(err)
		}
	}
}
