package baselines

import (
	"math/rand"
	"strings"

	"asqprl/internal/cluster"
	"asqprl/internal/embed"
	"asqprl/internal/sample"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// poolRow is a row drawn into the working pool of a data-driven baseline.
type poolRow struct {
	id  table.RowID
	row table.Row
	tab *table.Table
}

// buildPool draws up to size rows from db, proportionally across tables.
func buildPool(db *table.Database, size int, rng *rand.Rand) []poolRow {
	total := db.TotalRows()
	if total == 0 {
		return nil
	}
	var pool []poolRow
	for _, t := range db.Tables() {
		if t.NumRows() == 0 {
			continue
		}
		quota := int(float64(size) * float64(t.NumRows()) / float64(total))
		if quota < 1 {
			quota = 1
		}
		for _, i := range sample.Uniform(t.NumRows(), quota, rng) {
			pool = append(pool, poolRow{
				id:  table.RowID{Table: strings.ToLower(t.Name), Row: i},
				row: t.Rows[i],
				tab: t,
			})
		}
	}
	return pool
}

// QRD implements query result diversification via cluster medoids (after Liu
// & Jagadish): cluster a pool of rows and select medoids plus proportional
// members per cluster, maximizing representativeness and diversity.
type QRD struct{}

// Name implements Builder.
func (QRD) Name() string { return "QRD" }

// Build implements Builder.
func (QRD) Build(db *table.Database, _ workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	pool := buildPool(db, opts.PoolSize, rng)
	s := table.NewSubset()
	if len(pool) == 0 || k <= 0 {
		return s, nil
	}
	emb := embed.Embedder{Dim: 32}
	vecs := make([][]float64, len(pool))
	for i, p := range pool {
		vecs[i] = emb.Row(p.id.Table, p.tab.Schema, p.row)
	}
	numClusters := 64
	if numClusters > k {
		numClusters = k
	}
	if numClusters > len(pool) {
		numClusters = len(pool)
	}
	res := cluster.KMeans(vecs, numClusters, 12, rng)
	// Medoids first (one per cluster), then proportional round-robin.
	members := make([][]int, numClusters)
	for i, c := range res.Assignments {
		members[c] = append(members[c], i)
	}
	for ci := range members {
		// Shuffle for unbiased member picks.
		rng.Shuffle(len(members[ci]), func(a, b int) {
			members[ci][a], members[ci][b] = members[ci][b], members[ci][a]
		})
	}
	for round := 0; s.Size() < k; round++ {
		progressed := false
		for ci := range members {
			if s.Size() >= k {
				break
			}
			if round < len(members[ci]) {
				s.Add(pool[members[ci][round]].id)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return s, nil
}

// Skyline implements SKY: layered skyline computation over the numeric
// columns (maximizing) with categorical columns compared by frequency, as in
// Section 6.1's extension of Papadias et al. Layers are peeled until the
// budget is filled, with each table receiving a quota proportional to its
// size.
type Skyline struct{}

// Name implements Builder.
func (Skyline) Name() string { return "SKY" }

// Build implements Builder.
func (Skyline) Build(db *table.Database, _ workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	total := db.TotalRows()
	s := table.NewSubset()
	if total == 0 || k <= 0 {
		return s, nil
	}
	for _, t := range db.Tables() {
		if t.NumRows() == 0 {
			continue
		}
		quota := int(float64(k) * float64(t.NumRows()) / float64(total))
		if quota < 1 {
			quota = 1
		}
		poolSize := opts.PoolSize / len(db.Tables())
		idx := sample.Uniform(t.NumRows(), poolSize, rng)
		picked := skylineLayers(t, idx, quota)
		for _, i := range picked {
			if s.Size() >= k {
				break
			}
			s.Add(table.RowID{Table: strings.ToLower(t.Name), Row: i})
		}
	}
	return s, nil
}

// skylineLayers returns up to quota row indices by repeatedly peeling the
// dominance skyline of the remaining pool. Scores: numeric columns maximize
// their value, categorical columns maximize value frequency.
func skylineLayers(t *table.Table, pool []int, quota int) []int {
	// Build per-row score vectors over at most 4 dimensions.
	var dims []int
	for ci, col := range t.Schema {
		if len(dims) >= 4 {
			break
		}
		if strings.EqualFold(col.Name, "id") || strings.HasSuffix(strings.ToLower(col.Name), "_id") {
			continue
		}
		switch col.Kind {
		case table.KindInt, table.KindFloat, table.KindString:
			dims = append(dims, ci)
		}
	}
	if len(dims) == 0 {
		if quota > len(pool) {
			quota = len(pool)
		}
		return pool[:quota]
	}
	// Frequency tables for categorical dims.
	freq := make([]map[string]int, len(dims))
	for di, ci := range dims {
		if t.Schema[ci].Kind == table.KindString {
			f := map[string]int{}
			for _, ri := range pool {
				f[t.Rows[ri][ci].Str]++
			}
			freq[di] = f
		}
	}
	scores := make([][]float64, len(pool))
	for pi, ri := range pool {
		v := make([]float64, len(dims))
		for di, ci := range dims {
			cell := t.Rows[ri][ci]
			if freq[di] != nil {
				v[di] = float64(freq[di][cell.Str])
			} else {
				v[di] = cell.AsFloat()
			}
		}
		scores[pi] = v
	}

	remaining := make([]int, len(pool))
	for i := range remaining {
		remaining[i] = i
	}
	var out []int
	for len(out) < quota && len(remaining) > 0 {
		layer := skylineOf(scores, remaining)
		if len(layer) == 0 {
			break
		}
		inLayer := map[int]bool{}
		for _, pi := range layer {
			inLayer[pi] = true
			out = append(out, pool[pi])
			if len(out) >= quota {
				break
			}
		}
		next := remaining[:0]
		for _, pi := range remaining {
			if !inLayer[pi] {
				next = append(next, pi)
			}
		}
		remaining = next
	}
	return out
}

// skylineOf returns the indices in candidates not dominated by any other.
func skylineOf(scores [][]float64, candidates []int) []int {
	var out []int
	for _, a := range candidates {
		dominated := false
		for _, b := range candidates {
			if a == b {
				continue
			}
			if dominates(scores[b], scores[a]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// QuickR implements QUIK, a QuickR-style sampler: tables referenced by the
// workload receive budget proportional to their reference frequency, and
// rows within a table are stratified on the lowest-cardinality categorical
// column so rare strata stay represented — the "right samples from a
// catalog" idea at miniature scale.
type QuickR struct{}

// Name implements Builder.
func (QuickR) Name() string { return "QUIK" }

// Build implements Builder.
func (QuickR) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	// Table reference counts from the workload.
	refs := map[string]int{}
	for _, q := range train {
		for _, f := range q.Stmt.From {
			refs[strings.ToLower(f.Table)]++
		}
		for _, j := range q.Stmt.Joins {
			refs[strings.ToLower(j.Ref.Table)]++
		}
	}
	totalRefs := 0
	for _, c := range refs {
		totalRefs += c
	}
	s := table.NewSubset()
	for _, t := range db.Tables() {
		if t.NumRows() == 0 {
			continue
		}
		name := strings.ToLower(t.Name)
		var quota int
		if totalRefs > 0 {
			quota = int(float64(k) * float64(refs[name]) / float64(totalRefs))
		} else {
			quota = k / len(db.Tables())
		}
		if quota <= 0 {
			continue
		}
		strat := strataColumn(t)
		var idx []int
		if strat < 0 {
			idx = sample.Uniform(t.NumRows(), quota, rng)
		} else {
			strata := make([]int, t.NumRows())
			seen := map[string]int{}
			for i, r := range t.Rows {
				key := r[strat].Key()
				id, ok := seen[key]
				if !ok {
					id = len(seen)
					seen[key] = id
				}
				strata[i] = id
			}
			idx = sample.Stratified(strata, quota, rng)
		}
		for _, i := range idx {
			if s.Size() >= k {
				break
			}
			s.Add(table.RowID{Table: name, Row: i})
		}
	}
	return s, nil
}

// strataColumn picks the lowest-cardinality string column with at least two
// values, or -1.
func strataColumn(t *table.Table) int {
	best, bestCard := -1, 1<<30
	for ci, col := range t.Schema {
		if col.Kind != table.KindString {
			continue
		}
		card := map[string]bool{}
		for _, r := range t.Rows {
			card[r[ci].Str] = true
			if len(card) > 256 {
				break
			}
		}
		if len(card) >= 2 && len(card) <= 256 && len(card) < bestCard {
			best, bestCard = ci, len(card)
		}
	}
	return best
}
