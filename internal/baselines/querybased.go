package baselines

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	"asqprl/internal/sample"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

const lineageCap = 400 // per-query tracked result tuples for the baselines

// TopQueried implements TOP: rank tuples by how many workload queries their
// result tuples participate in, keep the top k.
type TopQueried struct{}

// Name implements Builder.
func (TopQueried) Name() string { return "TOP" }

// Build implements Builder.
func (TopQueried) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	queries := runWorkload(db, train, lineageCap)
	counts := map[table.RowID]int{}
	order := []table.RowID{}
	for qi, q := range queries {
		seenInQuery := map[table.RowID]bool{}
		for _, rows := range q.tuples {
			for _, id := range rows {
				if seenInQuery[id] {
					continue
				}
				seenInQuery[id] = true
				if counts[id] == 0 {
					order = append(order, id)
				}
				counts[id]++
			}
		}
		_ = qi
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	s := table.NewSubset()
	for _, id := range order {
		if s.Size() >= k {
			break
		}
		s.Add(id)
	}
	return s, nil
}

// Caching implements CACH: an LRU page-cache simulation that replays the
// workload in order, retaining the base rows of recent query results and
// evicting the least recently used beyond the budget.
type Caching struct{}

// Name implements Builder.
func (Caching) Name() string { return "CACH" }

// Build implements Builder.
func (Caching) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	queries := runWorkload(db, train, lineageCap)
	// LRU over rows: recency increases with use.
	recency := map[table.RowID]int{}
	clock := 0
	for _, q := range queries {
		for _, rows := range q.tuples {
			for _, id := range rows {
				clock++
				recency[id] = clock
			}
		}
	}
	ids := make([]table.RowID, 0, len(recency))
	for id := range recency {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return recency[ids[a]] > recency[ids[b]] })
	s := table.NewSubset()
	for _, id := range ids {
		if s.Size() >= k {
			break
		}
		s.Add(id)
	}
	return s, nil
}

// Verdict implements VERD, the VerdictDB-style baseline: variational
// (signature-stratified) subsampling of the workload's result tuples.
type Verdict struct{}

// Name implements Builder.
func (Verdict) Name() string { return "VERD" }

// Build implements Builder.
func (Verdict) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	queries := runWorkload(db, train, lineageCap)

	type tupleEntry struct {
		rows []table.RowID
		sig  string
	}
	var entries []tupleEntry
	for qi, q := range queries {
		sig := strconv.Itoa(qi)
		for _, rows := range q.tuples {
			entries = append(entries, tupleEntry{rows: rows, sig: sig})
		}
	}
	if len(entries) == 0 {
		return table.NewSubset(), nil
	}
	sigs := make([]string, len(entries))
	for i, e := range entries {
		sigs[i] = e.sig
	}
	// Each tuple contributes >= 1 row, so k tuples upper-bound the row
	// budget; truncate while adding.
	picked := sample.Variational(sigs, k, rng)
	s := table.NewSubset()
	for _, i := range picked {
		for _, id := range entries[i].rows {
			if s.Size() >= k {
				return s, nil
			}
			s.Add(id)
		}
	}
	return s, nil
}

// Greedy implements GRE+, a strengthened variant of the paper's greedy
// baseline: marginal Equation-1 gains are computed incrementally over
// workload lineage instead of by re-executing the metric, which makes greedy
// feasible at laptop scale (the paper's execution-based GRE — see GreedyExec
// — cannot finish). It repeatedly adds the result-tuple group with the best
// gain per added row until the budget k or the time budget is exhausted.
type Greedy struct{}

// Name implements Builder.
func (Greedy) Name() string { return "GRE+" }

// Build implements Builder.
func (Greedy) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	deadline := time.Now().Add(opts.TimeBudget)
	queries := runWorkload(db, train, lineageCap)
	cov := newCoverage(queries, opts.F)

	type group struct {
		rows []table.RowID
		used bool
	}
	var groups []group
	seen := map[string]bool{}
	for _, q := range queries {
		for _, rows := range q.tuples {
			key := rowSetKey(rows)
			if seen[key] {
				continue
			}
			seen[key] = true
			groups = append(groups, group{rows: rows})
		}
	}

	s := table.NewSubset()
	for s.Size() < k && time.Now().Before(deadline) {
		best, bestGain := -1, 0.0
		base := cov.score()
		for gi := range groups {
			if groups[gi].used {
				continue
			}
			cov.addGroup(groups[gi].rows)
			gain := cov.score() - base
			added := newRowCount(s, groups[gi].rows)
			cov.removeGroup(groups[gi].rows)
			if added == 0 {
				groups[gi].used = true
				continue
			}
			perRow := gain / float64(added)
			if best < 0 || perRow > bestGain {
				best, bestGain = gi, perRow
			}
			if time.Now().After(deadline) {
				break
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		groups[best].used = true
		cov.addGroup(groups[best].rows)
		for _, id := range groups[best].rows {
			if s.Size() >= k {
				break
			}
			s.Add(id)
		}
	}
	return s, nil
}

func newRowCount(s *table.Subset, rows []table.RowID) int {
	n := 0
	for _, id := range rows {
		if !s.Contains(id) {
			n++
		}
	}
	return n
}

// BruteForce implements BRT as the paper describes it: "exhaustively checks
// different combinations of k tuples" drawn from the entire database.
// Exhaustive enumeration is hopeless, so — like the paper's 48-hour-capped
// run — it evaluates random k-subsets of all tuples and keeps the best one
// found within the time budget. Because the candidate pool is the whole
// database (not just workload result rows), it lands near random sampling,
// matching the paper's BRT ≈ RAN scores.
type BruteForce struct{}

// Name implements Builder.
func (BruteForce) Name() string { return "BRT" }

// Build implements Builder.
func (BruteForce) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	deadline := time.Now().Add(opts.TimeBudget)
	queries := runWorkload(db, train, lineageCap)

	spans, total := spansOf(db)
	if total == 0 {
		return table.NewSubset(), nil
	}
	pool := make([]table.RowID, total)
	for g := 0; g < total; g++ {
		pool[g] = globalToRowID(spans, g)
	}

	cov := newCoverage(queries, opts.F)
	var bestRows []table.RowID
	bestScore := -1.0
	for time.Now().Before(deadline) {
		n := k
		if n > len(pool) {
			n = len(pool)
		}
		idx := sample.Uniform(len(pool), n, rng)
		rows := make([]table.RowID, len(idx))
		for i, j := range idx {
			rows[i] = pool[j]
			cov.addRow(pool[j])
		}
		if sc := cov.score(); sc > bestScore {
			bestScore = sc
			bestRows = rows
		}
		for _, id := range rows {
			cov.removeRow(id)
		}
	}
	s := table.NewSubset()
	s.AddAll(bestRows)
	return s, nil
}
