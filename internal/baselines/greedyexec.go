package baselines

import (
	"math/rand"
	"time"

	"asqprl/internal/engine"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// GreedyExec implements GRE exactly as the paper describes it: "in each
// iteration, take the row that achieves the largest marginal gain with
// respect to the metric" — where the gain of a candidate row is measured by
// actually re-evaluating the metric, i.e. executing the workload against the
// enlarged subset. This is the variant that cannot finish within the paper's
// 48-hour budget on their datasets; under this package's scaled-down time
// budget it likewise returns a tiny partial set, reproducing the paper's
// "N/A" / timeout rows. See Greedy ("GRE+") for the strengthened incremental
// implementation.
type GreedyExec struct{}

// Name implements Builder.
func (GreedyExec) Name() string { return "GRE" }

// Build implements Builder.
func (GreedyExec) Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	deadline := time.Now().Add(opts.TimeBudget)

	// Full-result sizes, computed once (charged against the budget, as the
	// paper's metric evaluation would be).
	fullCounts := make([]int, len(train))
	for i, q := range train {
		stmt := engine.RewriteAggregateToSPJ(q.Stmt)
		n, err := engine.Count(db, stmt)
		if err != nil {
			n = 0
		}
		fullCounts[i] = n
		if time.Now().After(deadline) {
			break
		}
	}

	spans, total := spansOf(db)
	s := table.NewSubset()
	if total == 0 || k <= 0 {
		return s, nil
	}
	// Candidate order is randomized once; each greedy iteration scans
	// candidates until the deadline.
	order := rng.Perm(total)

	scoreOf := func(sub *table.Subset) float64 {
		sdb := sub.Materialize(db)
		var sc float64
		for i, q := range train {
			if fullCounts[i] == 0 {
				sc += q.Weight
				continue
			}
			stmt := engine.RewriteAggregateToSPJ(q.Stmt)
			n, err := engine.Count(sdb, stmt)
			if err != nil {
				continue
			}
			need := opts.F
			if fullCounts[i] < need {
				need = fullCounts[i]
			}
			frac := float64(n) / float64(need)
			if frac > 1 {
				frac = 1
			}
			sc += q.Weight * frac
		}
		return sc
	}

	base := scoreOf(s)
	for s.Size() < k && time.Now().Before(deadline) {
		bestRow := table.RowID{Row: -1}
		bestGain := 0.0
		for _, g := range order {
			if time.Now().After(deadline) {
				break
			}
			id := globalToRowID(spans, g)
			if s.Contains(id) {
				continue
			}
			trial := s.Clone()
			trial.Add(id)
			gain := scoreOf(trial) - base
			if gain > bestGain {
				bestGain = gain
				bestRow = id
			}
		}
		if bestRow.Row < 0 {
			break
		}
		s.Add(bestRow)
		base += bestGain
	}
	return s, nil
}
