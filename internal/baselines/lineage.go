package baselines

import (
	"sort"
	"strconv"
	"strings"

	"asqprl/internal/engine"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// queryResults holds the lineage-level results of one training query.
type queryResults struct {
	weight float64
	total  int             // |q(T)|
	tuples [][]table.RowID // deduped result tuples (base-row groups)
}

// runWorkload executes every training query with lineage tracking, deduping
// result tuples. Queries that fail are skipped (their weight is dropped),
// mirroring how baselines in the paper simply cannot use unexecutable
// queries. Aggregates are rewritten to SPJ first.
func runWorkload(db *table.Database, train workload.Workload, capPerQuery int) []queryResults {
	var out []queryResults
	for _, q := range train {
		stmt := engine.RewriteAggregateToSPJ(q.Stmt)
		res, err := engine.ExecuteWith(db, stmt, engine.Options{TrackLineage: true})
		if err != nil {
			continue
		}
		qr := queryResults{weight: q.Weight, total: res.Table.NumRows()}
		seen := map[string]bool{}
		for _, lin := range res.Lineage {
			rows := normalizeRowSet(lin)
			key := rowSetKey(rows)
			if seen[key] {
				continue
			}
			seen[key] = true
			qr.tuples = append(qr.tuples, rows)
			if capPerQuery > 0 && len(qr.tuples) >= capPerQuery {
				break
			}
		}
		out = append(out, qr)
	}
	return out
}

func normalizeRowSet(rows []table.RowID) []table.RowID {
	cp := append([]table.RowID(nil), rows...)
	sort.Slice(cp, func(a, b int) bool {
		if cp[a].Table != cp[b].Table {
			return cp[a].Table < cp[b].Table
		}
		return cp[a].Row < cp[b].Row
	})
	out := cp[:0]
	for i, r := range cp {
		if i > 0 && r == cp[i-1] {
			continue
		}
		out = append(out, r)
	}
	return out
}

func rowSetKey(rows []table.RowID) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r.Table)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(r.Row))
		b.WriteByte('|')
	}
	return b.String()
}

// coverage incrementally scores subsets against executed workload results —
// the same Equation-1 bookkeeping the RL environment uses, rebuilt here so
// baselines stay self-contained.
type coverage struct {
	queries   []queryResults
	frameSize int
	rowRef    map[table.RowID]int
	rowIndex  map[table.RowID][][2]int // (query, tuple) pairs needing the row
	missing   [][]int
	covered   []int
	size      int
}

func newCoverage(queries []queryResults, frameSize int) *coverage {
	c := &coverage{
		queries:   queries,
		frameSize: frameSize,
		rowRef:    make(map[table.RowID]int),
		rowIndex:  make(map[table.RowID][][2]int),
		missing:   make([][]int, len(queries)),
		covered:   make([]int, len(queries)),
	}
	for qi, q := range queries {
		c.missing[qi] = make([]int, len(q.tuples))
		for ti, rows := range q.tuples {
			c.missing[qi][ti] = len(rows)
			for _, id := range rows {
				c.rowIndex[id] = append(c.rowIndex[id], [2]int{qi, ti})
			}
		}
	}
	return c
}

func (c *coverage) addRow(id table.RowID) {
	c.rowRef[id]++
	if c.rowRef[id] > 1 {
		return
	}
	c.size++
	for _, ref := range c.rowIndex[id] {
		c.missing[ref[0]][ref[1]]--
		if c.missing[ref[0]][ref[1]] == 0 {
			c.covered[ref[0]]++
		}
	}
}

func (c *coverage) removeRow(id table.RowID) {
	c.rowRef[id]--
	if c.rowRef[id] > 0 {
		return
	}
	delete(c.rowRef, id)
	c.size--
	for _, ref := range c.rowIndex[id] {
		if c.missing[ref[0]][ref[1]] == 0 {
			c.covered[ref[0]]--
		}
		c.missing[ref[0]][ref[1]]++
	}
}

func (c *coverage) addGroup(rows []table.RowID) {
	for _, id := range rows {
		c.addRow(id)
	}
}

func (c *coverage) removeGroup(rows []table.RowID) {
	for _, id := range rows {
		c.removeRow(id)
	}
}

// score evaluates Equation 1 over the tracked queries.
func (c *coverage) score() float64 {
	var s float64
	for qi, q := range c.queries {
		need := q.total
		if c.frameSize < need {
			need = c.frameSize
		}
		if need == 0 || len(q.tuples) == 0 {
			s += q.weight
			continue
		}
		est := float64(c.covered[qi]) * float64(q.total) / float64(len(q.tuples))
		frac := est / float64(need)
		if frac > 1 {
			frac = 1
		}
		s += q.weight * frac
	}
	return s
}
