package baselines

import (
	"testing"
	"time"

	"asqprl/internal/datagen"
	"asqprl/internal/metrics"
	"asqprl/internal/table"
	"asqprl/internal/workload"
)

func testDB() *table.Database { return datagen.IMDB(0.02, 7) }

func testWorkload() workload.Workload { return workload.IMDB(15, 11) }

func opts() Options {
	return Options{F: 25, Seed: 1, TimeBudget: 300 * time.Millisecond, PoolSize: 3000}
}

// TestAllBaselinesProduceValidSubsets runs every baseline end-to-end and
// checks the contract: at most k rows, all referencing real tuples.
func TestAllBaselinesProduceValidSubsets(t *testing.T) {
	db := testDB()
	w := testWorkload()
	const k = 200
	for _, b := range All() {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			s, err := b.Build(db, w, k, opts())
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			if s.Size() == 0 {
				t.Fatalf("%s: empty subset", b.Name())
			}
			if s.Size() > k {
				t.Errorf("%s: size %d exceeds budget %d", b.Name(), s.Size(), k)
			}
			for _, id := range s.IDs() {
				tab := db.Table(id.Table)
				if tab == nil || id.Row < 0 || id.Row >= tab.NumRows() {
					t.Fatalf("%s: invalid row %v", b.Name(), id)
				}
			}
		})
	}
}

// TestWorkloadAwareBaselinesBeatRandom: baselines that exploit the workload
// (TOP, GRE, VERD, CACH) should outscore pure random sampling on the
// training workload.
func TestWorkloadAwareBaselinesBeatRandom(t *testing.T) {
	db := testDB()
	w := testWorkload()
	const k = 200
	o := opts()

	score := func(b Builder) float64 {
		s, err := b.Build(db, w, k, o)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		v, err := metrics.Score(db, s.Materialize(db), w, o.F)
		if err != nil {
			t.Fatalf("%s score: %v", b.Name(), err)
		}
		return v
	}
	random := score(Random{})
	for _, b := range []Builder{TopQueried{}, Greedy{}, Verdict{}, Caching{}} {
		if got := score(b); got <= random {
			t.Errorf("%s score %.3f should beat RAN %.3f", b.Name(), got, random)
		} else {
			t.Logf("%s: %.3f vs RAN %.3f", b.Name(), got, random)
		}
	}
}

func TestGreedyRespectsTimeBudget(t *testing.T) {
	db := testDB()
	w := testWorkload()
	o := opts()
	o.TimeBudget = 1 * time.Millisecond
	start := time.Now()
	s, err := (Greedy{}).Build(db, w, 500, o)
	if err != nil {
		t.Fatal(err)
	}
	// Execution includes the workload run; the greedy loop itself must stop
	// almost immediately.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("greedy with 1ms budget took %v", elapsed)
	}
	_ = s // a tiny budget may legitimately give a tiny subset
}

func TestBruteForceImprovesWithTime(t *testing.T) {
	db := testDB()
	w := testWorkload()
	o := opts()
	o.TimeBudget = 20 * time.Millisecond
	quick, err := (BruteForce{}).Build(db, w, 200, o)
	if err != nil {
		t.Fatal(err)
	}
	o.TimeBudget = 400 * time.Millisecond
	longer, err := (BruteForce{}).Build(db, w, 200, o)
	if err != nil {
		t.Fatal(err)
	}
	sQuick, _ := metrics.Score(db, quick.Materialize(db), w, o.F)
	sLonger, _ := metrics.Score(db, longer.Materialize(db), w, o.F)
	if sLonger < sQuick-0.05 {
		t.Errorf("more search time should not hurt much: %.3f -> %.3f", sQuick, sLonger)
	}
}

func TestRandomEdgeCases(t *testing.T) {
	db := testDB()
	s, err := (Random{}).Build(db, nil, 0, opts())
	if err != nil || s.Size() != 0 {
		t.Errorf("k=0 should give empty subset: %v, %d", err, s.Size())
	}
	huge, err := (Random{}).Build(db, nil, db.TotalRows()+100, opts())
	if err != nil {
		t.Fatal(err)
	}
	if huge.Size() != db.TotalRows() {
		t.Errorf("k > total should cap at %d, got %d", db.TotalRows(), huge.Size())
	}
	empty := table.NewDatabase()
	s, err = (Random{}).Build(empty, nil, 10, opts())
	if err != nil || s.Size() != 0 {
		t.Error("empty db should give empty subset")
	}
}

func TestQRDDiversityExceedsClusteredPick(t *testing.T) {
	// QRD should cover all tables (diverse) rather than collapsing into one.
	db := testDB()
	s, err := (QRD{}).Build(db, nil, 200, opts())
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string]bool{}
	for _, id := range s.IDs() {
		tables[id.Table] = true
	}
	if len(tables) < 3 {
		t.Errorf("QRD covers only %d tables", len(tables))
	}
}

func TestSkylinePrefersDominantRows(t *testing.T) {
	// Construct a table where one row dominates everything.
	tb := table.New("scores", table.Schema{
		{Name: "a", Kind: table.KindInt},
		{Name: "b", Kind: table.KindInt},
	})
	tb.AppendRow(table.Row{table.NewInt(100), table.NewInt(100)}) // dominator
	for i := 0; i < 50; i++ {
		tb.AppendRow(table.Row{table.NewInt(int64(i % 10)), table.NewInt(int64(i / 10))})
	}
	db := table.NewDatabase()
	db.Add(tb)
	o := opts()
	o.PoolSize = 100
	s, err := (Skyline{}).Build(db, nil, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(table.RowID{Table: "scores", Row: 0}) {
		t.Errorf("skyline should pick the dominating row, got %v", s.IDs())
	}
}

func TestQuickRAllocationFollowsWorkloadReferences(t *testing.T) {
	db := testDB()
	// Workload referencing only the title table.
	w := workload.MustNew(
		"SELECT * FROM title WHERE genre = 'drama'",
		"SELECT * FROM title WHERE rating > 7",
	)
	s, err := (QuickR{}).Build(db, w, 100, opts())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.IDs() {
		if id.Table != "title" {
			t.Fatalf("QUIK picked row from unreferenced table %q", id.Table)
		}
	}
}

func TestCachingKeepsRecentQueries(t *testing.T) {
	db := testDB()
	w := testWorkload()
	s, err := (Caching{}).Build(db, w, 100, opts())
	if err != nil {
		t.Fatal(err)
	}
	// The most recent query's rows should be preferentially present:
	// score on the last query should be at least the score on the first.
	last := workload.Workload{w[len(w)-1]}
	first := workload.Workload{w[0]}
	sd := s.Materialize(db)
	sLast, _ := metrics.Score(db, sd, last, 25)
	sFirst, _ := metrics.Score(db, sd, first, 25)
	t.Logf("CACH: first=%.3f last=%.3f", sFirst, sLast)
	if sLast == 0 && sFirst == 0 {
		t.Error("cache retained nothing from the workload")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"RAN", "BRT", "GRE", "GRE+", "TOP", "CACH", "QRD", "SKY", "VERD", "QUIK"} {
		b, err := ByName(name)
		if err != nil || b.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, b, err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestCoverageScoreAgainstMetrics(t *testing.T) {
	// The incremental coverage score must agree with the executed metric
	// when the subset is exactly a union of result tuples.
	db := testDB()
	w := testWorkload()
	queries := runWorkload(db, w, 0) // no cap: exact tracking
	cov := newCoverage(queries, 25)
	s := table.NewSubset()
	// Add the first 30 tuples of the first query.
	added := 0
	for _, rows := range queries[0].tuples {
		cov.addGroup(rows)
		s.AddAll(rows)
		added++
		if added >= 30 {
			break
		}
	}
	got := cov.score()
	want, err := metrics.Score(db, s.Materialize(db), w, 25)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 0.02 || diff < -0.02 {
		t.Errorf("coverage score %.4f vs executed metric %.4f", got, want)
	}
}
