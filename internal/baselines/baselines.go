// Package baselines implements the comparison methods of Section 6.1:
// random sampling (RAN), brute force (BRT), greedy (GRE), top-queried tuples
// (TOP), LRU caching (CACH), query result diversification (QRD), skyline
// (SKY), VerdictDB-style variational sampling (VERD), and QuickR-style
// stratified sampling (QUIK). The generative VAE baseline lives in
// internal/generative because it produces synthetic tuples rather than a
// subset.
//
// Every baseline implements Builder: given the database, the training
// workload and the memory budget k, produce an approximation subset. Time
// budgets stand in for the paper's 48-hour cap — BRT and GRE return their
// best-so-far when the budget expires.
package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"asqprl/internal/table"
	"asqprl/internal/workload"
)

// Options carries shared baseline parameters.
type Options struct {
	// F is the frame size used by score-driven baselines (GRE, BRT).
	F int
	// Seed drives random choices.
	Seed int64
	// TimeBudget caps BRT and GRE; zero means a default of 2 seconds
	// (standing in for the paper's 48-hour limit).
	TimeBudget time.Duration
	// PoolSize caps the row pool examined by pool-based baselines
	// (QRD, SKY); zero means 20000.
	PoolSize int
}

func (o Options) normalize() Options {
	if o.F <= 0 {
		o.F = 50
	}
	if o.TimeBudget <= 0 {
		o.TimeBudget = 2 * time.Second
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 20000
	}
	return o
}

// Builder constructs an approximation subset of at most k tuples.
type Builder interface {
	// Name returns the short name used in the paper's tables (RAN, GRE, ...).
	Name() string
	// Build selects at most k tuples of db as an approximation set.
	Build(db *table.Database, train workload.Workload, k int, opts Options) (*table.Subset, error)
}

// All returns every subset-producing baseline in the paper's Figure 2 order.
func All() []Builder {
	return []Builder{
		Caching{}, Random{}, QuickR{}, Verdict{}, Skyline{},
		BruteForce{}, QRD{}, TopQueried{}, GreedyExec{}, Greedy{},
	}
}

// ByName returns the baseline with the given name, or an error.
func ByName(name string) (Builder, error) {
	for _, b := range All() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("baselines: unknown baseline %q", name)
}

// tableSpans indexes the database rows as one flat range per table, used by
// uniform samplers.
type tableSpan struct {
	name  string
	start int
	rows  int
}

func spansOf(db *table.Database) ([]tableSpan, int) {
	var spans []tableSpan
	total := 0
	for _, t := range db.Tables() {
		spans = append(spans, tableSpan{name: t.Name, start: total, rows: t.NumRows()})
		total += t.NumRows()
	}
	return spans, total
}

func globalToRowID(spans []tableSpan, g int) table.RowID {
	for i := len(spans) - 1; i >= 0; i-- {
		if g >= spans[i].start {
			return table.RowID{Table: spans[i].name, Row: g - spans[i].start}
		}
	}
	return table.RowID{}
}

// Random implements RAN: k rows drawn uniformly from the whole database.
type Random struct{}

// Name implements Builder.
func (Random) Name() string { return "RAN" }

// Build implements Builder.
func (Random) Build(db *table.Database, _ workload.Workload, k int, opts Options) (*table.Subset, error) {
	opts = opts.normalize()
	rng := rand.New(rand.NewSource(opts.Seed))
	spans, total := spansOf(db)
	s := table.NewSubset()
	if total == 0 || k <= 0 {
		return s, nil
	}
	if k > total {
		k = total
	}
	picked := map[int]bool{}
	for len(picked) < k {
		picked[rng.Intn(total)] = true
	}
	for g := range picked {
		s.Add(globalToRowID(spans, g))
	}
	return s, nil
}
