package rl

import (
	"fmt"
	"math"

	"asqprl/internal/nn"
	"asqprl/internal/obs"
)

// checkpoint is an in-memory snapshot of the agent's learned state, encoded
// with the same serialization used for persistence so a rollback exercises
// the exact restore path a crash-recovery would.
type checkpoint struct {
	actor     []byte
	critic    []byte
	iteration int
}

// snapshot captures the current actor/critic parameters. A nil return means
// serialization failed (never expected with in-memory buffers); callers keep
// the previous checkpoint in that case.
func (a *Agent) snapshot(iteration int) *checkpoint {
	actor, err := a.actor.Marshal()
	if err != nil {
		return nil
	}
	critic, err := a.critic.Marshal()
	if err != nil {
		return nil
	}
	return &checkpoint{actor: actor, critic: critic, iteration: iteration}
}

// restore rolls the agent's networks back to ck and rebuilds both optimizers
// (their moment estimates refer to the divergent trajectory, so they reset).
func (a *Agent) restore(ck *checkpoint) error {
	if ck == nil {
		return fmt.Errorf("rl: no checkpoint to restore")
	}
	actor, err := nn.Unmarshal(ck.actor)
	if err != nil {
		return fmt.Errorf("rl: restore actor: %w", err)
	}
	critic, err := nn.Unmarshal(ck.critic)
	if err != nil {
		return fmt.Errorf("rl: restore critic: %w", err)
	}
	a.actor.CopyFrom(actor)
	a.critic.CopyFrom(critic)
	a.actorOpt = nn.NewAdam(a.actor, a.cfg.LR)
	a.criticOpt = nn.NewAdam(a.critic, a.cfg.LR)
	return nil
}

// halveLR halves the learning rate and rebuilds the optimizers with it, the
// standard response to a divergent PPO update.
func (a *Agent) halveLR() {
	a.cfg.LR /= 2
	a.actorOpt = nn.NewAdam(a.actor, a.cfg.LR)
	a.criticOpt = nn.NewAdam(a.critic, a.cfg.LR)
}

// LR returns the agent's current learning rate (halved by each divergence
// recovery).
func (a *Agent) LR() float64 { return a.cfg.LR }

// paramsFinite reports whether every parameter of m is finite.
func paramsFinite(m *nn.MLP) bool {
	for l := range m.W {
		for _, v := range m.W[l] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		for _, v := range m.B[l] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// divergence inspects one iteration's loss telemetry and the network
// parameters and names the first divergence signal it finds: non-finite loss
// terms, KL blow-up past cfg.DivergeKL, entropy collapse below
// cfg.EntropyFloor, or non-finite parameters. An empty string means healthy.
func (a *Agent) divergence(us updateStats) string {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"policy_loss", us.policyLoss},
		{"value_loss", us.valueLoss},
		{"entropy", us.entropy},
		{"kl", us.meanKL},
	} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return "non-finite " + v.name
		}
	}
	if a.cfg.DivergeKL > 0 && us.meanKL > a.cfg.DivergeKL {
		return fmt.Sprintf("kl %.3g exceeds threshold %.3g", us.meanKL, a.cfg.DivergeKL)
	}
	if a.cfg.EntropyFloor > 0 && us.entropy < a.cfg.EntropyFloor {
		return fmt.Sprintf("entropy %.3g collapsed below %.3g", us.entropy, a.cfg.EntropyFloor)
	}
	if !paramsFinite(a.actor) {
		return "non-finite actor parameters"
	}
	if a.cfg.UseCritic && !paramsFinite(a.critic) {
		return "non-finite critic parameters"
	}
	return ""
}

// poison corrupts the actor with a NaN weight. It exists for the
// fault-injection harness (point rl/update) to simulate a numerically
// divergent update; the watchdog must detect and roll it back.
func (a *Agent) poison() {
	if len(a.actor.W) > 0 && len(a.actor.W[0]) > 0 {
		a.actor.W[0][0] = math.NaN()
	}
}

// recordRecovery publishes one watchdog recovery to observability.
func recordRecovery(iteration int, reason string, lr float64) {
	if obs.Enabled() {
		obs.Default().Counter("rl/recoveries").Inc()
	}
	obs.Logger().Warn("rl divergence recovery",
		"iter", iteration, "reason", reason, "new_lr", lr)
}
