package rl

import (
	"math"
	"math/rand"
	"testing"

	"asqprl/internal/obs"
)

// banditEnv is a one-step environment with fixed per-arm rewards.
type banditEnv struct {
	rewards []float64
}

func (b *banditEnv) Reset() ([]float64, []bool) {
	return []float64{1}, nil
}

func (b *banditEnv) Step(action int) ([]float64, []bool, float64, bool) {
	return []float64{1}, nil, b.rewards[action], true
}

func (b *banditEnv) StateDim() int      { return 1 }
func (b *banditEnv) NumActions() int    { return len(b.rewards) }
func (b *banditEnv) Clone() Environment { return &banditEnv{rewards: b.rewards} }

// coverEnv is a small set-cover environment mimicking GSL's structure: each
// action covers some elements; reward is the marginal coverage; an element
// counts once. Episodes last exactly budget steps, and chosen actions are
// masked out (like ASQP-RL's action masking).
type coverEnv struct {
	sets    [][]int
	univ    int
	budget  int
	covered []bool
	chosen  []bool
	steps   int
}

func newCoverEnv() *coverEnv {
	return &coverEnv{
		// Action 0 covers a lot; greedy-optimal picks {0, 3}.
		sets: [][]int{
			{0, 1, 2, 3},
			{0, 1},
			{2},
			{4, 5, 6},
			{6},
			{}, // useless action
		},
		univ:   7,
		budget: 2,
	}
}

func (c *coverEnv) Reset() ([]float64, []bool) {
	c.covered = make([]bool, c.univ)
	c.chosen = make([]bool, len(c.sets))
	c.steps = 0
	return c.state(), c.mask()
}

func (c *coverEnv) state() []float64 {
	s := make([]float64, c.univ)
	for i, v := range c.covered {
		if v {
			s[i] = 1
		}
	}
	return s
}

func (c *coverEnv) mask() []bool {
	m := make([]bool, len(c.sets))
	for i := range m {
		m[i] = !c.chosen[i]
	}
	return m
}

func (c *coverEnv) Step(action int) ([]float64, []bool, float64, bool) {
	if c.chosen[action] {
		panic("coverEnv: masked action selected")
	}
	c.chosen[action] = true
	gained := 0
	for _, e := range c.sets[action] {
		if !c.covered[e] {
			c.covered[e] = true
			gained++
		}
	}
	c.steps++
	done := c.steps >= c.budget
	return c.state(), c.mask(), float64(gained) / float64(c.univ), done
}

func (c *coverEnv) StateDim() int      { return c.univ }
func (c *coverEnv) NumActions() int    { return len(c.sets) }
func (c *coverEnv) Clone() Environment { return newCoverEnv() }

func TestAgentLearnsBandit(t *testing.T) {
	env := &banditEnv{rewards: []float64{0.1, 0.9, 0.2, 0.05}}
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.LR = 0.01
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	stats := agent.Train(env, 200, nil)
	if stats.Episodes != 200 {
		t.Fatalf("episodes = %d", stats.Episodes)
	}
	p := agent.Policy([]float64{1}, nil)
	if best := argmaxOf(p); best != 1 {
		t.Errorf("policy should prefer arm 1, got distribution %v", p)
	}
	if stats.FinalReturn < 0.6 {
		t.Errorf("final return = %.3f, want > 0.6", stats.FinalReturn)
	}
}

func argmaxOf(p []float64) int {
	best, bv := -1, math.Inf(-1)
	for i, v := range p {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

func TestAgentLearnsSetCover(t *testing.T) {
	env := newCoverEnv()
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.LR = 0.01
	cfg.EntropyCoef = 0.001
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	stats := agent.Train(env, 300, nil)
	// Optimal return: cover all 7 elements = 1.0.
	actions, total := agent.Greedy(newCoverEnv(), 10)
	if total < 0.99 {
		t.Errorf("greedy rollout return = %.3f (actions %v), want 1.0; train stats %+v",
			total, actions, stats.FinalReturn)
	}
}

func TestAgentBeatsRandomOnCover(t *testing.T) {
	env := newCoverEnv()
	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.LR = 0.01
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	agent.Train(env, 300, nil)
	_, trained := agent.Greedy(newCoverEnv(), 10)

	// Random baseline.
	rng := rand.New(rand.NewSource(9))
	var randomTotal float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		e := newCoverEnv()
		_, mask := e.Reset()
		for {
			valid := validActions(mask)
			if len(valid) == 0 {
				break
			}
			_, m, r, done := e.Step(valid[rng.Intn(len(valid))])
			randomTotal += r
			mask = m
			if done {
				break
			}
		}
	}
	random := randomTotal / trials
	if trained <= random {
		t.Errorf("trained %.3f should beat random %.3f", trained, random)
	}
}

func validActions(mask []bool) []int {
	var out []int
	for i, ok := range mask {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func TestMaskingNeverViolated(t *testing.T) {
	// coverEnv panics if a masked action is selected; run stochastic
	// training long enough to catch violations.
	env := newCoverEnv()
	cfg := DefaultConfig()
	cfg.Seed = 7
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	agent.Train(env, 100, nil)
}

func TestAblationConfigsTrain(t *testing.T) {
	// All ablated variants must run and produce sane stats (Figure 3 rows).
	variants := map[string]func(*Config){
		"full":     func(c *Config) {},
		"-ppo":     func(c *Config) { c.ClipEpsilon = 0; c.KLCoef = 0 },
		"-ppo -ac": func(c *Config) { c.ClipEpsilon = 0; c.KLCoef = 0; c.UseCritic = false },
	}
	for name, mod := range variants {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.LR = 0.01
		mod(&cfg)
		env := newCoverEnv()
		agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
		stats := agent.Train(env, 60, nil)
		if stats.Episodes != 60 || math.IsNaN(stats.FinalReturn) {
			t.Errorf("%s: bad stats %+v", name, stats)
		}
	}
}

func TestEpochsForcedToOneWithoutProximalTerm(t *testing.T) {
	cfg := Config{ClipEpsilon: 0, KLCoef: 0, Epochs: 8}
	if got := cfg.normalize().Epochs; got != 1 {
		t.Errorf("epochs = %d, want 1 when no clip/KL", got)
	}
	cfg = Config{ClipEpsilon: 0.2, Epochs: 8}
	if got := cfg.normalize().Epochs; got != 8 {
		t.Errorf("epochs = %d, want 8 with clipping", got)
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.Workers = 3
		env := newCoverEnv()
		agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
		stats := agent.Train(env, 30, nil)
		return stats.ReturnHistory
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d: %v vs %v (training not deterministic)", i, a[i], b[i])
		}
	}
}

func TestEarlyStopCallback(t *testing.T) {
	env := newCoverEnv()
	cfg := DefaultConfig()
	cfg.Seed = 2
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	calls := 0
	stats := agent.Train(env, 1000, func(iter, eps int, ret float64) bool {
		calls++
		return calls < 3
	})
	if !stats.EarlyStopped {
		t.Error("should have early-stopped")
	}
	if stats.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", stats.Iterations)
	}
}

func TestSelectActionGreedyAndMasked(t *testing.T) {
	env := &banditEnv{rewards: []float64{0, 1, 0}}
	cfg := DefaultConfig()
	cfg.Seed = 1
	agent := mustAgent(t, cfg, 1, 3)
	// With everything masked, no action is selectable.
	if got := agent.SelectAction([]float64{1}, []bool{false, false, false}, true, nil); got != -1 {
		t.Errorf("fully masked should return -1, got %d", got)
	}
	// With only one action valid it must be picked.
	if got := agent.SelectAction([]float64{1}, []bool{false, true, false}, false, nil); got != 1 {
		t.Errorf("only-valid action should be picked, got %d", got)
	}
	_ = env
}

func TestValueAndParamsAccessors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	agent := mustAgent(t, cfg, 2, 3)
	v := agent.Value([]float64{0.5, -0.5})
	if math.IsNaN(v) {
		t.Error("value NaN")
	}
	if agent.ActorParams().OutputDim() != 3 || agent.CriticParams().OutputDim() != 1 {
		t.Error("network shapes wrong")
	}
}

func TestZeroEpisodes(t *testing.T) {
	cfg := DefaultConfig()
	agent := mustAgent(t, cfg, 1, 2)
	stats := agent.Train(&banditEnv{rewards: []float64{0, 1}}, 0, nil)
	if stats.Episodes != 0 || stats.Iterations != 0 {
		t.Errorf("zero-episode train produced work: %+v", stats)
	}
}

// mustAgent constructs an agent, failing the test on shape errors.
func mustAgent(t *testing.T, cfg Config, stateDim, numActions int) *Agent {
	t.Helper()
	agent, err := NewAgent(cfg, stateDim, numActions)
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func TestInvalidShapesError(t *testing.T) {
	for _, shape := range [][2]int{{1, 0}, {0, 3}, {-2, 4}, {4, -1}} {
		if _, err := NewAgent(DefaultConfig(), shape[0], shape[1]); err == nil {
			t.Errorf("shape %v should be rejected with an error", shape)
		}
	}
}

// TestTrainEmitsMetrics asserts the trainer records loss/entropy/return
// telemetry for every iteration, both in the extended TrainStats and in the
// obs registry series.
func TestTrainEmitsMetrics(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.SetEnabled(true)
	obs.Default().Reset()
	defer func() {
		obs.SetEnabled(prevEnabled)
		obs.Default().Reset()
	}()

	env := newCoverEnv()
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.Workers = 2
	cfg.EpisodesPerIteration = 4
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	stats := agent.Train(env, 20, nil)

	if stats.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	if len(stats.History) != stats.Iterations {
		t.Fatalf("History has %d entries, want %d", len(stats.History), stats.Iterations)
	}
	for i, it := range stats.History {
		if it.Iteration != i+1 {
			t.Errorf("History[%d].Iteration = %d, want %d", i, it.Iteration, i+1)
		}
		if it.Episodes <= 0 || it.MeanEpisodeLen <= 0 {
			t.Errorf("History[%d] missing episode accounting: %+v", i, it)
		}
		if it.Entropy <= 0 {
			t.Errorf("History[%d].Entropy = %f, want > 0 for a stochastic policy", i, it.Entropy)
		}
		if it.ValueLoss <= 0 {
			t.Errorf("History[%d].ValueLoss = %f, want > 0 with a critic", i, it.ValueLoss)
		}
		if it.ClipFraction < 0 || it.ClipFraction > 1 {
			t.Errorf("History[%d].ClipFraction = %f out of [0,1]", i, it.ClipFraction)
		}
	}
	// Return history must agree between the flat and structured series.
	for i, r := range stats.ReturnHistory {
		if stats.History[i].MeanReturn != r {
			t.Fatalf("History[%d].MeanReturn = %f, ReturnHistory = %f", i, stats.History[i].MeanReturn, r)
		}
	}

	snap := obs.Default().Snapshot()
	for _, name := range []string{
		"rl/mean_return", "rl/policy_loss", "rl/value_loss",
		"rl/entropy", "rl/clip_fraction", "rl/kl", "rl/episode_len",
	} {
		if got := len(snap.Series[name]); got != stats.Iterations {
			t.Errorf("series %q has %d points, want %d", name, got, stats.Iterations)
		}
	}
	if snap.Counters["rl/iterations"] != int64(stats.Iterations) {
		t.Errorf("rl/iterations = %d, want %d", snap.Counters["rl/iterations"], stats.Iterations)
	}
	if snap.Counters["rl/episodes"] != int64(stats.Episodes) {
		t.Errorf("rl/episodes = %d, want %d", snap.Counters["rl/episodes"], stats.Episodes)
	}
}

// TestTrainHistoryWithoutObs checks the extended TrainStats is populated even
// when observability is off (it is cheap and callers rely on it).
func TestTrainHistoryWithoutObs(t *testing.T) {
	prevEnabled := obs.Enabled()
	obs.SetEnabled(false)
	defer obs.SetEnabled(prevEnabled)

	env := &banditEnv{rewards: []float64{0.1, 0.9}}
	cfg := DefaultConfig()
	cfg.Seed = 1
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	stats := agent.Train(env, 12, nil)
	if len(stats.History) != stats.Iterations || stats.Iterations == 0 {
		t.Fatalf("History len %d vs iterations %d", len(stats.History), stats.Iterations)
	}
}
