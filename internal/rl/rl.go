// Package rl implements the reinforcement-learning framework of ASQP-RL
// (Section 5 of the paper): actor-critic policy-gradient agents with Proximal
// Policy Optimization (clipped surrogate), entropy regularization, an
// optional KL penalty against the pre-update policy, invalid-action masking,
// and parallel actor-learners that collect trajectories concurrently.
//
// The package is environment-agnostic: anything implementing Environment
// (masked discrete actions, episodic) can be trained. The ASQP-specific
// GSL/DRP environments live in internal/core.
//
// Ablation switches mirror the paper's Figure 3: setting Config.ClipEpsilon
// to zero disables the PPO clipping ("-ppo" rows), and Config.UseCritic =
// false falls back to REINFORCE-style returns ("-ppo -ac" rows).
package rl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"asqprl/internal/faults"
	"asqprl/internal/nn"
	"asqprl/internal/obs"
)

// Environment is a discrete-action, episodic environment with invalid-action
// masking. State vectors have a fixed dimension and masks have one entry per
// action.
type Environment interface {
	// Reset starts a new episode, returning the initial state and mask.
	Reset() (state []float64, mask []bool)
	// Step applies an action, returning the next state, next mask, reward,
	// and whether the episode has ended.
	Step(action int) (state []float64, mask []bool, reward float64, done bool)
	// StateDim returns the dimensionality of state vectors.
	StateDim() int
	// NumActions returns the size of the action space.
	NumActions() int
	// Clone returns an independent copy for a parallel actor-learner.
	Clone() Environment
}

// Config holds agent hyper-parameters. The defaults (applied by
// normalize) follow Section 6.1 of the paper: learning rate 5e-5 (scaled up
// here because our networks are far smaller), clip/KL coefficient 0.2,
// entropy coefficient 0.001.
type Config struct {
	// Hidden lists hidden-layer widths of both actor and critic.
	Hidden []int
	// LR is the Adam learning rate.
	LR float64
	// Gamma is the discount factor.
	Gamma float64
	// ClipEpsilon is the PPO clipping range ε; zero disables clipping
	// (the "-ppo" ablation).
	ClipEpsilon float64
	// EntropyCoef scales the entropy bonus encouraging exploration.
	EntropyCoef float64
	// KLCoef scales the penalty on KL(old || new) keeping updates proximal.
	KLCoef float64
	// ValueCoef scales the critic's squared-error loss.
	ValueCoef float64
	// UseCritic enables the critic baseline; false is the "-ac" ablation
	// (REINFORCE with batch-mean baseline).
	UseCritic bool
	// Epochs is the number of optimization passes per collected batch
	// (only meaningful with clipping or KL penalty; forced to 1 otherwise).
	Epochs int
	// Workers is the number of parallel actor-learners collecting episodes.
	Workers int
	// EpisodesPerIteration is the batch size in episodes; zero means
	// Workers episodes per iteration.
	EpisodesPerIteration int
	// GradClip bounds the global gradient norm (0 disables).
	GradClip float64
	// Seed makes training deterministic.
	Seed int64

	// Divergence watchdog (see TrainContext). Non-finite losses or
	// parameters always trigger a rollback; the thresholds below add
	// configurable triggers.

	// DivergeKL triggers a rollback when an iteration's mean KL exceeds it.
	// Zero means the default (5.0); negative disables the KL trigger.
	DivergeKL float64
	// EntropyFloor triggers a rollback when the mean policy entropy falls
	// below it (policy collapse). Zero disables.
	EntropyFloor float64
	// CheckpointEvery is how many healthy iterations pass between in-memory
	// checkpoints of the actor/critic. Zero means the default (5).
	CheckpointEvery int
	// MaxRecoveries bounds watchdog rollbacks per training run; once
	// exhausted, training stops at the last good checkpoint instead of
	// looping. Zero means the default (3).
	MaxRecoveries int
}

// normalize fills defaults in place and returns the config.
func (c Config) normalize() Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LR <= 0 {
		c.LR = 3e-3
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		c.Gamma = 0.99
	}
	if c.EntropyCoef < 0 {
		c.EntropyCoef = 0
	}
	if c.ValueCoef <= 0 {
		c.ValueCoef = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.ClipEpsilon <= 0 && c.KLCoef <= 0 {
		// Without a proximal term, re-walking the batch is invalid
		// off-policy; fall back to a single pass.
		c.Epochs = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.EpisodesPerIteration <= 0 {
		c.EpisodesPerIteration = c.Workers
	}
	if c.GradClip < 0 {
		c.GradClip = 0
	}
	if c.DivergeKL == 0 {
		c.DivergeKL = 5.0
	}
	if c.EntropyFloor < 0 {
		c.EntropyFloor = 0
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	if c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 3
	}
	return c
}

// DefaultConfig returns the paper-default PPO configuration.
func DefaultConfig() Config {
	return Config{
		Hidden:      []int{64, 64},
		LR:          3e-3,
		Gamma:       0.99,
		ClipEpsilon: 0.2,
		EntropyCoef: 0.001,
		KLCoef:      0.2,
		ValueCoef:   0.5,
		UseCritic:   true,
		Epochs:      4,
		Workers:     4,
	}.normalize()
}

// Agent is an actor-critic PPO agent over a fixed environment shape.
type Agent struct {
	cfg       Config
	actor     *nn.MLP
	critic    *nn.MLP
	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	stateDim  int
	actions   int
}

// NewAgent constructs an agent for environments with the given state
// dimension and action count. A malformed shape is a returned error, not a
// panic: agent construction sits on the serve path of model restore, where a
// corrupt snapshot must degrade into a diagnosable failure.
func NewAgent(cfg Config, stateDim, numActions int) (*Agent, error) {
	cfg = cfg.normalize()
	if stateDim <= 0 || numActions <= 0 {
		return nil, fmt.Errorf("rl: invalid network shape: state dim %d, actions %d (both must be positive)", stateDim, numActions)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := append(append([]int{stateDim}, cfg.Hidden...), numActions)
	criticSizes := append(append([]int{stateDim}, cfg.Hidden...), 1)
	a := &Agent{
		cfg:      cfg,
		actor:    nn.NewMLP(rng, nn.ActTanh, actorSizes...),
		critic:   nn.NewMLP(rng, nn.ActTanh, criticSizes...),
		rng:      rng,
		stateDim: stateDim,
		actions:  numActions,
	}
	a.actorOpt = nn.NewAdam(a.actor, cfg.LR)
	a.criticOpt = nn.NewAdam(a.critic, cfg.LR)
	return a, nil
}

// Config returns the agent's (normalized) configuration.
func (a *Agent) Config() Config { return a.cfg }

// Policy returns the masked action distribution for a state.
func (a *Agent) Policy(state []float64, mask []bool) []float64 {
	logits := a.actor.Forward(state)
	return nn.Softmax(nn.MaskLogits(logits, mask))
}

// Value returns the critic's state-value estimate.
func (a *Agent) Value(state []float64) float64 {
	return a.critic.Forward(state)[0]
}

// SelectAction samples from the masked policy (or takes the argmax when
// greedy). It returns -1 if no action is valid.
func (a *Agent) SelectAction(state []float64, mask []bool, greedy bool, rng *rand.Rand) int {
	p := a.Policy(state, mask)
	var mass float64
	for _, v := range p {
		mass += v
	}
	if mass <= 0 {
		return -1
	}
	if greedy {
		return nn.Argmax(p)
	}
	if rng == nil {
		rng = a.rng
	}
	return nn.SampleCategorical(p, rng)
}

// step is one transition within a trajectory.
type step struct {
	state   []float64
	mask    []bool
	action  int
	reward  float64
	logProb float64
	oldDist []float64 // masked policy at collection time (for KL)
	ret     float64   // discounted return-to-go, filled by finishEpisode
	adv     float64   // advantage, filled by the updater
}

// trajectory is one collected episode.
type trajectory struct {
	steps  []step
	reward float64 // undiscounted episode return
}

// IterationStats is the telemetry of one training iteration (one collected
// batch plus its optimization passes). Loss terms are measured during the
// first optimization epoch, i.e. against the policy the batch was collected
// with.
type IterationStats struct {
	// Iteration is the 1-based iteration index.
	Iteration int
	// Episodes is the number of episodes collected this iteration.
	Episodes int
	// MeanReturn is the mean undiscounted episode return.
	MeanReturn float64
	// MeanEpisodeLen is the mean episode length in steps.
	MeanEpisodeLen float64
	// PolicyLoss is the mean (clipped) surrogate policy loss.
	PolicyLoss float64
	// ValueLoss is the mean critic squared-error loss (0 without a critic).
	ValueLoss float64
	// Entropy is the mean policy entropy over visited states.
	Entropy float64
	// ClipFraction is the fraction of steps whose importance ratio fell
	// outside the PPO clip range (0 when clipping is disabled).
	ClipFraction float64
	// MeanKL is the mean KL(old || new) over visited states.
	MeanKL float64
	// Recovered is true when the divergence watchdog rolled this iteration
	// back to the last good checkpoint (its update was discarded).
	Recovered bool
	// RecoveryReason names the divergence signal that triggered the
	// rollback (empty when Recovered is false).
	RecoveryReason string
	// LR is the learning rate in effect after this iteration (halved by
	// each recovery).
	LR float64
}

// TrainStats reports the outcome of Train.
type TrainStats struct {
	Episodes       int
	Iterations     int
	FinalReturn    float64 // mean undiscounted return of the last iteration
	BestReturn     float64 // best single-episode return observed
	ReturnHistory  []float64
	EarlyStopped   bool
	TotalSteps     int
	MeanFinalSteps float64
	// Recoveries counts divergence-watchdog rollbacks during the run.
	Recoveries int
	// Canceled is true when training stopped early because the context was
	// canceled; the stats (and the agent) reflect the completed iterations.
	Canceled bool
	// History holds one entry per iteration with the full telemetry
	// (loss, entropy, clip fraction, KL, return, episode length, and any
	// watchdog recovery).
	History []IterationStats
}

// ProgressFunc observes training; returning false stops early. meanReturn is
// the mean undiscounted return of the iteration's episodes.
type ProgressFunc func(iteration, episodes int, meanReturn float64) bool

// Train runs up to maxEpisodes episodes of collection + PPO updates against
// env. Parallel workers each use an independent clone of env. progress may
// be nil.
func (a *Agent) Train(env Environment, maxEpisodes int, progress ProgressFunc) TrainStats {
	return a.TrainContext(context.Background(), env, maxEpisodes, progress)
}

// TrainContext is Train with cooperative cancellation and a divergence
// watchdog. Cancellation is honored between iterations: the stats of the
// completed iterations are returned with Canceled set, leaving the agent in
// its last consistent state (partial but usable). After every update the
// watchdog inspects the loss telemetry and network parameters; on NaN/Inf
// loss, KL blow-up past cfg.DivergeKL, entropy collapse below
// cfg.EntropyFloor, or non-finite parameters it rolls actor and critic back
// to the last good in-memory checkpoint, halves the learning rate, and
// resumes. Every recovery is recorded in the iteration's History entry.
func (a *Agent) TrainContext(ctx context.Context, env Environment, maxEpisodes int, progress ProgressFunc) TrainStats {
	stats := TrainStats{BestReturn: math.Inf(-1)}
	if maxEpisodes <= 0 {
		return stats
	}
	perIter := a.cfg.EpisodesPerIteration
	good := a.snapshot(0) // pre-training state is the first rollback target
	sinceCkpt := 0
	for stats.Episodes < maxEpisodes {
		if ctx != nil && ctx.Err() != nil {
			stats.Canceled = true
			break
		}
		n := perIter
		if rem := maxEpisodes - stats.Episodes; n > rem {
			n = rem
		}
		trajs := a.collect(env, n)
		var sum, steps float64
		for _, tr := range trajs {
			sum += tr.reward
			steps += float64(len(tr.steps))
			if tr.reward > stats.BestReturn {
				stats.BestReturn = tr.reward
			}
		}
		mean := sum / float64(len(trajs))
		stats.Episodes += n
		stats.Iterations++
		stats.TotalSteps += int(steps)
		stats.FinalReturn = mean
		stats.MeanFinalSteps = steps / float64(len(trajs))
		stats.ReturnHistory = append(stats.ReturnHistory, mean)

		if faults.Active() && faults.Triggered(faults.PointRLUpdate) {
			// Injected numeric fault: corrupt the actor so this update
			// diverges and the watchdog must recover.
			a.poison()
		}
		us := a.update(trajs)
		iter := IterationStats{
			Iteration:      stats.Iterations,
			Episodes:       n,
			MeanReturn:     mean,
			MeanEpisodeLen: stats.MeanFinalSteps,
			PolicyLoss:     us.policyLoss,
			ValueLoss:      us.valueLoss,
			Entropy:        us.entropy,
			ClipFraction:   us.clipFraction,
			MeanKL:         us.meanKL,
			LR:             a.cfg.LR,
		}

		if reason := a.divergence(us); reason != "" {
			iter.Recovered = true
			iter.RecoveryReason = reason
			stats.Recoveries++
			if err := a.restore(good); err != nil {
				// No viable checkpoint: stop rather than train on garbage.
				stats.History = append(stats.History, iter)
				break
			}
			a.halveLR()
			iter.LR = a.cfg.LR
			recordRecovery(stats.Iterations, reason, a.cfg.LR)
			stats.History = append(stats.History, iter)
			recordIteration(iter, stats.BestReturn)
			if stats.Recoveries >= a.cfg.MaxRecoveries {
				// Persistent divergence: keep the last good state instead of
				// burning the remaining budget on a doomed run.
				break
			}
			continue
		}

		sinceCkpt++
		if sinceCkpt >= a.cfg.CheckpointEvery {
			if ck := a.snapshot(stats.Iterations); ck != nil {
				good = ck
			}
			sinceCkpt = 0
		}
		stats.History = append(stats.History, iter)
		recordIteration(iter, stats.BestReturn)

		if progress != nil && !progress(stats.Iterations, stats.Episodes, mean) {
			stats.EarlyStopped = true
			break
		}
	}
	return stats
}

// recordIteration publishes one iteration's telemetry to the default obs
// registry (series per learning-curve signal plus run counters) and the
// structured logger. It is a no-op when observability is disabled.
func recordIteration(it IterationStats, bestReturn float64) {
	if obs.Enabled() {
		reg := obs.Default()
		reg.Counter("rl/iterations").Inc()
		reg.Counter("rl/episodes").Add(int64(it.Episodes))
		reg.Gauge("rl/best_return").Set(bestReturn)
		reg.Series("rl/mean_return").Append(it.MeanReturn)
		reg.Series("rl/policy_loss").Append(it.PolicyLoss)
		reg.Series("rl/value_loss").Append(it.ValueLoss)
		reg.Series("rl/entropy").Append(it.Entropy)
		reg.Series("rl/clip_fraction").Append(it.ClipFraction)
		reg.Series("rl/kl").Append(it.MeanKL)
		reg.Series("rl/episode_len").Append(it.MeanEpisodeLen)
	}
	obs.Logger().Debug("rl iteration",
		"iter", it.Iteration,
		"episodes", it.Episodes,
		"mean_return", it.MeanReturn,
		"policy_loss", it.PolicyLoss,
		"value_loss", it.ValueLoss,
		"entropy", it.Entropy,
		"clip_fraction", it.ClipFraction,
		"kl", it.MeanKL)
}

// collect gathers n episodes using cfg.Workers parallel actor-learners. The
// actor network is only read during collection, so sharing it across
// goroutines is safe; each worker owns an environment clone and rng.
func (a *Agent) collect(env Environment, n int) []trajectory {
	workers := a.cfg.Workers
	if workers > n {
		workers = n
	}
	trajs := make([]trajectory, n)
	// Pre-derive deterministic per-episode seeds from the agent rng.
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = a.rng.Int63()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wenv := env.Clone()
			for i := w; i < n; i += workers {
				trajs[i] = a.runEpisode(wenv, rand.New(rand.NewSource(seeds[i])))
			}
		}(w)
	}
	wg.Wait()
	return trajs
}

// runEpisode plays one episode with the current stochastic policy.
func (a *Agent) runEpisode(env Environment, rng *rand.Rand) trajectory {
	var tr trajectory
	state, mask := env.Reset()
	for {
		logits := a.actor.Forward(state)
		dist := nn.Softmax(nn.MaskLogits(logits, mask))
		var mass float64
		for _, p := range dist {
			mass += p
		}
		if mass <= 0 {
			break // no valid action: terminal
		}
		action := nn.SampleCategorical(dist, rng)
		next, nextMask, reward, done := env.Step(action)
		tr.steps = append(tr.steps, step{
			state:   state,
			mask:    mask,
			action:  action,
			reward:  reward,
			logProb: math.Log(math.Max(dist[action], 1e-12)),
			oldDist: dist,
		})
		tr.reward += reward
		state, mask = next, nextMask
		if done {
			break
		}
	}
	a.finishEpisode(&tr)
	return tr
}

// finishEpisode computes discounted returns-to-go.
func (a *Agent) finishEpisode(tr *trajectory) {
	ret := 0.0
	for i := len(tr.steps) - 1; i >= 0; i-- {
		ret = tr.steps[i].reward + a.cfg.Gamma*ret
		tr.steps[i].ret = ret
	}
}

// updateStats aggregates per-step loss telemetry over one optimization pass.
type updateStats struct {
	policyLoss   float64
	valueLoss    float64
	entropy      float64
	clipFraction float64
	meanKL       float64
	n            int
}

// observe folds one step's contributions into the aggregate.
func (u *updateStats) observe(policyLoss, valueLoss, entropy, kl float64, clipped bool) {
	u.policyLoss += policyLoss
	u.valueLoss += valueLoss
	u.entropy += entropy
	u.meanKL += kl
	if clipped {
		u.clipFraction++
	}
	u.n++
}

// merge folds another aggregate (one block's raw sums) into u. Both sides
// must hold pre-finalize sums.
func (u *updateStats) merge(o updateStats) {
	u.policyLoss += o.policyLoss
	u.valueLoss += o.valueLoss
	u.entropy += o.entropy
	u.meanKL += o.meanKL
	u.clipFraction += o.clipFraction
	u.n += o.n
}

// finalize converts sums to means.
func (u *updateStats) finalize() {
	if u.n == 0 {
		return
	}
	inv := 1.0 / float64(u.n)
	u.policyLoss *= inv
	u.valueLoss *= inv
	u.entropy *= inv
	u.meanKL *= inv
	u.clipFraction *= inv
}

// gradBlockSize is the number of consecutive batch steps whose gradient
// contributions are accumulated into one block buffer. Blocks — not workers —
// define the floating-point summation order: each block is summed serially
// into its own buffer and the buffers are merged in block index order, so the
// gradients (and therefore the whole loss series) are bit-identical for every
// Workers setting and GOMAXPROCS. The serial path walks the same blocks for
// exactly this reason.
const gradBlockSize = 64

// forEachStep applies fn to every step, fanning out across cfg.Workers for
// large batches. fn must touch only its own step, so parallelism never
// changes the outcome.
func (a *Agent) forEachStep(steps []*step, fn func(*step)) {
	workers := a.cfg.Workers
	if workers > len(steps) {
		workers = len(steps)
	}
	if workers <= 1 {
		for _, s := range steps {
			fn(s)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(steps) {
					return
				}
				fn(steps[i])
			}
		}()
	}
	wg.Wait()
}

// update applies the PPO (or ablated) optimization over a batch of
// trajectories and returns loss telemetry measured during the first epoch
// (against the collection-time policy). Gradient accumulation is
// data-parallel across fixed step blocks (see gradBlockSize); the networks
// are only read until the merged gradients are applied, so sharing them
// across workers is safe.
func (a *Agent) update(trajs []trajectory) updateStats {
	var us updateStats
	var steps []*step
	for ti := range trajs {
		for si := range trajs[ti].steps {
			steps = append(steps, &trajs[ti].steps[si])
		}
	}
	if len(steps) == 0 {
		return us
	}

	// Advantages.
	if a.cfg.UseCritic {
		a.forEachStep(steps, func(s *step) {
			s.adv = s.ret - a.critic.Forward(s.state)[0]
		})
	} else {
		// REINFORCE ablation: batch-mean baseline only.
		var mean float64
		for _, s := range steps {
			mean += s.ret
		}
		mean /= float64(len(steps))
		for _, s := range steps {
			s.adv = s.ret - mean
		}
	}
	normalizeAdvantages(steps)

	numBlocks := (len(steps) + gradBlockSize - 1) / gradBlockSize
	actorBufs := make([]*nn.Grads, numBlocks)
	criticBufs := make([]*nn.Grads, numBlocks)
	for i := range actorBufs {
		actorBufs[i] = a.actor.NewGrads()
		criticBufs[i] = a.critic.NewGrads()
	}
	blockStats := make([]updateStats, numBlocks)
	actorGrads := a.actor.NewGrads()
	criticGrads := a.critic.NewGrads()
	inv := 1.0 / float64(len(steps))

	workers := a.cfg.Workers
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers < 1 {
		workers = 1
	}

	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		first := epoch == 0
		runBlock := func(bi int) {
			lo := bi * gradBlockSize
			hi := lo + gradBlockSize
			if hi > len(steps) {
				hi = len(steps)
			}
			actorBufs[bi].Zero()
			criticBufs[bi].Zero()
			var collect *updateStats
			if first {
				blockStats[bi] = updateStats{}
				collect = &blockStats[bi]
			}
			for _, s := range steps[lo:hi] {
				a.accumulateStep(s, actorBufs[bi], criticBufs[bi], inv, collect)
			}
		}
		if workers > 1 {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						bi := int(cursor.Add(1)) - 1
						if bi >= numBlocks {
							return
						}
						runBlock(bi)
					}
				}()
			}
			wg.Wait()
		} else {
			for bi := 0; bi < numBlocks; bi++ {
				runBlock(bi)
			}
		}
		actorGrads.Zero()
		criticGrads.Zero()
		for bi := 0; bi < numBlocks; bi++ {
			actorGrads.Add(actorBufs[bi])
			criticGrads.Add(criticBufs[bi])
		}
		if first {
			for bi := 0; bi < numBlocks; bi++ {
				us.merge(blockStats[bi])
			}
		}
		if a.cfg.GradClip > 0 {
			nn.ClipGrads(actorGrads, a.cfg.GradClip)
			nn.ClipGrads(criticGrads, a.cfg.GradClip)
		}
		a.actorOpt.Step(a.actor, actorGrads)
		if a.cfg.UseCritic {
			a.criticOpt.Step(a.critic, criticGrads)
		}
	}
	us.finalize()
	return us
}

// accumulateStep adds the gradient contribution of one transition. When
// stats is non-nil it also folds the step's loss telemetry into it.
func (a *Agent) accumulateStep(s *step, actorGrads, criticGrads *nn.Grads, scale float64, stats *updateStats) {
	cache := a.actor.ForwardCache(s.state)
	logits := nn.MaskLogits(cache.Output(), s.mask)
	logp := nn.LogSoftmax(logits)
	p := nn.Softmax(logits)

	newLogp := logp[s.action]
	ratio := math.Exp(newLogp - s.logProb)

	// Policy-gradient coefficient g = dL/d(logp_action); L is minimized.
	var g, surrogateLoss float64
	clipped := false
	if a.cfg.ClipEpsilon > 0 {
		lo, hi := 1-a.cfg.ClipEpsilon, 1+a.cfg.ClipEpsilon
		surr1 := ratio * s.adv
		surr2 := math.Max(math.Min(ratio, hi), lo) * s.adv
		surrogateLoss = -math.Min(surr1, surr2)
		clipped = ratio < lo || ratio > hi
		if surr1 <= surr2 {
			g = -ratio * s.adv // unclipped branch active
		} else {
			g = 0 // clipped: constant w.r.t. parameters
		}
	} else {
		g = -ratio * s.adv // plain importance-weighted policy gradient
		surrogateLoss = g
	}

	// dLoss/dlogits via d logp_a / dz_i = δ_ai − p_i.
	dLogits := make([]float64, len(p))
	for i := range dLogits {
		if s.mask != nil && !s.mask[i] {
			continue
		}
		d := -p[i]
		if i == s.action {
			d += 1
		}
		dLogits[i] += g * d
	}

	// Entropy bonus: maximize H, i.e. subtract entCoef·dH/dz.
	if a.cfg.EntropyCoef > 0 {
		h := nn.Entropy(p)
		for i := range dLogits {
			if p[i] <= 0 {
				continue
			}
			dH := -p[i] * (math.Log(p[i]) + h)
			dLogits[i] -= a.cfg.EntropyCoef * dH
		}
	}

	// KL(old || new) penalty: d/dz_i = p_i − pOld_i.
	if a.cfg.KLCoef > 0 {
		for i := range dLogits {
			if s.mask != nil && !s.mask[i] {
				continue
			}
			dLogits[i] += a.cfg.KLCoef * (p[i] - s.oldDist[i])
		}
	}

	for i := range dLogits {
		dLogits[i] *= scale
	}
	a.actor.Backward(cache, dLogits, actorGrads)

	var vLoss float64
	if a.cfg.UseCritic {
		cCache := a.critic.ForwardCache(s.state)
		v := cCache.Output()[0]
		dV := 2 * (v - s.ret) * a.cfg.ValueCoef * scale
		a.critic.Backward(cCache, []float64{dV}, criticGrads)
		vLoss = a.cfg.ValueCoef * (v - s.ret) * (v - s.ret)
	}

	if stats != nil {
		var kl float64
		for i := range p {
			if s.mask != nil && !s.mask[i] {
				continue
			}
			if s.oldDist[i] <= 0 {
				continue
			}
			kl += s.oldDist[i] * (math.Log(s.oldDist[i]) - logp[i])
		}
		stats.observe(surrogateLoss, vLoss, nn.Entropy(p), kl, clipped)
	}
}

// normalizeAdvantages standardizes advantages to zero mean / unit variance,
// the usual PPO stabilization.
func normalizeAdvantages(steps []*step) {
	if len(steps) < 2 {
		return
	}
	var mean float64
	for _, s := range steps {
		mean += s.adv
	}
	mean /= float64(len(steps))
	var variance float64
	for _, s := range steps {
		d := s.adv - mean
		variance += d * d
	}
	variance /= float64(len(steps))
	std := math.Sqrt(variance)
	if std < 1e-8 {
		return
	}
	for _, s := range steps {
		s.adv = (s.adv - mean) / std
	}
}

// Greedy rolls out one episode with the deterministic (argmax) policy and
// returns the visited actions and total reward. Useful for inference-time
// set construction and tests.
func (a *Agent) Greedy(env Environment, maxSteps int) ([]int, float64) {
	var actions []int
	var total float64
	state, mask := env.Reset()
	for steps := 0; maxSteps <= 0 || steps < maxSteps; steps++ {
		action := a.SelectAction(state, mask, true, nil)
		if action < 0 {
			break
		}
		next, nextMask, reward, done := env.Step(action)
		actions = append(actions, action)
		total += reward
		state, mask = next, nextMask
		if done {
			break
		}
	}
	return actions, total
}

// ActorParams exposes the actor network for serialization by callers.
func (a *Agent) ActorParams() *nn.MLP { return a.actor }

// CriticParams exposes the critic network for serialization by callers.
func (a *Agent) CriticParams() *nn.MLP { return a.critic }
