package rl

import (
	"fmt"
	"runtime"
	"testing"
)

// trainLossSeries trains a fresh agent on the cover environment with the
// given worker count and returns the per-iteration telemetry.
func trainLossSeries(t *testing.T, workers int) []IterationStats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.EpisodesPerIteration = 8
	env := newCoverEnv()
	agent := mustAgent(t, cfg, env.StateDim(), env.NumActions())
	stats := agent.Train(env, 40, nil)
	if stats.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	return stats.History
}

// TestTrainWorkerCountDeterminism checks the PPO loss series is bit-identical
// across worker counts and GOMAXPROCS settings: episode seeds are pre-derived
// per index and gradient blocks merge in fixed index order, so neither knob
// may change a single float.
func TestTrainWorkerCountDeterminism(t *testing.T) {
	ref := trainLossSeries(t, 1)
	for _, procs := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			for _, workers := range []int{1, 3, 8} {
				got := trainLossSeries(t, workers)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d iterations, want %d", workers, len(got), len(ref))
				}
				for i := range got {
					g, r := got[i], ref[i]
					if g.PolicyLoss != r.PolicyLoss || g.ValueLoss != r.ValueLoss ||
						g.Entropy != r.Entropy || g.MeanKL != r.MeanKL ||
						g.ClipFraction != r.ClipFraction || g.MeanReturn != r.MeanReturn {
						t.Fatalf("workers=%d iter %d: %+v != reference %+v", workers, i, g, r)
					}
				}
			}
		})
	}
}

// TestUpdateStatsMerge checks block-stat merging is a plain sum that
// finalizes to the same means as one flat aggregate.
func TestUpdateStatsMerge(t *testing.T) {
	var flat, a, b updateStats
	obs := [][5]float64{{1, 2, 3, 4, 0}, {5, 6, 7, 8, 1}, {9, 10, 11, 12, 1}}
	for i, o := range obs {
		flat.observe(o[0], o[1], o[2], o[3], o[4] != 0)
		if i < 2 {
			a.observe(o[0], o[1], o[2], o[3], o[4] != 0)
		} else {
			b.observe(o[0], o[1], o[2], o[3], o[4] != 0)
		}
	}
	var merged updateStats
	merged.merge(a)
	merged.merge(b)
	flat.finalize()
	merged.finalize()
	if flat != merged {
		t.Fatalf("merged stats %+v != flat %+v", merged, flat)
	}
}
