// Package diag is the flight recorder: when an SLO enters fast-burn (or an
// operator hits /debugz?capture=1) it captures a diagnostic bundle — the
// windowed metric series, the tail-sampled trace ring, the slow-query log,
// the server's /stats state, and goroutine + heap profiles — into a
// size-rotated directory, so the moments around an alert survive even if
// the process dies before anyone can attach.
//
// Captures are rate-limited (one per MinInterval unless forced) and the
// directory is bounded both by bundle count and total bytes: the recorder
// can run unattended for months without filling a disk. A nil *Recorder is
// a valid no-op, matching the repo's disabled-path contract.
package diag

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config bounds the recorder.
type Config struct {
	// Dir is the bundle directory (created if missing). Required.
	Dir string
	// MaxBundles caps retained bundles (default 8; oldest pruned first).
	MaxBundles int
	// MaxTotalBytes caps the directory's total size (default 64 MiB).
	MaxTotalBytes int64
	// MinInterval rate-limits unforced captures (default 1m).
	MinInterval time.Duration
	// Now is the clock; defaults to time.Now (injectable for tests).
	Now func() time.Time
}

// Source provides the state a bundle captures. Every field is optional;
// nil collectors are skipped. Collectors run at capture time.
type Source struct {
	Metrics     func() any // registry snapshot
	Series      func() any // windowed per-interval series (obs.TimeSeries)
	SLO         func() any // SLO engine page
	Traces      func() any // tail-sampled trace ring
	SlowQueries func() any // slow-query log
	Stats       func() any // server /stats (breaker/admission/retrain/WAL)
	// Journal stamps a diag/bundle event (reason + bundle name) onto the
	// WAL after a successful capture, so recovery can report "crashed
	// while alerting".
	Journal func(reason, bundle string)
}

// Status is the recorder's state for /debugz and /stats.
type Status struct {
	Dir        string    `json:"dir"`
	Captures   int64     `json:"captures"`
	Suppressed int64     `json:"suppressed"`
	Failed     int64     `json:"failed"`
	LastBundle string    `json:"last_bundle,omitempty"`
	LastReason string    `json:"last_reason,omitempty"`
	LastAt     time.Time `json:"last_at"`
	Bundles    []string  `json:"bundles,omitempty"`
}

// Recorder writes diagnostic bundles. Nil is a no-op.
type Recorder struct {
	cfg Config
	src Source

	mu         sync.Mutex
	lastAt     time.Time
	captures   int64
	suppressed int64
	failed     int64
	lastBundle string
	lastReason string
	seq        int64 // tie-breaker so bundles within one second sort stably
}

// New builds a recorder and creates its directory. cfg.Dir must be set.
func New(cfg Config, src Source) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("diag: Dir is required")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.MaxTotalBytes <= 0 {
		cfg.MaxTotalBytes = 64 << 20
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diag: create dir: %w", err)
	}
	return &Recorder{cfg: cfg, src: src}, nil
}

// Capture writes one bundle for reason. Unforced captures inside
// MinInterval of the previous one are suppressed (returned path is empty,
// error nil). The returned path is the bundle directory.
func (r *Recorder) Capture(reason string, force bool) (string, error) {
	if r == nil {
		return "", nil
	}
	now := r.cfg.Now()
	r.mu.Lock()
	if !force && !r.lastAt.IsZero() && now.Sub(r.lastAt) < r.cfg.MinInterval {
		r.suppressed++
		r.mu.Unlock()
		return "", nil
	}
	// Reserve the slot before the (slow) write so concurrent triggers
	// collapse into one bundle.
	r.lastAt = now
	r.seq++
	seq := r.seq
	r.mu.Unlock()

	name := fmt.Sprintf("bundle-%s-%03d-%s", now.UTC().Format("20060102T150405Z"), seq, sanitizeReason(reason))
	dir := filepath.Join(r.cfg.Dir, name)
	err := r.write(dir, reason, now)

	r.mu.Lock()
	if err != nil {
		r.failed++
		r.mu.Unlock()
		os.RemoveAll(dir)
		return "", err
	}
	r.captures++
	r.lastBundle = name
	r.lastReason = reason
	r.mu.Unlock()

	r.rotate()
	if r.src.Journal != nil {
		r.src.Journal(reason, name)
	}
	return dir, nil
}

// write materializes one bundle directory.
func (r *Recorder) write(dir, reason string, now time.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := map[string]any{
		"reason":      reason,
		"captured_at": now.UTC(),
	}
	if err := writeJSONFile(filepath.Join(dir, "meta.json"), meta); err != nil {
		return err
	}
	parts := []struct {
		file string
		fn   func() any
	}{
		{"metrics.json", r.src.Metrics},
		{"series.json", r.src.Series},
		{"slo.json", r.src.SLO},
		{"traces.json", r.src.Traces},
		{"slow_queries.json", r.src.SlowQueries},
		{"stats.json", r.src.Stats},
	}
	for _, p := range parts {
		if p.fn == nil {
			continue
		}
		if err := writeJSONFile(filepath.Join(dir, p.file), p.fn()); err != nil {
			return err
		}
	}
	// Goroutine dump (debug=2 gives full stacks, the on-call's first ask).
	gf, err := os.Create(filepath.Join(dir, "goroutines.txt"))
	if err != nil {
		return err
	}
	if p := pprof.Lookup("goroutine"); p != nil {
		err = p.WriteTo(gf, 2)
	}
	if cerr := gf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return err
	}
	if p := pprof.Lookup("heap"); p != nil {
		err = p.WriteTo(hf, 0)
	}
	if cerr := hf.Close(); err == nil {
		err = cerr
	}
	return err
}

// rotate prunes oldest bundles beyond MaxBundles or MaxTotalBytes.
func (r *Recorder) rotate() {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
			bundles = append(bundles, e.Name())
		}
	}
	// Bundle names embed a UTC timestamp + sequence, so the lexical order
	// is the capture order.
	sort.Strings(bundles)
	sizes := make(map[string]int64, len(bundles))
	var total int64
	for _, b := range bundles {
		sz := dirSize(filepath.Join(r.cfg.Dir, b))
		sizes[b] = sz
		total += sz
	}
	for len(bundles) > 0 && (len(bundles) > r.cfg.MaxBundles || total > r.cfg.MaxTotalBytes) {
		victim := bundles[0]
		bundles = bundles[1:]
		total -= sizes[victim]
		os.RemoveAll(filepath.Join(r.cfg.Dir, victim))
	}
}

// Status reports recorder state. Nil-safe (zero status).
func (r *Recorder) Status() Status {
	if r == nil {
		return Status{}
	}
	r.mu.Lock()
	st := Status{
		Dir:        r.cfg.Dir,
		Captures:   r.captures,
		Suppressed: r.suppressed,
		Failed:     r.failed,
		LastBundle: r.lastBundle,
		LastReason: r.lastReason,
		LastAt:     r.lastAt,
	}
	r.mu.Unlock()
	if entries, err := os.ReadDir(r.cfg.Dir); err == nil {
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "bundle-") {
				st.Bundles = append(st.Bundles, e.Name())
			}
		}
		sort.Strings(st.Bundles)
	}
	return st
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Diagnostic state must never abort a capture wholesale; record
		// the marshal failure in place of the payload.
		data = []byte(fmt.Sprintf("{\"marshal_error\": %q}", err.Error()))
	}
	return os.WriteFile(path, data, 0o644)
}

// sanitizeReason makes a reason safe as a path component.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	var b strings.Builder
	for _, c := range reason {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}

func dirSize(dir string) int64 {
	var total int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	return total
}
