package diag

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRecorder(t *testing.T, clk *testClock, mutate func(*Config), src Source) *Recorder {
	t.Helper()
	cfg := Config{
		Dir:         filepath.Join(t.TempDir(), "diag"),
		MinInterval: time.Minute,
		Now:         clk.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCaptureWritesBundle(t *testing.T) {
	clk := &testClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
	var journaled []string
	src := Source{
		Metrics:     func() any { return map[string]int{"x": 1} },
		Series:      func() any { return map[string]string{"interval": "5s"} },
		SLO:         func() any { return map[string]bool{"enabled": true} },
		Traces:      func() any { return []string{"t1"} },
		SlowQueries: func() any { return []string{"SELECT 1"} },
		Stats:       func() any { return map[string]bool{"ready": true} },
		Journal:     func(reason, bundle string) { journaled = append(journaled, reason+":"+bundle) },
	}
	r := newTestRecorder(t, clk, nil, src)

	dir, err := r.Capture("slo-latency", false)
	if err != nil {
		t.Fatal(err)
	}
	if dir == "" {
		t.Fatal("capture suppressed unexpectedly")
	}
	for _, f := range []string{
		"meta.json", "metrics.json", "series.json", "slo.json",
		"traces.json", "slow_queries.json", "stats.json",
		"goroutines.txt", "heap.pprof",
	} {
		path := filepath.Join(dir, f)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Fatalf("bundle file %s is empty", f)
		}
	}
	// The goroutine dump must contain real stacks.
	g, _ := os.ReadFile(filepath.Join(dir, "goroutines.txt"))
	if !strings.Contains(string(g), "goroutine") {
		t.Fatalf("goroutines.txt lacks stacks: %q", string(g[:min(len(g), 80)]))
	}
	var meta map[string]any
	raw, _ := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err := json.Unmarshal(raw, &meta); err != nil || meta["reason"] != "slo-latency" {
		t.Fatalf("meta.json = %s (err %v)", raw, err)
	}
	if len(journaled) != 1 || !strings.HasPrefix(journaled[0], "slo-latency:bundle-") {
		t.Fatalf("journal calls = %v", journaled)
	}
	st := r.Status()
	if st.Captures != 1 || st.LastReason != "slo-latency" || len(st.Bundles) != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestRateLimitSuppressesAndForceBypasses(t *testing.T) {
	clk := &testClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
	r := newTestRecorder(t, clk, nil, Source{})

	if dir, err := r.Capture("first", false); err != nil || dir == "" {
		t.Fatalf("first capture: %q %v", dir, err)
	}
	// Within MinInterval: suppressed.
	if dir, err := r.Capture("second", false); err != nil || dir != "" {
		t.Fatalf("expected suppression, got %q %v", dir, err)
	}
	// Forced: bypasses the limiter.
	if dir, err := r.Capture("forced", true); err != nil || dir == "" {
		t.Fatalf("forced capture: %q %v", dir, err)
	}
	// After the interval: allowed again.
	clk.advance(2 * time.Minute)
	if dir, err := r.Capture("third", false); err != nil || dir == "" {
		t.Fatalf("post-interval capture: %q %v", dir, err)
	}
	st := r.Status()
	if st.Captures != 3 || st.Suppressed != 1 {
		t.Fatalf("status = %+v, want 3 captures / 1 suppressed", st)
	}
}

func TestRotationByCountAndBytes(t *testing.T) {
	clk := &testClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
	r := newTestRecorder(t, clk, func(c *Config) {
		c.MaxBundles = 3
		c.MinInterval = time.Millisecond
	}, Source{})
	for i := 0; i < 6; i++ {
		if _, err := r.Capture("r", true); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	st := r.Status()
	if len(st.Bundles) != 3 {
		t.Fatalf("retained %d bundles, want 3: %v", len(st.Bundles), st.Bundles)
	}
	// The retained ones are the newest (lexically last by timestamped name).
	if !strings.Contains(st.Bundles[2], st.LastBundle[:20]) && st.Bundles[2] != st.LastBundle {
		t.Fatalf("newest bundle missing after rotation: %v (last %s)", st.Bundles, st.LastBundle)
	}

	// Byte cap: tiny budget forces pruning down to the newest bundle.
	r2 := newTestRecorder(t, clk, func(c *Config) {
		c.MaxBundles = 100
		c.MaxTotalBytes = 1 // every rotation prunes all but... everything beyond the cap
	}, Source{})
	r2.Capture("a", true)
	clk.advance(time.Second)
	r2.Capture("b", true)
	st2 := r2.Status()
	if len(st2.Bundles) != 0 {
		t.Fatalf("byte-cap rotation retained %v, want none under a 1-byte cap", st2.Bundles)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if dir, err := r.Capture("x", true); dir != "" || err != nil {
		t.Fatalf("nil capture = %q %v", dir, err)
	}
	if st := r.Status(); st.Captures != 0 || st.Dir != "" {
		t.Fatalf("nil status = %+v", st)
	}
}

func TestNewRequiresDir(t *testing.T) {
	if _, err := New(Config{}, Source{}); err == nil {
		t.Fatal("New without Dir must fail")
	}
}

func TestCaptureZeroAllocWhenDisabled(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Capture("x", false)
	})
	if allocs != 0 {
		t.Fatalf("nil Capture allocates %v/op, want 0", allocs)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
