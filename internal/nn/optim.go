package nn

import "math"

// Optimizer applies accumulated gradients to an MLP's parameters.
type Optimizer interface {
	Step(m *MLP, g *Grads)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vW, vB   [][]float64
}

// NewSGD constructs an SGD optimizer for m.
func NewSGD(m *MLP, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum}
	for l := range m.W {
		s.vW = append(s.vW, make([]float64, len(m.W[l])))
		s.vB = append(s.vB, make([]float64, len(m.B[l])))
	}
	return s
}

// Step applies one gradient-descent update (minimizing the loss whose
// gradient is g).
func (s *SGD) Step(m *MLP, g *Grads) {
	for l := range m.W {
		for i := range m.W[l] {
			s.vW[l][i] = s.Momentum*s.vW[l][i] - s.LR*g.W[l][i]
			m.W[l][i] += s.vW[l][i]
		}
		for i := range m.B[l] {
			s.vB[l][i] = s.Momentum*s.vB[l][i] - s.LR*g.B[l][i]
			m.B[l][i] += s.vB[l][i]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	mW, vW, mB, vB        [][]float64
}

// NewAdam constructs an Adam optimizer for m with standard betas.
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for l := range m.W {
		a.mW = append(a.mW, make([]float64, len(m.W[l])))
		a.vW = append(a.vW, make([]float64, len(m.W[l])))
		a.mB = append(a.mB, make([]float64, len(m.B[l])))
		a.vB = append(a.vB, make([]float64, len(m.B[l])))
	}
	return a
}

// Step applies one Adam update (minimizing the loss whose gradient is g).
func (a *Adam) Step(m *MLP, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	update := func(p, gr, mo, ve []float64) {
		for i := range p {
			mo[i] = a.Beta1*mo[i] + (1-a.Beta1)*gr[i]
			ve[i] = a.Beta2*ve[i] + (1-a.Beta2)*gr[i]*gr[i]
			mHat := mo[i] / c1
			vHat := ve[i] / c2
			p[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	for l := range m.W {
		update(m.W[l], g.W[l], a.mW[l], a.vW[l])
		update(m.B[l], g.B[l], a.mB[l], a.vB[l])
	}
}

// ClipGrads rescales g in place so its global L2 norm does not exceed max.
// It returns the pre-clip norm.
func ClipGrads(g *Grads, max float64) float64 {
	var sum float64
	for l := range g.W {
		for _, v := range g.W[l] {
			sum += v * v
		}
		for _, v := range g.B[l] {
			sum += v * v
		}
	}
	norm := math.Sqrt(sum)
	if max > 0 && norm > max {
		g.Scale(max / norm)
	}
	return norm
}
