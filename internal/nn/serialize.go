package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Save writes the network parameters to w in gob format.
func (m *MLP) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*MLP, error) {
	var m MLP
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(m.Sizes) < 2 || len(m.W) != len(m.Sizes)-1 || len(m.B) != len(m.W) {
		return nil, fmt.Errorf("nn: load: inconsistent network shape")
	}
	for l := range m.W {
		if len(m.W[l]) != m.Sizes[l]*m.Sizes[l+1] || len(m.B[l]) != m.Sizes[l+1] {
			return nil, fmt.Errorf("nn: load: layer %d has wrong parameter count", l)
		}
	}
	return &m, nil
}

// Marshal serializes the network to bytes.
func (m *MLP) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a network from bytes produced by Marshal.
func Unmarshal(data []byte) (*MLP, error) {
	return Load(bytes.NewReader(data))
}
