package nn

import (
	"math"
	"math/rand"
)

// negInf is used to mask invalid logits.
var negInf = math.Inf(-1)

// MaskLogits returns a copy of logits with invalid entries (mask[i] == false)
// set to -Inf. A nil mask returns logits unchanged (no copy).
func MaskLogits(logits []float64, mask []bool) []float64 {
	if mask == nil {
		return logits
	}
	out := make([]float64, len(logits))
	for i, l := range logits {
		if mask[i] {
			out[i] = l
		} else {
			out[i] = negInf
		}
	}
	return out
}

// LogSumExp computes log Σ exp(x_i) stably. All -Inf input yields -Inf.
func LogSumExp(x []float64) float64 {
	max := negInf
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return negInf
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// Softmax returns the softmax distribution of logits. Entries at -Inf get
// probability zero. If every entry is -Inf the result is all zeros.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	lse := LogSumExp(logits)
	if math.IsInf(lse, -1) {
		return out
	}
	for i, l := range logits {
		if math.IsInf(l, -1) {
			out[i] = 0
		} else {
			out[i] = math.Exp(l - lse)
		}
	}
	return out
}

// LogSoftmax returns log-probabilities for logits (−Inf where masked).
func LogSoftmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	lse := LogSumExp(logits)
	for i, l := range logits {
		if math.IsInf(l, -1) || math.IsInf(lse, -1) {
			out[i] = negInf
		} else {
			out[i] = l - lse
		}
	}
	return out
}

// SampleCategorical draws an index from probability distribution p. It
// panics if p sums to zero.
func SampleCategorical(p []float64, rng *rand.Rand) int {
	var total float64
	for _, v := range p {
		total += v
	}
	if total <= 0 {
		panic("nn: SampleCategorical over zero-mass distribution")
	}
	r := rng.Float64() * total
	for i, v := range p {
		r -= v
		if r <= 0 && v > 0 {
			return i
		}
	}
	// Floating-point slack: return last positive entry.
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] > 0 {
			return i
		}
	}
	return 0
}

// Argmax returns the index of the largest value (first on ties), or -1 for
// empty input.
func Argmax(x []float64) int {
	best, bestV := -1, negInf
	for i, v := range x {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Entropy returns the Shannon entropy (nats) of distribution p.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// KL returns the Kullback-Leibler divergence KL(p || q) in nats, treating
// 0·log(0/q) as 0. Entries where q is zero but p is positive contribute a
// large finite penalty rather than +Inf, keeping optimization stable.
func KL(p, q []float64) float64 {
	const cap = 30 // e^-30 floor on q
	var d float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi <= 0 {
			d += pi * cap
			continue
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}
