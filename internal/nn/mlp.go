// Package nn is a small, dependency-free neural-network library: multi-layer
// perceptrons with tanh/ReLU hidden activations, manual backpropagation, SGD
// and Adam optimizers, and the categorical helpers (softmax, masking,
// sampling) that the RL agents in internal/rl are built from.
//
// The library is deliberately minimal — dense layers only — because that is
// exactly what the paper's actor and critic networks are: "a large input
// layer matching the action space's size, followed by smaller fully-connected
// layers" (Section 5.1).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects the hidden-layer nonlinearity of an MLP. The output
// layer is always linear (softmax, when needed, is applied by the caller).
type Activation uint8

const (
	// ActTanh uses tanh hidden units.
	ActTanh Activation = iota
	// ActReLU uses rectified linear hidden units.
	ActReLU
)

// MLP is a fully-connected feed-forward network. Weight matrices are stored
// row-major: W[l][o*in+i] is the weight from input i to output o of layer l.
// Fields are exported for gob serialization.
type MLP struct {
	Sizes []int // layer widths, input first
	Act   Activation
	W     [][]float64
	B     [][]float64
}

// NewMLP constructs a network with the given layer sizes (at least two:
// input and output), initialized with scaled Gaussian weights (Xavier for
// tanh, He for ReLU) drawn from rng.
func NewMLP(rng *rand.Rand, act Activation, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs >= 2 layer sizes, got %v", sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: invalid layer size in %v", sizes))
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), Act: act}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(1.0 / float64(in)) // Xavier
		if act == ActReLU {
			scale = math.Sqrt(2.0 / float64(in)) // He
		}
		w := make([]float64, in*out)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.W) }

// InputDim returns the expected input width.
func (m *MLP) InputDim() int { return m.Sizes[0] }

// OutputDim returns the output width.
func (m *MLP) OutputDim() int { return m.Sizes[len(m.Sizes)-1] }

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

func (m *MLP) activate(z float64) float64 {
	if m.Act == ActReLU {
		if z > 0 {
			return z
		}
		return 0
	}
	return math.Tanh(z)
}

// activateGrad returns dA/dz given the post-activation value a.
func (m *MLP) activateGrad(a float64) float64 {
	if m.Act == ActReLU {
		if a > 0 {
			return 1
		}
		return 0
	}
	return 1 - a*a
}

// Cache stores the intermediate activations of one forward pass, for use by
// Backward. As[0] is the input; As[L] is the (linear) output.
type Cache struct {
	As [][]float64
}

// Output returns the network output stored in the cache.
func (c *Cache) Output() []float64 { return c.As[len(c.As)-1] }

// Forward computes the network output for input x.
func (m *MLP) Forward(x []float64) []float64 {
	return m.ForwardCache(x).Output()
}

// ForwardCache computes the output, retaining activations for Backward.
func (m *MLP) ForwardCache(x []float64) *Cache {
	if len(x) != m.InputDim() {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), m.InputDim()))
	}
	c := &Cache{As: make([][]float64, m.Layers()+1)}
	c.As[0] = x
	cur := x
	for l := 0; l < m.Layers(); l++ {
		in, out := m.Sizes[l], m.Sizes[l+1]
		next := make([]float64, out)
		w, b := m.W[l], m.B[l]
		for o := 0; o < out; o++ {
			z := b[o]
			row := w[o*in : (o+1)*in]
			for i, xi := range cur {
				z += row[i] * xi
			}
			if l < m.Layers()-1 {
				z = m.activate(z)
			}
			next[o] = z
		}
		c.As[l+1] = next
		cur = next
	}
	return c
}

// Grads accumulates parameter gradients with the same shapes as the MLP.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates a zeroed gradient accumulator for m.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{}
	for l := range m.W {
		g.W = append(g.W, make([]float64, len(m.W[l])))
		g.B = append(g.B, make([]float64, len(m.B[l])))
	}
	return g
}

// Zero resets all gradients to zero.
func (g *Grads) Zero() {
	for l := range g.W {
		clear(g.W[l])
		clear(g.B[l])
	}
}

// Scale multiplies all gradients by f.
func (g *Grads) Scale(f float64) {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] *= f
		}
		for i := range g.B[l] {
			g.B[l][i] *= f
		}
	}
}

// Add accumulates other into g.
func (g *Grads) Add(other *Grads) {
	for l := range g.W {
		for i := range g.W[l] {
			g.W[l][i] += other.W[l][i]
		}
		for i := range g.B[l] {
			g.B[l][i] += other.B[l][i]
		}
	}
}

// Backward backpropagates dOut (the gradient of the loss with respect to the
// network's linear output) through the cached forward pass, accumulating
// parameter gradients into g. It returns the gradient with respect to the
// input.
func (m *MLP) Backward(c *Cache, dOut []float64, g *Grads) []float64 {
	if len(dOut) != m.OutputDim() {
		panic(fmt.Sprintf("nn: dOut dim %d, want %d", len(dOut), m.OutputDim()))
	}
	delta := append([]float64(nil), dOut...)
	for l := m.Layers() - 1; l >= 0; l-- {
		in := m.Sizes[l]
		aIn := c.As[l]
		w := m.W[l]
		// Parameter gradients.
		for o, d := range delta {
			g.B[l][o] += d
			row := g.W[l][o*in : (o+1)*in]
			for i, a := range aIn {
				row[i] += d * a
			}
		}
		if l == 0 {
			// Input gradient.
			dIn := make([]float64, in)
			for o, d := range delta {
				row := w[o*in : (o+1)*in]
				for i := range dIn {
					dIn[i] += d * row[i]
				}
			}
			return dIn
		}
		// Propagate through weights and the previous layer's activation.
		prev := make([]float64, in)
		for o, d := range delta {
			row := w[o*in : (o+1)*in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			prev[i] *= m.activateGrad(aIn[i])
		}
		delta = prev
	}
	return nil
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	cp := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for l := range m.W {
		cp.W = append(cp.W, append([]float64(nil), m.W[l]...))
		cp.B = append(cp.B, append([]float64(nil), m.B[l]...))
	}
	return cp
}

// CopyFrom copies parameters from src (shapes must match).
func (m *MLP) CopyFrom(src *MLP) {
	for l := range m.W {
		copy(m.W[l], src.W[l])
		copy(m.B[l], src.B[l])
	}
}
