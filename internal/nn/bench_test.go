package nn

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks at the shapes ASQP-RL actually uses: 26-dim coverage
// state → 64×64 hidden → 512-way action logits.

func benchNet() *MLP {
	return NewMLP(rand.New(rand.NewSource(1)), ActTanh, 26, 64, 64, 512)
}

func BenchmarkForward(b *testing.B) {
	m := benchNet()
	x := make([]float64, 26)
	for i := range x {
		x[i] = 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	m := benchNet()
	g := m.NewGrads()
	x := make([]float64, 26)
	dOut := make([]float64, 512)
	dOut[3] = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := m.ForwardCache(x)
		m.Backward(cache, dOut, g)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	m := benchNet()
	g := m.NewGrads()
	opt := NewAdam(m, 1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(m, g)
	}
}

func BenchmarkMaskedSoftmax(b *testing.B) {
	logits := make([]float64, 512)
	mask := make([]bool, 512)
	for i := range logits {
		logits[i] = float64(i%13) * 0.1
		mask[i] = i%3 != 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(MaskLogits(logits, mask))
	}
}
