package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ActTanh, 4, 8, 3)
	out := m.Forward([]float64{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("output dim = %d, want 3", len(out))
	}
	if m.InputDim() != 4 || m.OutputDim() != 3 || m.Layers() != 2 {
		t.Errorf("dims: in=%d out=%d layers=%d", m.InputDim(), m.OutputDim(), m.Layers())
	}
	if m.NumParams() != 4*8+8+8*3+3 {
		t.Errorf("NumParams = %d", m.NumParams())
	}
}

func TestForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMLP(rng, ActReLU, 3, 5, 2)
	x := []float64{0.2, -0.4, 0.9}
	a := m.Forward(x)
	b := m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
}

func TestBadConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, sizes := range [][]int{{3}, {}, {3, 0, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMLP(%v) should panic", sizes)
				}
			}()
			NewMLP(rng, ActTanh, sizes...)
		}()
	}
}

func TestForwardWrongDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ActTanh, 3, 2)
	defer func() {
		if recover() == nil {
			t.Error("wrong input dim should panic")
		}
	}()
	m.Forward([]float64{1, 2})
}

// TestGradientCheck verifies backprop against central finite differences for
// both activations.
func TestGradientCheck(t *testing.T) {
	for _, act := range []Activation{ActTanh, ActReLU} {
		rng := rand.New(rand.NewSource(42))
		m := NewMLP(rng, act, 5, 7, 4, 3)
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Loss: L = Σ c_o * y_o with random coefficients (linear in output,
		// so dL/dy = c exactly).
		c := make([]float64, 3)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		loss := func() float64 {
			y := m.Forward(x)
			var s float64
			for i := range y {
				s += c[i] * y[i]
			}
			return s
		}
		g := m.NewGrads()
		cache := m.ForwardCache(x)
		m.Backward(cache, c, g)

		const eps = 1e-5
		checkParam := func(p []float64, gp []float64, name string, l int) {
			// Spot-check a handful of parameters per layer.
			step := len(p)/5 + 1
			for i := 0; i < len(p); i += step {
				orig := p[i]
				p[i] = orig + eps
				up := loss()
				p[i] = orig - eps
				down := loss()
				p[i] = orig
				numeric := (up - down) / (2 * eps)
				if diff := math.Abs(numeric - gp[i]); diff > 1e-4*(1+math.Abs(numeric)) {
					t.Errorf("act=%v %s[%d][%d]: backprop %.8f vs numeric %.8f", act, name, l, i, gp[i], numeric)
				}
			}
		}
		for l := range m.W {
			checkParam(m.W[l], g.W[l], "W", l)
			checkParam(m.B[l], g.B[l], "B", l)
		}
	}
}

func TestInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, ActTanh, 4, 6, 2)
	x := []float64{0.1, -0.3, 0.7, 0.2}
	c := []float64{1.5, -0.8}
	loss := func(in []float64) float64 {
		y := m.Forward(in)
		return c[0]*y[0] + c[1]*y[1]
	}
	g := m.NewGrads()
	dIn := m.Backward(m.ForwardCache(x), c, g)
	const eps = 1e-5
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += eps
		xm := append([]float64(nil), x...)
		xm[i] -= eps
		numeric := (loss(xp) - loss(xm)) / (2 * eps)
		if diff := math.Abs(numeric - dIn[i]); diff > 1e-5*(1+math.Abs(numeric)) {
			t.Errorf("dIn[%d]: backprop %.8f vs numeric %.8f", i, dIn[i], numeric)
		}
	}
}

// TestTrainingRegression checks that Adam + backprop can fit a simple
// function (y = x1 - x2) to low error.
func TestTrainingRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP(rng, ActTanh, 2, 16, 1)
	opt := NewAdam(m, 0.01)
	g := m.NewGrads()
	var lastLoss float64
	for epoch := 0; epoch < 400; epoch++ {
		g.Zero()
		lastLoss = 0
		const batch = 32
		for i := 0; i < batch; i++ {
			x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			target := x[0] - x[1]
			cache := m.ForwardCache(x)
			y := cache.Output()[0]
			diff := y - target
			lastLoss += diff * diff
			m.Backward(cache, []float64{2 * diff / batch}, g)
		}
		lastLoss /= batch
		opt.Step(m, g)
	}
	if lastLoss > 0.01 {
		t.Errorf("regression did not converge: final MSE %.5f", lastLoss)
	}
}

func TestSGDMomentumTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP(rng, ActTanh, 1, 8, 1)
	opt := NewSGD(m, 0.05, 0.9)
	g := m.NewGrads()
	var loss float64
	for epoch := 0; epoch < 300; epoch++ {
		g.Zero()
		loss = 0
		for i := 0; i < 16; i++ {
			x := []float64{rng.Float64()*2 - 1}
			target := 0.5 * x[0]
			cache := m.ForwardCache(x)
			diff := cache.Output()[0] - target
			loss += diff * diff
			m.Backward(cache, []float64{2 * diff / 16}, g)
		}
		loss /= 16
		opt.Step(m, g)
	}
	if loss > 0.02 {
		t.Errorf("SGD did not converge: final MSE %.5f", loss)
	}
}

func TestGradsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ActTanh, 2, 3, 1)
	g1 := m.NewGrads()
	g1.W[0][0] = 2
	g2 := m.NewGrads()
	g2.W[0][0] = 3
	g1.Add(g2)
	if g1.W[0][0] != 5 {
		t.Errorf("Add: got %v", g1.W[0][0])
	}
	g1.Scale(0.5)
	if g1.W[0][0] != 2.5 {
		t.Errorf("Scale: got %v", g1.W[0][0])
	}
	g1.Zero()
	if g1.W[0][0] != 0 {
		t.Errorf("Zero: got %v", g1.W[0][0])
	}
}

func TestClipGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, ActTanh, 2, 2)
	g := m.NewGrads()
	for i := range g.W[0] {
		g.W[0][i] = 10
	}
	norm := ClipGrads(g, 1.0)
	if norm <= 1 {
		t.Errorf("pre-clip norm should exceed 1, got %v", norm)
	}
	var after float64
	for _, v := range g.W[0] {
		after += v * v
	}
	for _, v := range g.B[0] {
		after += v * v
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Errorf("post-clip norm = %v, want 1", math.Sqrt(after))
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, ActTanh, 2, 3, 1)
	c := m.Clone()
	c.W[0][0] += 1
	if m.W[0][0] == c.W[0][0] {
		t.Error("clone shares weights")
	}
	m.CopyFrom(c)
	if m.W[0][0] != c.W[0][0] {
		t.Error("CopyFrom did not copy")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, len(raw))
		for i, v := range raw {
			logits[i] = math.Mod(v, 10) // keep magnitudes sane
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskedSoftmax(t *testing.T) {
	logits := []float64{1, 2, 3, 4}
	mask := []bool{true, false, true, false}
	p := Softmax(MaskLogits(logits, mask))
	if p[1] != 0 || p[3] != 0 {
		t.Errorf("masked entries should be zero: %v", p)
	}
	if math.Abs(p[0]+p[2]-1) > 1e-9 {
		t.Errorf("valid mass should sum to 1: %v", p)
	}
	// All-masked yields zeros.
	none := Softmax(MaskLogits(logits, []bool{false, false, false, false}))
	for _, v := range none {
		if v != 0 {
			t.Errorf("all-masked softmax should be zero: %v", none)
		}
	}
	// Nil mask passes through.
	if got := MaskLogits(logits, nil); &got[0] != &logits[0] {
		t.Error("nil mask should return input unchanged")
	}
}

func TestLogSumExpStability(t *testing.T) {
	// Large logits must not overflow.
	v := LogSumExp([]float64{1000, 1000})
	want := 1000 + math.Log(2)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("LogSumExp large = %v, want %v", v, want)
	}
	if !math.IsInf(LogSumExp([]float64{negInf, negInf}), -1) {
		t.Error("all -Inf should be -Inf")
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(p, rng)]++
	}
	for i, want := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("empirical p[%d] = %.3f, want %.3f", i, got, want)
		}
	}
}

func TestSampleCategoricalZeroMassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-mass distribution should panic")
		}
	}()
	SampleCategorical([]float64{0, 0}, rand.New(rand.NewSource(1)))
}

func TestSampleCategoricalNeverPicksZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := []float64{0, 1, 0}
	for i := 0; i < 100; i++ {
		if SampleCategorical(p, rng) != 1 {
			t.Fatal("sampled zero-probability index")
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax(nil) != -1 {
		t.Error("empty argmax should be -1")
	}
	if Argmax([]float64{2, 2, 1}) != 0 {
		t.Error("ties should pick first")
	}
}

func TestEntropyBounds(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if math.Abs(Entropy(uniform)-math.Log(4)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want ln 4", Entropy(uniform))
	}
	point := []float64{1, 0, 0, 0}
	if Entropy(point) != 0 {
		t.Errorf("point-mass entropy = %v, want 0", Entropy(point))
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	if kl := KL(p, p); math.Abs(kl) > 1e-12 {
		t.Errorf("KL(p,p) = %v, want 0", kl)
	}
	q := []float64{0.9, 0.1}
	if kl := KL(p, q); kl <= 0 {
		t.Errorf("KL(p,q) = %v, want > 0", kl)
	}
	// q with zero where p has mass: finite penalty.
	if kl := KL([]float64{1, 0}, []float64{0, 1}); math.IsInf(kl, 1) {
		t.Error("KL with zero q should be finite")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP(rng, ActReLU, 3, 4, 2)
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.5, 1}
	a, b := m.Forward(x), got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded network differs from saved one")
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not gob data")); err == nil {
		t.Error("garbage input should fail")
	}
}
