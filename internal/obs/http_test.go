package obs

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestStartDebugLifecycle checks the debug server binds, serves, and shuts
// down without leaking its accept goroutine or the listener port.
func TestStartDebugLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	d, err := StartDebug("localhost:0")
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	if !Enabled() {
		t.Error("StartDebug did not enable observability")
	}

	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(string(body)), "{") {
		t.Errorf("GET /metrics = %d %q, want 200 with JSON object", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The port must be released…
	if _, err := http.Get("http://" + d.Addr() + "/metrics"); err == nil {
		t.Error("debug server still serving after Shutdown")
	}
	// …and the serve goroutine reaped.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines after Shutdown = %d, baseline %d — serve goroutine leaked", n, before)
	}
}

// TestStartDebugBindErrorSurfaces checks a taken port fails fast at StartDebug
// rather than silently serving nothing.
func TestStartDebugBindErrorSurfaces(t *testing.T) {
	d, err := StartDebug("localhost:0")
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer d.Close()

	if _, err := StartDebug(d.Addr()); err == nil {
		t.Fatal("StartDebug on a taken port returned no error")
	}
}

// TestStartDebugClose checks the abrupt-stop path also releases everything.
func TestStartDebugClose(t *testing.T) {
	d, err := StartDebug("localhost:0")
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + d.Addr() + "/"); err == nil {
		t.Error("debug server still serving after Close")
	}
	// Nil receivers are no-ops so callers can shut down unconditionally.
	var nilServer *DebugServer
	if err := nilServer.Shutdown(context.Background()); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
	if err := nilServer.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
