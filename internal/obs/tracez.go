package obs

import (
	"net/http"
	"strings"
	"time"
)

// TraceSummary is one /tracez listing row: enough to spot the trace you
// want, with the full tree one click away (?trace=<id>).
type TraceSummary struct {
	TraceID    string         `json:"trace_id"`
	Name       string         `json:"name"`
	Verdict    string         `json:"verdict"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Error      string         `json:"error,omitempty"`
	Degraded   string         `json:"degraded,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// tracezPage is the JSON body of GET /tracez.
type tracezPage struct {
	SamplePolicy tracezPolicy     `json:"sample_policy"`
	Traces       []TraceSummary   `json:"traces"`
	SlowQueries  []SlowQueryStats `json:"slow_queries,omitempty"`
}

type tracezPolicy struct {
	Configured    bool    `json:"configured"`
	SampleRate    float64 `json:"sample_rate"`
	SlowThreshold string  `json:"slow_threshold"`
	Exporting     bool    `json:"exporting"`
}

// handleTracez serves the tail-sampled trace store:
//
//	/tracez                     all kept traces (newest first) + slow-query log
//	/tracez?view=slow           only traces kept for the given verdict
//	       (slow|error|degraded|sampled|forced)
//	/tracez?trace=<hex id>      one full span tree
func handleTracez(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("trace"); id != "" {
		rec, ok := KeptTrace(id)
		if !ok {
			http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
			return
		}
		writeJSON(w, rec)
		return
	}
	view := strings.ToLower(r.URL.Query().Get("view"))
	page := tracezPage{SlowQueries: SlowQueries()}
	if cfg, ok := TracingConfigured(); ok {
		page.SamplePolicy = tracezPolicy{
			Configured:    true,
			SampleRate:    cfg.SampleRate,
			SlowThreshold: cfg.SlowThreshold.String(),
			Exporting:     cfg.Exporter != nil,
		}
	}
	for _, rec := range KeptTraces() {
		if view != "" && view != "all" && rec.Verdict != view {
			continue
		}
		page.Traces = append(page.Traces, TraceSummary{
			TraceID:    rec.TraceID,
			Name:       rec.Root.Name,
			Verdict:    rec.Verdict,
			Start:      rec.Root.Start,
			DurationMS: rec.DurationMS,
			Error:      rec.Root.Error,
			Degraded:   rec.Root.Degraded,
			Attrs:      rec.Root.Attrs,
		})
	}
	writeJSON(w, page)
}
