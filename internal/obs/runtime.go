package obs

import (
	"runtime"
	"time"
)

// Runtime metric names published by the sampler. Gauges are point-in-time
// (the TimeSeries sampler then gives them windows); GC pauses feed a
// histogram so p99 pause is queryable like any latency.
const (
	MetricGoroutines     = "runtime/goroutines"
	MetricHeapInuse      = "runtime/heap_inuse_bytes"
	MetricHeapAlloc      = "runtime/heap_alloc_bytes"
	MetricGCCount        = "runtime/gc_count"
	MetricUptimeSeconds  = "runtime/uptime_seconds"
	MetricGCPauseSeconds = "runtime/gc_pause_seconds"
)

// RuntimeSampler publishes Go runtime health (goroutine count, heap in use,
// GC pauses, uptime) into a Registry on an interval, so process vitals ride
// the same pipeline as application metrics — windowed by TimeSeries, scraped
// at /metrics?format=prom, and captured into flight-recorder bundles.
//
// ReadMemStats briefly stops the world, so the default cadence is 10s; the
// sampler is not meant for sub-second intervals. A nil *RuntimeSampler is a
// valid no-op.
type RuntimeSampler struct {
	reg      *Registry
	interval time.Duration
	started  time.Time

	lastNumGC uint32
	stop      chan struct{}
	done      chan struct{}
	running   bool
}

// NewRuntimeSampler builds a sampler over reg (nil = the default registry).
// interval ≤ 0 defaults to 10s.
func NewRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &RuntimeSampler{
		reg:      reg,
		interval: interval,
		started:  time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SampleNow takes one sample synchronously (also used by tests).
func (s *RuntimeSampler) SampleNow() {
	if s == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.reg.Gauge(MetricGoroutines).Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge(MetricHeapInuse).Set(float64(ms.HeapInuse))
	s.reg.Gauge(MetricHeapAlloc).Set(float64(ms.HeapAlloc))
	s.reg.Gauge(MetricGCCount).Set(float64(ms.NumGC))
	s.reg.Gauge(MetricUptimeSeconds).Set(time.Since(s.started).Seconds())

	// Feed each GC pause since the last sample into the pause histogram.
	// MemStats keeps the most recent 256 pauses in a ring indexed by NumGC;
	// if more than 256 cycles ran between samples the overwritten ones are
	// lost (the gauge still shows the true cycle count).
	if n := ms.NumGC; n > s.lastNumGC {
		first := s.lastNumGC + 1
		if n-first >= uint32(len(ms.PauseNs)) {
			first = n - uint32(len(ms.PauseNs)) + 1
		}
		h := s.reg.Histogram(MetricGCPauseSeconds)
		for i := first; i <= n; i++ {
			h.Observe(float64(ms.PauseNs[(i+255)%256]) / 1e9)
		}
		s.lastNumGC = n
	}
}

// Start launches the background sampling loop (one immediate sample, then
// one per interval). Idempotent; Close stops it.
func (s *RuntimeSampler) Start() {
	if s == nil || s.running {
		return
	}
	s.running = true
	go func() {
		defer close(s.done)
		s.SampleNow()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.SampleNow()
			}
		}
	}()
}

// Close stops the loop and waits for it to exit. Safe to call without Start
// and more than once.
func (s *RuntimeSampler) Close() {
	if s == nil || !s.running {
		return
	}
	s.running = false
	close(s.stop)
	<-s.done
}
