package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxKeptTraces bounds the in-memory store of tail-sampled traces backing
// /tracez.
const maxKeptTraces = 128

// maxSlowQueryKeys bounds the slow-query log (distinct canonical SQL texts).
const maxSlowQueryKeys = 256

// TraceRecord is one kept trace: the finished root span tree plus the tail
// sampler's verdict. It is the unit of /tracez listing and JSONL export.
type TraceRecord struct {
	TraceID    string       `json:"trace_id"`
	Verdict    string       `json:"verdict"` // "error" | "degraded" | "slow" | "forced" | "sampled"
	DurationMS float64      `json:"duration_ms"`
	Root       SpanSnapshot `json:"root"`
}

// TraceSink receives kept traces, e.g. the JSONL exporter. ExportTrace is
// called synchronously from Span.End of a sampled root span and must be safe
// for concurrent use.
type TraceSink interface {
	ExportTrace(rec TraceRecord) error
}

// TracingConfig tunes tail-based trace sampling. The decision is made when a
// root span finishes, with the whole tree in hand:
//
//   - traces containing an errored span are always kept ("error");
//   - traces containing a degraded span are always kept ("degraded");
//   - traces at or over SlowThreshold are always kept ("slow");
//   - traces whose incoming traceparent carried the sampled flag are always
//     kept ("forced");
//   - the remaining healthy traces are kept with probability SampleRate
//     ("sampled") and dropped otherwise.
type TracingConfig struct {
	// SampleRate is the fraction of healthy traces kept, in [0, 1].
	SampleRate float64
	// SlowThreshold is the duration at or above which a trace is always
	// kept. Zero disables the slow class.
	SlowThreshold time.Duration
	// Exporter, when non-nil, receives every kept trace.
	Exporter TraceSink
}

var traceState atomic.Pointer[TracingConfig]

// ConfigureTracing installs the tail sampling policy (and optional exporter)
// process-wide and enables observability. Passing a new config replaces the
// old one atomically; in-flight decisions use whichever config they loaded.
func ConfigureTracing(cfg TracingConfig) {
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	SetEnabled(true)
	traceState.Store(&cfg)
}

// DisableTracing removes the sampling policy: root spans are no longer
// retained for /tracez or exported. Metric and span recording (Enabled) is
// left untouched.
func DisableTracing() { traceState.Store(nil) }

// TracingConfigured returns the active tail-sampling config, or false when
// tracing is off.
func TracingConfigured() (TracingConfig, bool) {
	cfg := traceState.Load()
	if cfg == nil {
		return TracingConfig{}, false
	}
	return *cfg, true
}

// tailConsider runs the tail-sampling decision for a finished root span.
func tailConsider(s *Span) {
	cfg := traceState.Load()
	if cfg == nil {
		return
	}
	d := s.Duration()
	errMsg, degraded := s.status()
	s.mu.Lock()
	forced := s.forced
	s.mu.Unlock()
	var verdict string
	switch {
	case errMsg != "":
		verdict = "error"
	case degraded != "":
		verdict = "degraded"
	case cfg.SlowThreshold > 0 && d >= cfg.SlowThreshold:
		verdict = "slow"
	case forced:
		verdict = "forced"
	case cfg.SampleRate > 0 && rand.Float64() < cfg.SampleRate:
		verdict = "sampled"
	default:
		Default().Counter("obs/trace/dropped").Inc()
		return
	}
	rec := TraceRecord{
		TraceID:    s.traceID.String(),
		Verdict:    verdict,
		DurationMS: float64(d) / float64(time.Millisecond),
		Root:       s.Snapshot(),
	}
	Default().Counter("obs/trace/kept/" + verdict).Inc()
	traceKeep.add(rec)
	slowLog.observe(rec)
	if cfg.Exporter != nil {
		if err := cfg.Exporter.ExportTrace(rec); err != nil {
			// Counted drop, rate-limited warning: a full disk fails every
			// export, and one warning per trace would turn the log into the
			// second full disk.
			Default().Counter("obs/trace/export_errors").Inc()
			if exportWarn.Allow(exportWarnEvery) {
				Logger().Warn("trace export failed (dropping; see obs/trace/export_errors)",
					"trace_id", rec.TraceID, "err", err)
			}
		}
	}
}

// exportWarn rate-limits export-failure warnings to one per exportWarnEvery;
// the counter stays exact.
var exportWarn WarnLimiter

const exportWarnEvery = 10 * time.Second

// traceRing is a fixed-size circular buffer of kept traces.
type traceRing struct {
	mu   sync.Mutex
	buf  [maxKeptTraces]TraceRecord
	next int
	n    int
}

var traceKeep = &traceRing{}

func (r *traceRing) add(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % maxKeptTraces
	if r.n < maxKeptTraces {
		r.n++
	}
	r.mu.Unlock()
}

// KeptTraces returns the tail-sampled traces, newest first.
func KeptTraces() []TraceRecord {
	traceKeep.mu.Lock()
	defer traceKeep.mu.Unlock()
	out := make([]TraceRecord, 0, traceKeep.n)
	for i := 1; i <= traceKeep.n; i++ {
		idx := traceKeep.next - i
		if idx < 0 {
			idx += maxKeptTraces
		}
		out = append(out, traceKeep.buf[idx])
	}
	return out
}

// KeptTrace returns the kept trace with the given hex trace ID.
func KeptTrace(id string) (TraceRecord, bool) {
	for _, rec := range KeptTraces() {
		if rec.TraceID == id {
			return rec, true
		}
	}
	return TraceRecord{}, false
}

// AmendTrace appends an event to the root span of an already-kept trace, so
// late-arriving facts about a finished request — a shadow-audit verdict, a
// delayed downstream acknowledgement — become visible on the trace in
// /tracez. The amendment is in-memory only: it reaches the traceRing record
// (and anything snapshotted from it afterwards) but not a JSONL export that
// already happened at span end; offline joins use the amending subsystem's
// own span attributes instead. It returns false when the trace is not (or no
// longer) in the kept ring — tail-dropped or evicted traces are not
// addressable.
func AmendTrace(id string, ev SpanEvent) bool {
	if id == "" {
		return false
	}
	traceKeep.mu.Lock()
	defer traceKeep.mu.Unlock()
	for i := 0; i < traceKeep.n; i++ {
		idx := traceKeep.next - 1 - i
		if idx < 0 {
			idx += maxKeptTraces
		}
		if traceKeep.buf[idx].TraceID == id {
			root := &traceKeep.buf[idx].Root
			// Snapshots share their Events backing array with nothing (each
			// Snapshot copies), so appending here is safe.
			root.Events = append(root.Events, ev)
			return true
		}
	}
	return false
}

// SlowQueryStats aggregates kept traces per canonical SQL text (the root
// span's "sql" attribute): how often the query appeared in kept traces, how
// slow it got, and the trace ID of its most recent appearance — the /tracez
// jumping-off point from "this query is slow" to "here is exactly what it
// did".
type SlowQueryStats struct {
	SQL         string    `json:"sql"`
	Count       int64     `json:"count"`
	Errors      int64     `json:"errors"`
	Degraded    int64     `json:"degraded"`
	MaxMS       float64   `json:"max_ms"`
	LastMS      float64   `json:"last_ms"`
	LastTraceID string    `json:"last_trace_id"`
	LastAt      time.Time `json:"last_at"`
}

// slowQueryLog is a bounded per-canonical-SQL aggregation of kept traces.
// Keys beyond maxSlowQueryKeys evict the oldest-inserted entry (FIFO): the
// log is a debugging aid, not an unbounded archive.
type slowQueryLog struct {
	mu      sync.Mutex
	entries map[string]*SlowQueryStats
	order   []string
}

var slowLog = &slowQueryLog{entries: map[string]*SlowQueryStats{}}

func (l *slowQueryLog) observe(rec TraceRecord) {
	sql, _ := rec.Root.Attrs["sql"].(string)
	if sql == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[sql]
	if e == nil {
		if len(l.order) >= maxSlowQueryKeys {
			oldest := l.order[0]
			l.order = l.order[1:]
			delete(l.entries, oldest)
		}
		e = &SlowQueryStats{SQL: sql}
		l.entries[sql] = e
		l.order = append(l.order, sql)
	}
	e.Count++
	if rec.Verdict == "error" {
		e.Errors++
	}
	if rec.Verdict == "degraded" {
		e.Degraded++
	}
	if rec.DurationMS > e.MaxMS {
		e.MaxMS = rec.DurationMS
	}
	e.LastMS = rec.DurationMS
	e.LastTraceID = rec.TraceID
	e.LastAt = rec.Root.Start
}

// SlowQueries returns the slow-query log sorted by worst-case latency,
// slowest first.
func SlowQueries() []SlowQueryStats {
	slowLog.mu.Lock()
	out := make([]SlowQueryStats, 0, len(slowLog.entries))
	for _, e := range slowLog.entries {
		out = append(out, *e)
	}
	slowLog.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxMS != out[j].MaxMS {
			return out[i].MaxMS > out[j].MaxMS
		}
		return out[i].SQL < out[j].SQL
	})
	return out
}

// ResetTraces drops all kept traces and the slow-query log. Intended for
// tests.
func ResetTraces() {
	traceKeep.mu.Lock()
	traceKeep.buf = [maxKeptTraces]TraceRecord{}
	traceKeep.next = 0
	traceKeep.n = 0
	traceKeep.mu.Unlock()
	slowLog.mu.Lock()
	slowLog.entries = map[string]*SlowQueryStats{}
	slowLog.order = nil
	slowLog.mu.Unlock()
}
