package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// nopHandler is an slog.Handler that reports every level disabled, making
// Logger() calls free (no attribute formatting) when logging is off.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var (
	defaultLogger atomic.Pointer[slog.Logger]
	loggingActive atomic.Bool
)

func init() {
	defaultLogger.Store(slog.New(nopHandler{}))
}

// Logger returns the package logger. It is a no-op unless EnableLogging (or
// SetLogger) has been called, so call sites may log unconditionally.
func Logger() *slog.Logger { return defaultLogger.Load() }

// LoggerCtx returns the package logger stamped with ctx's trace ID, so every
// log line written while serving a traced request links back to its trace.
// When logging is off or ctx carries no span it is exactly Logger() — no
// allocation.
func LoggerCtx(ctx context.Context) *slog.Logger {
	l := Logger()
	if !loggingActive.Load() {
		return l
	}
	if s := SpanFromContext(ctx); s != nil {
		return l.With("trace_id", s.TraceID().String())
	}
	return l
}

// SetLogger replaces the package logger. Passing nil restores the no-op
// logger.
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(nopHandler{})
		loggingActive.Store(false)
	} else {
		loggingActive.Store(true)
	}
	defaultLogger.Store(l)
}

// EnableLogging routes structured logs at or above level to w as
// logfmt-style text.
func EnableLogging(w io.Writer, level slog.Level) {
	SetLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})))
}

// WarnLimiter rate-limits repeated warnings about one recurring condition —
// a full disk failing every trace export, a sick query shape burning SLO on
// every audit — to one log line per interval, while the caller's counters
// stay exact: limit the noise, never the numbers. The zero value is ready to
// use.
type WarnLimiter struct {
	last atomic.Int64 // unix nanos of the last emitted warning
}

// Allow reports whether a warning may be emitted now and, if so, claims the
// slot. Concurrent callers race for one slot per interval; losers stay
// silent.
func (w *WarnLimiter) Allow(interval time.Duration) bool {
	now := time.Now().UnixNano()
	last := w.last.Load()
	return now-last >= int64(interval) && w.last.CompareAndSwap(last, now)
}

// ParseLevel maps a -log flag value ("debug", "info", "warn", "error") to a
// slog level, defaulting to info for unknown strings.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
