package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (served at /metrics?format=prom) so standard scrapers work against the
// debug server without a sidecar:
//
//   - counters become `<name>_total`;
//   - gauges keep their name;
//   - histograms expand into cumulative `_bucket{le=...}` samples plus
//     `_sum`/`_count`, with each bucket's retained exemplar rendered in
//     OpenMetrics style (`# {trace_id="..."} value timestamp`) so tail
//     buckets link to concrete traces;
//   - series (bounded learning curves) are skipped — they are iteration
//     logs, not instantaneous samples, and belong to the JSON snapshot.
//
// Slash-separated metric names are sanitized to Prometheus identifiers
// (`server/request_seconds` → `server_request_seconds`).
func WritePrometheus(w io.Writer, r *Registry) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		if err := writePromHistogram(w, promName(name), hists[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < numBuckets {
			le = promFloat(bucketBounds[i])
		}
		line := fmt.Sprintf("%s_bucket{le=%q} %d", pn, le, cum)
		if ex := h.exemplars[i].Load(); ex != nil {
			// OpenMetrics exemplar: `# {label="..."} value timestamp`.
			line += fmt.Sprintf(" # {trace_id=%q} %s %s",
				ex.TraceID.String(), promFloat(ex.Value),
				promFloat(float64(ex.When.UnixNano())/1e9))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, h.Count())
	return err
}

// promName sanitizes a slash-path metric name into a Prometheus identifier.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
