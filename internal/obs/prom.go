package obs

import (
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (served at /metrics?format=prom) so standard scrapers work against the
// debug server without a sidecar:
//
//   - counters become `<name>_total` (never double-suffixed: a counter
//     already named `*_total` keeps its name);
//   - gauges keep their name;
//   - histograms expand into cumulative `_bucket{le=...}` samples plus
//     `_sum`/`_count`, with each bucket's retained exemplar rendered in
//     OpenMetrics style (`# {trace_id="..."} value timestamp`) so tail
//     buckets link to concrete traces;
//   - series (bounded learning curves) are skipped — they are iteration
//     logs, not instantaneous samples, and belong to the JSON snapshot;
//   - one `asqp_build_info` gauge carries the module path/version and Go
//     toolchain as labels, the standard way to join metrics to a build.
//
// Conformance guarantees (regression-tested): `# HELP` and `# TYPE` appear
// exactly once per family, immediately before its samples; label values and
// help text are escaped per the exposition format (`\\`, `\"`, `\n`); when
// two registry names sanitize to the same family (`a/b` and `a_b`), the
// first (in sorted registry order) wins and later ones are dropped rather
// than emitting a second TYPE line for the family.
//
// Slash-separated metric names are sanitized to Prometheus identifiers
// (`server/request_seconds` → `server_request_seconds`).
func WritePrometheus(w io.Writer, r *Registry) error {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()

	// seen tracks every emitted family name so a sanitization collision
	// (within or across metric types) cannot produce duplicate TYPE lines.
	seen := make(map[string]bool, len(counters)+len(gauges)+len(hists)+4)

	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		if !strings.HasSuffix(pn, "_total") {
			pn += "_total"
		}
		if seen[pn] {
			continue
		}
		seen[pn] = true
		if err := writeFamilyHeader(w, pn, name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if seen[pn] {
			continue
		}
		seen[pn] = true
		if err := writeFamilyHeader(w, pn, name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", pn, promFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		pn := promName(name)
		// A histogram family owns pn plus three derived sample names.
		if seen[pn] || seen[pn+"_bucket"] || seen[pn+"_sum"] || seen[pn+"_count"] {
			continue
		}
		seen[pn], seen[pn+"_bucket"], seen[pn+"_sum"], seen[pn+"_count"] = true, true, true, true
		if err := writePromHistogram(w, pn, name, hists[name]); err != nil {
			return err
		}
	}
	return writeBuildInfo(w, seen)
}

// writeFamilyHeader emits the HELP/TYPE pair for one family. The help text
// is the registry's original (slash-path) name — enough to map the scraped
// family back to the source metric, and escaped so arbitrary names cannot
// break the exposition syntax.
func writeFamilyHeader(w io.Writer, pn, origName, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s asqp metric %s\n# TYPE %s %s\n",
		pn, promEscapeHelp(origName), pn, typ)
	return err
}

func writePromHistogram(w io.Writer, pn, origName string, h *Histogram) error {
	if err := writeFamilyHeader(w, pn, origName, "histogram"); err != nil {
		return err
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < numBuckets {
			le = promFloat(bucketBounds[i])
		}
		line := fmt.Sprintf("%s_bucket{le=\"%s\"} %d", pn, promEscapeLabel(le), cum)
		if ex := h.exemplars[i].Load(); ex != nil {
			// OpenMetrics exemplar: `# {label="..."} value timestamp`.
			line += fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
				promEscapeLabel(ex.TraceID.String()), promFloat(ex.Value),
				promFloat(float64(ex.When.UnixNano())/1e9))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum()), pn, h.Count())
	return err
}

// writeBuildInfo emits the standard `*_build_info` gauge: constant 1 with
// the build's identifying labels, so dashboards can join any series to the
// binary that produced it.
func writeBuildInfo(w io.Writer, seen map[string]bool) error {
	if seen["asqp_build_info"] {
		return nil
	}
	path, version, goVer := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			path = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVer = bi.GoVersion
		}
	}
	_, err := fmt.Fprintf(w,
		"# HELP asqp_build_info Build metadata of the running binary.\n"+
			"# TYPE asqp_build_info gauge\n"+
			"asqp_build_info{path=\"%s\",version=\"%s\",goversion=\"%s\"} 1\n",
		promEscapeLabel(path), promEscapeLabel(version), promEscapeLabel(goVer))
	return err
}

// promName sanitizes a slash-path metric name into a Prometheus identifier.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the text exposition format:
// backslash, double-quote, and line feed. (Unlike Go's %q it leaves every
// other byte alone — `\t` or non-ASCII must pass through verbatim.)
func promEscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promEscapeHelp escapes HELP text: backslash and line feed (quotes are
// legal in help text).
func promEscapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
