package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Exporter file-rotation defaults: a trace directory never grows past
// maxFiles×maxFileBytes (≈32 MiB by default), so a long-running server's
// durable trace history is bounded like every other buffer in the system.
const (
	defaultTraceFileBytes = 8 << 20
	defaultTraceFiles     = 4
)

// JSONLExporter writes kept traces as one JSON object per line into
// size-rotated files (traces-NNNNNN.jsonl) under a directory. Rotation is
// size-based: when the active file exceeds its byte budget a new sequence
// file is opened and the oldest files beyond the retention count are
// deleted. Writes are synchronous and serialized; a failed write surfaces as
// an error to the sampler, which counts it and drops the trace rather than
// blocking the request path.
type JSONLExporter struct {
	dir          string
	maxFileBytes int64
	maxFiles     int

	mu     sync.Mutex
	f      *os.File
	size   int64
	seq    int
	closed bool
}

// NewJSONLExporter creates dir if needed and opens a fresh sequence file
// after any left by previous runs. maxFileBytes and maxFiles bound the
// directory (values ≤ 0 use the defaults: 8 MiB × 4 files).
func NewJSONLExporter(dir string, maxFileBytes int64, maxFiles int) (*JSONLExporter, error) {
	if maxFileBytes <= 0 {
		maxFileBytes = defaultTraceFileBytes
	}
	if maxFiles <= 0 {
		maxFiles = defaultTraceFiles
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: trace dir: %w", err)
	}
	e := &JSONLExporter{dir: dir, maxFileBytes: maxFileBytes, maxFiles: maxFiles}
	e.seq = e.lastSeq()
	if err := e.rotateLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// ExportTrace appends one trace as a JSONL line, rotating first if the
// active file is over budget. It implements TraceSink. Nil-safe: a nil
// *JSONLExporter silently drops the trace, so a typed-nil handed to
// ConfigureTracing (an Exporter interface wrapping a nil pointer passes the
// sampler's != nil check) degrades to "no export" instead of panicking the
// first sampled span.
func (e *JSONLExporter) ExportTrace(rec TraceRecord) error {
	if e == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: trace marshal: %w", err)
	}
	line = append(line, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("obs: trace exporter closed")
	}
	if e.size+int64(len(line)) > e.maxFileBytes && e.size > 0 {
		if err := e.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := e.f.Write(line)
	e.size += int64(n)
	if err != nil {
		// The active file is wedged (ENOSPC after the partial write, a handle
		// invalidated from outside, a deleted directory entry). Rotate once
		// to a fresh sequence file and retry there: a transient failure
		// self-heals on the spot, a persistent one (disk truly full) fails
		// the rotation or the retry and degrades to a counted drop in the
		// sampler — this trace is lost either way, but the exporter never
		// wedges permanently and never spins.
		if rerr := e.rotateLocked(); rerr != nil {
			return fmt.Errorf("obs: trace write: %w (rotate: %v)", err, rerr)
		}
		if _, rerr := e.f.Write(line); rerr != nil {
			e.size += int64(len(line)) // force rotation on the next attempt
			return fmt.Errorf("obs: trace write after rotate: %w", rerr)
		}
		e.size = int64(len(line))
		return nil
	}
	return nil
}

// Dir returns the export directory.
func (e *JSONLExporter) Dir() string { return e.dir }

// Close flushes and closes the active file. Further exports fail.
func (e *JSONLExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}

// rotateLocked opens the next sequence file and prunes files beyond the
// retention count. Called with e.mu held (or before the exporter escapes).
func (e *JSONLExporter) rotateLocked() error {
	if e.f != nil {
		_ = e.f.Close()
		e.f = nil
	}
	e.seq++
	path := filepath.Join(e.dir, fmt.Sprintf("traces-%06d.jsonl", e.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	e.f = f
	e.size = 0
	e.pruneLocked()
	return nil
}

// lastSeq scans the directory for the highest existing sequence number.
func (e *JSONLExporter) lastSeq() int {
	files, _ := filepath.Glob(filepath.Join(e.dir, "traces-*.jsonl"))
	last := 0
	for _, f := range files {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(f), "traces-%d.jsonl", &n); err == nil && n > last {
			last = n
		}
	}
	return last
}

// pruneLocked deletes the oldest files beyond the retention count.
func (e *JSONLExporter) pruneLocked() {
	files, _ := filepath.Glob(filepath.Join(e.dir, "traces-*.jsonl"))
	if len(files) <= e.maxFiles {
		return
	}
	sort.Strings(files) // zero-padded sequence numbers sort chronologically
	for _, f := range files[:len(files)-e.maxFiles] {
		_ = os.Remove(f)
	}
}
