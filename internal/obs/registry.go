package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) { atomicAddFloat(&g.bits, delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// seriesCap bounds the retained length of a Series; older points are dropped
// from the front once the cap is reached.
const seriesCap = 4096

// Series is an append-only bounded sequence of float64 samples, used for
// learning curves (per-iteration loss, entropy, return, ...).
type Series struct {
	mu      sync.Mutex
	vals    []float64
	dropped int
}

// Append records one sample, evicting the oldest when the cap is hit.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.vals) >= seriesCap {
		s.vals = s.vals[1:]
		s.dropped++
	}
	s.vals = append(s.vals, v)
}

// Values returns a copy of the retained samples.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.vals...)
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// Registry is a concurrency-safe collection of named metrics. Metric
// accessors are get-or-create, so instrumentation sites never need
// registration boilerplate. Names are free-form; the convention used across
// the repo is slash-separated paths like "engine/query/seconds".
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// defaultRegistry backs the package-level helpers and the debug server.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	r.mu.RLock()
	s := r.series[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[name]; s == nil {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Reset drops every metric. Intended for tests and for the start of
// independent benchmark runs.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.series = map[string]*Series{}
}

// Snapshot is a point-in-time JSON-friendly view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string][]float64         `json:"series,omitempty"`
}

// Snapshot captures every metric's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Series:     make(map[string][]float64, len(r.series)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.Snapshot()
	}
	for name, s := range r.series {
		snap.Series[name] = s.Values()
	}
	return snap
}

// MetricNames returns the sorted union of all metric names, for diagnostics.
func (r *Registry) MetricNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	for n := range r.counters {
		seen[n] = true
	}
	for n := range r.gauges {
		seen[n] = true
	}
	for n := range r.hists {
		seen[n] = true
	}
	for n := range r.series {
		seen[n] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
