package obs

import (
	"context"
	"sync"
	"time"
)

// spanCtxKey is the context key carrying the current span.
type spanCtxKey struct{}

// maxRootSpans bounds the ring buffer of finished root span trees retained
// for the /spans endpoint.
const maxRootSpans = 64

// Span is one timed region of execution. Spans nest: starting a span under a
// context that already carries one attaches it as a child, producing a
// wall-clock tree. A nil *Span is a valid no-op receiver, which is what
// StartSpan returns when observability is disabled.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
	root     bool
}

// StartSpan begins a span named name under ctx and returns a derived context
// carrying it. End must be called on the returned span. When observability is
// disabled it returns ctx unchanged and a nil span whose methods are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		s.root = true
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// End finishes the span, fixing its duration. Root spans are published to the
// recent-spans ring buffer. Calling End more than once keeps the first end
// time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	isRoot := s.root
	s.mu.Unlock()
	if isRoot {
		spanStore.add(s)
	}
}

// Annotate attaches a key/value attribute to the span (last write wins).
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Duration returns the span's wall-clock duration (time since start if the
// span has not ended, 0 for a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanSnapshot is a JSON-friendly view of a finished span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the span and its subtree. Unfinished descendants report
// their duration so far.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.durationLocked()) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// durationLocked is Duration with s.mu already held.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// spanRing retains the last maxRootSpans finished root spans.
type spanRing struct {
	mu    sync.Mutex
	spans []*Span
}

var spanStore = &spanRing{}

func (r *spanRing) add(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= maxRootSpans {
		r.spans = r.spans[1:]
	}
	r.spans = append(r.spans, s)
}

// RecentSpans returns snapshots of the most recently finished root span
// trees, oldest first.
func RecentSpans() []SpanSnapshot {
	spanStore.mu.Lock()
	spans := append([]*Span(nil), spanStore.spans...)
	spanStore.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		out[i] = s.Snapshot()
	}
	return out
}

// ResetSpans drops all retained root spans. Intended for tests.
func ResetSpans() {
	spanStore.mu.Lock()
	spanStore.spans = nil
	spanStore.mu.Unlock()
}
