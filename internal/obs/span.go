package obs

import (
	"context"
	"sync"
	"time"
)

// spanCtxKey is the context key carrying the current span.
type spanCtxKey struct{}

// maxRootSpans bounds the ring buffer of finished root span trees retained
// for the /spans endpoint.
const maxRootSpans = 64

// maxSpanEvents bounds the number of timestamped events one span retains, so
// a retry loop gone wild cannot grow a span without limit. Overflow is
// counted in the last event's "dropped" attribute.
const maxSpanEvents = 64

// Span is one timed region of execution. Spans nest: starting a span under a
// context that already carries one attaches it as a child, producing a
// wall-clock tree. Every span carries its trace's 128-bit TraceID and its own
// 64-bit SpanID, so trees stitch into distributed traces across process
// boundaries via W3C traceparent propagation. A nil *Span is a valid no-op
// receiver, which is what StartSpan returns when observability is disabled.
type Span struct {
	name     string
	start    time.Time
	traceID  TraceID
	spanID   SpanID
	parentID SpanID

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	events   []SpanEvent
	dropped  int // events beyond maxSpanEvents
	children []*Span
	errMsg   string
	degraded string // degradation reason, "" when none
	root     bool
	forced   bool // incoming sampled flag: tail sampler must keep the trace
}

// SpanEvent is one timestamped point annotation inside a span (a retry, a
// guard trip, a breaker decision, ...).
type SpanEvent struct {
	Name  string         `json:"name"`
	At    time.Time      `json:"at"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// StartSpan begins a span named name under ctx and returns a derived context
// carrying it. End must be called on the returned span. When observability is
// disabled it returns ctx unchanged and a nil span whose methods are no-ops.
//
// A span started under a context carrying another span joins that span's
// trace as a child. A span started under a context carrying a remote trace
// context (see ContextWithRemoteTrace) becomes the local root of the remote
// trace: it inherits the remote trace ID and parent span ID, and a remote
// sampled flag forces the tail sampler to keep the trace.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now(), spanID: NewSpanID()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.traceID = parent.traceID
		s.parentID = parent.spanID
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else if remote, ok := ctx.Value(remoteTraceKey{}).(remoteTrace); ok {
		s.traceID = remote.tid
		s.parentID = remote.parent
		s.forced = remote.sampled
		s.root = true
	} else {
		s.traceID = NewTraceID()
		s.root = true
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil when there is none
// (including when observability was disabled at StartSpan time).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartChild begins a child span directly under s, for call sites that have a
// span in hand but no context plumbing (engine operators). It is nil-safe: a
// nil receiver returns a nil child, so disabled paths stay allocation-free.
// End must be called on the returned span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		name:    name,
		start:   time.Now(),
		traceID: s.traceID,
		spanID:  NewSpanID(),
	}
	c.parentID = s.spanID
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// End finishes the span, fixing its duration. Root spans are published to the
// recent-spans ring buffer and offered to the tail sampler (which may retain
// them for /tracez and export them). Calling End more than once keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	isRoot := s.root
	s.mu.Unlock()
	if isRoot {
		spanStore.add(s)
		tailConsider(s)
	}
}

// Annotate attaches a key/value attribute to the span (last write wins).
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Event appends a timestamped event to the span. kv is alternating key/value
// pairs (slog style); a trailing odd key is ignored. Events beyond
// maxSpanEvents are dropped and counted.
func (s *Span) Event(name string, kv ...any) {
	if s == nil {
		return
	}
	var attrs map[string]any
	if len(kv) >= 2 {
		attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				continue
			}
			attrs[k] = kv[i+1]
		}
	}
	s.mu.Lock()
	if len(s.events) >= maxSpanEvents {
		s.dropped++
	} else {
		s.events = append(s.events, SpanEvent{Name: name, At: time.Now(), Attrs: attrs})
	}
	s.mu.Unlock()
}

// MarkError records a failure on the span. The tail sampler always keeps
// traces containing an errored span.
func (s *Span) MarkError(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.errMsg == "" {
		s.errMsg = msg
	}
	s.mu.Unlock()
}

// MarkDegraded records that the span's request was answered degraded, with
// the cause ("deadline", "rows", "fault", "breaker", ...). The tail sampler
// always keeps traces containing a degraded span.
func (s *Span) MarkDegraded(reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.degraded == "" {
		s.degraded = reason
	}
	s.mu.Unlock()
}

// Duration returns the span's wall-clock duration (time since start if the
// span has not ended, 0 for a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durationLocked()
}

// SpanSnapshot is a JSON-friendly view of a finished span tree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	TraceID    string         `json:"trace_id,omitempty"`
	SpanID     string         `json:"span_id,omitempty"`
	ParentID   string         `json:"parent_id,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Error      string         `json:"error,omitempty"`
	Degraded   string         `json:"degraded,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []SpanEvent    `json:"events,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot renders the span and its subtree. Unfinished descendants report
// their duration so far. It is safe to call while descendants are still
// running and mutating: every span's state is copied under that span's own
// lock.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		TraceID:    s.traceID.String(),
		SpanID:     s.spanID.String(),
		Start:      s.start,
		DurationMS: float64(s.durationLocked()) / float64(time.Millisecond),
		Error:      s.errMsg,
		Degraded:   s.degraded,
	}
	if !s.parentID.IsZero() {
		snap.ParentID = s.parentID.String()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	if len(s.events) > 0 {
		snap.Events = append([]SpanEvent(nil), s.events...)
		if s.dropped > 0 {
			snap.Events = append(snap.Events, SpanEvent{
				Name:  "events_dropped",
				At:    s.end,
				Attrs: map[string]any{"dropped": s.dropped},
			})
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// status walks the span's subtree and reports whether any span recorded an
// error or a degradation, returning the first of each found (depth-first).
func (s *Span) status() (errMsg, degraded string) {
	if s == nil {
		return "", ""
	}
	s.mu.Lock()
	errMsg, degraded = s.errMsg, s.degraded
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		if errMsg != "" && degraded != "" {
			break
		}
		ce, cd := c.status()
		if errMsg == "" {
			errMsg = ce
		}
		if degraded == "" {
			degraded = cd
		}
	}
	return errMsg, degraded
}

// durationLocked is Duration with s.mu already held.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// spanRing retains the last maxRootSpans finished root spans in a fixed-size
// circular buffer: adding is O(1) and allocation-free in steady state (the
// slot array is allocated once and evicted pointers are overwritten in
// place, never re-sliced — a [1:] re-slice would pin the whole backing array
// and shift on every add).
type spanRing struct {
	mu   sync.Mutex
	buf  [maxRootSpans]*Span
	next int // slot the next add writes
	n    int // occupied slots, ≤ maxRootSpans
}

var spanStore = &spanRing{}

func (r *spanRing) add(s *Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % maxRootSpans
	if r.n < maxRootSpans {
		r.n++
	}
	r.mu.Unlock()
}

// list returns the retained spans, oldest first.
func (r *spanRing) list() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += maxRootSpans
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%maxRootSpans])
	}
	return out
}

// RecentSpans returns snapshots of the most recently finished root span
// trees, oldest first.
func RecentSpans() []SpanSnapshot {
	spans := spanStore.list()
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		out[i] = s.Snapshot()
	}
	return out
}

// ResetSpans drops all retained root spans. Intended for tests.
func ResetSpans() {
	spanStore.mu.Lock()
	spanStore.buf = [maxRootSpans]*Span{}
	spanStore.next = 0
	spanStore.n = 0
	spanStore.mu.Unlock()
}
