package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
)

// TraceID is a 128-bit request identity, shared by every span of one request
// tree. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits (the W3C wire form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identity, unique within a trace. The zero value
// means "no span".
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits (the W3C wire form).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace ID. The generator is
// math/rand/v2's process-wide source (ChaCha8-seeded, safe for concurrent
// use), which is cheap enough for per-request allocation on the serve path.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (56 - 8*i))
			t[8+i] = byte(lo >> (56 - 8*i))
		}
	}
	return t
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (56 - 8*i))
		}
	}
	return s
}

// ParseTraceparent parses a W3C trace-context `traceparent` header
// (version-format "00": `00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>`). It returns the trace ID, the caller's span ID, and whether the
// sampled flag (bit 0) is set. Unknown future versions are accepted as long
// as the four 00-version fields parse; version "ff" and all-zero IDs are
// rejected per spec.
func ParseTraceparent(h string) (TraceID, SpanID, bool, error) {
	var tid TraceID
	var sid SpanID
	if len(h) < 55 {
		return tid, sid, false, fmt.Errorf("obs: traceparent too short (%d bytes)", len(h))
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false, fmt.Errorf("obs: traceparent field separators misplaced")
	}
	version := h[0:2]
	if version == "ff" {
		return tid, sid, false, fmt.Errorf("obs: traceparent version ff is invalid")
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(version)); err != nil {
		return tid, sid, false, fmt.Errorf("obs: traceparent version %q not hex", version)
	}
	// Version 00 is exactly 55 bytes; future versions may append fields after
	// another dash.
	if version == "00" && len(h) != 55 {
		return tid, sid, false, fmt.Errorf("obs: traceparent length %d, want 55", len(h))
	}
	if len(h) > 55 && h[55] != '-' {
		return tid, sid, false, fmt.Errorf("obs: traceparent trailing bytes without separator")
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return tid, sid, false, fmt.Errorf("obs: bad trace-id: %v", err)
	}
	if tid.IsZero() {
		return tid, sid, false, fmt.Errorf("obs: trace-id is all zero")
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, sid, false, fmt.Errorf("obs: bad parent-id: %v", err)
	}
	if sid.IsZero() {
		return TraceID{}, sid, false, fmt.Errorf("obs: parent-id is all zero")
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("obs: bad trace-flags: %v", err)
	}
	return tid, sid, flags[0]&0x01 != 0, nil
}

// FormatTraceparent renders a version-00 W3C `traceparent` header value.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// remoteTraceKey carries an incoming (not-yet-span-backed) trace context.
type remoteTraceKey struct{}

type remoteTrace struct {
	tid     TraceID
	parent  SpanID
	sampled bool
}

// ContextWithRemoteTrace records an incoming trace context (e.g. parsed from
// a traceparent header) on ctx. The next StartSpan under ctx becomes a child
// of the remote span: it joins the trace instead of opening a new one, and an
// incoming sampled flag forces the tail sampler to keep the trace.
func ContextWithRemoteTrace(ctx context.Context, tid TraceID, parent SpanID, sampled bool) context.Context {
	if tid.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, remoteTraceKey{}, remoteTrace{tid: tid, parent: parent, sampled: sampled})
}
