package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// promLines renders r and returns the exposition split into lines.
func promLines(t *testing.T, r *Registry) (string, []string) {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	return out, strings.Split(strings.TrimRight(out, "\n"), "\n")
}

// TestPromHelpTypeOncePerFamily: every family gets exactly one HELP and one
// TYPE line, HELP immediately before TYPE, both before any of its samples.
func TestPromHelpTypeOncePerFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("server/requests").Add(1)
	r.Gauge("pool/size").Set(2)
	r.Histogram("server/request_seconds").Observe(0.1)

	out, lines := promLines(t, r)
	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	for i, line := range lines {
		f := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			helpSeen[f[2]]++
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+f[2]+" ") {
				t.Errorf("HELP for %s not immediately followed by its TYPE:\n%s", f[2], out)
			}
		case strings.HasPrefix(line, "# TYPE "):
			typeSeen[f[2]]++
		}
	}
	for _, fam := range []string{"server_requests_total", "pool_size", "server_request_seconds"} {
		if helpSeen[fam] != 1 || typeSeen[fam] != 1 {
			t.Errorf("family %s: HELP×%d TYPE×%d, want exactly 1 of each\n%s",
				fam, helpSeen[fam], typeSeen[fam], out)
		}
	}
}

// TestPromNoDoubleTotalSuffix: a counter already named *_total must not
// become *_total_total.
func TestPromNoDoubleTotalSuffix(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest/rows_total").Add(7)
	out, _ := promLines(t, r)
	if strings.Contains(out, "_total_total") {
		t.Fatalf("double _total suffix:\n%s", out)
	}
	if !strings.Contains(out, "ingest_rows_total 7") {
		t.Fatalf("missing ingest_rows_total sample:\n%s", out)
	}
}

// TestPromSanitizationCollision: two registry names that sanitize to the
// same family must not emit two TYPE lines — the first (sorted) name wins.
func TestPromSanitizationCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/b").Add(1)
	r.Counter("a_b").Add(2)
	// Cross-type collision too: a gauge whose sanitized name equals the
	// counter family.
	r.Gauge("a/b_total").Set(9)

	out, lines := promLines(t, r)
	typeCount := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE a_b_total ") {
			typeCount++
		}
	}
	if typeCount != 1 {
		t.Fatalf("family a_b_total has %d TYPE lines, want 1:\n%s", typeCount, out)
	}
	sample := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "a_b_total ") {
			sample++
		}
	}
	if sample != 1 {
		t.Fatalf("family a_b_total has %d samples, want 1 (collisions dropped):\n%s", sample, out)
	}
}

// TestPromEscaping: backslashes, quotes, and newlines in help text (from the
// metric name) and exemplar label values must be escaped per the format.
func TestPromEscaping(t *testing.T) {
	if got := promEscapeLabel(`a\b"c` + "\n" + "d\te`"); got != `a\\b\"c\nd`+"\te`" {
		t.Fatalf("promEscapeLabel = %q", got)
	}
	if got := promEscapeHelp("x\\y\nz\"q"); got != `x\\y\nz"q` {
		t.Fatalf("promEscapeHelp = %q", got)
	}
	// End-to-end: a metric name with no letters still renders valid lines.
	r := NewRegistry()
	r.Counter("weird name/with spaces").Add(1)
	out, lines := promLines(t, r)
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := strings.Fields(line)[0]
		if strings.ContainsAny(name, " \t\"\\") && !strings.Contains(name, "{") {
			t.Fatalf("unsanitized sample name %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "weird_name_with_spaces_total 1") {
		t.Fatalf("sanitized sample missing:\n%s", out)
	}
}

// TestPromBuildInfo: the exposition always carries the standard build-info
// gauge with its identifying labels.
func TestPromBuildInfo(t *testing.T) {
	out, _ := promLines(t, NewRegistry())
	if !strings.Contains(out, "# TYPE asqp_build_info gauge") {
		t.Fatalf("missing build_info TYPE:\n%s", out)
	}
	if !strings.Contains(out, "asqp_build_info{path=") || !strings.Contains(out, "goversion=") {
		t.Fatalf("missing build_info labels:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Fatalf("build_info value must be 1:\n%s", out)
	}
}

// TestRuntimeSamplerPublishes: one sample populates every runtime gauge, and
// forced GCs feed the pause histogram.
func TestRuntimeSamplerPublishes(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r, 0)
	s.SampleNow()

	snap := r.Snapshot()
	for _, g := range []string{
		MetricGoroutines, MetricHeapInuse, MetricHeapAlloc,
		MetricGCCount, MetricUptimeSeconds,
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Fatalf("gauge %q not published; have %v", g, snap.Gauges)
		}
	}
	if snap.Gauges[MetricGoroutines] < 1 {
		t.Fatalf("goroutines gauge = %v, want >= 1", snap.Gauges[MetricGoroutines])
	}

	// Force GC cycles; the next sample must observe their pauses.
	runtimeGCTimes(3)
	s.SampleNow()
	if c := r.Histogram(MetricGCPauseSeconds).Count(); c < 3 {
		t.Fatalf("gc pause observations = %d, want >= 3", c)
	}
	// And the runtime metrics render in the exposition.
	out, _ := promLines(t, r)
	if !strings.Contains(out, "runtime_goroutines ") ||
		!strings.Contains(out, "# TYPE runtime_gc_pause_seconds histogram") {
		t.Fatalf("runtime metrics missing from exposition:\n%s", out)
	}
}

// TestRuntimeSamplerLifecycle: Start/Close are clean and idempotent; nil is
// a no-op.
func TestRuntimeSamplerLifecycle(t *testing.T) {
	r := NewRegistry()
	s := NewRuntimeSampler(r, time.Hour)
	s.Start()
	s.Start() // idempotent
	s.Close()
	s.Close() // idempotent
	if _, ok := r.Snapshot().Gauges[MetricGoroutines]; !ok {
		t.Fatal("Start must take an immediate sample")
	}
	var nilS *RuntimeSampler
	nilS.SampleNow()
	nilS.Start()
	nilS.Close()
}

// runtimeGCTimes forces n GC cycles.
func runtimeGCTimes(n int) {
	for i := 0; i < n; i++ {
		runtime.GC()
	}
}
