package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// TimeSeries turns the cumulative metrics in a Registry into windowed ones.
// A background ticker (or an explicit SampleNow under a test clock) records
// one sample per interval — counter cumulatives, gauge values, and raw
// histogram bucket cumulatives — into two fixed-size rings: a fine ring at
// the sampling interval and a coarse ring that keeps every coarseEvery-th
// sample. Windowed queries (Rate, CounterWindow, HistogramWindow) subtract
// the retained sample nearest the window start from the live registry state:
// counter deltas give rates, histogram bucket-count differences give
// windowed quantiles and threshold fractions without per-observation cost.
//
// The hot instrumentation path is untouched: writers keep hitting the plain
// atomic Counter/Gauge/Histogram; all windowing cost lives in the sampler
// and in queries. A nil *TimeSeries is a valid no-op (queries report no
// data), matching the nil-receiver contract used by spans and the auditor.
type TimeSeries struct {
	reg  *Registry
	opts TimeSeriesOptions

	mu        sync.Mutex
	fine      []tsSample // ring, len == FineSlots once warm
	fineIdx   int        // next write position
	fineN     int        // filled slots
	coarse    []tsSample
	coarseIdx int
	coarseN   int
	ticks     int // samples taken, drives coarse admission

	onSample []func()

	stop    chan struct{}
	done    chan struct{}
	started bool
}

// TimeSeriesOptions configures sampling cadence and retention.
type TimeSeriesOptions struct {
	// Interval is the fine sampling cadence (default 5s).
	Interval time.Duration
	// FineSlots is the fine ring length (default 128 → ~10m40s at 5s).
	FineSlots int
	// CoarseEvery keeps one of every N fine samples in the coarse ring
	// (default 36 → one per 3m at 5s).
	CoarseEvery int
	// CoarseSlots is the coarse ring length (default 128 → ~6.4h at 3m).
	CoarseSlots int
	// Now is the clock; defaults to time.Now. Injectable for deterministic
	// window-math tests.
	Now func() time.Time
}

func (o *TimeSeriesOptions) normalize() {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.FineSlots <= 0 {
		o.FineSlots = 128
	}
	if o.CoarseEvery <= 0 {
		o.CoarseEvery = 36
	}
	if o.CoarseSlots <= 0 {
		o.CoarseSlots = 128
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// histCum is one histogram's cumulative state at a sample instant.
type histCum struct {
	counts [numBuckets + 1]int64
	count  int64
	sum    float64
}

// tsSample is one point-in-time capture of the registry.
type tsSample struct {
	at       time.Time
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]histCum
}

// NewTimeSeries builds a sampler over reg. Call Start for the background
// ticker, or drive SampleNow manually (tests, fake clocks).
func NewTimeSeries(reg *Registry, opts TimeSeriesOptions) *TimeSeries {
	opts.normalize()
	return &TimeSeries{
		reg:    reg,
		opts:   opts,
		fine:   make([]tsSample, opts.FineSlots),
		coarse: make([]tsSample, opts.CoarseSlots),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Interval returns the fine sampling cadence.
func (ts *TimeSeries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.opts.Interval
}

// OnSample registers fn to run after every sample (ticker or SampleNow),
// outside the ring lock. Register before Start; used by the SLO engine to
// re-evaluate on fresh data.
func (ts *TimeSeries) OnSample(fn func()) {
	if ts == nil || fn == nil {
		return
	}
	ts.mu.Lock()
	ts.onSample = append(ts.onSample, fn)
	ts.mu.Unlock()
}

// Start launches the background ticker. Safe to call once; Close stops it.
func (ts *TimeSeries) Start() {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	if ts.started {
		ts.mu.Unlock()
		return
	}
	ts.started = true
	ts.mu.Unlock()
	go func() {
		defer close(ts.done)
		tick := time.NewTicker(ts.opts.Interval)
		defer tick.Stop()
		ts.SampleNow()
		for {
			select {
			case <-tick.C:
				ts.SampleNow()
			case <-ts.stop:
				return
			}
		}
	}()
}

// Close stops the background ticker, if started.
func (ts *TimeSeries) Close() {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	started := ts.started
	ts.started = false
	ts.mu.Unlock()
	if started {
		close(ts.stop)
		<-ts.done
	}
}

// SampleNow captures one sample at the configured clock's current time and
// then runs the OnSample callbacks.
func (ts *TimeSeries) SampleNow() {
	if ts == nil {
		return
	}
	s := ts.capture(ts.opts.Now())
	ts.mu.Lock()
	ts.fine[ts.fineIdx] = s
	ts.fineIdx = (ts.fineIdx + 1) % len(ts.fine)
	if ts.fineN < len(ts.fine) {
		ts.fineN++
	}
	if ts.ticks%ts.opts.CoarseEvery == 0 {
		ts.coarse[ts.coarseIdx] = s
		ts.coarseIdx = (ts.coarseIdx + 1) % len(ts.coarse)
		if ts.coarseN < len(ts.coarse) {
			ts.coarseN++
		}
	}
	ts.ticks++
	cbs := ts.onSample
	ts.mu.Unlock()
	for _, fn := range cbs {
		fn()
	}
}

// capture reads the registry's cumulative state.
func (ts *TimeSeries) capture(at time.Time) tsSample {
	r := ts.reg
	r.mu.RLock()
	s := tsSample{
		at:       at,
		counters: make(map[string]int64, len(r.counters)),
		gauges:   make(map[string]float64, len(r.gauges)),
		hists:    make(map[string]histCum, len(r.hists)),
	}
	for name, c := range r.counters {
		s.counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.hists[name] = h.cum()
	}
	r.mu.RUnlock()
	return s
}

// cum reads a histogram's cumulative bucket counts, total, and sum.
func (h *Histogram) cum() histCum {
	var c histCum
	for i := 0; i <= numBuckets; i++ {
		c.counts[i] = h.counts[i].Load()
	}
	c.count = h.count.Load()
	c.sum = h.Sum()
	return c
}

// baseline returns the retained sample closest to (and at or before) target,
// falling back to the oldest retained sample when the window predates
// retention or server start. ok is false when no samples exist yet.
func (ts *TimeSeries) baseline(target time.Time) (tsSample, bool) {
	var best tsSample
	var bestOK bool
	var oldest tsSample
	var oldestOK bool
	consider := func(s tsSample) {
		if s.at.IsZero() {
			return
		}
		if !oldestOK || s.at.Before(oldest.at) {
			oldest, oldestOK = s, true
		}
		if s.at.After(target) {
			return
		}
		if !bestOK || s.at.After(best.at) {
			best, bestOK = s, true
		}
	}
	for i := 0; i < ts.coarseN; i++ {
		consider(ts.coarse[i])
	}
	for i := 0; i < ts.fineN; i++ {
		consider(ts.fine[i])
	}
	if bestOK {
		return best, true
	}
	return oldest, oldestOK
}

// CounterWindow returns the increase of counter name over the trailing
// window, together with the actual elapsed span covered (shorter than the
// window right after start). ok is false before the first sample.
func (ts *TimeSeries) CounterWindow(name string, window time.Duration) (delta int64, elapsed time.Duration, ok bool) {
	if ts == nil {
		return 0, 0, false
	}
	now := ts.opts.Now()
	ts.mu.Lock()
	base, bok := ts.baseline(now.Add(-window))
	ts.mu.Unlock()
	if !bok {
		return 0, 0, false
	}
	cur := ts.reg.Counter(name).Value()
	delta = cur - base.counters[name]
	if delta < 0 { // registry reset between samples
		delta = 0
	}
	elapsed = now.Sub(base.at)
	if elapsed < 0 {
		elapsed = 0
	}
	return delta, elapsed, true
}

// Rate returns the per-second rate of counter name over the trailing window.
func (ts *TimeSeries) Rate(name string, window time.Duration) (perSec float64, ok bool) {
	delta, elapsed, ok := ts.CounterWindow(name, window)
	if !ok || elapsed <= 0 {
		return 0, false
	}
	return float64(delta) / elapsed.Seconds(), true
}

// HistWindow is a histogram restricted to a trailing time window, built by
// subtracting the baseline sample's bucket cumulatives from the live ones.
type HistWindow struct {
	Count  int64
	Sum    float64
	counts [numBuckets + 1]int64
}

// Quantile estimates the q-th quantile of the windowed observations using
// the same bucket interpolation as Histogram.Quantile (without extrema
// clamping — windowed extrema are not tracked).
func (hw HistWindow) Quantile(q float64) float64 {
	if hw.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(hw.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		c := hw.counts[i]
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketRange(i)
		frac := float64(rank-cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	_, hi := bucketRange(numBuckets)
	return hi
}

// FractionBelow estimates the fraction of windowed observations ≤ v,
// interpolating linearly inside the bucket containing v. Returns 1 for an
// empty window (no observations means no violations).
func (hw HistWindow) FractionBelow(v float64) float64 {
	if hw.Count == 0 {
		return 1
	}
	var below float64
	for i := 0; i <= numBuckets; i++ {
		c := hw.counts[i]
		if c == 0 {
			continue
		}
		lo, hi := bucketRange(i)
		switch {
		case hi <= v:
			below += float64(c)
		case lo >= v:
			// bucket entirely above v
		default:
			below += float64(c) * (v - lo) / (hi - lo)
		}
	}
	f := below / float64(hw.Count)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// HistogramWindow returns histogram name restricted to the trailing window,
// plus the actual elapsed span covered. ok is false before the first sample.
func (ts *TimeSeries) HistogramWindow(name string, window time.Duration) (hw HistWindow, elapsed time.Duration, ok bool) {
	if ts == nil {
		return HistWindow{}, 0, false
	}
	now := ts.opts.Now()
	ts.mu.Lock()
	base, bok := ts.baseline(now.Add(-window))
	ts.mu.Unlock()
	if !bok {
		return HistWindow{}, 0, false
	}
	cur := ts.reg.Histogram(name).cum()
	bc := base.hists[name] // zero value when the histogram postdates the baseline
	for i := 0; i <= numBuckets; i++ {
		d := cur.counts[i] - bc.counts[i]
		if d < 0 {
			d = 0
		}
		hw.counts[i] = d
		hw.Count += d
	}
	hw.Sum = cur.sum - bc.sum
	if hw.Sum < 0 {
		hw.Sum = 0
	}
	elapsed = now.Sub(base.at)
	if elapsed < 0 {
		elapsed = 0
	}
	return hw, elapsed, true
}

// SeriesPoint is one per-interval value in a dumped series.
type SeriesPoint struct {
	At time.Time `json:"at"`
	V  float64   `json:"v"`
}

// HistPoint is one per-interval histogram summary in a dumped series.
type HistPoint struct {
	At    time.Time `json:"at"`
	Count int64     `json:"count"`
	P50   float64   `json:"p50"`
	P99   float64   `json:"p99"`
}

// SeriesDump is a chartable export of the fine ring: counters as
// per-interval deltas, gauges as sampled values, histograms as per-interval
// count and p50/p99. Used by flight-recorder bundles.
type SeriesDump struct {
	Interval   string                   `json:"interval"`
	Counters   map[string][]SeriesPoint `json:"counters,omitempty"`
	Gauges     map[string][]SeriesPoint `json:"gauges,omitempty"`
	Histograms map[string][]HistPoint   `json:"histograms,omitempty"`
}

// DumpSeries renders the fine ring oldest-first.
func (ts *TimeSeries) DumpSeries() SeriesDump {
	dump := SeriesDump{
		Counters:   map[string][]SeriesPoint{},
		Gauges:     map[string][]SeriesPoint{},
		Histograms: map[string][]HistPoint{},
	}
	if ts == nil {
		return dump
	}
	dump.Interval = ts.opts.Interval.String()
	ts.mu.Lock()
	samples := make([]tsSample, 0, ts.fineN)
	for i := 0; i < ts.fineN; i++ {
		samples = append(samples, ts.fine[(ts.fineIdx-ts.fineN+i+len(ts.fine))%len(ts.fine)])
	}
	ts.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i].at.Before(samples[j].at) })
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		for name, v := range cur.counters {
			d := v - prev.counters[name]
			if d < 0 {
				d = 0
			}
			dump.Counters[name] = append(dump.Counters[name], SeriesPoint{At: cur.at, V: float64(d)})
		}
		for name, v := range cur.gauges {
			dump.Gauges[name] = append(dump.Gauges[name], SeriesPoint{At: cur.at, V: v})
		}
		for name, hc := range cur.hists {
			var hw HistWindow
			pc := prev.hists[name]
			for b := 0; b <= numBuckets; b++ {
				d := hc.counts[b] - pc.counts[b]
				if d < 0 {
					d = 0
				}
				hw.counts[b] = d
				hw.Count += d
			}
			dump.Histograms[name] = append(dump.Histograms[name], HistPoint{
				At:    cur.at,
				Count: hw.Count,
				P50:   hw.Quantile(0.50),
				P99:   hw.Quantile(0.99),
			})
		}
	}
	return dump
}
