package obs

import (
	"context"
	"testing"
	"time"
)

// TestTypedNilExporterDoesNotPanic pins the regression where a nil
// *JSONLExporter assigned to TracingConfig.Exporter (a typed-nil interface,
// which passes the sampler's != nil check) panicked the first kept trace.
// The nil receiver must degrade to "no export" instead.
func TestTypedNilExporterDoesNotPanic(t *testing.T) {
	var e *JSONLExporter
	ConfigureTracing(TracingConfig{
		SampleRate:    1, // keep every trace so the export path runs
		SlowThreshold: time.Hour,
		Exporter:      e,
	})
	defer DisableTracing()

	_, span := StartSpan(context.Background(), "nil-exporter-probe")
	span.MarkError("kept for sure") // error traces are always sampled
	span.End()                      // must not panic
}
