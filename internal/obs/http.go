package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the debug HTTP handler:
//
//	/            index linking the endpoints
//	/metrics     JSON snapshot of the default registry
//	/spans       last-N finished root span trees (?n= caps the count)
//	/debug/pprof the standard net/http/pprof handlers
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>asqp debug</h1><ul>`+
			`<li><a href="/metrics">/metrics</a> — metrics registry snapshot (JSON)</li>`+
			`<li><a href="/spans">/spans</a> — recent span trees (JSON)</li>`+
			`<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>`+
			`</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Default().Snapshot())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := RecentSpans()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr in a background goroutine, enabling
// observability as a side effect. It returns the bound address (useful with
// ":0") or an error if the listener cannot be opened.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	SetEnabled(true)
	srv := &http.Server{Handler: Handler()}
	go func() {
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// writeJSON marshals v with indentation for human-friendly curling.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
