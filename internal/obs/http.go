package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the debug HTTP handler:
//
//	/            index linking the endpoints
//	/metrics     JSON snapshot of the default registry (?format=prom for
//	             Prometheus text exposition with exemplars)
//	/spans       last-N finished root span trees (?n= caps the count)
//	/tracez      tail-sampled traces: slow/error/degraded views, slow-query
//	             log, full trees by ?trace=<id>
//	/debug/pprof the standard net/http/pprof handlers
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>asqp debug</h1><ul>`+
			`<li><a href="/metrics">/metrics</a> — metrics registry snapshot (JSON; <a href="/metrics?format=prom">?format=prom</a>)</li>`+
			`<li><a href="/spans">/spans</a> — recent span trees (JSON)</li>`+
			`<li><a href="/tracez">/tracez</a> — tail-sampled traces and slow-query log</li>`+
			`<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>`+
			`</ul></body></html>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := WritePrometheus(w, Default()); err != nil {
				Logger().Error("prometheus exposition failed", "err", err)
			}
			return
		}
		writeJSON(w, Default().Snapshot())
	})
	mux.HandleFunc("/tracez", handleTracez)
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := RecentSpans()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP server with an owned lifecycle: the
// bound address is known, serve errors are surfaced instead of dropped, and
// Shutdown/Close release the listener and its goroutine so tests and draining
// binaries do not leak.
type DebugServer struct {
	addr string
	srv  *http.Server
	done chan struct{}
	err  error
}

// StartDebug binds addr, enables observability, and serves the debug handler
// in a background goroutine. It returns an error if the listener cannot be
// opened (a bad -debug-addr fails fast instead of silently serving nothing).
func StartDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	SetEnabled(true)
	d := &DebugServer{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler()},
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			d.err = err
			Logger().Error("debug server failed", "addr", d.addr, "err", err)
		}
	}()
	return d, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Shutdown gracefully stops the server, waiting for in-flight requests up to
// ctx's deadline, and returns any serve error observed over its lifetime.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil {
		return nil
	}
	err := d.srv.Shutdown(ctx)
	select {
	case <-d.done:
	case <-ctx.Done():
	}
	if err == nil {
		err = d.err
	}
	return err
}

// Close stops the server immediately, dropping in-flight requests.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	<-d.done
	if err == nil {
		err = d.err
	}
	return err
}

// Serve starts the debug server on addr in a background goroutine, enabling
// observability as a side effect. It returns the bound address (useful with
// ":0") or an error if the listener cannot be opened. The server runs for the
// life of the process; callers that need clean shutdown use StartDebug.
func Serve(addr string) (string, error) {
	d, err := StartDebug(addr)
	if err != nil {
		return "", err
	}
	return d.Addr(), nil
}

// writeJSON marshals v with indentation for human-friendly curling.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
