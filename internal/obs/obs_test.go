package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// withObs enables observability for one test and restores the previous
// global state afterwards.
func withObs(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	ResetSpans()
	t.Cleanup(func() {
		SetEnabled(prev)
		ResetSpans()
	})
}

func TestHistogramQuantileConcurrent(t *testing.T) {
	h := NewHistogram()
	const (
		workers = 8
		perW    = 2000
	)
	// Uniform values in (0, 2] seconds, interleaved across workers.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := float64(w*perW+i+1) / float64(workers*perW) * 2
				h.Observe(v)
			}
		}(w)
	}
	wg.Wait()

	if got, want := h.Count(), int64(workers*perW); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	// Sum of a uniform grid over (0, 2]: n * (max + step) / 2.
	wantSum := float64(workers*perW) * (2 + 2.0/float64(workers*perW)) / 2
	if got := h.Sum(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Fatalf("Sum = %f, want ~%f", got, wantSum)
	}
	// Exponential buckets bound the quantile error by one bucket width (2x).
	checks := []struct{ q, want float64 }{{0.5, 1.0}, {0.9, 1.8}, {0.99, 1.98}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("Quantile(%v) = %f, want within 2x of %f", c.q, got, c.want)
		}
	}
	if got := h.Min(); got <= 0 || got > 0.01 {
		t.Errorf("Min = %f, want small positive", got)
	}
	if got := h.Max(); got != 2 {
		t.Errorf("Max = %f, want 2", got)
	}
}

func TestHistogramEmptyAndSnapshot(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.ObserveDuration(5 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Mean <= 0 || s.P50 <= 0 {
		t.Fatalf("snapshot after one observation: %+v", s)
	}
}

func TestSpanTreeNestingAndOrdering(t *testing.T) {
	withObs(t)
	ctx, root := StartSpan(context.Background(), "preprocess")
	root.Annotate("k", 100)
	_, relax := StartSpan(ctx, "preprocess/relax")
	relax.End()
	execCtx, exec := StartSpan(ctx, "preprocess/execute")
	_, q0 := StartSpan(execCtx, "query-0")
	q0.End()
	exec.End()
	root.End()

	trees := RecentSpans()
	if len(trees) != 1 {
		t.Fatalf("got %d root spans, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Name != "preprocess" {
		t.Fatalf("root name = %q", tree.Name)
	}
	if tree.Attrs["k"] != 100 {
		t.Fatalf("root attrs = %v", tree.Attrs)
	}
	if len(tree.Children) != 2 ||
		tree.Children[0].Name != "preprocess/relax" ||
		tree.Children[1].Name != "preprocess/execute" {
		t.Fatalf("children wrong: %+v", tree.Children)
	}
	if len(tree.Children[1].Children) != 1 || tree.Children[1].Children[0].Name != "query-0" {
		t.Fatalf("grandchildren wrong: %+v", tree.Children[1].Children)
	}
	if tree.DurationMS < tree.Children[1].DurationMS {
		t.Fatalf("parent duration %f < child duration %f", tree.DurationMS, tree.Children[1].DurationMS)
	}
}

func TestSpanDisabledIsNoop(t *testing.T) {
	prev := Enabled()
	SetEnabled(false)
	defer SetEnabled(prev)
	ResetSpans()
	ctx, s := StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("disabled StartSpan must return a nil span")
	}
	s.End()            // must not panic
	s.Annotate("a", 1) // must not panic
	if s.Duration() != 0 {
		t.Fatal("nil span duration must be 0")
	}
	if _, child := StartSpan(ctx, "y"); child != nil {
		t.Fatal("child of disabled span must be nil")
	}
	if len(RecentSpans()) != 0 {
		t.Fatal("no spans should be recorded while disabled")
	}
}

func TestRegistryConcurrentAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.001)
				r.Series("s").Append(float64(i))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 4000 {
		t.Fatalf("counter = %d, want 4000", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 4000 {
		t.Fatalf("gauge = %f, want 4000", snap.Gauges["g"])
	}
	if snap.Histograms["h"].Count != 4000 {
		t.Fatalf("histogram count = %d, want 4000", snap.Histograms["h"].Count)
	}
	if len(snap.Series["s"]) != 4000 {
		t.Fatalf("series len = %d, want 4000", len(snap.Series["s"]))
	}
	if names := r.MetricNames(); len(names) != 4 {
		t.Fatalf("metric names = %v", names)
	}
}

func TestSeriesCap(t *testing.T) {
	s := &Series{}
	for i := 0; i < seriesCap+10; i++ {
		s.Append(float64(i))
	}
	vals := s.Values()
	if len(vals) != seriesCap {
		t.Fatalf("len = %d, want %d", len(vals), seriesCap)
	}
	if vals[0] != 10 || vals[len(vals)-1] != float64(seriesCap+9) {
		t.Fatalf("eviction wrong: first=%f last=%f", vals[0], vals[len(vals)-1])
	}
}

func TestLoggerDefaultIsNoop(t *testing.T) {
	SetLogger(nil)
	l := Logger()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("default logger must be disabled at every level")
	}
	l.Info("should go nowhere", "k", "v")

	var buf bytes.Buffer
	EnableLogging(&buf, slog.LevelInfo)
	defer SetLogger(nil)
	Logger().Info("hello", "dataset", "imdb", "k", 100)
	if got := buf.String(); got == "" || !bytes.Contains(buf.Bytes(), []byte("dataset=imdb")) {
		t.Fatalf("structured log missing fields: %q", got)
	}
	Logger().Debug("filtered")
	if bytes.Contains(buf.Bytes(), []byte("filtered")) {
		t.Fatal("debug line should be filtered at info level")
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	withObs(t)
	Default().Counter("test/hits").Inc()
	_, sp := StartSpan(context.Background(), "test/root")
	sp.End()

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	var snap Snapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	if snap.Counters["test/hits"] < 1 {
		t.Fatalf("metrics snapshot missing counter: %+v", snap.Counters)
	}

	var spans []SpanSnapshot
	getJSON(t, srv.URL+"/spans", &spans)
	found := false
	for _, s := range spans {
		if s.Name == "test/root" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spans endpoint missing root span: %+v", spans)
	}

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %v status=%v", err, resp)
	}
	resp.Body.Close()
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
