// Package obs is the observability layer of the ASQP-RL system: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket latency
// histograms, and bounded series), lightweight hierarchical spans, and a
// log/slog-based structured logger.
//
// The package is stdlib-only and designed so instrumented hot paths cost
// near zero when observability is off: every recording entry point first
// checks Enabled(), a single atomic load, and spans/loggers degrade to
// nil-receiver no-ops. Callers therefore instrument unconditionally and let
// the package decide whether anything is recorded.
//
// A process-wide default registry and span collector back the package-level
// helpers; the debug HTTP server (see Handler/Serve) exposes them as JSON at
// /metrics and /spans alongside net/http/pprof.
package obs

import "sync/atomic"

var enabled atomic.Bool

// SetEnabled turns metric and span recording on or off process-wide.
// Structured logging is controlled separately via EnableLogging.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric and span recording is on. Instrumented hot
// paths use this as their only gate, so the disabled cost is one atomic load.
func Enabled() bool { return enabled.Load() }
