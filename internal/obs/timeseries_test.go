package obs

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}

func newTestTS(reg *Registry, clk *fakeClock, interval time.Duration) *TimeSeries {
	return NewTimeSeries(reg, TimeSeriesOptions{
		Interval:    interval,
		FineSlots:   16,
		CoarseEvery: 4,
		CoarseSlots: 16,
		Now:         clk.now,
	})
}

func TestTimeSeriesCounterWindow(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second)
	c := reg.Counter("x")

	// Before any sample: no data.
	if _, _, ok := ts.CounterWindow("x", time.Minute); ok {
		t.Fatal("expected no data before first sample")
	}

	// 10 increments per second for 10 seconds, one sample per second.
	for i := 0; i < 10; i++ {
		ts.SampleNow()
		c.Add(10)
		clk.advance(time.Second)
	}
	ts.SampleNow()

	// 5s window: baseline sample at t-5s holds 50, live value 100 → delta 50.
	delta, elapsed, ok := ts.CounterWindow("x", 5*time.Second)
	if !ok {
		t.Fatal("expected data")
	}
	if delta != 50 {
		t.Fatalf("delta = %d, want 50", delta)
	}
	if elapsed != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", elapsed)
	}
	rate, ok := ts.Rate("x", 5*time.Second)
	if !ok || rate != 10 {
		t.Fatalf("rate = %v ok=%v, want 10", rate, ok)
	}

	// A window longer than history falls back to the oldest sample.
	delta, elapsed, ok = ts.CounterWindow("x", time.Hour)
	if !ok || delta != 100 || elapsed != 10*time.Second {
		t.Fatalf("long window: delta=%d elapsed=%v ok=%v, want 100/10s/true", delta, elapsed, ok)
	}
}

func TestTimeSeriesCoarseRingExtendsRetention(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second) // fine keeps 16s, coarse 1-in-4 keeps 64s
	c := reg.Counter("x")

	for i := 0; i < 40; i++ {
		ts.SampleNow()
		c.Inc()
		clk.advance(time.Second)
	}
	ts.SampleNow()

	// 30s window is beyond the fine ring (16 slots) but inside coarse
	// retention; the coarse baseline lands on a 4s-aligned sample.
	delta, elapsed, ok := ts.CounterWindow("x", 30*time.Second)
	if !ok {
		t.Fatal("expected data from coarse ring")
	}
	if elapsed < 30*time.Second || elapsed > 34*time.Second {
		t.Fatalf("elapsed = %v, want within [30s,34s]", elapsed)
	}
	if delta != int64(elapsed/time.Second) {
		t.Fatalf("delta = %d, want %d (1/s over elapsed)", delta, int64(elapsed/time.Second))
	}
}

func TestTimeSeriesHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second)
	h := reg.Histogram("lat")

	// First 5 seconds: fast observations (1ms). Then 5 seconds: slow (1s).
	for i := 0; i < 5; i++ {
		ts.SampleNow()
		for j := 0; j < 100; j++ {
			h.Observe(0.001)
		}
		clk.advance(time.Second)
	}
	for i := 0; i < 5; i++ {
		ts.SampleNow()
		for j := 0; j < 100; j++ {
			h.Observe(1.0)
		}
		clk.advance(time.Second)
	}
	ts.SampleNow()

	// Whole history: half fast, half slow.
	hw, _, ok := ts.HistogramWindow("lat", time.Hour)
	if !ok || hw.Count != 1000 {
		t.Fatalf("count = %d ok=%v, want 1000", hw.Count, ok)
	}
	if f := hw.FractionBelow(0.01); f < 0.49 || f > 0.51 {
		t.Fatalf("FractionBelow(10ms) over full history = %v, want ~0.5", f)
	}

	// Trailing 5s window sees only the slow phase.
	hw, _, ok = ts.HistogramWindow("lat", 5*time.Second)
	if !ok || hw.Count != 500 {
		t.Fatalf("count = %d ok=%v, want 500", hw.Count, ok)
	}
	if f := hw.FractionBelow(0.01); f != 0 {
		t.Fatalf("FractionBelow(10ms) over slow window = %v, want 0", f)
	}
	if q := hw.Quantile(0.99); q < 0.5 || q > 2.0 {
		t.Fatalf("windowed p99 = %v, want ~1s (bucket-resolution)", q)
	}

	// Empty window (no new observations): count 0, FractionBelow reports 1.
	clk.advance(time.Second)
	ts.SampleNow()
	clk.advance(time.Second)
	ts.SampleNow()
	hw, _, ok = ts.HistogramWindow("lat", time.Second)
	if !ok || hw.Count != 0 {
		t.Fatalf("empty window count = %d ok=%v, want 0/true", hw.Count, ok)
	}
	if f := hw.FractionBelow(0.01); f != 1 {
		t.Fatalf("empty-window FractionBelow = %v, want 1", f)
	}
}

func TestTimeSeriesHistogramCreatedAfterBaseline(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second)
	ts.SampleNow()
	clk.advance(time.Second)
	// Histogram first observed after the baseline sample: the baseline
	// contributes zero cumulatives, so the whole live state is the window.
	reg.Histogram("late").Observe(0.5)
	hw, _, ok := ts.HistogramWindow("late", time.Minute)
	if !ok || hw.Count != 1 {
		t.Fatalf("count = %d ok=%v, want 1/true", hw.Count, ok)
	}
}

func TestTimeSeriesNilIsNoOp(t *testing.T) {
	var ts *TimeSeries
	ts.Start()
	ts.Close()
	ts.SampleNow()
	ts.OnSample(func() {})
	if _, _, ok := ts.CounterWindow("x", time.Minute); ok {
		t.Fatal("nil CounterWindow must report no data")
	}
	if _, ok := ts.Rate("x", time.Minute); ok {
		t.Fatal("nil Rate must report no data")
	}
	if _, _, ok := ts.HistogramWindow("x", time.Minute); ok {
		t.Fatal("nil HistogramWindow must report no data")
	}
	dump := ts.DumpSeries()
	if len(dump.Counters) != 0 {
		t.Fatal("nil DumpSeries must be empty")
	}
}

func TestTimeSeriesOnSampleRunsOutsideLock(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second)
	var calls int
	ts.OnSample(func() {
		calls++
		// Re-entrant query must not deadlock.
		ts.CounterWindow("x", time.Minute)
	})
	ts.SampleNow()
	clk.advance(time.Second)
	ts.SampleNow()
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2", calls)
	}
}

func TestTimeSeriesDumpSeries(t *testing.T) {
	reg := NewRegistry()
	clk := newFakeClock()
	ts := newTestTS(reg, clk, time.Second)
	c := reg.Counter("req")
	g := reg.Gauge("load")
	h := reg.Histogram("lat")
	for i := 0; i < 5; i++ {
		ts.SampleNow()
		c.Add(int64(i + 1))
		g.Set(float64(i))
		h.Observe(0.01)
		clk.advance(time.Second)
	}
	ts.SampleNow()
	dump := ts.DumpSeries()
	if dump.Interval != "1s" {
		t.Fatalf("interval = %q, want 1s", dump.Interval)
	}
	pts := dump.Counters["req"]
	if len(pts) != 5 {
		t.Fatalf("counter points = %d, want 5", len(pts))
	}
	// Per-interval deltas are 1,2,3,4,5.
	for i, p := range pts {
		if p.V != float64(i+1) {
			t.Fatalf("point %d = %v, want %d", i, p.V, i+1)
		}
	}
	if hp := dump.Histograms["lat"]; len(hp) != 5 || hp[0].Count != 1 {
		t.Fatalf("hist points = %+v, want 5 points of count 1", hp)
	}
	if gp := dump.Gauges["load"]; len(gp) != 5 || gp[4].V != 4 {
		t.Fatalf("gauge points = %+v", gp)
	}
}

func TestTimeSeriesTickerLifecycle(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, TimeSeriesOptions{Interval: time.Millisecond})
	reg.Counter("x").Add(5)
	ts.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, ok := ts.CounterWindow("x", time.Minute); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	ts.Close()
	ts.Close() // idempotent
}
