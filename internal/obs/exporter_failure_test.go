package obs

import (
	"bytes"
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestExporterTransientWriteFailureSelfHeals wedges the exporter's active
// file handle and checks ExportTrace recovers by rotating to a fresh
// sequence file and landing the line there — no error, no lost trace.
func TestExporterTransientWriteFailureSelfHeals(t *testing.T) {
	dir := t.TempDir()
	e, err := NewJSONLExporter(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.mu.Lock()
	e.f.Close() // every write on this handle now fails
	e.mu.Unlock()

	if err := e.ExportTrace(TraceRecord{TraceID: "self-heal", Verdict: "sampled"}); err != nil {
		t.Fatalf("ExportTrace did not self-heal from a wedged handle: %v", err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	var total []byte
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		total = append(total, b...)
	}
	if !bytes.Contains(total, []byte("self-heal")) {
		t.Fatalf("trace line missing after self-heal; files %v hold %q", files, total)
	}
}

// syncBuffer is a concurrency-safe bytes.Buffer for capturing slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestExporterPersistentFailureCountedAndRateLimited makes every export fail
// (wedged handle plus a vanished rotation target) and checks the regression
// contract: each failed export is one counted drop, the request path sees no
// error, and the log gets ONE rate-limited warning instead of one per trace.
func TestExporterPersistentFailureCountedAndRateLimited(t *testing.T) {
	dir := t.TempDir()
	e, err := NewJSONLExporter(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.mu.Lock()
	e.f.Close()
	e.dir = filepath.Join(dir, "vanished") // rotation cannot open a new file
	e.mu.Unlock()

	var captured syncBuffer
	SetLogger(slog.New(slog.NewTextHandler(&captured, nil)))
	defer SetLogger(nil)
	exportWarn.last.Store(0) // ensure the first failure is eligible to warn

	ConfigureTracing(TracingConfig{SampleRate: 1, Exporter: e})
	defer DisableTracing()

	before := Default().Counter("obs/trace/export_errors").Value()
	const spans = 5
	for i := 0; i < spans; i++ {
		_, s := StartSpan(context.Background(), "req")
		s.End()
	}

	if got := Default().Counter("obs/trace/export_errors").Value() - before; got != spans {
		t.Errorf("obs/trace/export_errors advanced by %d, want %d (counter stays exact)", got, spans)
	}
	if warns := strings.Count(captured.String(), "trace export failed"); warns != 1 {
		t.Errorf("%d export warnings logged for %d failures, want exactly 1 (rate-limited): %s",
			warns, spans, captured.String())
	}
}
