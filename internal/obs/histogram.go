package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// numBuckets is the number of finite histogram buckets. Bounds grow
// exponentially (factor 2) from histMinBound, spanning one microsecond to
// roughly six days when values are interpreted as seconds.
const numBuckets = 40

// histMinBound is the upper bound of the first bucket, in the histogram's
// value unit (seconds for latency histograms).
const histMinBound = 1e-6

// bucketBounds holds the inclusive upper bound of each finite bucket.
var bucketBounds = func() [numBuckets]float64 {
	var b [numBuckets]float64
	bound := histMinBound
	for i := range b {
		b[i] = bound
		bound *= 2
	}
	return b
}()

// Histogram is a fixed-bucket histogram with exponentially growing bucket
// bounds, safe for concurrent writers and readers. It is tuned for latencies
// in seconds (1µs granularity at the low end) but accepts any non-negative
// values. Quantile estimates interpolate linearly within a bucket, so their
// worst-case relative error is the bucket width (a factor of two).
//
// Use NewHistogram; the zero value is not valid (extrema tracking needs
// seeded sentinels).
type Histogram struct {
	counts  [numBuckets + 1]atomic.Int64 // last slot catches overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // seeded with +Inf
	maxBits atomic.Uint64 // seeded with -Inf
	// exemplars retains, per bucket, the most recent traced observation, so
	// a tail-latency bucket links to a concrete trace (/tracez, JSONL
	// export). Written only by ObserveExemplar with a non-zero trace ID —
	// untraced observations never allocate.
	exemplars [numBuckets + 1]atomic.Pointer[Exemplar]
}

// Exemplar ties one histogram observation to the trace that produced it.
type Exemplar struct {
	TraceID TraceID
	Value   float64
	When    time.Time
}

// ExemplarSnapshot is a JSON-friendly exemplar with its bucket's upper bound.
type ExemplarSnapshot struct {
	LE      float64   `json:"le"` // bucket upper bound (+Inf rendered as the overflow bound)
	Value   float64   `json:"value"`
	TraceID string    `json:"trace_id"`
	When    time.Time `json:"when"`
}

// NewHistogram returns an empty histogram ready for concurrent use.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and, when tid is a real trace, retains
// the observation as the containing bucket's exemplar (most recent wins).
// With a zero trace ID it is exactly Observe — no allocation.
func (h *Histogram) ObserveExemplar(v float64, tid TraceID) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	idx := bucketIndex(v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
	if !tid.IsZero() {
		h.exemplars[idx].Store(&Exemplar{TraceID: tid, Value: v, When: time.Now()})
	}
}

// ObserveDurationExemplar records a duration in seconds with an exemplar.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, tid TraceID) {
	h.ObserveExemplar(d.Seconds(), tid)
}

// Exemplars returns the retained per-bucket exemplars, lowest bucket first.
func (h *Histogram) Exemplars() []ExemplarSnapshot {
	var out []ExemplarSnapshot
	for i := 0; i <= numBuckets; i++ {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		_, hi := bucketRange(i)
		out = append(out, ExemplarSnapshot{
			LE:      hi,
			Value:   ex.Value,
			TraceID: ex.TraceID.String(),
			When:    ex.When,
		})
	}
	return out
}

// ExemplarAbove returns the most recent retained exemplar whose bucket can
// hold values above v — the concrete trace behind a threshold violation.
// ok is false when no such exemplar is retained.
func (h *Histogram) ExemplarAbove(v float64) (ExemplarSnapshot, bool) {
	var best ExemplarSnapshot
	var found bool
	for i := 0; i <= numBuckets; i++ {
		_, hi := bucketRange(i)
		if hi <= v {
			continue
		}
		ex := h.exemplars[i].Load()
		if ex == nil || ex.Value <= v {
			continue
		}
		if !found || ex.When.After(best.When) {
			best = ExemplarSnapshot{LE: hi, Value: ex.Value, TraceID: ex.TraceID.String(), When: ex.When}
			found = true
		}
	}
	return best, found
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-th quantile (q in [0, 1]) by linear interpolation
// within the containing bucket. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation (1-based, ceiling).
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lo, hi := bucketRange(i)
		// Clamp interpolation to the observed extrema so single-bucket
		// histograms report tight values.
		if min := h.Min(); min > lo && min <= hi {
			lo = min
		}
		if max := h.Max(); max < hi && max >= lo {
			hi = max
		}
		frac := float64(rank-cum) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Max()
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// HistogramSnapshot is a point-in-time JSON-friendly view of a histogram.
type HistogramSnapshot struct {
	Count     int64              `json:"count"`
	Sum       float64            `json:"sum"`
	Mean      float64            `json:"mean"`
	Min       float64            `json:"min"`
	Max       float64            `json:"max"`
	P50       float64            `json:"p50"`
	P90       float64            `json:"p90"`
	P99       float64            `json:"p99"`
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot captures count, sum, extrema, and p50/p90/p99 estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:     h.Count(),
		Sum:       h.Sum(),
		Min:       h.Min(),
		Max:       h.Max(),
		P50:       h.Quantile(0.50),
		P90:       h.Quantile(0.90),
		P99:       h.Quantile(0.99),
		Exemplars: h.Exemplars(),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// bucketIndex maps a value to its bucket (the overflow bucket for values
// beyond the last bound).
func bucketIndex(v float64) int {
	for i, bound := range bucketBounds {
		if v <= bound {
			return i
		}
	}
	return numBuckets
}

// bucketRange returns the half-open value range (lo, hi] of bucket i.
func bucketRange(i int) (lo, hi float64) {
	if i == 0 {
		return 0, bucketBounds[0]
	}
	if i >= numBuckets {
		return bucketBounds[numBuckets-1], bucketBounds[numBuckets-1] * 2
	}
	return bucketBounds[i-1], bucketBounds[i]
}

// atomicAddFloat adds delta to a float64 stored as bits, using CAS.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// atomicMinFloat lowers the stored minimum to v if smaller.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the stored maximum to v if larger.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
