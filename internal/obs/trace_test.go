package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// withTracing enables observability and installs cfg for the test, restoring
// the previous global state afterwards.
func withTracing(t *testing.T, cfg TracingConfig) {
	t.Helper()
	wasEnabled := Enabled()
	ConfigureTracing(cfg)
	ResetTraces()
	ResetSpans()
	t.Cleanup(func() {
		DisableTracing()
		ResetTraces()
		ResetSpans()
		SetEnabled(wasEnabled)
	})
}

func TestTraceparentRoundtrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(tid, sid, sampled)
		if len(h) != 55 {
			t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
		}
		gotTID, gotSID, gotSampled, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if gotTID != tid || gotSID != sid || gotSampled != sampled {
			t.Fatalf("roundtrip %q: got (%s, %s, %v), want (%s, %s, %v)",
				h, gotTID, gotSID, gotSampled, tid, sid, sampled)
		}
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version ff invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // bad hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // version 00 with extra field
	}
	for _, h := range bad {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", h)
		}
	}
	// Unknown future versions are accepted as long as the 00-format prefix
	// parses (W3C forward compatibility).
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever"
	if _, _, _, err := ParseTraceparent(future); err != nil {
		t.Errorf("ParseTraceparent(%q): %v, want future version accepted", future, err)
	}
}

func TestSpanTraceIdentityInheritance(t *testing.T) {
	withTracing(t, TracingConfig{})
	ctx, root := StartSpan(context.Background(), "root")
	if root.TraceID().IsZero() || root.SpanID().IsZero() {
		t.Fatal("root span has zero identity")
	}
	_, child := StartSpan(ctx, "child")
	grand := child.StartChild("grandchild")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Error("descendants do not share the root's trace ID")
	}
	if child.parentID != root.SpanID() {
		t.Errorf("child parent = %s, want %s", child.parentID, root.SpanID())
	}
	if grand.parentID != child.SpanID() {
		t.Errorf("grandchild parent = %s, want %s", grand.parentID, child.SpanID())
	}
	if got := SpanFromContext(ctx); got != root {
		t.Error("SpanFromContext did not return the context's span")
	}
	grand.End()
	child.End()
	root.End()
	snap := root.Snapshot()
	if snap.TraceID != root.TraceID().String() || len(snap.Children) != 1 || len(snap.Children[0].Children) != 1 {
		t.Errorf("snapshot tree shape wrong: %+v", snap)
	}
}

func TestRemoteTraceJoinsAndForcesKeep(t *testing.T) {
	// SampleRate 0: only the forced flag can keep this healthy trace.
	withTracing(t, TracingConfig{SampleRate: 0})
	tid, parent := NewTraceID(), NewSpanID()
	ctx := ContextWithRemoteTrace(context.Background(), tid, parent, true)
	_, span := StartSpan(ctx, "server/query")
	if span.TraceID() != tid {
		t.Fatalf("span trace ID = %s, want remote %s", span.TraceID(), tid)
	}
	if span.parentID != parent {
		t.Fatalf("span parent = %s, want remote caller %s", span.parentID, parent)
	}
	span.End()
	rec, ok := KeptTrace(tid.String())
	if !ok {
		t.Fatal("remotely sampled trace was not kept")
	}
	if rec.Verdict != "forced" {
		t.Errorf("verdict = %q, want forced", rec.Verdict)
	}
	if rec.Root.ParentID != parent.String() {
		t.Errorf("exported root parent = %q, want %q (stitches to caller)", rec.Root.ParentID, parent)
	}
}

func TestTailSamplingVerdicts(t *testing.T) {
	withTracing(t, TracingConfig{SampleRate: 1, SlowThreshold: 5 * time.Millisecond})

	run := func(name string, f func(s *Span)) string {
		_, s := StartSpan(context.Background(), name)
		if f != nil {
			f(s)
		}
		s.End()
		rec, ok := KeptTrace(s.TraceID().String())
		if !ok {
			t.Fatalf("%s: trace not kept", name)
		}
		return rec.Verdict
	}

	if v := run("err", func(s *Span) { s.StartChild("c").MarkError("boom") }); v != "error" {
		t.Errorf("error in subtree: verdict %q, want error", v)
	}
	if v := run("deg", func(s *Span) { s.MarkDegraded("breaker") }); v != "degraded" {
		t.Errorf("degraded: verdict %q, want degraded", v)
	}
	if v := run("slow", func(s *Span) { time.Sleep(6 * time.Millisecond) }); v != "slow" {
		t.Errorf("slow: verdict %q, want slow", v)
	}
	if v := run("healthy", nil); v != "sampled" {
		t.Errorf("healthy at rate 1: verdict %q, want sampled", v)
	}

	// Error outranks degraded outranks slow when a trace qualifies for all.
	if v := run("all", func(s *Span) {
		s.MarkDegraded("rows")
		s.MarkError("boom")
		time.Sleep(6 * time.Millisecond)
	}); v != "error" {
		t.Errorf("error+degraded+slow: verdict %q, want error", v)
	}

	// Healthy traces at rate 0 are dropped.
	ConfigureTracing(TracingConfig{SampleRate: 0})
	before := Default().Counter("obs/trace/dropped").Value()
	_, s := StartSpan(context.Background(), "dropped")
	s.End()
	if _, ok := KeptTrace(s.TraceID().String()); ok {
		t.Error("healthy trace kept at sample rate 0")
	}
	if got := Default().Counter("obs/trace/dropped").Value(); got != before+1 {
		t.Errorf("dropped counter = %d, want %d", got, before+1)
	}
}

func TestSlowQueryLogAggregates(t *testing.T) {
	withTracing(t, TracingConfig{SampleRate: 1})
	const sql = "SELECT * FROM title WHERE rating > 7"
	for i := 0; i < 3; i++ {
		_, s := StartSpan(context.Background(), "server/query")
		s.Annotate("sql", sql)
		if i == 2 {
			s.MarkError("boom")
		}
		s.End()
	}
	stats := SlowQueries()
	if len(stats) != 1 {
		t.Fatalf("SlowQueries len = %d, want 1", len(stats))
	}
	e := stats[0]
	if e.SQL != sql || e.Count != 3 || e.Errors != 1 {
		t.Errorf("stats = %+v, want sql=%q count=3 errors=1", e, sql)
	}
	if e.LastTraceID == "" {
		t.Error("LastTraceID empty: cannot jump from slow-query log to trace")
	}
	if _, ok := KeptTrace(e.LastTraceID); !ok {
		t.Error("LastTraceID does not resolve to a kept trace")
	}
}

func TestJSONLExporterRotationBounds(t *testing.T) {
	dir := t.TempDir()
	exp, err := NewJSONLExporter(dir, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := TraceRecord{TraceID: strings.Repeat("ab", 16), Verdict: "error",
		Root: SpanSnapshot{Name: "server/query", Attrs: map[string]any{"sql": "SELECT 1"}}}
	for i := 0; i < 50; i++ {
		if err := exp.ExportTrace(rec); err != nil {
			t.Fatalf("export %d: %v", i, err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	if len(files) == 0 || len(files) > 2 {
		t.Fatalf("got %d files %v, want 1..2 (retention)", len(files), files)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
			var got TraceRecord
			if err := json.Unmarshal(line, &got); err != nil {
				t.Fatalf("%s: bad JSONL line %q: %v", f, line, err)
			}
			if got.TraceID != rec.TraceID {
				t.Fatalf("%s: trace ID %q, want %q", f, got.TraceID, rec.TraceID)
			}
		}
	}
	if err := exp.ExportTrace(rec); err == nil {
		t.Error("export after Close succeeded, want error")
	}
	// A new exporter in the same directory continues the sequence instead of
	// clobbering history.
	exp2, err := NewJSONLExporter(dir, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	files2, _ := filepath.Glob(filepath.Join(dir, "traces-*.jsonl"))
	if len(files2) > 2 {
		t.Errorf("after reopen: %d files, want ≤2", len(files2))
	}
}

// TestSnapshotDuringActiveSubtree hammers Snapshot while children are being
// added, annotated, and ended concurrently. Run with -race: the point is that
// per-span locking makes mid-flight snapshots safe.
func TestSnapshotDuringActiveSubtree(t *testing.T) {
	withTracing(t, TracingConfig{})
	_, root := StartSpan(context.Background(), "root")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := root.StartChild("child")
				c.Annotate("i", i)
				c.Event("tick", "worker", w)
				g := c.StartChild("grand")
				g.MarkError("x")
				g.End()
				c.End()
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := root.Snapshot()
		if snap.Name != "root" {
			t.Errorf("snapshot name %q", snap.Name)
			break
		}
	}
	close(stop)
	wg.Wait()
	// Deterministic subtree error: workers may not have been scheduled at all
	// on a fast machine, so plant one guaranteed errored descendant.
	g := root.StartChild("child").StartChild("grand")
	g.MarkError("x")
	g.End()
	root.End()
	if err, _ := root.status(); err != "x" {
		t.Errorf("status error = %q, want propagated child error", err)
	}
}

func TestWritePrometheusWithExemplars(t *testing.T) {
	r := NewRegistry()
	r.Counter("server/requests").Add(5)
	r.Gauge("pool/size").Set(3)
	tid := NewTraceID()
	h := r.Histogram("server/request_seconds")
	h.Observe(0.2)
	h.ObserveExemplar(0.4, tid)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE server_requests_total counter",
		"server_requests_total 5",
		"pool_size 3",
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{le="+Inf"} 2`,
		"server_request_seconds_count 2",
		`# {trace_id="` + tid.String() + `"} 0.4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket counts must be cumulative: each le line ≥ the previous. The
	// count is the second field; anything after a '#' is the exemplar.
	prev := -1.0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "server_request_seconds_bucket{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("malformed bucket line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %v", line, prev)
		}
		prev = v
	}
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	wasEnabled := Enabled()
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(wasEnabled) })
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := StartSpan(ctx, "server/query")
		s.Annotate("sql", "SELECT 1")
		s.Event("shed", "cause", "draining")
		child := s.StartChild("engine/execute")
		child.MarkError("x")
		child.End()
		_ = SpanFromContext(c)
		s.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per request, want 0", allocs)
	}
}

func BenchmarkSpanRingAdd(b *testing.B) {
	r := &spanRing{}
	s := &Span{name: "bench", root: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.add(s)
	}
}

func BenchmarkTraceExport(b *testing.B) {
	exp, err := NewJSONLExporter(b.TempDir(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer exp.Close()
	rec := TraceRecord{
		TraceID: NewTraceID().String(), Verdict: "sampled", DurationMS: 1.25,
		Root: SpanSnapshot{
			Name:  "server/query",
			Attrs: map[string]any{"sql": "SELECT * FROM title WHERE rating > 7"},
			Children: []SpanSnapshot{{Name: "core/query", Children: []SpanSnapshot{
				{Name: "core/rung/approx", Children: []SpanSnapshot{{Name: "engine/execute"}}},
			}}},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.ExportTrace(rec); err != nil {
			b.Fatal(err)
		}
	}
}
